#!/usr/bin/env python3
"""Quickstart: schedule one stream application and check the result.

Builds a small dispersed computing network (an 8-NCP star), defines a
4-stage linear stream application, runs SPARCLE's task assignment
(Algorithm 2), prints the placement and its stable processing rate, and
finally validates the rate by driving the placed pipeline through the
discrete-event simulator at 95% load.

Run with:  python examples/quickstart.py
"""

from __future__ import annotations

from repro import (
    CapacityView,
    linear_task_graph,
    sparcle_assign,
    star_network,
)
from repro.simulator import StreamSimulator


def main() -> None:
    # 1. A stream application: source -> 4 compute stages -> sink.
    #    Requirements are per data unit: CPU in megacycles, TTs in megabits.
    app = linear_task_graph(
        4,
        name="sensor-pipeline",
        cpu_per_ct=[2000.0, 4000.0, 1000.0, 3000.0],
        megabits_per_tt=[8.0, 4.0, 2.0, 1.0, 0.5],
    )
    # The data source and the result consumer have fixed hosts.
    app = app.with_pins({"source": "ncp1", "sink": "ncp2"})

    # 2. A dispersed computing network: hub + 7 leaves, 10 Mbps links.
    network = star_network(
        7, hub_cpu=6000.0, leaf_cpu=3000.0, link_bandwidth=10.0
    )

    # 3. Network-aware task assignment (Algorithm 2 of the paper).
    result = sparcle_assign(app, network)
    print(f"application : {app.name}")
    print(f"stable rate : {result.rate:.4f} data units/sec")
    print("placement   :")
    for ct in app.cts:
        print(f"  {ct.name:8s} -> {result.placement.host(ct.name)}")
    print("TT routes   :")
    for tt in app.tts:
        route = result.placement.route(tt.name)
        print(f"  {tt.name:8s} -> {' -> '.join(route) if route else '(co-located)'}")
    bottlenecks = result.placement.bottleneck_elements(CapacityView(network))
    print(f"bottleneck  : {', '.join(bottlenecks)}")

    # 4. Validate: simulate the placed pipeline at 95% of the stable rate.
    offered = result.rate * 0.95
    simulator = StreamSimulator(network, result.placement, offered)
    horizon = 200.0 / offered
    report = simulator.run(horizon, warmup=horizon * 0.1)
    print(f"\nsimulation  : offered {offered:.4f} u/s for {horizon:.0f}s")
    print(f"  delivered : {report.throughput:.4f} u/s "
          f"(mean latency {report.mean_latency:.2f}s, "
          f"max backlog {report.max_backlog} jobs)")
    assert report.max_backlog < 25, "pipeline should be stable at 95% load"


if __name__ == "__main__":
    main()
