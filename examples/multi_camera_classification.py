#!/usr/bin/env python3
"""The paper's Fig. 1 application: multi-viewpoint object classification.

Two cameras stream images from different angles into a shared detection
stage; detected objects flow to a classification stage and then to the
consumer.  This example shows:

1.  multi-source DAGs (both camera feeds must arrive before detection
    runs on a data unit — the simulator enforces the synchronization);
2.  scheduling on an ad-hoc *geometric* IoT network (nodes scattered in a
    field, radio links whose bandwidth decays with distance);
3.  the QoE outage report: which link failures would break the feed.

Run with:  python examples/multi_camera_classification.py
"""

from __future__ import annotations

from repro import multi_camera_task_graph, sparcle_assign
from repro.core.scheduler import GRRequest, SparcleScheduler
from repro.simulator import StreamSimulator
from repro.workloads import random_geometric_network


def main() -> None:
    network = random_geometric_network(
        42, n_ncps=10, radius=0.5, cpu_range=(4000.0, 12000.0),
        bandwidth_at_zero=60.0,
    )
    app = multi_camera_task_graph()
    app = app.with_pins({
        "camera1": "ncp1",
        "camera2": "ncp4",
        "consumer": "ncp9",
    })
    print(f"network: {len(network.ncps)} NCPs, {len(network.links)} radio links")
    print("pipeline:", " / ".join(app.sources), "->", "detect -> classify ->",
          app.sinks[0])

    result = sparcle_assign(app, network)
    print(f"\nstable rate: {result.rate:.4f} frame-pairs/sec")
    for ct in app.cts:
        print(f"  {ct.name:9s} -> {result.placement.host(ct.name)}")

    # Multi-source synchronization in action: detection waits for both
    # camera feeds of each unit.
    simulator = StreamSimulator(network, result.placement, result.rate * 0.9)
    horizon = 200.0 / result.rate
    report = simulator.run(horizon, warmup=horizon * 0.1)
    print(f"\nsimulated: {report.throughput:.4f} frame-pairs/sec delivered "
          f"(mean latency {report.mean_latency:.3f}s)")

    # Which single-link outages would break a guaranteed feed?
    scheduler = SparcleScheduler(network)
    decision = scheduler.submit_gr(
        GRRequest("classify-feed", app, min_rate=result.rate * 0.5)
    )
    print(f"\nGR admission: accepted={decision.accepted} "
          f"(reserved {decision.total_rate:.3f}/s)")
    fragile = []
    for link in network.links:
        outage = scheduler.qoe_under_outage({link.name})
        if not outage.gr_guarantee_met["classify-feed"]:
            fragile.append(link.name)
    print(f"single links whose failure breaks the guarantee: {fragile}")
    assert decision.accepted


if __name__ == "__main__":
    main()
