#!/usr/bin/env python3
"""Capacity planning: diagnose a deployment and evaluate upgrades.

Given a placed application, the analysis toolkit answers the operator
questions the scheduler itself does not:

1.  *where is the bottleneck and how utilized is everything?* —
    ``placement_summary`` / ``utilization_report``;
2.  *what single upgrade buys the most rate?* — ``bottleneck_sensitivity``
    ranks elements by marginal rate per unit capacity;
3.  *is a concrete upgrade worth it?* — ``what_if_capacity`` recomputes the
    stable rate under hypothetical capacities without touching the network;
4.  *what latency will users see?* — ``zero_load_latency`` (the floor) and
    ``estimated_latency`` (an M/D/1-style estimate at the operating point),
    cross-checked against the discrete-event simulator.

Run with:  python examples/capacity_planning.py
"""

from __future__ import annotations

from repro import (
    bottleneck_sensitivity,
    estimated_latency,
    linear_task_graph,
    placement_summary,
    sparcle_assign,
    star_network,
    what_if_capacity,
    zero_load_latency,
)
from repro.simulator import StreamSimulator


def main() -> None:
    app = linear_task_graph(
        3, name="etl", cpu_per_ct=[3000.0, 6000.0, 2000.0],
        megabits_per_tt=[6.0, 4.0, 2.0, 1.0],
    ).with_pins({"source": "ncp1", "sink": "ncp2"})
    network = star_network(5, hub_cpu=8000.0, leaf_cpu=4000.0, link_bandwidth=12.0)

    result = sparcle_assign(app, network)
    summary = placement_summary(network, result.placement)
    print(summary.to_text())

    # --- 2. which upgrade pays off? -------------------------------------
    sensitivity = bottleneck_sensitivity(network, result.placement)
    ranked = sorted(sensitivity.items(), key=lambda kv: -kv[1])
    print("\nmarginal rate per unit of capacity added:")
    for element, slope in ranked[:3]:
        print(f"  {element:6s} {slope:.5f}")

    # --- 3. evaluate a concrete upgrade ---------------------------------
    # Several elements can bind at once (here both the hub and ncp1 sit at
    # 100% utilization) — upgrading only one of them buys nothing, so the
    # plan upgrades *every* binding element by 50%.
    changes: dict[str, dict[str, float]] = {}
    for element in summary.binding_elements:
        loads = result.placement.loads()[element]
        resource = max(loads, key=loads.get)
        changes[element] = {resource: network.capacity(element, resource) * 1.5}
    upgraded_rate = what_if_capacity(network, result.placement, changes)
    upgrades = ", ".join(sorted(changes))
    print(f"\nupgrading the binding set ({upgrades}) by 50%: "
          f"{result.rate:.4f} -> {upgraded_rate:.4f} units/sec "
          f"(+{100 * (upgraded_rate / result.rate - 1):.0f}%)")
    assert upgraded_rate > result.rate

    # --- 4. latency at the planned operating point ----------------------
    operating_rate = result.rate * 0.8
    floor = zero_load_latency(network, result.placement)
    estimate = estimated_latency(network, result.placement, operating_rate)
    print(f"\nlatency floor      : {floor.total_seconds:.3f}s "
          f"(critical path: {' -> '.join(floor.critical_path)})")
    print(f"estimate at 80% load: {estimate:.3f}s")

    simulator = StreamSimulator(network, result.placement, operating_rate)
    horizon = 300.0 / operating_rate
    report = simulator.run(horizon, warmup=horizon * 0.1)
    print(f"simulated mean      : {report.mean_latency:.3f}s "
          f"(throughput {report.throughput:.4f} units/sec)")
    assert floor.total_seconds <= report.mean_latency <= estimate * 1.5


if __name__ == "__main__":
    main()
