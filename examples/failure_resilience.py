#!/usr/bin/env python3
"""Multipath placement for availability under network failures (Fig. 10).

A Guaranteed-Rate application needs 2 data units/sec at least 90% of the
time on a network whose links each fail 5% of the time.  One task
assignment path cannot deliver that; SPARCLE keeps adding paths (each found
by Algorithm 2 against the residual capacities) until the Eq. (7) min-rate
availability clears the target.  The analytical prediction is then
validated against a long failure-injected discrete-event simulation.

Run with:  python examples/failure_resilience.py
"""

from __future__ import annotations

from repro import (
    GRRequest,
    PathProfile,
    SparcleScheduler,
    fully_connected_network,
    linear_task_graph,
    min_rate_availability,
)
from repro.simulator import FailureInjector, StreamSimulator

MIN_RATE = 2.0
TARGET_AVAILABILITY = 0.9
LINK_FAILURE = 0.05


def main() -> None:
    # Capacities are sized so that one path cannot clear the availability
    # target on its own (each path spans ~3 fallible links at 95% each).
    network = fully_connected_network(
        5, cpu=2500.0, link_bandwidth=40.0,
        link_failure_probability=LINK_FAILURE,
    )
    app = linear_task_graph(
        2, name="alerting", cpu_per_ct=1500.0, megabits_per_tt=3.0
    ).with_pins({"source": "ncp1", "sink": "ncp2"})

    scheduler = SparcleScheduler(network)
    decision = scheduler.submit_gr(
        GRRequest("alerting", app, min_rate=MIN_RATE,
                  min_rate_availability=TARGET_AVAILABILITY, max_paths=4)
    )
    print(f"admitted: {decision.accepted} with {len(decision.placements)} paths")
    print(f"path rates: {[round(r, 3) for r in decision.path_rates]}")

    profiles = [
        PathProfile.of(p, r)
        for p, r in zip(decision.placements, decision.path_rates)
    ]
    for k in range(1, len(profiles) + 1):
        availability = min_rate_availability(network, profiles[:k], MIN_RATE)
        marker = "<- meets target" if availability >= TARGET_AVAILABILITY else ""
        print(f"  {k} path(s): P(rate >= {MIN_RATE}) = {availability:.4f} {marker}")
    assert decision.accepted

    # Validate the failure model itself: inject exponential UP/DOWN cycles
    # with stationary unavailability 5% and confirm the observed downtime.
    placement = decision.placements[0]
    simulator = StreamSimulator(
        network, placement, decision.path_rates[0] * 0.5
    )
    injector = FailureInjector(simulator, network, mean_cycle=40.0, rng=11)
    armed = injector.arm()
    duration = 4000.0
    report = simulator.run(duration, warmup=200.0)
    trace = injector.finalize(duration)
    print(f"\nfailure-injected simulation of path 1 ({duration:.0f}s):")
    print(f"  delivered {report.throughput:.3f} u/s "
          f"(offered {decision.path_rates[0] * 0.5:.3f})")
    for element in armed[:4]:
        observed = trace.unavailability(element, duration)
        print(f"  {element}: observed unavailability {observed:.3f} "
              f"(model {LINK_FAILURE})")


if __name__ == "__main__":
    main()
