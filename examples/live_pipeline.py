#!/usr/bin/env python3
"""Run the face-detection pipeline *for real* through the local runtime.

The paper evaluated SPARCLE with a live OpenCV application on a physical
testbed.  This example is the in-process equivalent: synthetic camera
frames (numpy arrays with a known number of bright "faces") flow through
real resize/denoise/edge/face operators, while per-element worker threads
pace every computation and transfer at the modeled service times of the
SPARCLE placement.

The payoff over the analytical pipeline: the *answers* can be checked —
the detected face counts must equal the planted ones, proving the
placement preserves functional correctness, not just throughput.

Run with:  python examples/live_pipeline.py
"""

from __future__ import annotations

from repro.core.assignment import sparcle_assign
from repro.runtime import LocalRuntime, face_detection_operators, synthetic_image
from repro.workloads import face_detection_graph, testbed_network

FIELD_BANDWIDTH = 10.0
N_FRAMES = 15


def main() -> None:
    graph = face_detection_graph()
    network = testbed_network(FIELD_BANDWIDTH)
    result = sparcle_assign(graph, network)
    print(f"placement (field BW {FIELD_BANDWIDTH} Mbps), "
          f"analytical rate {result.rate:.4f} images/sec:")
    for ct in graph.cts:
        print(f"  {ct.name:9s} -> {result.placement.host(ct.name)}")

    planted = [k % 4 for k in range(N_FRAMES)]
    frames = [synthetic_image(n, rng=100 + k) for k, n in enumerate(planted)]
    runtime = LocalRuntime(
        network, result.placement, face_detection_operators(), time_scale=0.02
    )
    outcome = runtime.process(frames, rate=result.rate * 0.8, timeout=120.0)

    print(f"\nprocessed {outcome.delivered}/{outcome.emitted} frames in "
          f"{outcome.wall_seconds:.2f}s wall "
          f"({outcome.modeled_seconds:.1f}s modeled, "
          f"{outcome.modeled_rate:.3f} images/modeled-sec)")
    detected = outcome.results
    print(f"planted faces : {planted}")
    print(f"detected faces: {detected}")
    assert outcome.errors == [], outcome.errors
    assert detected == planted, "the pipeline must find exactly the planted faces"
    print("\nevery frame classified correctly through the dispersed placement")


if __name__ == "__main__":
    main()
