#!/usr/bin/env python3
"""Edge anomaly detection: sensors + analytics sharing an IoT network.

A composite scenario pulling most of the library together:

1.  a vibration-sensor anomaly pipeline (FFT analytics) is admitted as a
    Guaranteed-Rate application on a geometric IoT network;
2.  a best-effort log-aggregation app shares the leftovers under
    proportional fairness;
3.  the *multi-flow* simulator runs both placements against shared element
    servers at their allocated rates, demonstrating that the Problem-(4)
    solution is jointly sustainable;
4.  the sensor pipeline finally runs *for real* (numpy FFT operators) and
    every window is classified against the planted ground truth.

Run with:  python examples/edge_anomaly_detection.py
"""

from __future__ import annotations

from repro import BERequest, GRRequest, SparcleScheduler, linear_task_graph
from repro.runtime import (
    LocalRuntime,
    sensor_operators,
    sensor_pipeline_graph,
    synthetic_signal,
)
from repro.simulator import Flow, MultiFlowSimulator
from repro.workloads import random_geometric_network


def main() -> None:
    network = random_geometric_network(
        7, n_ncps=8, radius=0.5, cpu_range=(2000.0, 6000.0),
        bandwidth_at_zero=40.0,
    )
    names = network.ncp_names
    sensors = sensor_pipeline_graph(source_host=names[0], sink_host=names[1])
    logs = linear_task_graph(
        2, name="logs", cpu_per_ct=800.0, megabits_per_tt=1.5
    ).with_pins({"source": names[2], "sink": names[3]})

    scheduler = SparcleScheduler(network)
    gr = scheduler.submit_gr(GRRequest("sensors", sensors, min_rate=1.0))
    be = scheduler.submit_be(BERequest("logs", logs, priority=1.0))
    allocation = scheduler.allocate_be()
    print(f"GR 'sensors': accepted={gr.accepted}, reserved "
          f"{gr.total_rate:.3f} windows/sec")
    print(f"BE 'logs'   : accepted={be.accepted}, allocated "
          f"{allocation.app_rates['logs']:.3f} units/sec")

    # --- joint sustainability in the multi-flow simulator ---------------
    flows = [
        Flow("sensors", gr.placements[0], gr.path_rates[0] * 0.95),
        Flow("logs", be.placements[0], allocation.app_rates["logs"] * 0.95),
    ]
    horizon = 150.0 / min(f.rate for f in flows)
    report = MultiFlowSimulator(network, flows).run(
        horizon, warmup=horizon * 0.1
    )
    print("\nshared-network simulation:")
    for flow in flows:
        observed = report.flows[flow.flow_id]
        print(f"  {flow.flow_id:8s} offered {flow.rate:.3f} -> delivered "
              f"{observed.throughput:.3f} units/sec "
              f"(mean latency {observed.mean_latency:.3f}s)")
    print(f"  max backlog on any shared element: {report.max_backlog} jobs")
    assert report.max_backlog < 30

    # --- real FFT analytics through the placement -----------------------
    truth = [bool(k % 4 == 0) for k in range(12)]
    windows = [synthetic_signal(a, rng=200 + k) for k, a in enumerate(truth)]
    runtime = LocalRuntime(
        network, gr.placements[0], sensor_operators(), time_scale=0.01
    )
    outcome = runtime.process(windows, rate=gr.path_rates[0] * 0.8,
                              timeout=120.0)
    flags = outcome.results
    print(f"\nlive FFT pipeline: {outcome.delivered}/{outcome.emitted} "
          f"windows in {outcome.wall_seconds:.2f}s wall")
    print(f"planted anomalies : {[int(v) for v in truth]}")
    print(f"detected anomalies: {[int(v) for v in flags]}")
    assert flags == truth
    print("\nevery window classified correctly under the GR placement")


if __name__ == "__main__":
    main()
