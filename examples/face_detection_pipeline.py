#!/usr/bin/env python3
"""The paper's testbed experiment: face detection on a dispersed network.

Reproduces the Fig. 6 story end to end:

1.  build the Fig. 4 testbed (cloud + six field NCPs) and the Fig. 5
    face-detection pipeline with the real Table I/II parameters;
2.  sweep the field bandwidth over 0.5 / 10 / 22 Mbps, comparing SPARCLE's
    dispersed placement against cloud-only computing;
3.  emulate the winning placement in the discrete-event emulator
    (the repository's Mininet substitute);
4.  export the scenario as JSON — the emulator's experiment file format.

Run with:  python examples/face_detection_pipeline.py
"""

from __future__ import annotations

import tempfile
from pathlib import Path

from repro.baselines import cloud_assign
from repro.core.assignment import sparcle_assign
from repro.emulator import Emulator, save_scenario, scenario_to_dict
from repro.workloads import (
    FIG6_FIELD_BANDWIDTHS,
    face_detection_graph,
    testbed_network,
)


def main() -> None:
    app = face_detection_graph()
    print("face-detection pipeline:",
          " -> ".join(app.topological_order()))

    print(f"\n{'field BW':>10s} {'SPARCLE':>10s} {'cloud':>10s} {'gain':>8s}")
    best = None
    for bandwidth in FIG6_FIELD_BANDWIDTHS:
        network = testbed_network(bandwidth)
        sparcle = sparcle_assign(app, network)
        cloud = cloud_assign(app, network)
        gain = sparcle.rate / cloud.rate
        print(f"{bandwidth:>8.1f}Mb {sparcle.rate:>10.4f} {cloud.rate:>10.4f} "
              f"{gain:>7.1f}x")
        if bandwidth == min(FIG6_FIELD_BANDWIDTHS):
            best = (network, sparcle)
    assert best is not None
    network, sparcle = best

    # Where did SPARCLE put each stage at 0.5 Mbps?
    print("\nSPARCLE placement at 0.5 Mbps field bandwidth:")
    for ct in app.cts:
        print(f"  {ct.name:9s} -> {sparcle.placement.host(ct.name)}")

    # Emulate the placed pipeline (Mininet substitute).
    doc = scenario_to_dict(
        "face-detection-0.5mbps", network, app, sparcle.placement
    )
    with tempfile.TemporaryDirectory() as tmp:
        path = Path(tmp) / "scenario.json"
        save_scenario(path, doc)
        print(f"\nscenario file written: {path.name} "
              f"({path.stat().st_size} bytes)")
        outcome = Emulator.from_file(path).run(duration=300.0)
    print(f"emulated at {outcome.offered_rate:.4f} u/s -> achieved "
          f"{outcome.achieved_rate:.4f} u/s (stable={outcome.stable})")
    assert outcome.stable


if __name__ == "__main__":
    main()
