#!/usr/bin/env python3
"""Multiple heterogeneous applications sharing one dispersed network.

Demonstrates the Fig. 3 control loop:

1.  a Guaranteed-Rate surveillance feed reserves capacity for 1.5 units/sec;
2.  three Best-Effort applications with priorities 1/2/4 arrive and are
    placed against their Theorem-3 predicted shares;
3.  Problem (4) (weighted proportional fairness) sets the exact BE rates —
    note how they track the priorities;
4.  a greedy oversized GR request is rejected by admission control.

Run with:  python examples/multi_app_qoe.py
"""

from __future__ import annotations

from repro import (
    BERequest,
    GRRequest,
    SparcleScheduler,
    diamond_task_graph,
    linear_task_graph,
    star_network,
)


def main() -> None:
    network = star_network(
        7, hub_cpu=12000.0, leaf_cpu=6000.0, link_bandwidth=60.0
    )
    scheduler = SparcleScheduler(network)

    # --- 1. a Guaranteed-Rate application reserves capacity -------------
    surveillance = diamond_task_graph(
        name="surveillance", cpu_per_ct=2000.0, megabits_per_tt=4.0
    ).with_pins({"ct1": "ncp1", "ct8": "ncp2"})
    decision = scheduler.submit_gr(
        GRRequest("surveillance", surveillance, min_rate=1.5)
    )
    print(f"GR 'surveillance': accepted={decision.accepted}, "
          f"reserved {decision.total_rate:.3f} u/s over "
          f"{len(decision.placements)} path(s)")

    # --- 2. Best-Effort applications with different priorities ----------
    for name, priority in (("logs", 1.0), ("metrics", 2.0), ("alerts", 4.0)):
        app = linear_task_graph(
            3, name=name, cpu_per_ct=1500.0, megabits_per_tt=2.0
        ).with_pins({"source": "ncp3", "sink": "ncp4"})
        decision = scheduler.submit_be(BERequest(name, app, priority=priority))
        print(f"BE {name!r} (priority {priority}): accepted={decision.accepted}")

    # --- 3. exact rates via weighted proportional fairness --------------
    allocation = scheduler.allocate_be()
    print(f"\nBE allocation (solver: {allocation.solver}, "
          f"utility {allocation.utility:.3f}):")
    for app_id in ("logs", "metrics", "alerts"):
        print(f"  {app_id:8s} rate = {allocation.app_rates[app_id]:.4f} u/s")
    ratio = allocation.app_rates["alerts"] / allocation.app_rates["logs"]
    print(f"  alerts/logs rate ratio = {ratio:.2f} (priorities 4:1)")

    # --- 4. admission control rejects the impossible --------------------
    greedy = linear_task_graph(
        3, name="greedy", cpu_per_ct=1500.0, megabits_per_tt=2.0
    ).with_pins({"source": "ncp5", "sink": "ncp6"})
    rejected = scheduler.submit_gr(
        GRRequest("greedy", greedy, min_rate=1e6, max_paths=2)
    )
    print(f"\nGR 'greedy' (1e6 u/s): accepted={rejected.accepted}")
    print(f"  reason: {rejected.reason}")

    state = scheduler.state()
    print(f"\nadmitted: GR={list(state.gr_apps)}, BE={list(state.be_apps)}")
    assert not rejected.accepted


if __name__ == "__main__":
    main()
