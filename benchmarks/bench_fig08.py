"""Benchmark/reproduction of Fig. 8 — SPARCLE vs exhaustive optimum."""

from __future__ import annotations

from repro.experiments import fig8_optimality


def test_fig8_optimality_ratio(reproduce):
    result = reproduce(fig8_optimality.run, trials=30)
    # Paper: SPARCLE almost always finds the optimal rate.
    for row in result.rows:
        topology, case, p25, p50, p75 = row
        assert p50 >= 0.9, (topology, case)
        assert p75 >= 0.98, (topology, case)
