"""Micro-benchmarks: discrete-event simulator throughput (events/sec).

Tracks the DES engine's performance so the validation suites stay cheap:
one benchmark per service discipline pushing ~thousands of events.
"""

from __future__ import annotations

import pytest

from repro.core.assignment import sparcle_assign
from repro.core.network import star_network
from repro.core.taskgraph import diamond_task_graph
from repro.simulator import StreamSimulator


@pytest.fixture(scope="module")
def placed():
    graph = diamond_task_graph(cpu_per_ct=2000.0, megabits_per_tt=3.0)
    graph = graph.with_pins({"ct1": "ncp1", "ct8": "ncp2"})
    network = star_network(7, hub_cpu=10000.0, leaf_cpu=5000.0,
                           link_bandwidth=50.0)
    return network, sparcle_assign(graph, network)


@pytest.mark.parametrize("discipline", ["fifo", "ps"])
def test_simulate_500_units(benchmark, placed, discipline):
    network, result = placed
    rate = result.rate * 0.9

    def run():
        sim = StreamSimulator(
            network, result.placement, rate, discipline=discipline
        )
        return sim.run(520.0 / rate, max_units=500)

    report = benchmark(run)
    assert report.delivered_units == 500


def test_simulate_poisson(benchmark, placed):
    network, result = placed
    rate = result.rate * 0.8

    def run():
        sim = StreamSimulator(
            network, result.placement, rate,
            arrival_process="poisson", rng=1,
        )
        return sim.run(600.0 / rate, max_units=400)

    report = benchmark(run)
    assert report.delivered_units == 400
