"""Benchmark/reproduction of Fig. 14 — total admitted GR throughput."""

from __future__ import annotations

from repro.experiments import fig14_gr


def test_fig14_admitted_gr(reproduce):
    result = reproduce(fig14_gr.run, trials=20)
    rows = {row[0]: row[1] for row in result.rows}
    # SPARCLE admits the most guaranteed throughput (paper: considerably
    # more than every baseline).
    for rival in ("GRand", "GS", "T-Storm", "Random", "VNE"):
        assert rows["SPARCLE"] >= rows[rival], rival
    assert rows["SPARCLE"] == max(rows.values())
