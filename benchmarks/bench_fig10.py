"""Benchmark/reproduction of Fig. 10 — QoE vs number of paths."""

from __future__ import annotations

from repro.experiments import fig10_qoe


def test_fig10_availability_progression(reproduce):
    result = reproduce(fig10_qoe.run)
    be = [row for row in result.rows if row[0] == "10a-BE"]
    gr = [row for row in result.rows if row[0] == "10b-GR"]
    # BE availability grows monotonically with paths and crosses 0.95.
    availabilities = [row[3] for row in be]
    assert availabilities == sorted(availabilities)
    assert availabilities[-1] >= 0.95
    # GR: one path can never satisfy a requirement above its rate...
    assert gr[0][3] == 0
    # ...but three paths push min-rate availability past 0.9 (paper shape).
    assert gr[-1][3] >= 0.9
