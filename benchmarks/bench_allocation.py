"""Micro-benchmarks: Problem (4) solver latency vs problem size.

Times the dual and SLSQP solvers as the number of BE applications grows —
the operation the scheduler repeats on every arrival (step 4 of Fig. 3).
"""

from __future__ import annotations

import pytest

from repro.core.allocation import BEApp, solve_dual, solve_slsqp
from repro.core.network import NCP, Network
from repro.core.placement import CapacityView, Placement
from repro.core.taskgraph import CPU, ComputationTask, TaskGraph
from repro.utils.rng import ensure_rng


def _instance(n_apps: int, n_ncps: int, seed: int = 0):
    rng = ensure_rng(seed)
    network = Network(
        "n",
        [NCP(f"ncp{k}", {CPU: float(rng.uniform(1000, 5000))})
         for k in range(n_ncps)],
        [],
    )
    apps = []
    for j in range(n_apps):
        host = f"ncp{int(rng.integers(0, n_ncps))}"
        graph = TaskGraph(
            f"app{j}",
            [ComputationTask("w", {CPU: float(rng.uniform(10, 200))})],
            [],
        )
        apps.append(
            BEApp(f"app{j}", float(rng.uniform(0.5, 4.0)),
                  (Placement(graph, {"w": host}, {}),))
        )
    return network, apps


@pytest.mark.parametrize("n_apps", [4, 16, 64])
def test_dual_solver_latency(benchmark, n_apps):
    network, apps = _instance(n_apps, n_ncps=8)
    result = benchmark(solve_dual, apps, CapacityView(network))
    assert all(rate > 0 for rate in result.app_rates.values())


@pytest.mark.parametrize("n_apps", [4, 16])
def test_slsqp_solver_latency(benchmark, n_apps):
    network, apps = _instance(n_apps, n_ncps=8)
    result = benchmark(solve_slsqp, apps, CapacityView(network))
    assert all(rate > 0 for rate in result.app_rates.values())


def test_solvers_agree_at_scale(benchmark):
    network, apps = _instance(32, n_ncps=6, seed=3)

    def both():
        dual = solve_dual(apps, CapacityView(network))
        slsqp = solve_slsqp(apps, CapacityView(network))
        return dual, slsqp

    dual, slsqp = benchmark.pedantic(both, rounds=1, iterations=1)
    assert dual.utility == pytest.approx(slsqp.utility, rel=1e-2, abs=0.05)
