"""Extension benchmark — algorithm comparison on geometric IoT networks.

Checks that SPARCLE's dominance is not an artifact of the paper's regular
topologies: layered random DAGs on random geometric graphs.
"""

from __future__ import annotations

from repro.experiments import geometric


def test_geometric_comparison(reproduce):
    result = reproduce(geometric.run, trials=20)
    rows = {row[0]: row[1] for row in result.rows}
    assert rows["SPARCLE"] == max(rows.values())
    for rival in ("GS", "GRand", "Random", "T-Storm", "VNE", "R-Storm"):
        assert rows["SPARCLE"] > rows[rival], rival
