"""Benchmark/reproduction of Fig. 6 — testbed face-detection rates.

``pytest benchmarks/bench_fig06.py --benchmark-only -s`` regenerates the
figure's rows (rate per algorithm per field bandwidth) and asserts the
paper's headline claims.
"""

from __future__ import annotations

import pytest

from repro.experiments import fig6_testbed


def test_fig6_analytical(reproduce):
    result = reproduce(fig6_testbed.run)
    rates = {(row[0], row[1]): row[2] for row in result.rows}
    # SPARCLE tracks the optimum at every bandwidth.
    for bandwidth in (0.5, 10.0, 22.0):
        assert rates[(bandwidth, "SPARCLE")] == pytest.approx(
            rates[(bandwidth, "optimal")], rel=1e-9
        )
    # Dispersed >> cloud at 0.5 Mbps (paper: ~9x), still ahead at 22 Mbps.
    assert rates[(0.5, "SPARCLE")] > 5 * rates[(0.5, "Cloud")]
    assert rates[(22.0, "SPARCLE")] > 1.05 * rates[(22.0, "Cloud")]
    # Cloud is the optimal choice at 10 Mbps.
    assert rates[(10.0, "Cloud")] == pytest.approx(
        rates[(10.0, "optimal")], rel=1e-9
    )


def test_fig6_emulated(reproduce):
    """The discrete-event emulator confirms the analytical rates."""
    result = reproduce(fig6_testbed.run, emulate=True, emulation_units=60.0)
    headers = list(result.headers)
    rate_col = headers.index("rate")
    emu_col = headers.index("emulated_rate")
    for row in result.rows:
        if row[1] == "optimal" or row[rate_col] <= 0:
            continue
        # Emulated (95%-load) throughput within 15% of 0.95x analytical.
        assert row[emu_col] == pytest.approx(
            0.95 * row[rate_col], rel=0.15
        ), (row[0], row[1])
