#!/usr/bin/env python
"""Verify the full-repo ``sparcle lint`` pass stays fast enough to gate PRs.

The static-analysis pass is only viable as a per-PR CI gate if it is
cheap; this script turns that requirement into a checkable bound: lint
the entire ``src/`` tree (the same invocation the CI lint job runs) and
fail when the wall-clock time exceeds ``--budget`` seconds (default 5).

The measured run also re-asserts the acceptance invariant that the tree
is clean with an **empty** baseline, so a regression in either speed or
cleanliness fails the same smoke step.

Usage::

    PYTHONPATH=src python benchmarks/check_lint_speed.py
    PYTHONPATH=src python benchmarks/check_lint_speed.py --budget 5 \
        --output lint_speed.json
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

_HERE = Path(__file__).resolve().parent
_REPO = _HERE.parent
if str(_REPO / "src") not in sys.path:
    sys.path.insert(0, str(_REPO / "src"))

from repro.devtools import lint_paths  # noqa: E402


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--budget", type=float, default=5.0,
        help="maximum allowed wall-clock seconds (default: 5)",
    )
    parser.add_argument(
        "--repeats", type=int, default=3,
        help="timing repetitions; the best run is compared (default: 3)",
    )
    parser.add_argument(
        "--output", metavar="FILE", default=None,
        help="write the timing report as JSON",
    )
    args = parser.parse_args(argv)

    target = _REPO / "src"
    timings: list[float] = []
    report = None
    for _ in range(max(args.repeats, 1)):
        start = time.perf_counter()
        report = lint_paths([target], root=_REPO)
        timings.append(time.perf_counter() - start)
    assert report is not None
    best = min(timings)

    doc = {
        "files_checked": report.files_checked,
        "violations": len(report.violations),
        "suppressed": report.suppressed,
        "budget_s": args.budget,
        "best_s": best,
        "all_s": timings,
        "ok": best <= args.budget and report.clean,
    }
    print(f"sparcle lint src/: {report.files_checked} files in {best:.3f}s "
          f"(budget {args.budget:.1f}s), {len(report.violations)} violations")
    if args.output:
        Path(args.output).write_text(json.dumps(doc, indent=2) + "\n")
        print(f"wrote {args.output}")
    if not report.clean:
        print("FAIL: lint found violations; the tree must stay clean",
              file=sys.stderr)
        return 1
    if best > args.budget:
        print(f"FAIL: lint took {best:.3f}s > budget {args.budget:.1f}s",
              file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
