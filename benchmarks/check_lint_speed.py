#!/usr/bin/env python
"""Verify the full-repo ``sparcle lint`` pass stays fast enough to gate PRs.

The static-analysis pass is only viable as a per-PR CI gate if it is
cheap; this script turns that requirement into two checkable bounds,
matching how the engine actually runs:

* **uncached** — lint the entire ``src/`` tree from scratch (per-file
  rules *and* the SPC007–SPC010 whole-program analyses) within
  ``--budget`` seconds (default 10);
* **cached** — repeat the same run against a warm on-disk facts cache
  within ``--cached-budget`` seconds (default 5).  The cache is keyed
  by file mtime/size, so this is the cost of an incremental re-lint.

The measured runs also re-assert the acceptance invariant that the tree
is clean with an **empty** baseline, so a regression in speed,
cleanliness, or cache correctness (a warm run must report the same
findings) fails the same smoke step.

Usage::

    PYTHONPATH=src python benchmarks/check_lint_speed.py
    PYTHONPATH=src python benchmarks/check_lint_speed.py --budget 10 \
        --cached-budget 5 --output lint_speed.json
"""

from __future__ import annotations

import argparse
import json
import sys
import tempfile
import time
from pathlib import Path

_HERE = Path(__file__).resolve().parent
_REPO = _HERE.parent
if str(_REPO / "src") not in sys.path:
    sys.path.insert(0, str(_REPO / "src"))

from repro.devtools import lint_paths  # noqa: E402


def _timed_runs(repeats: int, cache_path: Path | None) -> tuple[list[float], object]:
    timings: list[float] = []
    report = None
    for _ in range(max(repeats, 1)):
        start = time.perf_counter()
        report = lint_paths(
            [_REPO / "src"], root=_REPO, cache_path=cache_path
        )
        timings.append(time.perf_counter() - start)
    assert report is not None
    return timings, report


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--budget", type=float, default=10.0,
        help="maximum uncached wall-clock seconds (default: 10)",
    )
    parser.add_argument(
        "--cached-budget", type=float, default=5.0,
        help="maximum warm-cache wall-clock seconds (default: 5)",
    )
    parser.add_argument(
        "--repeats", type=int, default=3,
        help="timing repetitions per phase; best run is compared (default: 3)",
    )
    parser.add_argument(
        "--output", metavar="FILE", default=None,
        help="write the timing report as JSON",
    )
    args = parser.parse_args(argv)

    cold_timings, cold_report = _timed_runs(args.repeats, cache_path=None)
    cold_best = min(cold_timings)

    with tempfile.TemporaryDirectory(prefix="sparcle-lint-cache-") as tmp:
        cache_path = Path(tmp) / "lint-cache.json"
        # Prime the cache, then time warm runs only.
        lint_paths([_REPO / "src"], root=_REPO, cache_path=cache_path)
        warm_timings, warm_report = _timed_runs(
            args.repeats, cache_path=cache_path
        )
    warm_best = min(warm_timings)

    same_findings = (
        [v.to_dict() for v in cold_report.violations]
        == [v.to_dict() for v in warm_report.violations]
        and cold_report.suppressed == warm_report.suppressed
    )

    ok = (
        cold_best <= args.budget
        and warm_best <= args.cached_budget
        and cold_report.clean
        and same_findings
    )
    doc = {
        "files_checked": cold_report.files_checked,
        "violations": len(cold_report.violations),
        "suppressed": cold_report.suppressed,
        "budget_s": args.budget,
        "cached_budget_s": args.cached_budget,
        "uncached_best_s": cold_best,
        "uncached_all_s": cold_timings,
        "cached_best_s": warm_best,
        "cached_all_s": warm_timings,
        "cache_findings_match": same_findings,
        "ok": ok,
    }
    print(
        f"sparcle lint src/: {cold_report.files_checked} files — "
        f"uncached {cold_best:.3f}s (budget {args.budget:.1f}s), "
        f"cached {warm_best:.3f}s (budget {args.cached_budget:.1f}s), "
        f"{len(cold_report.violations)} violations"
    )
    if args.output:
        Path(args.output).write_text(json.dumps(doc, indent=2) + "\n")
        print(f"wrote {args.output}")
    if not cold_report.clean:
        print("FAIL: lint found violations; the tree must stay clean",
              file=sys.stderr)
        return 1
    if not same_findings:
        print("FAIL: warm-cache run reported different findings",
              file=sys.stderr)
        return 1
    if cold_best > args.budget:
        print(
            f"FAIL: uncached lint took {cold_best:.3f}s > budget "
            f"{args.budget:.1f}s",
            file=sys.stderr,
        )
        return 1
    if warm_best > args.cached_budget:
        print(
            f"FAIL: cached lint took {warm_best:.3f}s > budget "
            f"{args.cached_budget:.1f}s",
            file=sys.stderr,
        )
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
