"""Benchmark/reproduction of Fig. 11 — rate CDFs on the 8-NCP star."""

from __future__ import annotations

import pytest

from repro.experiments import fig11_cdf
from repro.utils.stats import empirical_cdf_at


def test_fig11_cdfs(reproduce):
    result = reproduce(fig11_cdf.run, trials=30)
    rows = {(row[0], row[1]): row[2] for row in result.rows}
    # (a) NCP-bottleneck: SPARCLE and GS coincide.
    assert rows[("ncp-bottleneck", "SPARCLE")] == pytest.approx(
        rows[("ncp-bottleneck", "GS")], rel=1e-6
    )
    # (b) link-bottleneck: the dynamic ranking clearly wins over GS/GRand.
    assert rows[("link-bottleneck", "SPARCLE")] > 1.25 * rows[
        ("link-bottleneck", "GS")
    ]
    # (c) balanced: SPARCLE leads every baseline (paper: +82/69/22/17/8%).
    for rival in ("Random", "T-Storm", "GS", "GRand", "VNE"):
        assert rows[("balanced", "SPARCLE")] > rows[("balanced", rival)], rival
    # CDF shape check (Fig. 11b): SPARCLE's mass sits to the right — its
    # fraction of low-rate outcomes is no larger than any baseline's.
    sparcle_rates = result.series["link-bottleneck/SPARCLE"]
    threshold = sorted(sparcle_rates)[len(sparcle_rates) // 4]
    for rival in ("Random", "T-Storm", "GS", "GRand"):
        rival_rates = result.series[f"link-bottleneck/{rival}"]
        assert empirical_cdf_at(sparcle_rates, threshold) <= empirical_cdf_at(
            rival_rates, threshold
        ) + 1e-9, rival
