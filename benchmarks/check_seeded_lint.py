#!/usr/bin/env python
"""Self-test: every whole-program analysis must fire on its fixture.

A whole-program analysis can die silently — a scope suffix that no
longer matches, an extractor that returns nothing, a resolver change
that drops every call edge — and the tree keeps linting "clean".  This
script guards against that: it lints the committed seeded-violation
fixture tree (``tests/devtools/fixtures/seeded/``, a miniature of the
serving stack with one deliberate bug per analysis) and fails unless
each of SPC007–SPC010 reports at least one violation.

Usage::

    PYTHONPATH=src python benchmarks/check_seeded_lint.py
    PYTHONPATH=src python benchmarks/check_seeded_lint.py --output seeded.json
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

_HERE = Path(__file__).resolve().parent
_REPO = _HERE.parent
if str(_REPO / "src") not in sys.path:
    sys.path.insert(0, str(_REPO / "src"))

from repro.devtools import DEFAULT_ANALYSES, lint_paths  # noqa: E402

FIXTURES = _REPO / "tests" / "devtools" / "fixtures" / "seeded"


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--output", metavar="FILE", default=None,
        help="write the per-analysis firing counts as JSON",
    )
    args = parser.parse_args(argv)

    report = lint_paths([FIXTURES], root=_REPO)
    counts = {analysis.rule_id: 0 for analysis in DEFAULT_ANALYSES}
    for violation in report.violations:
        if violation.rule_id in counts:
            counts[violation.rule_id] += 1
    missing = sorted(rid for rid, n in counts.items() if n == 0)

    doc = {
        "fixtures": str(FIXTURES.relative_to(_REPO)),
        "files_checked": report.files_checked,
        "violations": len(report.violations),
        "per_analysis": counts,
        "errors": [e.to_dict() for e in report.errors],
        "ok": not missing and not report.errors,
    }
    for rule_id, count in sorted(counts.items()):
        print(f"{rule_id}: fired {count}x on the seeded fixtures")
    if args.output:
        Path(args.output).write_text(json.dumps(doc, indent=2) + "\n")
        print(f"wrote {args.output}")
    if report.errors:
        for error in report.errors:
            print(f"FAIL: fixture error {error.file}: {error.message}",
                  file=sys.stderr)
        return 1
    if missing:
        print(
            f"FAIL: analyses never fired on their seeded fixtures: "
            f"{', '.join(missing)} — a silently-dead analysis",
            file=sys.stderr,
        )
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
