"""Ablation A8 — FIFO vs processor-sharing service at the elements.

The stable-rate bound is discipline-agnostic (work conservation), but the
latency profile is not: PS lets long and short stages share, FIFO serializes
them.  This ablation measures delivered throughput (should match) and mean
latency (should differ) for the same placement at the same load.
"""

from __future__ import annotations

import pytest

from repro.core.assignment import sparcle_assign
from repro.core.network import star_network
from repro.core.taskgraph import diamond_task_graph
from repro.simulator import StreamSimulator
from repro.utils.tables import format_table


def _measure() -> dict[str, tuple[float, float]]:
    graph = diamond_task_graph(
        cpu_per_ct=[1000.0, 4000.0, 1000.0, 4000.0, 2000.0, 2000.0],
        megabits_per_tt=3.0,
    ).with_pins({"ct1": "ncp1", "ct8": "ncp2"})
    network = star_network(7, hub_cpu=10000.0, leaf_cpu=5000.0,
                           link_bandwidth=40.0)
    result = sparcle_assign(graph, network)
    rate = result.rate * 0.85
    horizon = 400.0 / rate
    out: dict[str, tuple[float, float]] = {}
    for discipline in ("fifo", "ps"):
        sim = StreamSimulator(
            network, result.placement, rate, discipline=discipline
        )
        report = sim.run(horizon, warmup=horizon * 0.1)
        out[discipline] = (report.throughput, report.mean_latency)
    out["__rate__"] = (rate, 0.0)
    return out


def test_ablation_discipline(benchmark, capsys):
    measured = benchmark.pedantic(_measure, rounds=1, iterations=1)
    rate = measured.pop("__rate__")[0]
    rows = [
        [discipline, throughput, latency]
        for discipline, (throughput, latency) in measured.items()
    ]
    with capsys.disabled():
        print()
        print(format_table(
            ["discipline", "throughput", "mean_latency"], rows,
            title=f"[A8] service discipline at 85% load (offered {rate:.3f})",
        ))
    # Throughput identical (work conservation)...
    assert measured["fifo"][0] == pytest.approx(measured["ps"][0], rel=0.05)
    assert measured["fifo"][0] == pytest.approx(rate, rel=0.07)
    # ...latency profile differs measurably between the disciplines.
    assert measured["fifo"][1] != pytest.approx(measured["ps"][1], rel=0.02)