"""Extension benchmark — QoE robustness across failure probabilities."""

from __future__ import annotations

from repro.experiments import robustness


def test_robustness_sweep(reproduce):
    result = reproduce(robustness.run)
    by_pf: dict[float, list] = {}
    headers = list(result.headers)
    for row in result.rows:
        by_pf.setdefault(row[0], []).append(row)
    be_col = headers.index("be_availability")
    gr_col = headers.index("gr_min_rate_availability")
    er_col = headers.index("expected_rate")
    for pf, rows in by_pf.items():
        be = [row[be_col] for row in rows]
        gr = [row[gr_col] for row in rows]
        expected = [row[er_col] for row in rows]
        # Availability and expected rate grow monotonically with paths.
        assert be == sorted(be), pf
        assert gr == sorted(gr), pf
        assert expected == sorted(expected), pf
        # One path can never satisfy R > r1 (Eq. 7).
        assert gr[0] == 0.0, pf
    # Less reliable networks gain more availability from extra paths.
    gains = {
        pf: rows[-1][be_col] - rows[0][be_col] for pf, rows in by_pf.items()
    }
    ordered = sorted(gains)
    assert gains[ordered[0]] <= gains[ordered[-1]]
