#!/usr/bin/env python
"""Export sharded-control-plane throughput numbers to ``BENCH_shard.json``.

The benchmark pushes one pinned burst — ~85% of applications stay inside a
region, ~15% span regions — through three admission configurations over
the same 16-NCP full mesh:

* ``serial`` — one-at-a-time ``evaluate`` + ``commit`` on a single
  :class:`~repro.core.scheduler.SparcleScheduler` in gateway priority
  order (the pre-gateway behavior);
* ``federated-1`` — a :class:`~repro.service.shard.ShardCoordinator`
  over one shard (the control: decision-identical to a single gateway);
* ``federated-4`` — the coordinator over four region shards, with the
  cross-region minority brokered through two-phase reserve/commit.

The workload is **io_stall**: every candidate evaluation is preceded by a
fixed GIL-releasing stall (modeling the round trip to an external solver
or policy service).  Stalls overlap across each shard's worker threads,
so the federated speedup measures real concurrency — on a pure-Python
cpu-bound assigner a 1-core container could not show one honestly.

The CI gate (``--check``) asserts federated-4 is at least as fast as
serial (default ``--min-speedup`` 1.2) and that federated-1 admits the
same number of applications as serial whenever it recorded zero
conflicts (decision equivalence; the property suite proves the stronger
bit-for-bit claim).

Usage::

    PYTHONPATH=src python benchmarks/export_shard_bench.py
    PYTHONPATH=src python benchmarks/export_shard_bench.py --quick --check
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time
from pathlib import Path

_HERE = Path(__file__).resolve().parent
_REPO = _HERE.parent
for entry in (str(_REPO / "src"), str(_HERE)):
    if entry not in sys.path:
        sys.path.insert(0, entry)

from repro.core.assignment import sparcle_assign  # noqa: E402
from repro.core.network import fully_connected_network  # noqa: E402
from repro.core.scheduler import GRRequest, SparcleScheduler  # noqa: E402
from repro.core.taskgraph import linear_task_graph  # noqa: E402
from repro.service import AdmissionGateway, ShardCoordinator  # noqa: E402

#: Burst size, per-shard worker threads, and the region grain.
REQUESTS = 80
WORKERS = 4
N_SHARDS = 4
N_NCPS = 16
#: Simulated external-solver round trip per candidate evaluation.
STALL_MS = 40.0
#: Every CROSS_EVERY-th request pins its endpoints across two regions.
CROSS_EVERY = 7


class StallAssigner:
    """``sparcle_assign`` behind a fixed blocking stall.

    Models the per-request round trip to an external solver or policy
    service.  ``time.sleep`` releases the GIL, so concurrent evaluations
    overlap their stalls — exactly what a real remote call would do.
    """

    def __init__(self, stall_ms: float) -> None:
        self.stall_ms = stall_ms

    def __call__(self, graph, network, capacities=None):
        time.sleep(self.stall_ms / 1000.0)
        return sparcle_assign(graph, network, capacities)


def make_world(count: int):
    """The 16-NCP mesh, its 4-region zone map, and one pinned burst.

    Regions are four consecutive blocks of four NCPs.  Most requests pin
    source and sink inside one region (rotating over regions and member
    pairs); every :data:`CROSS_EVERY`-th request pins across two regions
    so the federated rows exercise the two-phase commit path without
    drowning in it.
    """
    network = fully_connected_network(
        N_NCPS, cpu=200000.0, link_bandwidth=500.0
    )
    ncps = sorted((ncp.name for ncp in network.ncps),
                  key=lambda n: int(n[3:]))
    per_region = N_NCPS // N_SHARDS
    zones = {name: index // per_region for index, name in enumerate(ncps)}
    regions = [ncps[r * per_region:(r + 1) * per_region]
               for r in range(N_SHARDS)]
    requests = []
    for index in range(count):
        if index % CROSS_EVERY == CROSS_EVERY - 1:
            r1, r2 = index % N_SHARDS, (index + 1) % N_SHARDS
            src = regions[r1][index % per_region]
            dst = regions[r2][(index + 2) % per_region]
        else:
            region = regions[index % N_SHARDS]
            src = region[index % per_region]
            dst = region[(index + 1) % per_region]
        graph = linear_task_graph(
            3, cpu_per_ct=[200.0, 300.0, 100.0],
            megabits_per_tt=[1.0, 0.8, 0.5, 0.5],
        )
        graph = graph.with_pins(
            {"source": src, "sink": dst}, name=f"bench{index}"
        )
        requests.append(
            GRRequest(f"bench{index}", graph, min_rate=0.02, max_paths=2)
        )
    return network, zones, requests


def run_serial(network, requests, assigner) -> dict:
    """One-at-a-time admission in gateway priority order."""
    scheduler = SparcleScheduler(network, assigner=assigner)
    ordered = AdmissionGateway.priority_order(requests)
    start = time.perf_counter()
    accepted = sum(
        bool(scheduler.commit(scheduler.evaluate(r)).accepted)
        for r in ordered
    )
    wall = time.perf_counter() - start
    return {
        "mode": "serial",
        "shards": 0,
        "workers": 0,
        "wall_s": wall,
        "requests_per_s": len(requests) / wall,
        "accepted": accepted,
        "cross_submitted": 0,
        "cross_conflicts": 0,
        "cross_serial_fallbacks": 0,
        "epochs": 0,
    }


def run_federated(network, zones, requests, assigner, *, n_shards: int,
                  workers: int) -> dict:
    """The full burst through a coordinator over ``n_shards`` shards."""
    effective_zones = (
        {name: zone % n_shards for name, zone in zones.items()}
        if n_shards > 1 else None
    )
    with ShardCoordinator(
        network, n_shards=n_shards, zones=effective_zones,
        assigner=assigner, workers=workers, executor="thread",
        max_queue_depth=len(requests),
    ) as coordinator:
        start = time.perf_counter()
        decisions = coordinator.process(requests)
        wall = time.perf_counter() - start
        stats = coordinator.stats
        epochs = coordinator.epoch
    return {
        "mode": f"federated-{n_shards}",
        "shards": n_shards,
        "workers": workers,
        "wall_s": wall,
        "requests_per_s": len(requests) / wall,
        "accepted": sum(bool(d and d.accepted) for d in decisions),
        "cross_submitted": stats.cross_submitted,
        "cross_conflicts": stats.cross_conflicts,
        "cross_serial_fallbacks": stats.cross_serial_fallbacks,
        "epochs": epochs,
    }


def run(count: int, workers: int, stall_ms: float) -> dict:
    """The full benchmark: serial, federated-1, federated-4."""
    assigner = StallAssigner(stall_ms)
    rows = []
    network, zones, requests = make_world(count)
    rows.append(run_serial(network, requests, assigner))
    for n_shards in (1, N_SHARDS):
        network, zones, requests = make_world(count)
        rows.append(run_federated(network, zones, requests, assigner,
                                  n_shards=n_shards, workers=workers))
    serial_rps = rows[0]["requests_per_s"]
    for row in rows:
        row["speedup_vs_serial"] = row["requests_per_s"] / serial_rps
    return {
        "benchmark": "shard",
        "requests": count,
        "workers": workers,
        "stall_ms": stall_ms,
        "n_shards": N_SHARDS,
        "cpu_count": os.cpu_count(),
        "workload": "io_stall",
        "rows": rows,
    }


def check(report: dict, min_speedup: float) -> list[str]:
    """CI gate: federation must pay off and decisions must agree."""
    failures = []
    rows = {row["mode"]: row for row in report["rows"]}
    serial = rows["serial"]
    federated = rows[f"federated-{report['n_shards']}"]
    if federated["requests_per_s"] < serial["requests_per_s"]:
        failures.append(
            f"{federated['mode']} is slower than serial "
            f"({federated['requests_per_s']:.1f} < "
            f"{serial['requests_per_s']:.1f} req/s)"
        )
    if federated["speedup_vs_serial"] < min_speedup:
        failures.append(
            f"{federated['mode']} speedup "
            f"{federated['speedup_vs_serial']:.2f}x < required "
            f"{min_speedup:.1f}x"
        )
    control = rows["federated-1"]
    if (control["cross_conflicts"] == 0
            and control["accepted"] != serial["accepted"]):
        failures.append(
            f"federated-1 accepted {control['accepted']} != serial "
            f"{serial['accepted']} with zero conflicts "
            f"(decision-equivalence violation)"
        )
    return failures


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--requests", type=int, default=REQUESTS)
    parser.add_argument("--workers", type=int, default=WORKERS)
    parser.add_argument("--stall-ms", type=float, default=STALL_MS)
    parser.add_argument(
        "--quick", action="store_true",
        help="CI smoke: 28 requests instead of the full burst",
    )
    parser.add_argument(
        "--check", action="store_true",
        help="exit non-zero unless the federated plan beats serial",
    )
    parser.add_argument("--min-speedup", type=float, default=1.2)
    parser.add_argument(
        "--out", default=str(_REPO / "BENCH_shard.json"),
        help="where to write the JSON report",
    )
    args = parser.parse_args(argv)
    count = 28 if args.quick else args.requests
    report = run(count, args.workers, args.stall_ms)
    Path(args.out).write_text(
        json.dumps(report, indent=2, sort_keys=True) + "\n"
    )
    for row in report["rows"]:
        print(
            f"  {row['mode']:14s} {row['requests_per_s']:8.1f} req/s  "
            f"accepted {row['accepted']:3d}  "
            f"cross {row['cross_submitted']:3d}  "
            f"conflicts {row['cross_conflicts']:3d}  "
            f"x{row['speedup_vs_serial']:.2f}"
        )
    print(f"wrote {args.out}")
    if args.check:
        failures = check(report, args.min_speedup)
        for failure in failures:
            print(f"FAIL: {failure}", file=sys.stderr)
        return 1 if failures else 0
    return 0


if __name__ == "__main__":
    sys.exit(main())
