"""Benchmark/reproduction of Fig. 9 — energy efficiency."""

from __future__ import annotations

from repro.experiments import fig9_energy


def test_fig9_energy_efficiency(reproduce):
    result = reproduce(fig9_energy.run, trials=30)
    rows = {(row[0], row[1]): row[2] for row in result.rows}
    # SPARCLE beats the network-oblivious baselines in every regime.
    for case in ("balanced", "ncp-bottleneck", "link-bottleneck"):
        for rival in ("Random", "T-Storm", "VNE"):
            assert rows[(case, "SPARCLE")] > rows[(case, rival)], (case, rival)
    # Paper: >53% over GS/GRand when links are the bottleneck.
    assert rows[("link-bottleneck", "SPARCLE")] > 1.53 * rows[
        ("link-bottleneck", "GS")
    ]
    assert rows[("link-bottleneck", "SPARCLE")] > 1.53 * rows[
        ("link-bottleneck", "GRand")
    ]
