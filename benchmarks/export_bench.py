#!/usr/bin/env python
"""Export baseline-vs-optimized assignment timings to ``BENCH_assignment.json``.

For every scenario in :data:`bench_scalability.SCENARIOS` this script times
the straight-line pre-optimization reference (``repro.core.reference.
reference_assign``) against the optimized ``sparcle_assign``, checks that
both return the *same decisions* (hosts, routes, rate, order), and writes a
JSON report with per-scenario ``baseline_ms`` / ``optimized_ms`` /
``speedup`` plus a ``repro.perf`` counter snapshot of the optimized runs.

Since PR 6 every scenario is additionally timed under the PR-1 dict route
kernel (``route_kernel("dict")``), recorded as ``dict_kernel_ms`` with
``kernel_speedup = dict_kernel_ms / optimized_ms`` — the apples-to-apples
measure of the CSR array kernel.  The :data:`NO_REFERENCE` scenarios
(dense-48x20, dense-96x29) are too large for the straight-line reference
altogether; there the dict-kernel run doubles as the decision-identity
check and ``baseline_ms`` / ``speedup`` are omitted.

Usage::

    PYTHONPATH=src python benchmarks/export_bench.py            # full run
    PYTHONPATH=src python benchmarks/export_bench.py --quick    # CI smoke
    PYTHONPATH=src python benchmarks/export_bench.py \
        --quick --min-speedup 3.0                               # CI perf gate
    PYTHONPATH=src python benchmarks/export_bench.py \
        --from-json .benchmarks.json                            # merge pytest
                                                                # -benchmark stats

``--min-speedup X`` fails the run (exit code 1) unless dense-24x14's
``kernel_speedup`` is at least ``X``; with ``--quick`` the gate scenario is
pulled back in (3 timing rounds) even though it is otherwise skipped.
``--min-small-speedup Y`` is the small-scenario non-regression gate: every
:data:`SMALL_GATE_IDS` scenario (the ones the default ``"auto"`` kernel
routes through the dict kernel because the CSR warm-up dominates) must
keep ``kernel_speedup >= Y`` — this is what catches a star-8-style
``kernel_speedup: 0.88`` regression sneaking back in.
``--from-json`` merges a pytest-benchmark ``--benchmark-json`` file (records
are matched on the ``bench_id`` tag added by ``benchmarks/conftest.py``)
into the report as ``pytest_benchmark_ms`` so both timing sources live in
one artifact.
"""

from __future__ import annotations

import argparse
import json
import statistics
import sys
import time
from pathlib import Path

_HERE = Path(__file__).resolve().parent
_REPO = _HERE.parent
for entry in (str(_REPO / "src"), str(_HERE)):
    if entry not in sys.path:
        sys.path.insert(0, entry)

from bench_scalability import SCENARIOS  # noqa: E402
from repro.core.assignment import sparcle_assign  # noqa: E402
from repro.core.reference import reference_assign  # noqa: E402
from repro.core.routing import resolve_route_kernel, route_kernel  # noqa: E402
from repro.perf import counters  # noqa: E402

#: Scenarios too slow for the CI smoke job (skipped under --quick).
HEAVY = {"dense-24x14", "dense-48x20", "dense-96x29"}

#: Scenarios where the straight-line reference itself is intractable: the
#: dict kernel is the decision-identity oracle and the timing baseline.
NO_REFERENCE = {"dense-48x20", "dense-96x29"}

#: The scenario the --min-speedup gate checks.
GATE_ID = "dense-24x14"

#: Small scenarios (below routing.SMALL_NETWORK_ELEMENTS) where "auto"
#: dispatches to the dict kernel; the --min-small-speedup gate holds
#: their kernel_speedup at ~parity so the CSR warm-up overhead can never
#: regress them again.
SMALL_GATE_IDS = ("star-8", "linear-graph-4", "linear-graph-8",
                  "linear-graph-16")


def _time_ms(fn, graph, network, rounds: int) -> tuple[float, object]:
    """Median wall-clock milliseconds over ``rounds`` runs, plus one result."""
    samples = []
    result = None
    for _ in range(rounds):
        start = time.perf_counter()
        result = fn(graph, network)
        samples.append((time.perf_counter() - start) * 1000.0)
    return statistics.median(samples), result


def _assert_same_decisions(bench_id: str, opt, ref, oracle: str) -> None:
    if (
        opt.placement.ct_hosts != ref.placement.ct_hosts
        or opt.placement.tt_routes != ref.placement.tt_routes
        or opt.rate != ref.rate
        or opt.placement_order != ref.placement_order
    ):
        raise SystemExit(
            f"decision mismatch on {bench_id!r}: optimized != {oracle}"
        )


def run(
    quick: bool,
    rounds: int,
    min_speedup: float | None = None,
    min_small_speedup: float | None = None,
) -> dict:
    scenarios = []
    counters.reset()
    for bench_id, build in SCENARIOS.items():
        gated = min_speedup is not None and bench_id == GATE_ID
        small_gated = (
            min_small_speedup is not None and bench_id in SMALL_GATE_IDS
        )
        if quick and bench_id in HEAVY and not gated:
            print(f"  {bench_id:<16} skipped (--quick)")
            continue
        graph, network = build()
        if quick:
            # Gate scenarios need a stable median even in smoke mode.
            n_rounds = 3 if (gated or small_gated) else 1
        else:
            # The NO_REFERENCE cases take seconds per dict-kernel round.
            n_rounds = min(rounds, 3) if bench_id in NO_REFERENCE else rounds

        with route_kernel("dict"):
            dict_ms, dict_result = _time_ms(
                sparcle_assign, graph, network, n_rounds
            )
        optimized_ms, opt = _time_ms(sparcle_assign, graph, network, n_rounds)
        _assert_same_decisions(bench_id, opt, dict_result, "dict kernel")
        kernel_speedup = (
            dict_ms / optimized_ms if optimized_ms > 0 else float("inf")
        )
        row = {
            "bench_id": bench_id,
            "n_ncps": len(network.ncp_names),
            "n_links": len(network.links),
            "n_cts": len(graph.cts),
            "n_tts": len(graph.tts),
            "resolved_kernel": resolve_route_kernel(network),
            "rate": opt.rate,
            "dict_kernel_ms": round(dict_ms, 3),
            "optimized_ms": round(optimized_ms, 3),
            "kernel_speedup": round(kernel_speedup, 2),
        }
        if bench_id in NO_REFERENCE:
            print(
                f"  {bench_id:<16} dict {dict_ms:11.1f} ms   "
                f"array {optimized_ms:8.1f} ms   "
                f"{kernel_speedup:5.1f}x (no reference)"
            )
        else:
            baseline_ms, ref = _time_ms(
                reference_assign, graph, network, n_rounds
            )
            _assert_same_decisions(bench_id, opt, ref, "reference")
            speedup = (
                baseline_ms / optimized_ms if optimized_ms > 0 else float("inf")
            )
            row["baseline_ms"] = round(baseline_ms, 3)
            row["speedup"] = round(speedup, 2)
            print(
                f"  {bench_id:<16} reference {baseline_ms:8.1f} ms   "
                f"dict {dict_ms:8.1f} ms   array {optimized_ms:8.1f} ms   "
                f"{speedup:5.1f}x / {kernel_speedup:4.1f}x"
            )
        scenarios.append(row)
    return {
        "benchmark": "sparcle_assign vs straight-line reference",
        "command": "PYTHONPATH=src python benchmarks/export_bench.py"
        + (" --quick" if quick else ""),
        "rounds": 1 if quick else rounds,
        "quick": quick,
        "scenarios": scenarios,
        "perf": counters.snapshot(),
    }


def check_min_speedup(report: dict, min_speedup: float) -> None:
    """Fail unless the gate scenario's kernel_speedup clears the bar."""
    rows = {row["bench_id"]: row for row in report["scenarios"]}
    gate = rows.get(GATE_ID)
    if gate is None:
        raise SystemExit(f"--min-speedup: gate scenario {GATE_ID!r} did not run")
    if gate["kernel_speedup"] < min_speedup:
        raise SystemExit(
            f"--min-speedup gate failed: {GATE_ID} array kernel is "
            f"{gate['kernel_speedup']:.2f}x vs the dict kernel "
            f"(required >= {min_speedup:.2f}x)"
        )
    print(
        f"min-speedup gate OK: {GATE_ID} {gate['kernel_speedup']:.2f}x "
        f">= {min_speedup:.2f}x"
    )


def check_min_small_speedup(report: dict, min_small_speedup: float) -> None:
    """Fail if any small (auto->dict) scenario regressed vs the dict kernel."""
    rows = {row["bench_id"]: row for row in report["scenarios"]}
    failures = []
    for bench_id in SMALL_GATE_IDS:
        row = rows.get(bench_id)
        if row is None:
            raise SystemExit(
                f"--min-small-speedup: scenario {bench_id!r} did not run"
            )
        if row["kernel_speedup"] < min_small_speedup:
            failures.append(f"{bench_id}={row['kernel_speedup']:.2f}x")
    if failures:
        raise SystemExit(
            "--min-small-speedup gate failed (required >= "
            f"{min_small_speedup:.2f}x vs the dict kernel): "
            + ", ".join(failures)
        )
    print(
        f"min-small-speedup gate OK: {', '.join(SMALL_GATE_IDS)} all >= "
        f"{min_small_speedup:.2f}x"
    )


def merge_pytest_benchmark(report: dict, json_path: Path) -> None:
    """Fold ``--benchmark-json`` medians into the report, keyed on bench_id."""
    payload = json.loads(json_path.read_text())
    by_id = {
        record.get("extra_info", {}).get("bench_id", record.get("name")): record
        for record in payload.get("benchmarks", [])
    }
    for scenario in report["scenarios"]:
        record = by_id.get(scenario["bench_id"])
        if record is not None:
            scenario["pytest_benchmark_ms"] = round(
                record["stats"]["median"] * 1000.0, 3
            )


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick", action="store_true",
        help="single round per scenario, skip the heaviest cases (CI smoke)",
    )
    parser.add_argument(
        "--rounds", type=int, default=5,
        help="timing rounds per scenario (median is reported; default 5)",
    )
    parser.add_argument(
        "--output", type=Path, default=_REPO / "BENCH_assignment.json",
        help="where to write the report (default: BENCH_assignment.json)",
    )
    parser.add_argument(
        "--from-json", type=Path, default=None,
        help="pytest-benchmark --benchmark-json file to merge into the report",
    )
    parser.add_argument(
        "--min-speedup", type=float, default=None,
        help=f"fail unless {GATE_ID}'s kernel_speedup (dict kernel vs array "
        "kernel) reaches this factor; forces the gate scenario to run even "
        "under --quick",
    )
    parser.add_argument(
        "--min-small-speedup", type=float, default=None,
        help="fail unless every small scenario (star-8, linear-graph-*) "
        "keeps kernel_speedup at least this factor — the auto-kernel "
        "small-network non-regression gate",
    )
    args = parser.parse_args(argv)
    if args.rounds < 1:
        parser.error("--rounds must be >= 1")
    if args.from_json is not None and not args.from_json.is_file():
        parser.error(f"--from-json file not found: {args.from_json}")

    print(f"timing {len(SCENARIOS)} scenarios "
          f"({'quick' if args.quick else f'{args.rounds} rounds'}):")
    report = run(args.quick, args.rounds, args.min_speedup,
                 args.min_small_speedup)
    if args.from_json is not None:
        merge_pytest_benchmark(report, args.from_json)
    args.output.write_text(json.dumps(report, indent=2) + "\n")
    print(f"wrote {args.output}")
    if args.min_speedup is not None:
        check_min_speedup(report, args.min_speedup)
    if args.min_small_speedup is not None:
        check_min_small_speedup(report, args.min_small_speedup)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
