"""Ablation A2 — Algorithm 1 (widest path) vs hop-count routing.

Identical CT->NCP maps (from SPARCLE's assignment), rerouted two ways on a
fully connected network where alternative paths exist.  Widest-path routing
should never lose and should win when links are the bottleneck.
"""

from __future__ import annotations

from repro.core.assignment import fixed_placement, sparcle_assign
from repro.core.placement import CapacityView
from repro.utils.rng import spawn_rngs
from repro.utils.stats import mean
from repro.utils.tables import format_table
from repro.workloads.scenarios import (
    BottleneckCase,
    GraphKind,
    TopologyKind,
    make_scenario,
)

TRIALS = 25


def _sweep() -> list[list[object]]:
    rows = []
    for case in (BottleneckCase.LINK, BottleneckCase.BALANCED):
        widest_rates, hop_rates = [], []
        for rng in spawn_rngs(102, TRIALS):
            scenario = make_scenario(
                case, GraphKind.DIAMOND, TopologyKind.FULL, rng, n_ncps=6
            )
            graph, network = scenario.graph, scenario.network
            hosts = dict(sparcle_assign(graph, network).placement.ct_hosts)
            widest_rates.append(
                fixed_placement(graph, network, hosts, CapacityView(network),
                                router="widest").rate
            )
            hop_rates.append(
                fixed_placement(graph, network, hosts, CapacityView(network),
                                router="hops").rate
            )
        rows.append([case.value, "widest", mean(widest_rates)])
        rows.append([case.value, "hops", mean(hop_rates)])
    return rows


def test_ablation_routing(benchmark, capsys):
    rows = benchmark.pedantic(_sweep, rounds=1, iterations=1)
    with capsys.disabled():
        print()
        print(format_table(["case", "router", "mean_rate"], rows,
                           title="[A2] routing ablation"))
    means = {(row[0], row[1]): row[2] for row in rows}
    for case in ("link-bottleneck", "balanced"):
        assert means[(case, "widest")] >= means[(case, "hops")] * 0.999, case
    # With scarce bandwidth, load-aware routing is decisively better.
    assert means[("link-bottleneck", "widest")] > 1.1 * means[
        ("link-bottleneck", "hops")
    ]
