"""Ablation A1 — what does each ingredient of Algorithm 2 buy?

Three schedulers share the identical placement machinery and differ only in
how CTs are ordered and how hosts are scored:

* **dynamic** — SPARCLE: re-rank every round with the full gamma;
* **static-full** — GS order (descending requirement) but full-gamma host
  scoring (isolates the *ordering* contribution);
* **static-compute** — the paper's GS: static order, NCP-only host scoring
  (isolates the *link-awareness* contribution).

Swept across the three bottleneck regimes; the link-aware host scoring
should matter most in the link-bottleneck regime, the dynamic ordering
should never hurt.
"""

from __future__ import annotations

from repro.core.assignment import (
    greedy_assign_with_order,
    iter_orders_by_requirement,
    sparcle_assign,
)
from repro.core.placement import CapacityView
from repro.utils.rng import spawn_rngs
from repro.utils.stats import mean
from repro.utils.tables import format_table
from repro.workloads.scenarios import (
    BottleneckCase,
    GraphKind,
    TopologyKind,
    make_scenario,
)

TRIALS = 25


def _sweep() -> list[list[object]]:
    rows = []
    for case in BottleneckCase:
        scores = {"dynamic": [], "static-full": [], "static-compute": []}
        for rng in spawn_rngs(101, TRIALS):
            scenario = make_scenario(
                case, GraphKind.DIAMOND, TopologyKind.STAR, rng, n_ncps=8
            )
            graph, network = scenario.graph, scenario.network
            order = iter_orders_by_requirement(
                graph, set(graph.resources()) | set(network.resources())
            )
            scores["dynamic"].append(sparcle_assign(graph, network).rate)
            scores["static-full"].append(
                greedy_assign_with_order(
                    graph, network, order, CapacityView(network),
                    consider_links=True,
                ).rate
            )
            scores["static-compute"].append(
                greedy_assign_with_order(
                    graph, network, order, CapacityView(network),
                    consider_links=False,
                ).rate
            )
        for variant, values in scores.items():
            rows.append([case.value, variant, mean(values)])
    return rows


def test_ablation_ranking(benchmark, capsys):
    rows = benchmark.pedantic(_sweep, rounds=1, iterations=1)
    with capsys.disabled():
        print()
        print(format_table(["case", "variant", "mean_rate"], rows,
                           title="[A1] ranking/host-scoring ablation"))
    means = {(row[0], row[1]): row[2] for row in rows}
    # Observed decomposition: link-aware host scoring is the decisive
    # ingredient (static-full >> static-compute under link scarcity); the
    # dynamic re-ranking adds a further win in the link-bottleneck regime
    # and is roughly neutral (within a few percent either way) elsewhere —
    # both are greedy heuristics, so small losses on some distributions
    # are expected.
    for case in BottleneckCase:
        dynamic = means[(case.value, "dynamic")]
        static_full = means[(case.value, "static-full")]
        static_compute = means[(case.value, "static-compute")]
        assert dynamic >= static_full * 0.93, case
        assert dynamic >= static_compute * 0.93, case
    link = BottleneckCase.LINK.value
    assert means[(link, "dynamic")] > means[(link, "static-full")]
    assert means[(link, "static-full")] > 1.2 * means[(link, "static-compute")]
