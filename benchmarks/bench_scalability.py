"""Ablation A4 — scheduler runtime vs problem size (Theorem 2).

Algorithm 2 is O(|N|^3 |C|^3) worst case; these micro-benchmarks time a
single assignment across growing networks and task graphs so regressions in
the inner loops (gamma evaluation, widest-path memoization) show up.
Unlike the figure reproductions these use real repeated timing rounds.
"""

from __future__ import annotations

import pytest

from repro.core.assignment import sparcle_assign
from repro.core.network import star_network
from repro.core.taskgraph import linear_task_graph
from repro.workloads.scenarios import GraphKind, TopologyKind, random_network, random_task_graph


@pytest.mark.parametrize("n_ncps", [8, 16, 32])
def test_assignment_scales_with_network(benchmark, n_ncps):
    network = random_network(TopologyKind.STAR, 200 + n_ncps, n_ncps=n_ncps)
    graph = random_task_graph(GraphKind.DIAMOND, 300 + n_ncps)
    graph = graph.with_pins({"ct1": network.ncp_names[1], "ct8": network.ncp_names[2]})
    result = benchmark(sparcle_assign, graph, network)
    assert result.rate > 0


@pytest.mark.parametrize("n_cts", [4, 8, 16])
def test_assignment_scales_with_task_graph(benchmark, n_cts):
    network = star_network(9, hub_cpu=8000.0, leaf_cpu=4000.0, link_bandwidth=40.0)
    graph = linear_task_graph(
        n_cts, cpu_per_ct=1000.0, megabits_per_tt=2.0
    ).with_pins({"source": "ncp1", "sink": "ncp2"})
    result = benchmark(sparcle_assign, graph, network)
    assert result.rate > 0


def test_full_connectivity_worst_case(benchmark):
    """Dense networks exercise the widest-path search hardest."""
    network = random_network(TopologyKind.FULL, 205, n_ncps=12)
    graph = random_task_graph(GraphKind.DIAMOND, 305)
    graph = graph.with_pins({"ct1": network.ncp_names[0], "ct8": network.ncp_names[1]})
    result = benchmark(sparcle_assign, graph, network)
    assert result.rate > 0
