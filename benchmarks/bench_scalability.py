"""Ablation A4 — scheduler runtime vs problem size (Theorem 2).

Algorithm 2 is O(|N|^3 |C|^3) worst case; these micro-benchmarks time a
single assignment across growing networks and task graphs so regressions in
the inner loops (gamma evaluation, widest-path memoization) show up.
Unlike the figure reproductions these use real repeated timing rounds.

The scenario builders are module-level and keyed by a stable ``bench id``
(:data:`SCENARIOS`) so ``benchmarks/export_bench.py`` can time the exact
same instances against the straight-line reference implementation, and so
``--benchmark-json`` output (tagged with ``bench_id`` by ``conftest.py``)
can be merged into ``BENCH_assignment.json``.
"""

from __future__ import annotations

import pytest

from repro.core.assignment import sparcle_assign
from repro.core.network import Network, star_network
from repro.core.taskgraph import TaskGraph, diamond_chain_task_graph, linear_task_graph
from repro.workloads.scenarios import GraphKind, TopologyKind, random_network, random_task_graph


def star_case(n_ncps: int) -> tuple[TaskGraph, Network]:
    """Random diamond app on a star network of ``n_ncps`` NCPs."""
    network = random_network(TopologyKind.STAR, 200 + n_ncps, n_ncps=n_ncps)
    graph = random_task_graph(GraphKind.DIAMOND, 300 + n_ncps)
    graph = graph.with_pins({"ct1": network.ncp_names[1], "ct8": network.ncp_names[2]})
    return graph, network


def linear_graph_case(n_cts: int) -> tuple[TaskGraph, Network]:
    """Linear app of ``n_cts`` compute CTs on a fixed 9-NCP star."""
    network = star_network(9, hub_cpu=8000.0, leaf_cpu=4000.0, link_bandwidth=40.0)
    graph = linear_task_graph(
        n_cts, cpu_per_ct=1000.0, megabits_per_tt=2.0
    ).with_pins({"source": "ncp1", "sink": "ncp2"})
    return graph, network


def full_connectivity_case() -> tuple[TaskGraph, Network]:
    """Random diamond app on a fully connected 12-NCP network."""
    network = random_network(TopologyKind.FULL, 205, n_ncps=12)
    graph = random_task_graph(GraphKind.DIAMOND, 305)
    graph = graph.with_pins({"ct1": network.ncp_names[0], "ct8": network.ncp_names[1]})
    return graph, network


def dense_deep_case() -> tuple[TaskGraph, Network]:
    """24 fully connected NCPs (276 links) x a 14-CT diamond-chain pipeline.

    The deepest case in the suite: every gamma round probes many placed CTs
    across a dense network, so this is where the batched widest-path trees
    and incremental invalidation pay off the most.
    """
    network = random_network(TopologyKind.FULL, 211, n_ncps=24)
    graph = diamond_chain_task_graph(4, cpu_per_ct=400.0, megabits_per_tt=2.0)
    graph = graph.with_pins(
        {"source": network.ncp_names[0], "sink": network.ncp_names[1]}
    )
    return graph, network


def dense_wide_case() -> tuple[TaskGraph, Network]:
    """48 fully connected NCPs (1128 links) x a 20-CT diamond-chain pipeline.

    Headroom case for the CSR array kernel: the straight-line reference is
    far too slow here, so ``export_bench.py`` times the dict kernel against
    the array kernel instead (see its ``NO_REFERENCE`` set).
    """
    network = random_network(TopologyKind.FULL, 248, n_ncps=48)
    graph = diamond_chain_task_graph(6, cpu_per_ct=400.0, megabits_per_tt=2.0)
    graph = graph.with_pins(
        {"source": network.ncp_names[0], "sink": network.ncp_names[1]}
    )
    return graph, network


def dense_huge_case() -> tuple[TaskGraph, Network]:
    """96 fully connected NCPs (4560 links) x a 29-CT diamond-chain pipeline.

    The largest case on record (diamond chains have 3k+2 CTs, so 29 is the
    nearest size to the nominal 28).  Array-kernel only in practice; the
    dict kernel is timed as the comparison baseline.
    """
    network = random_network(TopologyKind.FULL, 296, n_ncps=96)
    graph = diamond_chain_task_graph(9, cpu_per_ct=400.0, megabits_per_tt=2.0)
    graph = graph.with_pins(
        {"source": network.ncp_names[0], "sink": network.ncp_names[1]}
    )
    return graph, network


#: bench id -> scenario builder, shared with ``export_bench.py``.
SCENARIOS = {
    "star-8": lambda: star_case(8),
    "star-16": lambda: star_case(16),
    "star-32": lambda: star_case(32),
    "linear-graph-4": lambda: linear_graph_case(4),
    "linear-graph-8": lambda: linear_graph_case(8),
    "linear-graph-16": lambda: linear_graph_case(16),
    "full-12": full_connectivity_case,
    "dense-24x14": dense_deep_case,
    "dense-48x20": dense_wide_case,
    "dense-96x29": dense_huge_case,
}


@pytest.mark.parametrize("n_ncps", [8, 16, 32])
def test_assignment_scales_with_network(benchmark, n_ncps):
    benchmark.extra_info["bench_id"] = f"star-{n_ncps}"
    graph, network = star_case(n_ncps)
    result = benchmark(sparcle_assign, graph, network)
    assert result.rate > 0


@pytest.mark.parametrize("n_cts", [4, 8, 16])
def test_assignment_scales_with_task_graph(benchmark, n_cts):
    benchmark.extra_info["bench_id"] = f"linear-graph-{n_cts}"
    graph, network = linear_graph_case(n_cts)
    result = benchmark(sparcle_assign, graph, network)
    assert result.rate > 0


def test_full_connectivity_worst_case(benchmark):
    """Dense networks exercise the widest-path search hardest."""
    benchmark.extra_info["bench_id"] = "full-12"
    graph, network = full_connectivity_case()
    result = benchmark(sparcle_assign, graph, network)
    assert result.rate > 0


def test_dense_network_deep_graph(benchmark):
    """The dense x deep stress case (see :func:`dense_deep_case`)."""
    benchmark.extra_info["bench_id"] = "dense-24x14"
    graph, network = dense_deep_case()
    result = benchmark(sparcle_assign, graph, network)
    assert result.rate > 0


@pytest.mark.parametrize(
    "bench_id", ["dense-48x20", "dense-96x29"]
)
def test_dense_headroom_cases(benchmark, bench_id):
    """The array-kernel headroom cases (see the ``dense_*`` builders)."""
    benchmark.extra_info["bench_id"] = bench_id
    graph, network = SCENARIOS[bench_id]()
    result = benchmark.pedantic(
        sparcle_assign, args=(graph, network), rounds=3, iterations=1
    )
    assert result.rate > 0
