"""Benchmark/reproduction of Fig. 12 — multiple resource types."""

from __future__ import annotations

from repro.experiments import fig12_multiresource


def test_fig12_multiresource(reproduce):
    result = reproduce(fig12_multiresource.run, trials=30)
    p75 = {(row[0], row[1]): row[3] for row in result.rows}
    # SPARCLE leads at the 75th percentile in both regimes (paper: GS and
    # VNE degrade drastically with a second resource type).
    for case in ("memory-bottleneck", "link-bottleneck"):
        for rival in ("GS", "VNE", "Random", "T-Storm", "GRand"):
            assert p75[(case, "SPARCLE")] >= p75[(case, rival)] * 0.98, (
                case, rival,
            )
