"""Ablation A6 — shared-medium vs full-duplex (directed) links.

Paper footnote 2 allows modelling links as directed when the two directions
do not share bandwidth.  This ablation quantifies the difference: the same
random scenarios scheduled on the undirected network and on its full-duplex
directed twin (:func:`repro.core.network.as_directed`).  Duplex capacity can
only help, and helps most when links are the bottleneck and traffic flows
both ways across them.
"""

from __future__ import annotations

from repro.core.assignment import sparcle_assign
from repro.core.network import as_directed
from repro.utils.rng import spawn_rngs
from repro.utils.stats import mean
from repro.utils.tables import format_table
from repro.workloads.scenarios import (
    BottleneckCase,
    GraphKind,
    TopologyKind,
    make_scenario,
)

TRIALS = 20


def _sweep() -> list[list[object]]:
    rows = []
    for case in (BottleneckCase.LINK, BottleneckCase.BALANCED):
        shared_rates, duplex_rates = [], []
        for rng in spawn_rngs(106, TRIALS):
            scenario = make_scenario(
                case, GraphKind.DIAMOND, TopologyKind.STAR, rng, n_ncps=8
            )
            shared_rates.append(
                sparcle_assign(scenario.graph, scenario.network).rate
            )
            duplex_rates.append(
                sparcle_assign(scenario.graph, as_directed(scenario.network)).rate
            )
        rows.append([case.value, "shared", mean(shared_rates)])
        rows.append([case.value, "full-duplex", mean(duplex_rates)])
    return rows


def test_ablation_duplex(benchmark, capsys):
    rows = benchmark.pedantic(_sweep, rounds=1, iterations=1)
    with capsys.disabled():
        print()
        print(format_table(["case", "links", "mean_rate"], rows,
                           title="[A6] shared vs full-duplex links"))
    means = {(row[0], row[1]): row[2] for row in rows}
    for case in ("link-bottleneck", "balanced"):
        assert means[(case, "full-duplex")] >= means[(case, "shared")] * 0.999, case
    # Duplex headroom matters most when links bind.
    assert means[("link-bottleneck", "full-duplex")] > 1.05 * means[
        ("link-bottleneck", "shared")
    ]
