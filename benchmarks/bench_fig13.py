"""Benchmark/reproduction of Fig. 13 — two-app proportional-fair utility."""

from __future__ import annotations

from repro.experiments import fig13_multiapp


def test_fig13_utility(reproduce):
    result = reproduce(fig13_multiapp.run, trials=30)
    rows = {row[0]: row[1] for row in result.rows}
    # SPARCLE's placements produce the best mean utility of Problem (4).
    assert rows["SPARCLE"] == max(rows.values())
    # The whole CDF should dominate the weakest baselines, not just the
    # mean: compare medians as well.
    sparcle = sorted(result.series["SPARCLE"])
    random_series = sorted(result.series["Random"])
    assert sparcle[len(sparcle) // 2] >= random_series[len(random_series) // 2]
