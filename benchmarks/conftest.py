"""Benchmark-suite configuration.

Every benchmark regenerates one of the paper's tables/figures (or an
ablation) through ``benchmark.pedantic`` with a single round — these are
experiment harnesses first and timing probes second — and prints the
reproduced rows so ``pytest benchmarks/ --benchmark-only -s`` doubles as
the paper-reproduction report.
"""

from __future__ import annotations

import pytest


def pytest_benchmark_update_json(config, benchmarks, output_json):
    """Tag every ``--benchmark-json`` record with a stable ``bench_id``.

    Benchmarks that set ``benchmark.extra_info["bench_id"]`` (the
    ``bench_scalability`` suite does) keep their id; everything else falls
    back to the test name.  ``benchmarks/export_bench.py --from-json`` keys
    on this id to merge pytest-benchmark timings into
    ``BENCH_assignment.json``.
    """
    for record in output_json.get("benchmarks", []):
        extra = record.setdefault("extra_info", {})
        extra.setdefault("bench_id", record.get("name", "unknown"))


@pytest.fixture
def reproduce(benchmark, capsys):
    """Run an experiment once under the benchmark clock and print its table."""

    def run(fn, *args, **kwargs):
        result = benchmark.pedantic(
            fn, args=args, kwargs=kwargs, rounds=1, iterations=1
        )
        if hasattr(result, "to_text"):
            with capsys.disabled():
                print()
                print(result.to_text())
        return result

    return run
