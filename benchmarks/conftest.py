"""Benchmark-suite configuration.

Every benchmark regenerates one of the paper's tables/figures (or an
ablation) through ``benchmark.pedantic`` with a single round — these are
experiment harnesses first and timing probes second — and prints the
reproduced rows so ``pytest benchmarks/ --benchmark-only -s`` doubles as
the paper-reproduction report.
"""

from __future__ import annotations

import pytest


@pytest.fixture
def reproduce(benchmark, capsys):
    """Run an experiment once under the benchmark clock and print its table."""

    def run(fn, *args, **kwargs):
        result = benchmark.pedantic(
            fn, args=args, kwargs=kwargs, rounds=1, iterations=1
        )
        if hasattr(result, "to_text"):
            with capsys.disabled():
                print()
                print(result.to_text())
        return result

    return run
