#!/usr/bin/env python
"""Export admission-gateway throughput/latency numbers to ``BENCH_gateway.json``.

The benchmark pushes one bursty arrival batch through three admission
configurations over the same network and request set:

* ``serial`` — one-at-a-time ``evaluate`` + ``commit`` in the gateway's
  priority order (the pre-gateway behavior);
* ``gateway-threads-N`` — the :class:`~repro.service.AdmissionGateway`
  with a thread pool of N workers;
* ``gateway-procs-N`` — the same with a process pool (true CPU
  parallelism, paid for with pickling/spawn overhead).

Each row records requests/sec, p50/p99 per-request admission latency, the
accepted count, and the gateway's conflict/fallback accounting.  For batch
modes the admission latency of a request is the time from burst start to
the end of the epoch that committed it — the latency an arriving
application actually observes.

**Workload modes.**  Algorithm-2 evaluation is pure Python, so thread
workers only overlap when evaluation blocks and process workers only help
with >1 CPU core.  To keep the benchmark meaningful on any machine, two
workloads are measured and labeled separately in the JSON:

* ``cpu_bound`` — the real :func:`sparcle_assign`, no artifice.  Speedup
  here is bounded by ``cpu_count`` (recorded in the report); on a 1-core
  container the parallel rows legitimately lose to serial, so the
  process-worker row (the ROADMAP's CI-optional multicore bench) is only
  emitted — and only gated by ``--check`` — when ``cpu_count > 1``.
* ``io_stall`` — the same assignment preceded by a fixed ``stall_ms``
  blocking wait, modeling an admission pipeline that calls out to an
  external solver/policy service per candidate (the common deployment
  shape for LP-based admission).  The stall releases the GIL, so thread
  workers overlap it and the measured speedup is real concurrency, not a
  simulation.

The CI gate (``--check``) asserts the io_stall gateway beats io_stall
serial by ``--min-speedup`` (default 2.0), that every mode admits the same
number of requests as serial when no conflicts were recorded, and — on
machines with ``cpu_count > 1`` only — that the cpu_bound process-worker
row is at least as fast as serial.

Usage::

    PYTHONPATH=src python benchmarks/export_gateway_bench.py
    PYTHONPATH=src python benchmarks/export_gateway_bench.py --quick --check
"""

from __future__ import annotations

import argparse
import json
import os
import statistics
import sys
import time
from pathlib import Path

_HERE = Path(__file__).resolve().parent
_REPO = _HERE.parent
for entry in (str(_REPO / "src"), str(_HERE)):
    if entry not in sys.path:
        sys.path.insert(0, entry)

from repro.core.assignment import sparcle_assign  # noqa: E402
from repro.core.network import fully_connected_network  # noqa: E402
from repro.core.scheduler import GRRequest, SparcleScheduler  # noqa: E402
from repro.core.taskgraph import linear_task_graph  # noqa: E402
from repro.service import AdmissionGateway  # noqa: E402

#: Default burst size (the ISSUE's 100-request burst) and worker count.
REQUESTS = 100
WORKERS = 4
#: Simulated external-solver round trip for the io_stall workload.
STALL_MS = 40.0


class StallAssigner:
    """``sparcle_assign`` behind a fixed blocking stall.

    Models the per-request round trip to an external solver or policy
    service.  ``time.sleep`` releases the GIL, so concurrent evaluations
    overlap their stalls — exactly what a real remote call would do.
    Picklable (plain attributes only) so it also works under a process
    pool.
    """

    def __init__(self, stall_ms: float) -> None:
        self.stall_ms = stall_ms

    def __call__(self, graph, network, capacities=None):
        time.sleep(self.stall_ms / 1000.0)
        return sparcle_assign(graph, network, capacities)


def make_burst(count: int) -> tuple:
    """A conflict-light GR burst over a 16-NCP full mesh.

    Endpoint pins rotate over the mesh and per-request rates are small, so
    commits rarely invalidate one another: the measurement is throughput,
    not conflict churn (the experiment and tests cover that separately).
    """
    network = fully_connected_network(16, cpu=200000.0, link_bandwidth=500.0)
    ncps = sorted(ncp.name for ncp in network.ncps)
    requests = []
    for index in range(count):
        src = ncps[index % len(ncps)]
        dst = ncps[(index + 7) % len(ncps)]
        graph = linear_task_graph(
            4,
            cpu_per_ct=[200.0, 300.0, 250.0, 100.0],
            megabits_per_tt=[1.0, 1.0, 0.8, 0.5, 0.5],
        )
        graph = graph.with_pins(
            {"source": src, "sink": dst}, name=f"bench{index}"
        )
        requests.append(
            GRRequest(f"bench{index}", graph, min_rate=0.02, max_paths=2)
        )
    return network, requests


def _percentiles(latencies: list[float]) -> tuple[float, float]:
    ordered = sorted(latencies)
    p50 = ordered[len(ordered) // 2]
    p99 = ordered[min(len(ordered) - 1, int(len(ordered) * 0.99))]
    return p50, p99


def run_serial(network, requests, assigner) -> dict:
    """One-at-a-time admission in the gateway's priority order."""
    scheduler = SparcleScheduler(network, assigner=assigner)
    ordered = AdmissionGateway.priority_order(requests)
    latencies = []
    start = time.perf_counter()
    accepted = 0
    for request in ordered:
        decision = scheduler.commit(scheduler.evaluate(request))
        latencies.append(time.perf_counter() - start)
        accepted += bool(decision.accepted)
    wall = time.perf_counter() - start
    p50, p99 = _percentiles(latencies)
    return {
        "mode": "serial",
        "workers": 0,
        "wall_s": wall,
        "requests_per_s": len(requests) / wall,
        "accepted": accepted,
        "p50_latency_s": p50,
        "p99_latency_s": p99,
        "conflicts": 0,
        "serial_fallbacks": 0,
        "overlap_commits": 0,
        "epochs": 0,
    }


def run_gateway(network, requests, assigner, *, workers: int,
                executor: str) -> dict:
    """Burst admission through the gateway; per-request latency by epoch."""
    scheduler = SparcleScheduler(network, assigner=assigner)
    gateway = AdmissionGateway(
        scheduler, workers=workers, executor=executor,
        max_queue_depth=len(requests),
    )
    with gateway:
        tickets = [gateway.submit(request) for request in requests]
        latencies: dict[int, float] = {}
        start = time.perf_counter()
        while gateway.queue_depth:
            gateway.run_epoch()
            epoch_end = time.perf_counter() - start
            for ticket in tickets:
                if ticket not in latencies and gateway.decision_for(ticket):
                    latencies[ticket] = epoch_end
        wall = time.perf_counter() - start
        decisions = [gateway.decision_for(ticket) for ticket in tickets]
    p50, p99 = _percentiles(list(latencies.values()))
    pool_label = {"thread": "threads", "process": "procs"}[executor]
    return {
        "mode": f"gateway-{pool_label}-{workers}",
        "workers": workers,
        "wall_s": wall,
        "requests_per_s": len(requests) / wall,
        "accepted": sum(bool(d and d.accepted) for d in decisions),
        "p50_latency_s": p50,
        "p99_latency_s": p99,
        "conflicts": gateway.stats.conflicts,
        "serial_fallbacks": gateway.stats.serial_fallbacks,
        "overlap_commits": gateway.stats.overlap_commits,
        "epochs": gateway.stats.epochs,
    }


def run(count: int, workers: int, stall_ms: float) -> dict:
    report: dict = {
        "benchmark": "gateway",
        "requests": count,
        "workers": workers,
        "stall_ms": stall_ms,
        "cpu_count": os.cpu_count(),
        "workloads": {},
    }
    for workload, assigner in (
        ("cpu_bound", sparcle_assign),
        ("io_stall", StallAssigner(stall_ms)),
    ):
        network, requests = make_burst(count)
        rows = [run_serial(network, requests, assigner)]
        network, requests = make_burst(count)
        rows.append(run_gateway(network, requests, assigner,
                                workers=workers, executor="thread"))
        if workload == "cpu_bound" and (os.cpu_count() or 1) > 1:
            # Process workers only pay off with real cores: the multicore
            # row is skipped on 1-core machines (where it can only lose)
            # and for the stall workload where threads tell the story.
            network, requests = make_burst(count)
            rows.append(run_gateway(network, requests, assigner,
                                    workers=workers, executor="process"))
        serial_rps = rows[0]["requests_per_s"]
        for row in rows:
            row["speedup_vs_serial"] = row["requests_per_s"] / serial_rps
        report["workloads"][workload] = rows
    return report


def check(report: dict, min_speedup: float) -> list[str]:
    """CI gate: concurrency must pay off and decisions must agree."""
    failures = []
    stall_rows = report["workloads"]["io_stall"]
    serial = next(r for r in stall_rows if r["mode"] == "serial")
    for row in stall_rows:
        if row["mode"] == "serial":
            continue
        if row["requests_per_s"] < serial["requests_per_s"]:
            failures.append(
                f"io_stall {row['mode']} is slower than serial "
                f"({row['requests_per_s']:.1f} < "
                f"{serial['requests_per_s']:.1f} req/s)"
            )
        if row["speedup_vs_serial"] < min_speedup:
            failures.append(
                f"io_stall {row['mode']} speedup "
                f"{row['speedup_vs_serial']:.2f}x < required "
                f"{min_speedup:.1f}x"
            )
    if (report["cpu_count"] or 1) > 1:
        # Multicore-only gate: with real cores the process pool must not
        # lose to serial on the cpu_bound workload.  1-core machines skip
        # both the row and this check (see run()).
        cpu_rows = report["workloads"]["cpu_bound"]
        cpu_serial = next(r for r in cpu_rows if r["mode"] == "serial")
        proc_rows = [r for r in cpu_rows if r["mode"].startswith("gateway-procs")]
        if not proc_rows:
            failures.append(
                f"cpu_bound: cpu_count={report['cpu_count']} but no "
                "process-worker row was benchmarked"
            )
        for row in proc_rows:
            if row["requests_per_s"] < cpu_serial["requests_per_s"]:
                failures.append(
                    f"cpu_bound {row['mode']} is slower than serial on a "
                    f"{report['cpu_count']}-core machine "
                    f"({row['requests_per_s']:.1f} < "
                    f"{cpu_serial['requests_per_s']:.1f} req/s)"
                )
    for workload, rows in report["workloads"].items():
        serial_accepted = next(
            r["accepted"] for r in rows if r["mode"] == "serial"
        )
        for row in rows:
            if row["conflicts"] == 0 and row["accepted"] != serial_accepted:
                failures.append(
                    f"{workload} {row['mode']}: accepted "
                    f"{row['accepted']} != serial {serial_accepted} with "
                    f"zero conflicts (decision-equivalence violation)"
                )
    return failures


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--requests", type=int, default=REQUESTS)
    parser.add_argument("--workers", type=int, default=WORKERS)
    parser.add_argument("--stall-ms", type=float, default=STALL_MS)
    parser.add_argument(
        "--quick", action="store_true",
        help="CI smoke: 40 requests instead of the full burst",
    )
    parser.add_argument(
        "--check", action="store_true",
        help="exit non-zero unless the parallel gateway beats serial",
    )
    parser.add_argument("--min-speedup", type=float, default=2.0)
    parser.add_argument(
        "--out", default=str(_REPO / "BENCH_gateway.json"),
        help="where to write the JSON report",
    )
    args = parser.parse_args(argv)
    count = 40 if args.quick else args.requests
    report = run(count, args.workers, args.stall_ms)
    Path(args.out).write_text(
        json.dumps(report, indent=2, sort_keys=True) + "\n"
    )
    for workload, rows in report["workloads"].items():
        print(f"[{workload}]")
        for row in rows:
            print(
                f"  {row['mode']:22s} {row['requests_per_s']:8.1f} req/s  "
                f"p50 {row['p50_latency_s'] * 1000:7.1f} ms  "
                f"p99 {row['p99_latency_s'] * 1000:7.1f} ms  "
                f"accepted {row['accepted']:3d}  "
                f"x{row['speedup_vs_serial']:.2f}"
            )
    print(f"wrote {args.out}")
    if args.check:
        failures = check(report, args.min_speedup)
        for failure in failures:
            print(f"FAIL: {failure}", file=sys.stderr)
        return 1 if failures else 0
    return 0


if __name__ == "__main__":
    sys.exit(main())
