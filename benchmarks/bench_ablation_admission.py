"""Ablation A7 — GR batch-admission ordering.

The paper admits applications in arrival order.  When a batch is known up
front, the admission sequence becomes a degree of freedom; the classic
knapsack intuition says small guarantees pack better.  This ablation
quantifies it on random batches: arrival vs smallest-first vs
largest-first, measured by accepted count and total guaranteed rate.
"""

from __future__ import annotations

from repro.core.scheduler import GRRequest, SparcleScheduler, admit_all_gr
from repro.core.assignment import sparcle_assign
from repro.utils.rng import spawn_rngs
from repro.utils.stats import mean
from repro.utils.tables import format_table
from repro.workloads.scenarios import (
    BottleneckCase,
    GraphKind,
    TopologyKind,
    make_scenario,
    random_task_graph,
)

TRIALS = 15
N_APPS = 8
#: Requested fractions of the reference rate — high enough to contend.
RATE_RANGE = (0.25, 0.9)
ORDERS = ("arrival", "smallest-first", "largest-first")


def _sweep() -> list[list[object]]:
    accepted: dict[str, list[float]] = {o: [] for o in ORDERS}
    totals: dict[str, list[float]] = {o: [] for o in ORDERS}
    for rng in spawn_rngs(107, TRIALS):
        scenario = make_scenario(
            BottleneckCase.BALANCED, GraphKind.DIAMOND, TopologyKind.STAR,
            rng, n_ncps=8,
        )
        reference = max(
            sparcle_assign(scenario.graph, scenario.network).rate, 1e-6
        )
        pins = {
            "source": scenario.graph.ct("ct1").pinned_host,
            "sink": scenario.graph.ct("ct8").pinned_host,
        }
        requests = []
        for index in range(N_APPS):
            graph = random_task_graph(GraphKind.LINEAR, rng).with_pins(
                pins, name=f"app{index}"
            )
            fraction = float(rng.uniform(*RATE_RANGE))
            requests.append(
                GRRequest(f"app{index}", graph,
                          min_rate=fraction * reference, max_paths=2)
            )
        for order in ORDERS:
            scheduler = SparcleScheduler(scenario.network)
            decisions, total = admit_all_gr(scheduler, requests, order=order)
            accepted[order].append(
                float(sum(1 for d in decisions if d.accepted))
            )
            totals[order].append(total)
    return [
        [order, mean(accepted[order]), mean(totals[order])] for order in ORDERS
    ]


def test_ablation_admission_order(benchmark, capsys):
    rows = benchmark.pedantic(_sweep, rounds=1, iterations=1)
    with capsys.disabled():
        print()
        print(format_table(
            ["order", "mean_accepted", "mean_total_rate"], rows,
            title="[A7] GR batch-admission ordering",
        ))
    stats = {row[0]: (row[1], row[2]) for row in rows}
    # Smallest-first admits at least as many apps as largest-first.
    assert stats["smallest-first"][0] >= stats["largest-first"][0] - 1e-9
    # Every policy admits something on these instances.
    for order in ORDERS:
        assert stats[order][0] > 0
