"""Extension benchmark — online GR arrivals/departures under churn.

Not a paper figure: extends Fig. 14's one-shot admission to a Poisson-like
arrival/departure process (using the scheduler's withdraw support).  The
assertion mirrors the Fig. 14 claim under churn: SPARCLE carries the most
guaranteed rate and accepts the largest share of offered applications.
"""

from __future__ import annotations

from repro.experiments import online_arrivals


def test_online_churn(reproduce):
    result = reproduce(online_arrivals.run, trials=6)
    rows = {row[0]: (row[1], row[2]) for row in result.rows}
    sparcle_acceptance, sparcle_carried = rows["SPARCLE"]
    for rival, (acceptance, carried) in rows.items():
        if rival == "SPARCLE":
            continue
        assert sparcle_carried >= carried, rival
        assert sparcle_acceptance >= acceptance - 0.05, rival
    assert sparcle_acceptance > 0.5
