#!/usr/bin/env python
"""Verify the disabled-tracer overhead stays below the advertised bound.

The observability layer promises that with tracing *disabled* (the
default) every instrumented call site costs one ``get_tracer()`` lookup
plus one ``enabled`` attribute check.  This script turns that promise
into a CI gate:

1. **Functional**: the process-wide tracer is disabled on import, a full
   assignment run under a disabled tracer records nothing, and a
   disabled ``event()``/``span()`` touches neither the buffer nor the
   drop counter.
2. **Quantified**: for every ``BENCH_assignment.json`` scenario the
   worst-case guard overhead is computed as::

       guard_hits x disabled_guard_cost / assignment_wall_time

   where ``guard_hits`` is the number of trace records an *enabled* run
   produces (every record implies one guard evaluation on the disabled
   path) and ``disabled_guard_cost`` is a microbenchmarked
   ``get_tracer()`` + ``enabled`` + early-return ``event()`` call.  The
   check fails when any scenario's bound exceeds ``--threshold``
   (default 5%).

Both measurements run in-process on the same machine, so the ratio is
stable where a wall-clock comparison against a previously committed
timing file would flake across CI hosts.

Usage::

    PYTHONPATH=src python benchmarks/check_overhead.py            # full
    PYTHONPATH=src python benchmarks/check_overhead.py --quick    # CI
"""

from __future__ import annotations

import argparse
import json
import statistics
import sys
import time
from pathlib import Path

_HERE = Path(__file__).resolve().parent
_REPO = _HERE.parent
for entry in (str(_REPO / "src"), str(_HERE)):
    if entry not in sys.path:
        sys.path.insert(0, entry)

from bench_scalability import SCENARIOS  # noqa: E402
from repro.core.assignment import sparcle_assign  # noqa: E402
from repro.perf import tracing  # noqa: E402
from repro.perf.tracing import Tracer, use_tracer  # noqa: E402

#: Scenarios too slow for the CI smoke job (mirrors export_bench.HEAVY).
HEAVY = {"dense-24x14"}

#: Iterations for the disabled-guard microbenchmark.
MICRO_ITERATIONS = 200_000


def check_functional() -> list[str]:
    """The off-by-default / zero-record guarantees; returns failures."""
    failures: list[str] = []
    if tracing.tracer.enabled:
        failures.append("process-wide tracer is enabled on import")
    probe = Tracer()
    probe.event("x", value=1)
    with probe.span("y"):
        pass
    if len(probe) != 0 or probe.dropped != 0:
        failures.append("disabled tracer buffered records or counted drops")
    graph, network = next(iter(SCENARIOS.values()))()
    silent = Tracer()
    with use_tracer(silent):
        sparcle_assign(graph, network)
    if len(silent) != 0:
        failures.append(
            f"disabled run recorded {len(silent)} trace records"
        )
    return failures


def disabled_guard_cost_s() -> float:
    """Median per-call cost of one disabled-path guard evaluation."""
    samples = []
    for _ in range(5):
        start = time.perf_counter()
        for _ in range(MICRO_ITERATIONS):
            tr = tracing.get_tracer()
            if tr.enabled:  # pragma: no cover - tracer is disabled
                tr.event("never")
            tr.event("early.return")
        samples.append((time.perf_counter() - start) / MICRO_ITERATIONS)
    return statistics.median(samples)


def measure_scenarios(quick: bool, rounds: int, guard_cost: float) -> list[dict]:
    results = []
    for bench_id, build in SCENARIOS.items():
        if quick and bench_id in HEAVY:
            print(f"  {bench_id:<16} skipped (--quick)")
            continue
        graph, network = build()
        # Guard evaluations on the disabled path == records an enabled
        # run emits from the same call sites.
        counting = Tracer()
        counting.enable()
        with use_tracer(counting):
            sparcle_assign(graph, network)
        guard_hits = len(counting) + counting.dropped

        samples = []
        for _ in range(1 if quick else rounds):
            start = time.perf_counter()
            sparcle_assign(graph, network)
            samples.append(time.perf_counter() - start)
        assignment_s = statistics.median(samples)
        overhead = (
            guard_hits * guard_cost / assignment_s if assignment_s > 0 else 0.0
        )
        results.append(
            {
                "bench_id": bench_id,
                "assignment_ms": round(assignment_s * 1000.0, 3),
                "guard_hits": guard_hits,
                "guard_cost_ns": round(guard_cost * 1e9, 1),
                "overhead_fraction": round(overhead, 6),
            }
        )
        print(
            f"  {bench_id:<16} {assignment_s * 1000.0:8.1f} ms   "
            f"{guard_hits:4d} guards   overhead {overhead * 100.0:6.3f}%"
        )
    return results


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick", action="store_true",
        help="single timing round per scenario, skip the heaviest cases",
    )
    parser.add_argument(
        "--rounds", type=int, default=5,
        help="timing rounds per scenario (median is used; default 5)",
    )
    parser.add_argument(
        "--threshold", type=float, default=0.05,
        help="maximum allowed disabled-tracer overhead fraction (default 0.05)",
    )
    parser.add_argument(
        "--output", type=Path, default=None,
        help="optionally write the measurements as JSON",
    )
    args = parser.parse_args(argv)

    failures = check_functional()
    for message in failures:
        print(f"FUNCTIONAL FAILURE: {message}")

    guard_cost = disabled_guard_cost_s()
    print(f"disabled guard cost: {guard_cost * 1e9:.1f} ns/call")
    print(f"checking {len(SCENARIOS)} scenarios "
          f"(threshold {args.threshold * 100.0:.1f}%):")
    results = measure_scenarios(args.quick, args.rounds, guard_cost)
    over = [
        r for r in results if r["overhead_fraction"] > args.threshold
    ]
    for r in over:
        print(
            f"OVERHEAD FAILURE: {r['bench_id']} at "
            f"{r['overhead_fraction'] * 100.0:.2f}% "
            f"(limit {args.threshold * 100.0:.1f}%)"
        )

    report = {
        "check": "disabled-tracer overhead",
        "threshold": args.threshold,
        "guard_cost_ns": round(guard_cost * 1e9, 1),
        "functional_failures": failures,
        "scenarios": results,
        "passed": not failures and not over,
    }
    if args.output is not None:
        args.output.write_text(json.dumps(report, indent=2) + "\n")
        print(f"wrote {args.output}")
    if failures or over:
        return 1
    print("overhead check passed")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
