"""Micro-benchmarks: single-assignment latency of every algorithm.

Times one placement decision per algorithm on the canonical diamond/star-8
instance — the operation a live scheduler performs per application arrival.
"""

from __future__ import annotations

import pytest

from repro.baselines import (
    ALGORITHMS,
    grand_assigner,
    random_assigner,
)
from repro.core.network import star_network
from repro.core.taskgraph import diamond_task_graph


@pytest.fixture(scope="module")
def instance():
    graph = diamond_task_graph(cpu_per_ct=3000.0, megabits_per_tt=5.0)
    graph = graph.with_pins({"ct1": "ncp1", "ct8": "ncp2"})
    network = star_network(7, hub_cpu=6000.0, leaf_cpu=3000.0, link_bandwidth=10.0)
    return graph, network


@pytest.mark.parametrize("name", sorted(ALGORITHMS))
def test_algorithm_latency(benchmark, instance, name):
    graph, network = instance
    result = benchmark(ALGORITHMS[name], graph, network)
    assert result.rate >= 0


def test_grand_latency(benchmark, instance):
    graph, network = instance
    assigner = grand_assigner(0)
    result = benchmark(assigner, graph, network)
    assert result.rate >= 0


def test_random_latency(benchmark, instance):
    graph, network = instance
    assigner = random_assigner(0)
    result = benchmark(assigner, graph, network)
    assert result.rate >= 0
