"""Ablation A3 — Theorem-3 capacity prediction vs FCFS placement.

Two BE applications with priorities 1 and 2 arrive in both orders.  With
the Eq. (6) prediction, each application is placed against its *fair share*
of contested elements, so the final allocated rates should barely depend on
who arrived first.  Without it (FCFS consumption), the early arrival grabs
the best spots and the rates swing with the order.

Metric: mean relative disparity of each app's allocated rate between the
two arrival orders (0 = perfectly order-independent).
"""

from __future__ import annotations

from repro.core.scheduler import BERequest, SparcleScheduler
from repro.exceptions import SparcleError
from repro.utils.rng import spawn_rngs
from repro.utils.stats import mean
from repro.utils.tables import format_table
from repro.workloads.scenarios import (
    BottleneckCase,
    GraphKind,
    TopologyKind,
    make_scenario,
    random_task_graph,
)

TRIALS = 25


def _order_disparity(network, graph_a, graph_b, *, use_prediction: bool) -> float | None:
    def run(order):
        scheduler = SparcleScheduler(network, use_prediction=use_prediction)
        for app_id, graph, priority in order:
            decision = scheduler.submit_be(
                BERequest(app_id, graph, priority=priority)
            )
            if not decision.accepted:
                raise SparcleError("rejected")
        return scheduler.allocate_be().app_rates

    try:
        forward = run([("a", graph_a, 1.0), ("b", graph_b, 2.0)])
        backward = run([("b", graph_b, 2.0), ("a", graph_a, 1.0)])
    except SparcleError:
        return None
    disparity = 0.0
    for app_id in ("a", "b"):
        hi = max(forward[app_id], backward[app_id])
        lo = min(forward[app_id], backward[app_id])
        if hi <= 0:
            return None
        disparity += (hi - lo) / hi
    return disparity / 2.0


def _sweep() -> list[list[object]]:
    with_pred, without_pred = [], []
    for rng in spawn_rngs(103, TRIALS):
        scenario = make_scenario(
            BottleneckCase.BALANCED, GraphKind.DIAMOND, TopologyKind.STAR,
            rng, n_ncps=8,
        )
        pins = {
            "ct1": scenario.graph.ct("ct1").pinned_host,
            "ct8": scenario.graph.ct("ct8").pinned_host,
        }
        graph_b = random_task_graph(GraphKind.DIAMOND, rng).with_pins(pins, name="b")
        predicted = _order_disparity(
            scenario.network, scenario.graph, graph_b, use_prediction=True
        )
        fcfs = _order_disparity(
            scenario.network, scenario.graph, graph_b, use_prediction=False
        )
        if predicted is None or fcfs is None:
            continue
        with_pred.append(predicted)
        without_pred.append(fcfs)
    return [
        ["prediction (Eq. 6)", mean(with_pred), len(with_pred)],
        ["FCFS (no prediction)", mean(without_pred), len(without_pred)],
    ]


def test_ablation_prediction(benchmark, capsys):
    rows = benchmark.pedantic(_sweep, rounds=1, iterations=1)
    with capsys.disabled():
        print()
        print(format_table(
            ["policy", "mean_order_disparity", "trials"], rows,
            title="[A3] arrival-order sensitivity",
        ))
    disparity = {row[0]: row[1] for row in rows}
    # Prediction makes allocations (weakly) less order-sensitive.
    assert disparity["prediction (Eq. 6)"] <= disparity["FCFS (no prediction)"] + 0.02
