#!/usr/bin/env python
"""Export serving-front-end numbers to ``BENCH_serve.json``.

The benchmark drives one pinned admission burst through the asyncio
serving front-end (:class:`~repro.service.server.SparcleServer`) over
real sockets and compares it against the in-process gateway on the same
8-NCP mesh:

* ``in-process`` — serial ``submit``/``run_epoch``/``decision_for`` on
  an :class:`~repro.service.gateway.AdmissionGateway` (no sockets, no
  JSON: the floor the wire path is measured against);
* ``serve-serial`` — the same stream one request at a time over the
  wire, awaiting each decision before the next submit.  Must be
  decision-equivalent to ``in-process`` (the property suite proves the
  bit-for-bit claim);
* ``serve-closed-loop`` — a :meth:`SparcleClient.process` burst with a
  bounded inflight window, recording submit→decision latency
  percentiles;
* ``serve-4-clients`` — the burst striped over four concurrent
  connections multiplexed onto the same single-threaded backend.

The CI gate (``--check``) asserts the ``/metrics`` page exports the
``sparcle_server_*`` family, serve-serial admits exactly the in-process
accept set, and one quick kill-mid-burst/recover chaos scenario
(:func:`repro.chaos.run_serve_soak`) passes with zero violations.

Usage::

    PYTHONPATH=src python benchmarks/export_serve_bench.py
    PYTHONPATH=src python benchmarks/export_serve_bench.py --quick --check
"""

from __future__ import annotations

import argparse
import asyncio
import json
import os
import sys
import time
from pathlib import Path

_HERE = Path(__file__).resolve().parent
_REPO = _HERE.parent
for entry in (str(_REPO / "src"), str(_HERE)):
    if entry not in sys.path:
        sys.path.insert(0, entry)

from repro.chaos import run_serve_soak  # noqa: E402
from repro.core.network import fully_connected_network  # noqa: E402
from repro.core.scheduler import (  # noqa: E402
    BERequest,
    GRRequest,
    SparcleScheduler,
)
from repro.core.taskgraph import linear_task_graph  # noqa: E402
from repro.perf.metrics import LabeledRegistry  # noqa: E402
from repro.service.client import (  # noqa: E402
    SparcleClient,
    scrape_metrics,
)
from repro.service.gateway import AdmissionGateway  # noqa: E402
from repro.service.server import SparcleServer  # noqa: E402

REQUESTS = 64
N_NCPS = 8
WINDOW = 8
N_CLIENTS = 4
SOAK_SEED = 7


def make_burst(count: int):
    """The 8-NCP mesh and one deterministic mixed GR/BE burst."""
    network = fully_connected_network(
        N_NCPS, cpu=200000.0, link_bandwidth=500.0
    )
    ncps = sorted((ncp.name for ncp in network.ncps),
                  key=lambda n: int(n[3:]))
    requests = []
    for index in range(count):
        src = ncps[index % N_NCPS]
        dst = ncps[(index + 3) % N_NCPS]
        graph = linear_task_graph(
            3, cpu_per_ct=[200.0, 300.0, 100.0],
            megabits_per_tt=[1.0, 0.8, 0.5, 0.5],
        ).with_pins({"source": src, "sink": dst}, name=f"bench{index}")
        if index % 3 == 2:
            requests.append(BERequest(
                f"bench{index}", graph,
                priority=float(1 + index % 3), max_paths=2,
            ))
        else:
            requests.append(GRRequest(
                f"bench{index}", graph, min_rate=0.02, max_paths=2,
            ))
    return network, requests


def run_in_process(network, requests) -> dict:
    """Serial submit -> epoch -> decision on the in-process gateway."""
    scheduler = SparcleScheduler(network)
    accepted = set()
    with AdmissionGateway(
        scheduler, workers=0, max_queue_depth=len(requests)
    ) as gateway:
        start = time.perf_counter()
        for request in requests:
            ticket = gateway.submit(request)
            gateway.run_epoch()
            decision = gateway.decision_for(ticket)
            if decision is not None and decision.accepted:
                accepted.add(request.app_id)
        wall = time.perf_counter() - start
    return {
        "mode": "in-process",
        "clients": 0,
        "window": 1,
        "wall_s": wall,
        "requests_per_s": len(requests) / wall,
        "accepted": len(accepted),
        "accepted_ids": sorted(accepted),
    }


def _percentile(values: list[float], fraction: float) -> float:
    if not values:
        return 0.0
    ordered = sorted(values)
    index = min(len(ordered) - 1, int(fraction * (len(ordered) - 1)))
    return ordered[index]


def run_serve_serial(network, requests) -> dict:
    """One request at a time over the wire; the equivalence row."""

    async def _run():
        accepted = set()
        latencies: list[float] = []
        async with SparcleServer(
            network,
            no_shards=True,
            max_queue_depth=len(requests),
            epoch_interval=0.002,
            registry=LabeledRegistry(),
        ) as server:
            async with await SparcleClient.open(
                server.host, server.port
            ) as client:
                loop = asyncio.get_running_loop()
                start = time.perf_counter()
                for request in requests:
                    sent = loop.time()
                    await client.submit(request)
                    reply = await client.decision(request.app_id)
                    latencies.append(loop.time() - sent)
                    if reply.accepted:
                        accepted.add(request.app_id)
                wall = time.perf_counter() - start
        return accepted, latencies, wall

    accepted, latencies, wall = asyncio.run(_run())
    return {
        "mode": "serve-serial",
        "clients": 1,
        "window": 1,
        "wall_s": wall,
        "requests_per_s": len(requests) / wall,
        "accepted": len(accepted),
        "accepted_ids": sorted(accepted),
        "latency_p50_ms": _percentile(latencies, 0.50) * 1000.0,
        "latency_p95_ms": _percentile(latencies, 0.95) * 1000.0,
    }


def run_serve_burst(network, requests, *, n_clients: int,
                    window: int) -> dict:
    """The burst striped over concurrent closed-loop clients."""

    async def _run():
        async with SparcleServer(
            network,
            no_shards=True,
            max_queue_depth=len(requests),
            max_inflight=window,
            epoch_interval=0.002,
            registry=LabeledRegistry(),
        ) as server:
            stripes = [requests[i::n_clients] for i in range(n_clients)]

            async def _drive(stripe):
                async with await SparcleClient.open(
                    server.host, server.port
                ) as client:
                    return await client.process(stripe, window=window)

            start = time.perf_counter()
            results = await asyncio.gather(
                *(_drive(stripe) for stripe in stripes)
            )
            wall = time.perf_counter() - start
            body = await scrape_metrics(server.host, server.port)
        decisions = [d for stripe in results for d in stripe]
        return decisions, wall, body

    decisions, wall, metrics_body = asyncio.run(_run())
    mode = (
        "serve-closed-loop" if n_clients == 1 else f"serve-{n_clients}-clients"
    )
    return {
        "mode": mode,
        "clients": n_clients,
        "window": window,
        "wall_s": wall,
        "requests_per_s": len(requests) / wall,
        "accepted": sum(
            1 for d in decisions if d is not None and d.accepted
        ),
        "metrics_exported": "sparcle_server_accepted" in metrics_body,
    }


def run_kill_recover(seed: int) -> dict:
    """One quick chaos scenario: kill mid-burst, recover, verify."""
    report = run_serve_soak(seed, 12, quick=True)
    return {
        "seed": seed,
        "ok": report.ok,
        "violations": [v.to_dict() for v in report.violations],
        "recovered": report.stats.get("recovered", 0),
        "duplicates_post_recovery": report.stats.get(
            "duplicates_post_recovery", 0
        ),
    }


def run(count: int, *, window: int, n_clients: int) -> dict:
    network, requests = make_burst(count)
    rows = [run_in_process(network, requests)]
    for maker in (
        lambda: run_serve_serial(*make_burst(count)),
        lambda: run_serve_burst(*make_burst(count), n_clients=1,
                                window=window),
        lambda: run_serve_burst(*make_burst(count), n_clients=n_clients,
                                window=window),
    ):
        rows.append(maker())
    baseline_rps = rows[0]["requests_per_s"]
    for row in rows:
        row["relative_throughput"] = row["requests_per_s"] / baseline_rps
    return {
        "benchmark": "serve",
        "requests": count,
        "window": window,
        "n_clients": n_clients,
        "cpu_count": os.cpu_count(),
        "rows": rows,
        "kill_recover": run_kill_recover(SOAK_SEED),
    }


def check(report: dict) -> list[str]:
    """CI gate: metrics, decision equivalence, and crash recovery."""
    failures = []
    rows = {row["mode"]: row for row in report["rows"]}
    serial = rows["serve-serial"]
    in_process = rows["in-process"]
    if serial["accepted_ids"] != in_process["accepted_ids"]:
        failures.append(
            "serve-serial accept set differs from in-process "
            f"({len(serial['accepted_ids'])} vs "
            f"{len(in_process['accepted_ids'])} accepted)"
        )
    for mode, row in rows.items():
        if "metrics_exported" in row and not row["metrics_exported"]:
            failures.append(f"{mode}: /metrics lacked sparcle_server_*")
    kill = report["kill_recover"]
    if not kill["ok"]:
        failures.append(
            f"kill/recover chaos scenario failed: {kill['violations']}"
        )
    return failures


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--requests", type=int, default=REQUESTS)
    parser.add_argument("--window", type=int, default=WINDOW)
    parser.add_argument("--clients", type=int, default=N_CLIENTS)
    parser.add_argument(
        "--quick", action="store_true",
        help="CI smoke: 24 requests instead of the full burst",
    )
    parser.add_argument(
        "--check", action="store_true",
        help="exit non-zero unless equivalence/metrics/recovery all hold",
    )
    parser.add_argument(
        "--out", default=str(_REPO / "BENCH_serve.json"),
        help="where to write the JSON report",
    )
    args = parser.parse_args(argv)
    count = 24 if args.quick else args.requests
    report = run(count, window=args.window, n_clients=args.clients)
    Path(args.out).write_text(
        json.dumps(report, indent=2, sort_keys=True) + "\n"
    )
    for row in report["rows"]:
        latency = (
            f"  p95 {row['latency_p95_ms']:6.1f} ms"
            if "latency_p95_ms" in row else ""
        )
        print(
            f"  {row['mode']:18s} {row['requests_per_s']:8.1f} req/s  "
            f"accepted {row['accepted']:3d}  "
            f"x{row['relative_throughput']:.2f}{latency}"
        )
    kill = report["kill_recover"]
    print(
        f"  kill/recover       ok={kill['ok']} "
        f"recovered={kill['recovered']} "
        f"duplicates={kill['duplicates_post_recovery']}"
    )
    print(f"wrote {args.out}")
    if args.check:
        failures = check(report)
        for failure in failures:
            print(f"FAIL: {failure}", file=sys.stderr)
        return 1 if failures else 0
    return 0


if __name__ == "__main__":
    sys.exit(main())
