"""VNE baseline: topology-aware node ranking (Cheng et al., CCR 2011).

The RW-MaxMatch algorithm of the virtual-network-embedding literature ranks
substrate nodes and virtual nodes with a Markov random walk resembling
PageRank, where a node's initial score is its *resource strength* —
capacity (or requirement) times the total bandwidth of incident links — and
the walk spreads scores along links proportionally to bandwidth.  Virtual
nodes are then mapped to substrate nodes in matching rank order, and
virtual links are routed over shortest paths.

Adapted to SPARCLE's setting:

* substrate nodes = NCPs scored by ``CPU capacity x sum of incident link
  bandwidth``;
* virtual nodes = CTs scored by ``CPU requirement x sum of incident TT
  megabits``;
* the k-th ranked unpinned CT goes to the k-th ranked NCP (wrapping around
  when there are more CTs than NCPs — VNE proper forbids co-location, but a
  task graph may simply be larger than the network);
* TTs are routed minimum-hop, as in the original (which selects paths by
  hop count among feasible ones).

As the SPARCLE paper notes, VNE assumes *fixed* resource demands, so it
cannot adapt the placement to the rate-scaling objective — the source of
its losses in the link-bottleneck cases.
"""

from __future__ import annotations

import networkx as nx

from repro.core.assignment import AssignmentResult, fixed_placement
from repro.core.network import Network
from repro.core.placement import CapacityView
from repro.core.taskgraph import CPU, TaskGraph

#: PageRank damping factor used by the random-walk ranking.
DAMPING = 0.85


def rank_ncps(network: Network) -> list[str]:
    """NCPs by descending random-walk resource rank."""
    graph = nx.Graph()
    strength: dict[str, float] = {}
    for ncp in network.ncps:
        incident_bw = sum(link.bandwidth for link in network.incident_links(ncp.name))
        strength[ncp.name] = ncp.capacity(CPU) * max(incident_bw, 1e-12)
        graph.add_node(ncp.name)
    for link in network.links:
        graph.add_edge(link.a, link.b, weight=link.bandwidth)
    scores = _random_walk_scores(graph, strength)
    return sorted(network.ncp_names, key=lambda n: (-scores[n], n))


def rank_cts(graph: TaskGraph) -> list[str]:
    """Unpinned CTs by descending random-walk requirement rank."""
    undirected = nx.Graph()
    strength: dict[str, float] = {}
    for ct in graph.cts:
        incident = sum(
            tt.megabits_per_unit
            for tt in graph.tts
            if tt.src == ct.name or tt.dst == ct.name
        )
        strength[ct.name] = max(ct.requirement(CPU), 1e-12) * max(incident, 1e-12)
        undirected.add_node(ct.name)
    for tt in graph.tts:
        weight = max(tt.megabits_per_unit, 1e-12)
        if undirected.has_edge(tt.src, tt.dst):
            undirected.edges[tt.src, tt.dst]["weight"] += weight
        else:
            undirected.add_edge(tt.src, tt.dst, weight=weight)
    scores = _random_walk_scores(undirected, strength)
    unpinned = [ct.name for ct in graph.cts if ct.pinned_host is None]
    return sorted(unpinned, key=lambda n: (-scores[n], n))


def _random_walk_scores(graph: nx.Graph, strength: dict[str, float]) -> dict[str, float]:
    """PageRank with resource-strength personalization and restart."""
    total = sum(strength.values())
    if total <= 0:
        return {n: 1.0 for n in graph}
    personalization = {n: strength[n] / total for n in graph}
    if graph.number_of_edges() == 0:
        return dict(personalization)
    return nx.pagerank(
        graph,
        alpha=DAMPING,
        personalization=personalization,
        weight="weight",
    )


def vne_assign(
    graph: TaskGraph,
    network: Network,
    capacities: CapacityView | None = None,
) -> AssignmentResult:
    """Map rank-ordered CTs onto rank-ordered NCPs; route minimum-hop."""
    caps = capacities if capacities is not None else CapacityView(network)
    ncp_order = rank_ncps(network)
    ct_order = rank_cts(graph)
    hosts: dict[str, str] = {
        ct.name: ct.pinned_host for ct in graph.cts if ct.pinned_host is not None
    }
    for index, ct_name in enumerate(ct_order):
        hosts[ct_name] = ncp_order[index % len(ncp_order)]
    return fixed_placement(graph, network, hosts, caps, router="hops")
