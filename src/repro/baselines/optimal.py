"""Exhaustive-search optimal task assignment (the paper's "optimal" curve).

Problem (1) is NP-hard (Theorem 1), but the paper's evaluation scales —
a handful of NCPs and CTs — admit brute force: enumerate every CT -> NCP
map (respecting pins) and keep the one with the highest bottleneck rate.

Routing given a CT map is itself a joint optimization when TTs can share
links.  Two modes are provided:

* ``routing="greedy"`` (default): TTs routed largest-first with the
  load-aware widest path of Algorithm 1.  On trees (e.g. the star and
  linear topologies of the evaluation) simple paths are unique, so this is
  *exactly* optimal there;
* ``routing="exhaustive"``: a branch-and-bound over every combination of
  simple paths per TT — exact everywhere, exponential, capped by
  ``max_route_combinations``.

``max_assignments`` guards against accidental explosion; raise it
explicitly for bigger sweeps.
"""

from __future__ import annotations

import itertools
import math

from repro.core.assignment import AssignmentResult, fixed_placement
from repro.core.network import Network
from repro.core.placement import CapacityView, Placement
from repro.core.routing import all_simple_routes
from repro.core.taskgraph import BANDWIDTH, TaskGraph
from repro.exceptions import InfeasiblePlacementError, SparcleError

#: Default cap on enumerated CT->NCP maps.
MAX_ASSIGNMENTS = 2_000_000
#: Default cap on per-assignment route combinations in exhaustive routing.
MAX_ROUTE_COMBINATIONS = 200_000


def _is_tree(network: Network) -> bool:
    """Whether the topology is an undirected tree (unique route per pair).

    Directed networks never take the tree fast path: the BFS route table
    ignores link directions.
    """
    return (
        not network.directed
        and network.is_connected()
        and len(network.links) == len(network.ncps) - 1
    )


def _tree_route_table(network: Network) -> dict[tuple[str, str], tuple[str, ...]]:
    """Unique route (as link names) between every ordered NCP pair of a tree."""
    table: dict[tuple[str, str], tuple[str, ...]] = {}
    for src in network.ncp_names:
        # BFS from src recording the link chain to every node.
        table[(src, src)] = ()
        frontier = [src]
        seen = {src}
        while frontier:
            node = frontier.pop()
            for link in network.incident_links(node):
                neighbor = link.other(node)
                if neighbor in seen:
                    continue
                seen.add(neighbor)
                table[(src, neighbor)] = table[(src, node)] + (link.name,)
                frontier.append(neighbor)
    return table


def optimal_assign(
    graph: TaskGraph,
    network: Network,
    capacities: CapacityView | None = None,
    *,
    routing: str = "greedy",
    max_assignments: int = MAX_ASSIGNMENTS,
    max_route_combinations: int = MAX_ROUTE_COMBINATIONS,
) -> AssignmentResult:
    """The rate-maximal placement by exhaustive search over CT hosts.

    On tree topologies every TT has a unique route, so the inner loop is a
    pure load accumulation and the search is exactly optimal; elsewhere the
    per-assignment routing follows the selected ``routing`` mode.  A cheap
    NCP-only upper bound prunes assignments that cannot beat the incumbent
    before any routing work happens.
    """
    if routing not in ("greedy", "exhaustive"):
        raise SparcleError(f"unknown routing mode {routing!r}")
    caps = capacities if capacities is not None else CapacityView(network)
    unpinned = [ct.name for ct in graph.cts if ct.pinned_host is None]
    pinned = {
        ct.name: ct.pinned_host for ct in graph.cts if ct.pinned_host is not None
    }
    n_hosts = len(network.ncp_names)
    total = n_hosts ** len(unpinned)
    if total > max_assignments:
        raise SparcleError(
            f"{total} CT->NCP maps exceed max_assignments={max_assignments}; "
            "raise the cap explicitly for large exhaustive searches"
        )
    tree_routes = _tree_route_table(network) if _is_tree(network) else None
    ct_requirements = {ct.name: dict(ct.requirements) for ct in graph.cts}

    best_rate = -1.0
    best_hosts: dict[str, str] | None = None
    best_routes: dict[str, tuple[str, ...]] | None = None
    for combo in itertools.product(network.ncp_names, repeat=len(unpinned)):
        hosts = dict(pinned)
        hosts.update(zip(unpinned, combo))
        # NCP-only bound: routing can only lower the rate further.
        ncp_loads: dict[str, dict[str, float]] = {}
        for ct_name, host in hosts.items():
            bucket = ncp_loads.setdefault(host, {})
            for resource, amount in ct_requirements[ct_name].items():
                bucket[resource] = bucket.get(resource, 0.0) + amount
        ncp_rate = math.inf
        for host, bucket in ncp_loads.items():
            for resource, load in bucket.items():
                if load > 0.0:
                    ncp_rate = min(ncp_rate, caps.capacity(host, resource) / load)
        if ncp_rate <= best_rate:
            continue
        try:
            if tree_routes is not None:
                rate, routes = _tree_routed(graph, caps, hosts, tree_routes, ncp_rate)
            elif routing == "greedy":
                result = fixed_placement(graph, network, hosts, caps, router="widest")
                rate, routes = result.rate, dict(result.placement.tt_routes)
            elif routing == "exhaustive":
                result = _exhaustive_routed(
                    graph, network, hosts, caps, max_route_combinations
                )
                rate, routes = result.rate, dict(result.placement.tt_routes)
            else:
                raise SparcleError(f"unknown routing mode {routing!r}")
        except InfeasiblePlacementError:
            continue
        if rate > best_rate:
            best_rate, best_hosts, best_routes = rate, hosts, routes
    if best_hosts is None or best_routes is None:
        raise InfeasiblePlacementError(
            "no CT->NCP map admits a connected routing for every TT"
        )
    placement = Placement(graph, best_hosts, best_routes)
    placement.validate(network)
    return AssignmentResult(placement, best_rate, tuple(best_hosts))


def _tree_routed(
    graph: TaskGraph,
    caps: CapacityView,
    hosts: dict[str, str],
    table: dict[tuple[str, str], tuple[str, ...]],
    ncp_rate: float,
) -> tuple[float, dict[str, tuple[str, ...]]]:
    """Exact rate on a tree: unique routes, pure load accumulation."""
    link_loads: dict[str, float] = {}
    routes: dict[str, tuple[str, ...]] = {}
    for tt in graph.tts:
        key = (hosts[tt.src], hosts[tt.dst])
        route = table.get(key)
        if route is None:
            raise InfeasiblePlacementError(
                f"no path between {key[0]!r} and {key[1]!r} for TT {tt.name!r}"
            )
        routes[tt.name] = route
        for link_name in route:
            link_loads[link_name] = link_loads.get(link_name, 0.0) + tt.megabits_per_unit
    rate = ncp_rate
    for link_name, load in link_loads.items():
        if load > 0.0:
            rate = min(rate, caps.capacity(link_name, BANDWIDTH) / load)
    return rate, routes


def _exhaustive_routed(
    graph: TaskGraph,
    network: Network,
    hosts: dict[str, str],
    caps: CapacityView,
    max_route_combinations: int,
) -> AssignmentResult:
    """Exact routing: search every combination of simple paths per TT."""
    tts = list(graph.tts)
    options: list[list[tuple[str, ...]]] = []
    for tt in tts:
        src_host, dst_host = hosts[tt.src], hosts[tt.dst]
        if src_host == dst_host:
            options.append([()])
            continue
        routes = all_simple_routes(network, src_host, dst_host)
        if not routes:
            raise InfeasiblePlacementError(
                f"no path between {src_host!r} and {dst_host!r} for TT {tt.name!r}"
            )
        options.append(routes)
    combinations = math.prod(len(o) for o in options)
    if combinations > max_route_combinations:
        raise SparcleError(
            f"{combinations} route combinations exceed "
            f"max_route_combinations={max_route_combinations}"
        )
    best_rate = -1.0
    best_routes: dict[str, tuple[str, ...]] | None = None
    for combo in itertools.product(*options):
        routes = {tt.name: links for tt, links in zip(tts, combo)}
        placement = Placement(graph, hosts, routes)
        rate = placement.bottleneck_rate(caps)
        if rate > best_rate:
            best_rate = rate
            best_routes = routes
    assert best_routes is not None
    placement = Placement(graph, hosts, best_routes)
    placement.validate(network)
    return AssignmentResult(placement, best_rate, tuple(hosts))


def optimal_rate_upper_bound(graph: TaskGraph, network: Network) -> float:
    """A cheap relaxation bound on the optimal rate.

    Ignores routing and co-location: the rate cannot exceed what the whole
    network's pooled capacity could sustain for the whole graph's pooled
    requirement, per resource, nor what the fattest link offers the thinnest
    mandatory TT crossing between pinned hosts.  Used for sanity checks and
    search pruning in tests.
    """
    bound = math.inf
    for resource in graph.resources():
        demand = graph.total_ct_requirement(resource)
        if demand <= 0:
            continue
        supply = sum(ncp.capacity(resource) for ncp in network.ncps)
        bound = min(bound, supply / demand)
    # Each CT individually must fit on the single best NCP.
    for ct in graph.cts:
        for resource, amount in ct.requirements.items():
            if amount <= 0:
                continue
            best = max((ncp.capacity(resource) for ncp in network.ncps), default=0.0)
            bound = min(bound, best / amount)
    fattest = max((link.bandwidth for link in network.links), default=math.inf)
    for tt in graph.tts:
        if tt.megabits_per_unit <= 0:
            continue
        src_pin = graph.ct(tt.src).pinned_host
        dst_pin = graph.ct(tt.dst).pinned_host
        if src_pin is not None and dst_pin is not None and src_pin != dst_pin:
            bound = min(bound, fattest / tt.megabits_per_unit)
    return bound
