"""R-Storm: resource-aware scheduling in Storm (Peng et al., Middleware'15).

R-Storm is the resource-aware counterpart of the T-Storm line: every task
declares CPU/memory needs, every node a budget, and tasks are placed by

1.  traversing the topology breadth-first from the spouts (data sources),
    so communicating tasks are considered consecutively;
2.  assigning each task to the node that minimizes the *resource distance*
    ``sqrt(sum_r (available_r - required_r)^2)`` among nodes that can fit
    the task (maximizing utilization while respecting budgets), preferring
    nodes network-closer to the already-placed parent on ties.

Like T-Storm it does not model link bandwidth as a schedulable resource —
inter-node traffic is only a soft locality preference — so it inherits the
same blind spot on dispersed networks.  SPARCLE's paper cites it ([22]) as
prior cloud-side work; it is included here as an extended baseline.

Adaptation notes: requirements here are per-data-unit rates, so "fitting" a
node is interpreted against the node's *remaining per-unit headroom* at the
unit scale (requirement must not exceed remaining capacity), and the
distance uses the same normalized quantities.
"""

from __future__ import annotations

import math

from repro.core.assignment import AssignmentResult, fixed_placement
from repro.core.network import Network
from repro.core.placement import CapacityView
from repro.core.routing import hop_shortest_path
from repro.core.taskgraph import BANDWIDTH, TaskGraph
from repro.exceptions import InfeasiblePlacementError


def _bfs_order(graph: TaskGraph) -> list[str]:
    """CTs breadth-first from the sources, deterministic within levels."""
    order: list[str] = []
    seen: set[str] = set()
    frontier = sorted(graph.sources)
    while frontier:
        next_frontier: list[str] = []
        for name in frontier:
            if name in seen:
                continue
            seen.add(name)
            order.append(name)
            for tt in graph.tts:
                if tt.src == name and tt.dst not in seen:
                    next_frontier.append(tt.dst)
        frontier = sorted(set(next_frontier))
    # Disconnected CTs (none in valid graphs, but stay total).
    for ct in graph.cts:
        if ct.name not in seen:
            order.append(ct.name)
    return order


def _hop_distance(network: Network, a: str, b: str) -> int:
    """Hop count between two NCPs (large when unreachable)."""
    route = hop_shortest_path(network, a, b)
    return len(route.links) if route is not None else 10**6


def rstorm_assign(
    graph: TaskGraph,
    network: Network,
    capacities: CapacityView | None = None,
) -> AssignmentResult:
    """Place CTs with the R-Storm heuristic; minimum-hop TT routing."""
    caps = capacities if capacities is not None else CapacityView(network)
    resources = sorted(
        set(graph.resources()) | (set(network.resources()) - {BANDWIDTH})
    )
    remaining: dict[str, dict[str, float]] = {
        ncp.name: {r: caps.capacity(ncp.name, r) for r in resources}
        for ncp in network.ncps
    }
    hosts: dict[str, str] = {}

    def parent_host(ct_name: str) -> str | None:
        for tt in graph.tts:
            if tt.dst == ct_name and tt.src in hosts:
                return hosts[tt.src]
        return None

    for ct_name in _bfs_order(graph):
        ct = graph.ct(ct_name)
        if ct.pinned_host is not None:
            hosts[ct_name] = ct.pinned_host
            for resource, amount in ct.requirements.items():
                bucket = remaining.get(ct.pinned_host)
                if bucket is not None and resource in bucket:
                    bucket[resource] = max(0.0, bucket[resource] - amount)
            continue
        anchor = parent_host(ct_name)
        best: tuple[float, int, str] | None = None  # (distance, hops, ncp)
        for ncp_name in network.ncp_names:
            budget = remaining[ncp_name]
            # Hard constraint: the unit-scale requirement must fit.
            if any(
                ct.requirement(r) > budget.get(r, 0.0) + 1e-12
                for r in ct.requirements
            ):
                continue
            distance = math.sqrt(
                sum(
                    (budget.get(r, 0.0) - ct.requirement(r)) ** 2
                    for r in resources
                )
            )
            hops = _hop_distance(network, anchor, ncp_name) if anchor else 0
            key = (distance, hops, ncp_name)
            if best is None or key < best:
                best = key
        if best is None:
            # Nothing fits; fall back to the roomiest node (R-Storm would
            # reject the topology — the comparison counts the bad rate).
            fallback = max(
                network.ncp_names,
                key=lambda n: sum(remaining[n].values()),
            )
            best = (0.0, 0, fallback)
        ncp_name = best[2]
        hosts[ct_name] = ncp_name
        for resource, amount in ct.requirements.items():
            bucket = remaining[ncp_name]
            if resource in bucket:
                bucket[resource] = max(0.0, bucket[resource] - amount)
    if len(hosts) != len(graph.cts):
        raise InfeasiblePlacementError("R-Storm failed to place every CT")
    return fixed_placement(graph, network, hosts, caps, router="hops")
