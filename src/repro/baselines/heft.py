"""HEFT: Heterogeneous Earliest Finish Time (Topcuoglu et al., TPDS 2002).

HEFT schedules a task DAG onto heterogeneous processors for minimum
*makespan* of a single input:

1.  **Upward rank**: ``rank_u(i) = w_i + max over successors s of
    (c_{i,s} + rank_u(s))``, where ``w_i`` is the task's average execution
    time over all processors and ``c_{i,s}`` the average communication time
    of the connecting edge;
2.  tasks are scheduled in descending ``rank_u`` order, each on the
    processor minimizing its *earliest finish time* (EFT) given processor
    ready times and data-arrival times (communication is free between
    co-located tasks, insertion-based slack filling omitted as in the
    non-insertion HEFT variant).

HEFT optimizes per-data-unit latency, not sustained throughput, and it does
not model link contention — so on stream workloads with scarce bandwidth it
concentrates work poorly, which is the effect Figs. 6 shows.  Transfer
times between NCPs use the bottleneck bandwidth of the minimum-hop path;
routing of the resulting placement also uses minimum-hop paths.
"""

from __future__ import annotations

import math

from repro.core.assignment import AssignmentResult, fixed_placement
from repro.core.network import Network
from repro.core.placement import CapacityView
from repro.core.routing import hop_shortest_path
from repro.core.taskgraph import CPU, TaskGraph
from repro.exceptions import InfeasiblePlacementError


def _execution_time(graph: TaskGraph, ct_name: str, network: Network, ncp_name: str) -> float:
    """Seconds to process one data unit of ``ct_name`` on ``ncp_name``."""
    requirement = graph.ct(ct_name).requirement(CPU)
    if requirement == 0.0:
        return 0.0
    capacity = network.ncp(ncp_name).capacity(CPU)
    if capacity <= 0.0:
        return math.inf
    return requirement / capacity


def _pair_bandwidth(network: Network) -> dict[tuple[str, str], float]:
    """Effective bandwidth between every NCP pair (min-hop bottleneck)."""
    out: dict[tuple[str, str], float] = {}
    names = network.ncp_names
    for a in names:
        for b in names:
            if a == b:
                out[(a, b)] = math.inf
                continue
            route = hop_shortest_path(network, a, b)
            out[(a, b)] = route.bottleneck if route is not None else 0.0
    return out


def upward_ranks(graph: TaskGraph, network: Network) -> dict[str, float]:
    """``rank_u`` for every CT, using network-average costs."""
    cpu_capacities = [ncp.capacity(CPU) for ncp in network.ncps if ncp.capacity(CPU) > 0]
    if not cpu_capacities:
        raise InfeasiblePlacementError("no NCP offers CPU capacity")
    avg_speed = sum(cpu_capacities) / len(cpu_capacities)
    bandwidths = [link.bandwidth for link in network.links if link.bandwidth > 0]
    avg_bandwidth = sum(bandwidths) / len(bandwidths) if bandwidths else math.inf

    ranks: dict[str, float] = {}
    for ct_name in reversed(graph.topological_order()):
        w = graph.ct(ct_name).requirement(CPU) / avg_speed
        best_successor = 0.0
        for tt in graph.tts:
            if tt.src != ct_name:
                continue
            comm = tt.megabits_per_unit / avg_bandwidth if math.isfinite(avg_bandwidth) else 0.0
            best_successor = max(best_successor, comm + ranks[tt.dst])
        ranks[ct_name] = w + best_successor
    return ranks


def heft_assign(
    graph: TaskGraph,
    network: Network,
    capacities: CapacityView | None = None,
) -> AssignmentResult:
    """Schedule with HEFT and evaluate the placement as a stream pipeline."""
    caps = capacities if capacities is not None else CapacityView(network)
    ranks = upward_ranks(graph, network)
    # Descending rank_u is precedence-safe except for zero-cost ties; the
    # topological index as tiebreak keeps predecessors first even then.
    topo_index = {name: k for k, name in enumerate(graph.topological_order())}
    order = sorted(ranks, key=lambda name: (-ranks[name], topo_index[name]))
    bandwidth = _pair_bandwidth(network)

    hosts: dict[str, str] = {}
    finish_time: dict[str, float] = {}
    ncp_ready: dict[str, float] = {name: 0.0 for name in network.ncp_names}

    for ct_name in order:
        ct = graph.ct(ct_name)
        candidates = [ct.pinned_host] if ct.pinned_host is not None else list(network.ncp_names)
        best: tuple[float, str] | None = None
        for ncp_name in candidates:
            # Data from every scheduled predecessor must have arrived.
            ready = ncp_ready[ncp_name]
            feasible = True
            for tt in graph.tts:
                if tt.dst != ct_name or tt.src not in hosts:
                    continue
                src_host = hosts[tt.src]
                if src_host == ncp_name:
                    arrival = finish_time[tt.src]
                else:
                    pair_bw = bandwidth[(src_host, ncp_name)]
                    if pair_bw <= 0.0:
                        feasible = False
                        break
                    transfer = (
                        tt.megabits_per_unit / pair_bw if math.isfinite(pair_bw) else 0.0
                    )
                    arrival = finish_time[tt.src] + transfer
                ready = max(ready, arrival)
            if not feasible:
                continue
            eft = ready + _execution_time(graph, ct_name, network, ncp_name)
            if best is None or (eft, ncp_name) < best:
                best = (eft, ncp_name)
        if best is None:
            raise InfeasiblePlacementError(
                f"HEFT found no reachable NCP for CT {ct_name!r}"
            )
        eft, ncp_name = best
        hosts[ct_name] = ncp_name
        finish_time[ct_name] = eft
        ncp_ready[ncp_name] = eft
    return fixed_placement(graph, network, hosts, caps, router="hops")
