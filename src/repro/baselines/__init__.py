"""Baseline task-assignment algorithms the paper compares SPARCLE against.

Every baseline exposes the same signature as
:func:`repro.core.assignment.sparcle_assign` —
``f(graph, network, capacities=None) -> AssignmentResult`` — so experiments
can sweep over ``ALGORITHMS`` uniformly.  RNG-dependent algorithms (GRand,
Random) also offer seeded factory variants for use inside the scheduler.
"""

from repro.baselines.greedy import grand_assign, grand_assigner, gs_assign
from repro.baselines.heft import heft_assign, upward_ranks
from repro.baselines.naive import (
    cloud_assign,
    cloud_assigner,
    random_assign,
    random_assigner,
)
from repro.baselines.optimal import optimal_assign, optimal_rate_upper_bound
from repro.baselines.tstorm import tstorm_assign
from repro.baselines.vne import rank_cts, rank_ncps, vne_assign

from repro.core.assignment import sparcle_assign

#: Deterministic algorithms keyed by their paper label (Fig. 11 legend).
ALGORITHMS = {
    "SPARCLE": sparcle_assign,
    "GS": gs_assign,
    "T-Storm": tstorm_assign,
    "VNE": vne_assign,
    "HEFT": heft_assign,
}

#: Factories for the stochastic algorithms: ``factory(rng) -> assigner``.
STOCHASTIC_ALGORITHMS = {
    "GRand": grand_assigner,
    "Random": random_assigner,
}

__all__ = [
    "ALGORITHMS",
    "STOCHASTIC_ALGORITHMS",
    "cloud_assign",
    "cloud_assigner",
    "grand_assign",
    "grand_assigner",
    "gs_assign",
    "heft_assign",
    "optimal_assign",
    "optimal_rate_upper_bound",
    "random_assign",
    "random_assigner",
    "rank_cts",
    "rank_ncps",
    "tstorm_assign",
    "upward_ranks",
    "vne_assign",
]
