"""Naive baselines: Random placement and Cloud-only computing.

* **Random** drops every unpinned CT on a uniformly random NCP — the
  paper's sanity-check lower bound.
* **Cloud** sends every unpinned CT to one designated "cloud" NCP, which is
  the status-quo deployment SPARCLE's testbed experiment (Fig. 6) compares
  against: all traffic funnels through the (possibly thin) access link.
"""

from __future__ import annotations

import numpy as np

from repro.core.assignment import AssignmentResult, fixed_placement
from repro.core.network import Network
from repro.core.placement import CapacityView
from repro.core.scheduler import Assigner
from repro.core.taskgraph import TaskGraph
from repro.exceptions import InvalidNetworkError
from repro.utils.rng import ensure_rng


def random_assign(
    graph: TaskGraph,
    network: Network,
    capacities: CapacityView | None = None,
    *,
    rng: int | np.random.Generator | None = None,
) -> AssignmentResult:
    """Uniformly random CT hosts; minimum-hop TT routing."""
    generator = ensure_rng(rng)
    caps = capacities if capacities is not None else CapacityView(network)
    names = list(network.ncp_names)
    hosts: dict[str, str] = {}
    for ct in graph.cts:
        if ct.pinned_host is not None:
            hosts[ct.name] = ct.pinned_host
        else:
            hosts[ct.name] = names[int(generator.integers(0, len(names)))]
    return fixed_placement(graph, network, hosts, caps, router="hops")


def random_assigner(rng: int | np.random.Generator | None = None) -> Assigner:
    """A seeded Random closure matching the scheduler's ``Assigner`` signature."""
    generator = ensure_rng(rng)

    def assign(
        graph: TaskGraph, network: Network, capacities: CapacityView | None = None
    ) -> AssignmentResult:
        return random_assign(graph, network, capacities, rng=generator)

    return assign


def cloud_assign(
    graph: TaskGraph,
    network: Network,
    capacities: CapacityView | None = None,
    *,
    cloud: str = "cloud",
) -> AssignmentResult:
    """All unpinned CTs on the ``cloud`` NCP; minimum-hop TT routing."""
    if not network.has_ncp(cloud):
        raise InvalidNetworkError(
            f"network {network.name!r} has no NCP named {cloud!r} to act as the cloud"
        )
    caps = capacities if capacities is not None else CapacityView(network)
    hosts = {
        ct.name: ct.pinned_host if ct.pinned_host is not None else cloud
        for ct in graph.cts
    }
    return fixed_placement(graph, network, hosts, caps, router="hops")


def cloud_assigner(cloud: str = "cloud") -> Assigner:
    """A Cloud closure for a specific cloud NCP name."""

    def assign(
        graph: TaskGraph, network: Network, capacities: CapacityView | None = None
    ) -> AssignmentResult:
        return cloud_assign(graph, network, capacities, cloud=cloud)

    return assign
