"""GS and GRand: the paper's static-order greedy baselines.

Both reuse SPARCLE's placement machinery (best host per Eq. (2), widest-path
TT routing) but freeze the CT order up front instead of re-ranking every
round:

* **GS** (Greedy Sorted) orders CTs by *descending total resource
  requirement* — the classic LPT intuition, but blind to the sizes of the
  connecting TTs;
* **GRand** (Greedy Random) visits CTs in a uniformly random order.

The gap between SPARCLE and GS in the link-bottleneck regime (Fig. 11b)
isolates the value of the dynamic ranking.
"""

from __future__ import annotations

import numpy as np

from repro.core.assignment import (
    AssignmentResult,
    greedy_assign_with_order,
    iter_orders_by_requirement,
)
from repro.core.network import Network
from repro.core.placement import CapacityView
from repro.core.scheduler import Assigner
from repro.core.taskgraph import TaskGraph
from repro.utils.rng import ensure_rng


def gs_assign(
    graph: TaskGraph,
    network: Network,
    capacities: CapacityView | None = None,
) -> AssignmentResult:
    """Greedy Sorted: place CTs in descending-requirement order."""
    resources = set(graph.resources()) | set(network.resources())
    order = iter_orders_by_requirement(graph, resources)
    return greedy_assign_with_order(graph, network, order, capacities)


def grand_assign(
    graph: TaskGraph,
    network: Network,
    capacities: CapacityView | None = None,
    *,
    rng: int | np.random.Generator | None = None,
) -> AssignmentResult:
    """Greedy Random: place CTs in a uniformly random order."""
    generator = ensure_rng(rng)
    unpinned = [ct.name for ct in graph.cts if ct.pinned_host is None]
    order = list(unpinned)
    generator.shuffle(order)
    return greedy_assign_with_order(graph, network, order, capacities)


def grand_assigner(rng: int | np.random.Generator | None = None) -> Assigner:
    """A seeded GRand closure matching the scheduler's ``Assigner`` signature."""
    generator = ensure_rng(rng)

    def assign(
        graph: TaskGraph, network: Network, capacities: CapacityView | None = None
    ) -> AssignmentResult:
        return grand_assign(graph, network, capacities, rng=generator)

    return assign
