"""T-Storm: traffic-aware online scheduling (Xu et al., ICDCS 2014).

T-Storm schedules Storm executors to minimize inter-node traffic while
keeping worker load balanced.  Following the original paper (and the
SPARCLE paper's characterization), the reimplementation here:

1.  sorts CTs by *descending total traffic* (incoming + outgoing TT
    megabits);
2.  assigns each CT to the NCP that minimizes the *incremental inter-node
    traffic* (the TT megabits to already-placed neighbours that would have
    to cross the network), breaking ties toward the less CPU-loaded NCP;
3.  enforces a homogeneous load cap — each NCP may take at most
    ``ceil(total CPU requirement / |N|) * slack`` CPU-units of CTs —
    because T-Storm balances load assuming *identical* machines.  This is
    exactly the blindness to heterogeneous capacities the SPARCLE paper
    calls out.

TT routing (which T-Storm does not model) uses minimum-hop paths, mirroring
a network-oblivious deployment.
"""

from __future__ import annotations

from repro.core.assignment import AssignmentResult, fixed_placement
from repro.core.network import Network
from repro.core.placement import CapacityView
from repro.core.taskgraph import CPU, TaskGraph
from repro.exceptions import InfeasiblePlacementError

#: Load-cap slack: T-Storm allows some imbalance before refusing a worker.
LOAD_CAP_SLACK = 1.25


def _traffic(graph: TaskGraph, ct_name: str) -> float:
    """Total TT megabits touching a CT (the T-Storm sort key)."""
    return sum(
        tt.megabits_per_unit
        for tt in graph.tts
        if tt.src == ct_name or tt.dst == ct_name
    )


def tstorm_assign(
    graph: TaskGraph,
    network: Network,
    capacities: CapacityView | None = None,
) -> AssignmentResult:
    """Place CTs with the T-Storm heuristic and report the stream rate.

    ``capacities`` only affects the final rate computation (and the load-cap
    ordering indirectly); T-Storm itself reasons about traffic, not
    capacity.
    """
    caps = capacities if capacities is not None else CapacityView(network)
    hosts: dict[str, str] = {}
    cpu_load: dict[str, float] = {name: 0.0 for name in network.ncp_names}

    total_cpu = graph.total_ct_requirement(CPU)
    largest_ct = max((ct.requirement(CPU) for ct in graph.cts), default=0.0)
    # Even split with slack, but never below the largest single CT — a cap
    # no worker could satisfy would force every placement through the
    # least-loaded fallback and void the traffic-awareness entirely.
    cap_per_ncp = max(
        LOAD_CAP_SLACK * total_cpu / max(len(network.ncps), 1), largest_ct
    )

    def place(ct_name: str, ncp_name: str) -> None:
        hosts[ct_name] = ncp_name
        cpu_load[ncp_name] += graph.ct(ct_name).requirement(CPU)

    for ct in graph.cts:
        if ct.pinned_host is not None:
            place(ct.name, ct.pinned_host)

    pending = [ct.name for ct in graph.cts if ct.name not in hosts]
    pending.sort(key=lambda name: (-_traffic(graph, name), name))
    for ct_name in pending:
        best: tuple[float, float, str] | None = None  # (added traffic, load, ncp)
        for ncp_name in network.ncp_names:
            ct_cpu = graph.ct(ct_name).requirement(CPU)
            if cpu_load[ncp_name] + ct_cpu > cap_per_ncp and ct_cpu > 0:
                continue  # worker "slot" budget exhausted
            added = 0.0
            for neighbor in graph.neighbors(ct_name):
                if neighbor not in hosts:
                    continue
                tt = graph.connecting_tt(ct_name, neighbor)
                assert tt is not None
                if hosts[neighbor] != ncp_name:
                    added += tt.megabits_per_unit
            key = (added, cpu_load[ncp_name], ncp_name)
            if best is None or key < best:
                best = key
        if best is None:
            # Every NCP hit the homogeneous cap; fall back to least loaded.
            fallback = min(network.ncp_names, key=lambda n: (cpu_load[n], n))
            place(ct_name, fallback)
            continue
        place(ct_name, best[2])
    if len(hosts) != len(graph.cts):
        raise InfeasiblePlacementError("T-Storm failed to place every CT")
    return fixed_placement(graph, network, hosts, caps, router="hops")
