"""Command-line interface: ``sparcle`` / ``python -m repro``.

Subcommands:

``experiment <id> [--trials N] [--emulate] [--export DIR]``
    Reproduce one of the paper's figures (or ``all``); optionally write
    CSV/JSON artifacts per experiment.

``schedule <scenario.json> [--algorithm NAME]``
    Run task assignment on a scenario file and print the placement,
    stable rate, and utilization digest.

``emulate <scenario.json> [--load FACTOR] [--duration SECONDS]``
    Drive the scenario through the discrete-event emulator and report the
    achieved processing rate.

``trace <id> [--out-dir DIR] [--capacity N]``
    Run one experiment with structured tracing enabled and export the
    JSONL trace, Prometheus-style snapshot, and merged run report.

``perf <scenario.json> [--algorithm NAME] [--format prom|json]``
    Run task assignment on a scenario and print the performance counters
    it recorded (Prometheus text format or the merged JSON report).

``gateway <scenario.json> [--requests N] [--workers N]``
    Synthesize a burst of admission requests from a scenario and push it
    through the concurrent admission gateway, comparing wall-clock
    throughput and the accept set against one-at-a-time submission.

``serve <scenario.json> [--port P] [--burst N] [--recover]``
    Run the asyncio serving front-end: a versioned JSON-lines admission
    endpoint over the sharded control plane (``/metrics`` over HTTP on
    the same port).  ``--burst N`` is a one-process self-test that
    drives a synthesized burst through a local client and exits.

``lint [paths ...] [--format text|json] [--baseline FILE]``
    Run the SPARCLE static-analysis pass (SPC001–SPC005 AST rules on
    ``.py`` paths, the SCN scenario validator on ``.json`` paths) and
    exit non-zero when violations remain.  ``--write-baseline`` records
    the current findings so they can be burned down incrementally.

The observability-oriented subcommands (``trace``, ``perf``, ``gateway``)
share ``--seed`` / ``--out-dir`` conventions via one helper; ``--output``
is kept as a deprecated-in-docs alias for ``--out-dir``.  The service
subcommands (``serve``, ``gateway``, ``shards``) extend the same group
with ``--workers`` / ``--log-dir``, and ``shards --kill-recover`` is the
spelling consistent with ``serve --recover`` (``--kill-restart`` still
accepted).

For backward compatibility a bare experiment id (``sparcle fig6``) is
rewritten to ``sparcle experiment fig6``.
"""

from __future__ import annotations

import argparse
import inspect
import sys
from collections.abc import Callable, Sequence
from pathlib import Path
from typing import TYPE_CHECKING

from repro.experiments import EXPERIMENTS

if TYPE_CHECKING:
    from repro.emulator.scenario import ScenarioSpec

#: Experiment runners with fixed internal trial structure: the CLI's
#: ``--trials`` flag does not apply to them.
_NO_TRIALS = ("fig6", "fig10", "robustness", "repair", "gateway", "federation")

#: Algorithms selectable from the command line.
CLI_ALGORITHMS = (
    "sparcle", "gs", "tstorm", "vne", "heft", "rstorm", "optimal",
)


def _resolve_algorithm(name: str) -> Callable[..., object]:
    from repro.baselines import (
        gs_assign,
        heft_assign,
        optimal_assign,
        tstorm_assign,
        vne_assign,
    )
    from repro.baselines.rstorm import rstorm_assign
    from repro.core.assignment import sparcle_assign

    table = {
        "sparcle": sparcle_assign,
        "gs": gs_assign,
        "tstorm": tstorm_assign,
        "vne": vne_assign,
        "heft": heft_assign,
        "rstorm": rstorm_assign,
        "optimal": optimal_assign,
    }
    return table[name]


def _add_run_options(
    parser: argparse.ArgumentParser,
    *,
    seed: bool = True,
    out_dir: str | None = None,
    out_help: str | None = None,
    workers: int | None = None,
    log_dir: bool = False,
) -> None:
    """Attach the shared ``--seed`` / ``--out-dir`` options to a subcommand.

    Every run-producing subcommand spells these the same way; ``--output``
    is accepted as an alias for ``--out-dir`` so existing scripts keep
    working (both store into ``args.out_dir``).  Service subcommands
    (``serve`` / ``gateway`` / ``shards``) additionally share ``--workers``
    (pass a default to enable) and ``--log-dir`` (pass ``log_dir=True``),
    so the whole flag group is spelled once.
    """
    if seed:
        parser.add_argument(
            "--seed", type=int, default=None,
            help="override the run's fixed RNG seed (when it has one)",
        )
    parser.add_argument(
        "--out-dir", "--output", dest="out_dir", metavar="DIR",
        default=out_dir,
        help=out_help or "directory for exported artifacts",
    )
    if workers is not None:
        parser.add_argument(
            "--workers", type=int, default=workers,
            help=f"parallel evaluation workers per gateway "
                 f"(default: {workers}; 0 = in-line)",
        )
    if log_dir:
        parser.add_argument(
            "--log-dir", metavar="DIR", default=None,
            help="write durable JSONL event logs (shard-N.jsonl, "
            "coordinator.jsonl) into DIR",
        )


def _seed_kwargs(run: Callable[..., object], seed: int | None) -> dict[str, object]:
    """``{"seed": seed}`` if the runner accepts a seed, else empty."""
    if seed is None:
        return {}
    if "seed" not in inspect.signature(run).parameters:
        return {}
    return {"seed": seed}


def build_parser() -> argparse.ArgumentParser:
    """The CLI argument parser (exposed for testing)."""
    parser = argparse.ArgumentParser(
        prog="sparcle",
        description="SPARCLE (ICDCS 2020) reproduction toolkit.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    experiment = sub.add_parser(
        "experiment", help="reproduce one of the paper's figures"
    )
    experiment.add_argument(
        "experiment", choices=sorted(EXPERIMENTS) + ["all"],
        help="which figure to reproduce ('all' runs every one)",
    )
    experiment.add_argument(
        "--trials", type=int, default=None,
        help="number of random trials for sweep experiments",
    )
    experiment.add_argument(
        "--emulate", action="store_true",
        help="also run the discrete-event emulator where supported (fig6)",
    )
    experiment.add_argument(
        "--export", metavar="DIR", default=None,
        help="write <id>.csv and <id>.json artifacts into DIR",
    )
    experiment.add_argument(
        "--seed", type=int, default=None,
        help="override the experiment's fixed RNG seed (when it has one)",
    )

    schedule = sub.add_parser(
        "schedule", help="run task assignment on a scenario file"
    )
    schedule.add_argument("scenario", help="path to a scenario JSON file")
    schedule.add_argument(
        "--algorithm", choices=CLI_ALGORITHMS, default="sparcle",
        help="task-assignment algorithm to run",
    )

    emulate = sub.add_parser(
        "emulate", help="run a scenario through the discrete-event emulator"
    )
    emulate.add_argument("scenario", help="path to a scenario JSON file")
    emulate.add_argument(
        "--load", type=float, default=0.95,
        help="offered load as a fraction of the stable rate",
    )
    emulate.add_argument(
        "--duration", type=float, default=None,
        help="simulated seconds (default: enough for ~500 units)",
    )

    analyze = sub.add_parser(
        "analyze",
        help="diagnose a scenario: bottlenecks, sensitivity, fragility, latency",
    )
    analyze.add_argument("scenario", help="path to a scenario JSON file")
    analyze.add_argument(
        "--algorithm", choices=CLI_ALGORITHMS, default="sparcle",
        help="task-assignment algorithm to analyze",
    )
    analyze.add_argument(
        "--paths", type=int, default=2,
        help="how many task assignment paths to find for fragility analysis",
    )

    trace = sub.add_parser(
        "trace",
        help="run one experiment with tracing on and export the artifacts",
    )
    trace.add_argument(
        "experiment", choices=sorted(EXPERIMENTS),
        help="which experiment to run under the tracer",
    )
    trace.add_argument(
        "--trials", type=int, default=None,
        help="number of random trials for sweep experiments",
    )
    _add_run_options(
        trace, out_dir="observability",
        out_help="directory for <id>_trace.jsonl / <id>_perf.prom / "
                 "<id>_report.json (default: ./observability)",
    )
    trace.add_argument(
        "--capacity", type=int, default=None,
        help="trace ring-buffer capacity (default: 65536 records)",
    )

    perf = sub.add_parser(
        "perf",
        help="run assignment on a scenario and print its perf counters",
    )
    perf.add_argument("scenario", help="path to a scenario JSON file")
    perf.add_argument(
        "--algorithm", choices=CLI_ALGORITHMS, default="sparcle",
        help="task-assignment algorithm to run",
    )
    perf.add_argument(
        "--format", choices=("prom", "json"), default="prom",
        help="snapshot format: Prometheus text or merged JSON report",
    )
    _add_run_options(
        perf, seed=False,
        out_help="write the snapshot to DIR/<scenario>_perf.<ext> "
                 "(a path ending in .json/.prom is written verbatim); "
                 "default: stdout",
    )

    gateway = sub.add_parser(
        "gateway",
        help="push a synthesized admission burst through the gateway",
    )
    gateway.add_argument("scenario", help="path to a scenario JSON file")
    gateway.add_argument(
        "--requests", type=int, default=40,
        help="how many burst requests to synthesize (default: 40)",
    )
    gateway.add_argument(
        "--executor", choices=("thread", "process"), default="thread",
        help="worker pool kind (default: thread)",
    )
    gateway.add_argument(
        "--gr-fraction", type=float, default=0.6,
        help="fraction of burst requests that are GR (default: 0.6)",
    )
    _add_run_options(
        gateway, workers=4,
        out_help="write a gateway_report.json with the run's numbers",
    )

    shards = sub.add_parser(
        "shards",
        help="push a synthesized admission burst through a federated "
        "(sharded) control plane with durable per-shard event logs",
    )
    shards.add_argument("scenario", help="path to a scenario JSON file")
    shards.add_argument(
        "--shards", dest="n_shards", type=int, default=2,
        help="number of regions the network is partitioned into "
        "(min-bottleneck-cut heuristic; default: 2)",
    )
    shards.add_argument(
        "--requests", type=int, default=40,
        help="how many burst requests to synthesize (default: 40)",
    )
    shards.add_argument(
        "--gr-fraction", type=float, default=0.6,
        help="fraction of burst requests that are GR (default: 0.6)",
    )
    shards.add_argument(
        "--kill-recover", "--kill-restart", dest="kill_recover",
        type=int, metavar="SHARD", default=None,
        help="after the burst, crash SHARD and recover it from its "
        "event log, verifying the residual state round-trips bit-for-bit "
        "(--kill-restart is the deprecated spelling)",
    )
    _add_run_options(
        shards, workers=0, log_dir=True,
        out_help="write a shards_report.json with the run's numbers",
    )

    serve = sub.add_parser(
        "serve",
        help="run the asyncio serving front-end: a JSON-lines admission "
        "endpoint over the sharded control plane (plus /metrics over HTTP)",
    )
    serve.add_argument("scenario", help="path to a scenario JSON file")
    serve.add_argument(
        "--host", default="127.0.0.1",
        help="interface to bind (default: 127.0.0.1)",
    )
    serve.add_argument(
        "--port", type=int, default=7433,
        help="TCP port to listen on (default: 7433; 0 = ephemeral)",
    )
    serve.add_argument(
        "--shards", dest="n_shards", type=int, default=2,
        help="number of regions the network is partitioned into "
        "(default: 2)",
    )
    serve.add_argument(
        "--no-shards", action="store_true",
        help="serve a single in-process admission gateway instead of the "
        "sharded control plane",
    )
    serve.add_argument(
        "--recover", action="store_true",
        help="warm-start the shards from the --log-dir event logs before "
        "accepting traffic (crash recovery)",
    )
    serve.add_argument(
        "--max-inflight", type=int, default=8,
        help="per-connection undecided-submit window before shedding "
        "(default: 8)",
    )
    serve.add_argument(
        "--burst", type=int, metavar="N", default=None,
        help="self-test mode: drive N synthesized requests through a "
        "local client, print the outcome, drain, and exit",
    )
    serve.add_argument(
        "--gr-fraction", type=float, default=0.6,
        help="fraction of --burst requests that are GR (default: 0.6)",
    )
    _add_run_options(
        serve, workers=0, log_dir=True,
        out_help="write a serve_report.json (--burst mode only)",
    )

    soak = sub.add_parser(
        "soak",
        help="chaos-soak a fuzzed world: generate -> lint -> admit -> "
        "break -> repair, checking every invariant after every event",
    )
    soak.add_argument(
        "--events", type=int, default=500,
        help="chaos events to generate (default: 500)",
    )
    soak.add_argument(
        "--serve", action="store_true",
        help="soak the serving front-end instead: kill a live server "
        "mid-burst, recover from the event logs, verify nothing was "
        "double-admitted or lost (--events caps the burst size)",
    )
    soak.add_argument(
        "--quick", action="store_true",
        help="downsized fuzz profile for CI smoke runs",
    )
    soak.add_argument(
        "--shrink", action="store_true",
        help="on failure, minimize the trace to its shortest failing prefix",
    )
    soak.add_argument(
        "--sabotage", choices=("residual",), default=None,
        help="deliberately corrupt live state (mutation smoke test: the "
        "run MUST fail and exit nonzero)",
    )
    soak.add_argument(
        "--sabotage-after", type=int, default=0,
        help="event index after which the sabotage fires (default: 0)",
    )
    _add_run_options(
        soak,
        out_help="write soak_report.json and soak_events.jsonl artifacts",
    )

    lint = sub.add_parser(
        "lint",
        help="run the SPARCLE static-analysis rules over sources/scenarios",
    )
    lint.add_argument(
        "paths", nargs="*", default=["src"],
        help="files or directories to lint (default: src)",
    )
    lint.add_argument(
        "--format", choices=("text", "json"), default="text",
        help="report format (default: text)",
    )
    lint.add_argument(
        "--baseline", metavar="FILE", default=None,
        help="JSON baseline of known violations to mute",
    )
    lint.add_argument(
        "--write-baseline", metavar="FILE", default=None,
        help="write the current findings as a baseline and exit 0",
    )
    lint.add_argument(
        "--rules", metavar="IDS", default=None,
        help="comma-separated rule/analysis ids to run (default: all)",
    )
    lint.add_argument(
        "--changed", metavar="BASE", nargs="?", const="HEAD", default=None,
        help="lint only Python files changed vs the given git ref "
             "(default ref when the flag is bare: HEAD)",
    )
    lint.add_argument(
        "--cache", metavar="FILE", default=None,
        help="on-disk facts cache; warm runs re-parse only changed files",
    )
    return parser


def _run_experiment(name: str, args: argparse.Namespace) -> None:
    run = EXPERIMENTS[name]
    kwargs: dict[str, object] = {}
    if args.trials is not None and name not in _NO_TRIALS:
        kwargs["trials"] = args.trials
    if args.emulate and name == "fig6":
        kwargs["emulate"] = True
    kwargs.update(_seed_kwargs(run, getattr(args, "seed", None)))
    result = run(**kwargs)
    print(result.to_text())
    if args.export:
        from repro.experiments.export import save_result

        paths = save_result(result, args.export)
        print(f"  wrote: {paths['csv']}, {paths['json']}")
    print()


def _cmd_experiment(args: argparse.Namespace) -> int:
    names = sorted(EXPERIMENTS) if args.experiment == "all" else [args.experiment]
    for name in names:
        _run_experiment(name, args)
    return 0


def _cmd_schedule(args: argparse.Namespace) -> int:
    from repro.core.analysis import placement_summary
    from repro.emulator.scenario import load_scenario
    from repro.utils.ascii_graph import render_placement, render_task_graph

    spec = load_scenario(args.scenario)
    algorithm = _resolve_algorithm(args.algorithm)
    result = algorithm(spec.graph, spec.network)
    print(f"scenario   : {spec.name}")
    print(f"algorithm  : {args.algorithm}")
    print(render_task_graph(spec.graph))
    print()
    print(placement_summary(spec.network, result.placement).to_text())
    print()
    print(render_placement(spec.network, result.placement))
    return 0


def _cmd_emulate(args: argparse.Namespace) -> int:
    from repro.emulator.emulator import Emulator

    outcome = Emulator.from_file(args.scenario).run(
        load_factor=args.load, duration=args.duration
    )
    print(f"scenario        : {outcome.scenario}")
    print(f"analytical rate : {outcome.analytical_rate:.4f} units/sec")
    print(f"offered rate    : {outcome.offered_rate:.4f} units/sec")
    print(f"achieved rate   : {outcome.achieved_rate:.4f} units/sec")
    print(f"stable          : {outcome.stable}")
    return 0


def _cmd_analyze(args: argparse.Namespace) -> int:
    from repro.core.analysis import bottleneck_sensitivity, placement_summary
    from repro.core.availability import single_points_of_failure
    from repro.core.latency import estimated_latency, zero_load_latency
    from repro.core.placement import CapacityView
    from repro.emulator.scenario import load_scenario

    spec = load_scenario(args.scenario)
    algorithm = _resolve_algorithm(args.algorithm)
    caps = CapacityView(spec.network)
    placements = []
    for _ in range(max(args.paths, 1)):
        try:
            result = algorithm(spec.graph, spec.network, caps)
        except Exception:  # noqa: BLE001 — residuals exhausted
            break
        if result.rate <= 1e-9:
            break
        placements.append((result.placement, result.rate))
        caps.consume(result.placement.loads(), result.rate)
    if not placements:
        print(f"scenario {spec.name!r} admits no positive-rate placement")
        return 1
    placement, rate = placements[0]
    print(f"scenario   : {spec.name}")
    print(f"algorithm  : {args.algorithm}")
    print(placement_summary(spec.network, placement).to_text())
    sensitivity = bottleneck_sensitivity(spec.network, placement)
    ranked = sorted(sensitivity.items(), key=lambda kv: -kv[1])[:3]
    print("\nupgrade sensitivity (rate per unit capacity):")
    for element, slope in ranked:
        print(f"  {element:8s} {slope:.6f}")
    floor = zero_load_latency(spec.network, placement)
    print(f"\nlatency floor: {floor.total_seconds:.4f}s via "
          f"{' -> '.join(floor.critical_path)}")
    if rate > 0:
        print(f"latency at 80% load: "
              f"{estimated_latency(spec.network, placement, rate * 0.8):.4f}s")
    spof = single_points_of_failure([p for p, _ in placements])
    print(f"\nfragility ({len(placements)} path(s)): single points of failure "
          f"= {sorted(spof) if spof else 'none'}")
    return 0


def _cmd_trace(args: argparse.Namespace) -> int:
    from repro.experiments.base import export_observability, traced_run
    from repro.perf.metrics import LabeledRegistry, use_registry

    name = args.experiment
    run = EXPERIMENTS[name]
    kwargs: dict[str, object] = {}
    if args.trials is not None and name not in _NO_TRIALS:
        kwargs["trials"] = args.trials
    kwargs.update(_seed_kwargs(run, args.seed))
    labeled = LabeledRegistry()
    with use_registry(labeled):
        result, tracer = traced_run(run, capacity=args.capacity, **kwargs)
    print(result.to_text())
    print()
    print(f"trace      : {len(tracer)} records "
          f"({tracer.dropped} dropped, capacity {tracer.capacity})")
    for kind, count in sorted(tracer.kind_counts().items()):
        print(f"  {kind:32s} {count}")
    paths = export_observability(
        args.out_dir,
        experiment_id=name,
        tracer_obj=tracer,
        labeled=labeled,
        extra={"title": result.title},
    )
    print(f"  wrote: {paths['trace']}, {paths['prom']}, {paths['report']}")
    return 0


def _cmd_perf(args: argparse.Namespace) -> int:
    import json as _json

    from repro.emulator.scenario import load_scenario
    from repro.perf import exporters
    from repro.perf.metrics import LabeledRegistry, use_registry

    spec = load_scenario(args.scenario)
    algorithm = _resolve_algorithm(args.algorithm)
    labeled = LabeledRegistry()
    with use_registry(labeled):
        result = algorithm(spec.graph, spec.network)
    if args.format == "prom":
        text = exporters.prometheus_snapshot(labeled=labeled)
    else:
        report = exporters.run_report(labeled=labeled)
        report["scenario"] = spec.name
        report["algorithm"] = args.algorithm
        report["rate"] = result.rate
        text = _json.dumps(report, indent=2, sort_keys=True) + "\n"
    if args.out_dir:
        from pathlib import Path

        target = Path(args.out_dir)
        if target.suffix not in (".json", ".prom"):
            target.mkdir(parents=True, exist_ok=True)
            ext = "json" if args.format == "json" else "prom"
            target = target / f"{spec.name}_perf.{ext}"
        else:
            target.parent.mkdir(parents=True, exist_ok=True)
        target.write_text(text)
        print(f"scenario : {spec.name}")
        print(f"rate     : {result.rate:.4f} units/sec")
        print(f"wrote    : {target}")
    else:
        print(text, end="")
    return 0


def _cmd_gateway(args: argparse.Namespace) -> int:
    import json as _json
    import time

    from repro.core.assignment import sparcle_assign
    from repro.core.scheduler import BERequest, GRRequest, SparcleScheduler
    from repro.emulator.scenario import load_scenario
    from repro.service import AdmissionGateway
    from repro.utils.rng import ensure_rng

    spec = load_scenario(args.scenario)
    generator = ensure_rng(args.seed if args.seed is not None else 97)
    reference = max(sparcle_assign(spec.graph, spec.network).rate, 1e-6)
    requests = []
    for index in range(max(args.requests, 1)):
        graph = spec.graph.with_pins({}, name=f"app{index}")
        if generator.uniform(0.0, 1.0) < args.gr_fraction:
            fraction = float(generator.uniform(0.05, 0.3))
            requests.append(GRRequest(
                f"app{index}", graph,
                min_rate=fraction * reference, max_paths=2,
            ))
        else:
            priority = float(generator.choice([1.0, 2.0, 4.0]))
            requests.append(BERequest(
                f"app{index}", graph, priority=priority, max_paths=2,
            ))

    serial = SparcleScheduler(spec.network)
    start = time.perf_counter()
    serial_decisions = [
        serial.commit(serial.evaluate(request))
        for request in AdmissionGateway.priority_order(requests)
    ]
    serial_wall = time.perf_counter() - start

    scheduler = SparcleScheduler(spec.network)
    with AdmissionGateway(
        scheduler, workers=args.workers, executor=args.executor,
        max_queue_depth=len(requests),
    ) as gateway:
        start = time.perf_counter()
        decisions = gateway.process(requests)
        gateway_wall = time.perf_counter() - start

    stats = gateway.stats
    print(f"scenario         : {spec.name}")
    print(f"burst            : {len(requests)} requests "
          f"({sum(isinstance(r, GRRequest) for r in requests)} GR / "
          f"{sum(isinstance(r, BERequest) for r in requests)} BE)")
    print(f"serial           : {sum(d.accepted for d in serial_decisions)} "
          f"accepted in {serial_wall:.3f}s "
          f"({len(requests) / serial_wall:.1f} req/s)")
    print(f"gateway (x{args.workers} {args.executor}) : "
          f"{sum(d.accepted for d in decisions)} accepted in "
          f"{gateway_wall:.3f}s ({len(requests) / gateway_wall:.1f} req/s)")
    print(f"epochs           : {stats.epochs}")
    print(f"conflicts        : {stats.conflicts} "
          f"(overlap commits {stats.overlap_commits}, "
          f"serial fallbacks {stats.serial_fallbacks})")
    if args.out_dir:
        from pathlib import Path

        out_dir = Path(args.out_dir)
        out_dir.mkdir(parents=True, exist_ok=True)
        report = {
            "scenario": spec.name,
            "requests": len(requests),
            "workers": args.workers,
            "executor": args.executor,
            "serial": {
                "accepted": sum(d.accepted for d in serial_decisions),
                "wall_s": serial_wall,
            },
            "gateway": {
                "accepted": sum(d.accepted for d in decisions),
                "wall_s": gateway_wall,
                "epochs": stats.epochs,
                "conflicts": stats.conflicts,
                "overlap_commits": stats.overlap_commits,
                "serial_fallbacks": stats.serial_fallbacks,
            },
        }
        target = out_dir / "gateway_report.json"
        target.write_text(_json.dumps(report, indent=2, sort_keys=True) + "\n")
        print(f"wrote            : {target}")
    return 0


def _cmd_shards(args: argparse.Namespace) -> int:
    """Run a synthesized burst through a federated control plane."""
    import json as _json
    import time

    from repro.core.assignment import sparcle_assign
    from repro.core.scheduler import BERequest, GRRequest
    from repro.emulator.scenario import load_scenario
    from repro.service.shard import ShardCoordinator
    from repro.utils.rng import ensure_rng

    spec = load_scenario(args.scenario)
    generator = ensure_rng(args.seed if args.seed is not None else 97)
    reference = max(sparcle_assign(spec.graph, spec.network).rate, 1e-6)
    requests = []
    for index in range(max(args.requests, 1)):
        graph = spec.graph.with_pins({}, name=f"app{index}")
        if generator.uniform(0.0, 1.0) < args.gr_fraction:
            fraction = float(generator.uniform(0.05, 0.3))
            requests.append(GRRequest(
                f"app{index}", graph,
                min_rate=fraction * reference, max_paths=2,
            ))
        else:
            priority = float(generator.choice([1.0, 2.0, 4.0]))
            requests.append(BERequest(
                f"app{index}", graph, priority=priority, max_paths=2,
            ))

    with ShardCoordinator(
        spec.network,
        n_shards=args.n_shards,
        workers=args.workers,
        max_queue_depth=len(requests),
        log_dir=args.log_dir,
    ) as coordinator:
        partition = coordinator.partition
        sizes = [len(s.ncp_names) for s in partition.subnetworks]
        print(f"scenario         : {spec.name}")
        print(f"partition        : {partition.n_shards} shards "
              f"(sizes {sizes}, {len(partition.boundary_links)} "
              f"boundary links)")
        start = time.perf_counter()
        decisions = coordinator.process(requests)
        wall = time.perf_counter() - start
        stats = coordinator.stats
        accepted = sum(1 for d in decisions if d is not None and d.accepted)
        print(f"burst            : {len(requests)} requests "
              f"({stats.cross_submitted} routed cross-shard)")
        print(f"federated        : {accepted} accepted in {wall:.3f}s "
              f"({len(requests) / wall:.1f} req/s)")
        print(f"cross-shard      : {stats.cross_conflicts} conflicts, "
              f"{stats.cross_serial_fallbacks} serial fallbacks")
        warm_exact: bool | None = None
        if args.kill_recover is not None:
            shard_id = args.kill_recover
            before = coordinator.nodes[shard_id].residual_entries()
            lost = coordinator.kill_shard(shard_id)
            coordinator.restart_shard(shard_id)
            warm_exact = (
                coordinator.nodes[shard_id].residual_entries() == before
            )
            print(f"kill/recover     : shard {shard_id} lost {lost} queued "
                  f"requests; warm start bit-for-bit: {warm_exact}")
        if args.out_dir:
            from pathlib import Path

            out_dir = Path(args.out_dir)
            out_dir.mkdir(parents=True, exist_ok=True)
            report = {
                "scenario": spec.name,
                "requests": len(requests),
                "n_shards": partition.n_shards,
                "shard_sizes": sizes,
                "boundary_links": len(partition.boundary_links),
                "accepted": accepted,
                "wall_s": wall,
                "cross_submitted": stats.cross_submitted,
                "cross_conflicts": stats.cross_conflicts,
                "cross_serial_fallbacks": stats.cross_serial_fallbacks,
                "warm_start_exact": warm_exact,
            }
            target = out_dir / "shards_report.json"
            target.write_text(
                _json.dumps(report, indent=2, sort_keys=True) + "\n"
            )
            print(f"wrote            : {target}")
    if warm_exact is False:
        return 1
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    """Run the asyncio serving front-end (or its --burst self-test)."""
    from repro.emulator.scenario import load_scenario
    from repro.service.server import serve

    spec = load_scenario(args.scenario)
    if args.burst is None:
        serve(
            spec.network,
            host=args.host,
            port=args.port,
            no_shards=args.no_shards,
            n_shards=args.n_shards,
            workers=args.workers,
            log_dir=args.log_dir,
            max_inflight=args.max_inflight,
            recover=args.recover,
        )
        return 0
    return _cmd_serve_burst(args, spec)


def _cmd_serve_burst(args: argparse.Namespace, spec: "ScenarioSpec") -> int:
    """The ``serve --burst N`` self-test: server + client in one process."""
    import asyncio
    import json as _json
    import time

    from repro.core.assignment import sparcle_assign
    from repro.core.scheduler import BERequest, GRRequest
    from repro.service.client import SparcleClient, scrape_metrics
    from repro.service.server import SparcleServer
    from repro.utils.rng import ensure_rng

    generator = ensure_rng(args.seed if args.seed is not None else 97)
    reference = max(sparcle_assign(spec.graph, spec.network).rate, 1e-6)
    requests: list[BERequest | GRRequest] = []
    for index in range(max(args.burst, 1)):
        graph = spec.graph.with_pins({}, name=f"app{index}")
        if generator.uniform(0.0, 1.0) < args.gr_fraction:
            fraction = float(generator.uniform(0.05, 0.3))
            requests.append(GRRequest(
                f"app{index}", graph,
                min_rate=fraction * reference, max_paths=2,
            ))
        else:
            priority = float(generator.choice([1.0, 2.0, 4.0]))
            requests.append(BERequest(
                f"app{index}", graph, priority=priority, max_paths=2,
            ))

    async def _run() -> dict[str, object]:
        server = SparcleServer(
            spec.network,
            host=args.host,
            port=args.port,
            no_shards=args.no_shards,
            n_shards=args.n_shards,
            workers=args.workers,
            max_queue_depth=max(len(requests), 16),
            log_dir=args.log_dir,
            max_inflight=args.max_inflight,
            recover=args.recover,
        )
        await server.start()
        client = await SparcleClient.open(server.host, server.port)
        start = time.perf_counter()
        decisions = await client.process(
            requests, window=args.max_inflight
        )
        wall = time.perf_counter() - start
        status = await client.status()
        metrics = await scrape_metrics(server.host, server.port)
        await client.drain()
        await client.close()
        await server.wait_closed()
        accepted = sum(
            1 for d in decisions if d is not None and d.accepted
        )
        return {
            "backend": status.backend,
            "accepted": accepted,
            "decided": sum(1 for d in decisions if d is not None),
            "wall_s": wall,
            "epochs": status.epoch,
            "shed": status.shed,
            "metrics_ok": "sparcle_server_accepted" in metrics,
        }

    summary = asyncio.run(_run())
    print(f"scenario         : {spec.name}")
    print(f"burst            : {len(requests)} requests "
          f"({sum(isinstance(r, GRRequest) for r in requests)} GR / "
          f"{sum(isinstance(r, BERequest) for r in requests)} BE)")
    print(f"serve ({summary['backend']:>7}) : {summary['accepted']} "
          f"accepted of {summary['decided']} decided in "
          f"{summary['wall_s']:.3f}s "
          f"({len(requests) / max(summary['wall_s'], 1e-9):.1f} req/s)")
    print(f"epochs           : {summary['epochs']} "
          f"({summary['shed']} shed)")
    print(f"metrics          : sparcle_server_* exported: "
          f"{summary['metrics_ok']}")
    if args.out_dir:
        from pathlib import Path

        out_dir = Path(args.out_dir)
        out_dir.mkdir(parents=True, exist_ok=True)
        report = {
            "scenario": spec.name,
            "requests": len(requests),
            "workers": args.workers,
            **summary,
        }
        target = out_dir / "serve_report.json"
        target.write_text(_json.dumps(report, indent=2, sort_keys=True) + "\n")
        print(f"wrote            : {target}")
    return 0 if summary["metrics_ok"] else 1


def _cmd_soak_serve(args: argparse.Namespace, seed: int) -> int:
    """The ``soak --serve`` mode: kill a live server mid-burst, recover."""
    import json
    from pathlib import Path

    from repro.chaos import run_serve_soak

    if args.sabotage or args.shrink:
        print("--serve does not support --sabotage/--shrink",
              file=sys.stderr)
        return 2
    n_requests = min(args.events, 24)
    print(f"serve soak: seed={seed} requests={n_requests}")
    report = run_serve_soak(seed, n_requests, quick=args.quick)
    stats = report.stats
    print(
        f"  pre-kill: {stats['submitted_pre_kill']} submitted, "
        f"{stats['decided_pre_kill']} decided, "
        f"{stats['accepted_pre_kill']} accepted"
    )
    print(
        f"  recovered {stats['recovered']} app(s); post-recovery: "
        f"{stats['duplicates_post_recovery']} duplicate-rejected, "
        f"{stats['decided_post_recovery']} decided"
    )
    if args.out_dir is not None:
        out_dir = Path(args.out_dir)
        out_dir.mkdir(parents=True, exist_ok=True)
        report_path = out_dir / "serve_soak_report.json"
        report_path.write_text(
            json.dumps(report.to_dict(), indent=2) + "\n"
        )
        print(f"  wrote {report_path}")
    if report.ok:
        print("  OK: zero invariant violations")
        return 0
    for violation in report.violations:
        print(
            f"  VIOLATION [{violation.invariant}]: {violation.detail}"
        )
    return 1


def _cmd_soak(args: argparse.Namespace) -> int:
    """Run the chaos soak harness; exit 0 iff every invariant held."""
    import json
    from pathlib import Path

    from repro.chaos import registered_invariants, run_soak

    seed = args.seed if args.seed is not None else 7
    if args.events < 1:
        print("--events must be >= 1", file=sys.stderr)
        return 2
    if args.serve:
        return _cmd_soak_serve(args, seed)
    print(
        f"soak: seed={seed} events={args.events} "
        f"invariants={', '.join(registered_invariants())}"
    )
    report = run_soak(
        seed,
        args.events,
        quick=args.quick,
        sabotage=args.sabotage,
        sabotage_after=args.sabotage_after,
        shrink=args.shrink,
    )
    world = report.world
    print(
        f"  world: {world['family']}/{world['shape']} "
        f"({world['n_ncps']} NCPs, {world['n_links']} links)"
    )
    stats = report.stats
    print(
        f"  ran {report.events_run}/{report.events_planned} events: "
        f"{stats['submitted']} submitted, {stats['accepted']} accepted, "
        f"{stats['rejected']} rejected, {stats['shed']} shed, "
        f"{stats['conflicts']} conflicts, "
        f"{stats['repair_events']} repair events"
    )
    if args.out_dir is not None:
        out_dir = Path(args.out_dir)
        out_dir.mkdir(parents=True, exist_ok=True)
        report_path = out_dir / "soak_report.json"
        report_path.write_text(json.dumps(report.to_dict(), indent=2) + "\n")
        events_path = out_dir / "soak_events.jsonl"
        with events_path.open("w") as handle:
            for entry in report.event_log:
                handle.write(json.dumps(entry) + "\n")
        print(f"  wrote {report_path} and {events_path}")
    if report.ok:
        print("  OK: zero invariant violations")
        return 0
    for violation in report.violations:
        print(
            f"  VIOLATION [{violation.invariant}] after event "
            f"{violation.event_index}: {violation.detail}"
        )
    if report.shrunk_events is not None:
        print(
            f"  shrunk to the minimal failing prefix: "
            f"{report.shrunk_events} events"
        )
    return 1


def _cmd_lint(args: argparse.Namespace) -> int:
    from repro.devtools import (
        DEFAULT_ANALYSES,
        DEFAULT_RULES,
        LintConfigError,
        changed_python_files,
        format_json,
        format_text,
        lint_paths,
        load_baseline,
        write_baseline,
    )

    rules = DEFAULT_RULES
    analyses = DEFAULT_ANALYSES
    if args.rules:
        wanted = {r.strip() for r in args.rules.split(",") if r.strip()}
        known = {rule.rule_id for rule in DEFAULT_RULES}
        known |= {analysis.rule_id for analysis in DEFAULT_ANALYSES}
        unknown = wanted - known
        if unknown:
            print(f"unknown rule id(s): {', '.join(sorted(unknown))}",
                  file=sys.stderr)
            return 2
        rules = tuple(r for r in DEFAULT_RULES if r.rule_id in wanted)
        analyses = tuple(
            a for a in DEFAULT_ANALYSES if a.rule_id in wanted
        )
    try:
        paths: Sequence[str | Path] = args.paths
        if args.changed is not None:
            changed = changed_python_files(args.changed)
            requested = [Path(p).resolve() for p in args.paths]
            paths = [
                path for path in changed
                if any(
                    path.resolve().is_relative_to(req) for req in requested
                )
            ]
            if not paths:
                print(
                    f"no Python files changed vs {args.changed} under "
                    f"{', '.join(args.paths)}"
                )
                return 0
        baseline = load_baseline(args.baseline) if args.baseline else frozenset()
        report = lint_paths(
            paths, rules=rules, analyses=analyses,
            baseline=baseline, cache_path=args.cache,
        )
    except LintConfigError as error:
        print(str(error), file=sys.stderr)
        return 2
    if args.write_baseline:
        count = write_baseline(args.write_baseline, report.violations)
        print(f"wrote {count} fingerprint(s) to {args.write_baseline}")
        return 0
    text = format_json(report) if args.format == "json" else format_text(report)
    print(text, end="")
    if report.errors:
        return 2
    return 0 if report.clean else 1


def main(argv: Sequence[str] | None = None) -> int:
    """Entry point; returns a process exit code."""
    if argv is None:
        argv = sys.argv[1:]
    argv = list(argv)
    # Back-compat: `sparcle fig6` == `sparcle experiment fig6`.  Subcommand
    # names win over same-named experiment ids (e.g. "gateway").
    subcommands = {
        "experiment", "schedule", "emulate", "analyze", "trace", "perf",
        "gateway", "shards", "serve", "lint", "soak",
    }
    if argv and argv[0] not in subcommands and argv[0] in set(EXPERIMENTS) | {"all"}:
        argv = ["experiment", *argv]
    args = build_parser().parse_args(argv)
    if args.command == "experiment":
        return _cmd_experiment(args)
    if args.command == "schedule":
        return _cmd_schedule(args)
    if args.command == "emulate":
        return _cmd_emulate(args)
    if args.command == "analyze":
        return _cmd_analyze(args)
    if args.command == "trace":
        return _cmd_trace(args)
    if args.command == "perf":
        return _cmd_perf(args)
    if args.command == "gateway":
        return _cmd_gateway(args)
    if args.command == "shards":
        return _cmd_shards(args)
    if args.command == "serve":
        return _cmd_serve(args)
    if args.command == "lint":
        return _cmd_lint(args)
    if args.command == "soak":
        return _cmd_soak(args)
    raise AssertionError(f"unhandled command {args.command!r}")


if __name__ == "__main__":
    sys.exit(main())
