"""Device energy model: CPU utilization + radio transmission power.

For a placement running at processing rate ``x`` (units/sec):

* an NCP ``j`` hosting CTs with total per-unit CPU demand ``R_j`` runs at
  utilization ``u_j = x * R_j / C_j``; its power draw is
  ``idle + cpu_max * u_j`` watts (linear-in-utilization, per [11]);
* every link crossing costs radio energy on *both* endpoint NCPs: the
  sender pays ``tx_per_megabit`` and the receiver ``rx_per_megabit``
  joules per megabit, so a TT of ``b`` Mb per unit over one link costs
  ``(tx + rx) * b`` joules per unit (rate-proportional, per [19]).

Energy efficiency is ``x / total_power`` = data units processed per joule.
Idle draw of *used* NCPs is included (an NCP kept awake to host a task pays
its idle power), which is what rewards SPARCLE's consolidation onto fewer
NCPs in the link-bottleneck regime (Fig. 9).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.network import Network
from repro.core.placement import CapacityView, Placement
from repro.core.taskgraph import BANDWIDTH, CPU
from repro.exceptions import SparcleError


@dataclass(frozen=True)
class DeviceEnergyProfile:
    """Per-device energy coefficients.

    ``idle_watts`` — baseline draw of an awake NCP;
    ``cpu_max_watts`` — additional draw at 100% CPU utilization;
    ``tx_joules_per_megabit`` / ``rx_joules_per_megabit`` — radio cost of
    moving one megabit out of / into an NCP (LTE/WiFi-class figures).
    """

    idle_watts: float = 0.5
    cpu_max_watts: float = 2.5
    tx_joules_per_megabit: float = 0.06
    rx_joules_per_megabit: float = 0.03

    def __post_init__(self) -> None:
        for name in (
            "idle_watts",
            "cpu_max_watts",
            "tx_joules_per_megabit",
            "rx_joules_per_megabit",
        ):
            if getattr(self, name) < 0:
                raise SparcleError(f"{name} must be non-negative")


#: Smartphone-class defaults used throughout the Fig. 9 experiment.
DEFAULT_PROFILE = DeviceEnergyProfile()


@dataclass
class EnergyBreakdown:
    """Power decomposition of one placement at one rate."""

    rate: float
    idle_watts: float
    cpu_watts: float
    radio_watts: float

    @property
    def total_watts(self) -> float:
        """Total power draw in watts."""
        return self.idle_watts + self.cpu_watts + self.radio_watts

    @property
    def efficiency(self) -> float:
        """Data units processed per joule."""
        if self.total_watts <= 0:
            return float("inf") if self.rate > 0 else 0.0
        return self.rate / self.total_watts


def placement_energy(
    network: Network,
    placement: Placement,
    rate: float,
    *,
    profile: DeviceEnergyProfile = DEFAULT_PROFILE,
    capacities: CapacityView | None = None,
) -> EnergyBreakdown:
    """Power draw of running ``placement`` at ``rate`` data units/sec.

    ``capacities`` supplies the CPU capacities for utilization (defaults to
    raw network capacities).  Raises when the rate exceeds what the
    placement can sustain (utilization above 1 is not physical).
    """
    if rate < 0:
        raise SparcleError(f"rate must be non-negative, got {rate}")
    caps = capacities if capacities is not None else CapacityView(network)
    bottleneck = placement.bottleneck_rate(caps)
    if rate > bottleneck * (1 + 1e-9):
        raise SparcleError(
            f"rate {rate} exceeds the placement's stable rate {bottleneck}"
        )
    loads = placement.loads()
    idle = profile.idle_watts * len(placement.used_ncps())
    cpu = 0.0
    for ncp_name in placement.used_ncps():
        bucket = loads.get(ncp_name, {})
        capacity = caps.capacity(ncp_name, CPU)
        demand = bucket.get(CPU, 0.0)
        if demand <= 0.0:
            continue
        if capacity <= 0.0:
            raise SparcleError(
                f"NCP {ncp_name!r} hosts CPU-demanding tasks but has no CPU capacity"
            )
        utilization = min(1.0, rate * demand / capacity)
        cpu += profile.cpu_max_watts * utilization
    radio = 0.0
    per_crossing = profile.tx_joules_per_megabit + profile.rx_joules_per_megabit
    for link_name in placement.used_links():
        megabits = loads[link_name].get(BANDWIDTH, 0.0)
        radio += per_crossing * megabits * rate
    return EnergyBreakdown(rate=rate, idle_watts=idle, cpu_watts=cpu, radio_watts=radio)


def energy_efficiency(
    network: Network,
    placement: Placement,
    rate: float,
    *,
    profile: DeviceEnergyProfile = DEFAULT_PROFILE,
    capacities: CapacityView | None = None,
) -> float:
    """Data units processed per joule (the Fig. 9 metric)."""
    return placement_energy(
        network, placement, rate, profile=profile, capacities=capacities
    ).efficiency
