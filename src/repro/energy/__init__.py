"""Energy model and energy-efficiency metric (Fig. 9).

The paper defines energy efficiency as *data units processed per unit of
energy*, with a device model drawn from prior measurement studies:

* CPU energy drain is proportional to CPU utilization ([11], Chen et al.,
  SIGMETRICS 2015);
* uplink/downlink radio energy drain is proportional to the transmission
  rate ([19], Huang et al., MobiSys 2012).
"""

from repro.energy.model import (
    DEFAULT_PROFILE,
    DeviceEnergyProfile,
    EnergyBreakdown,
    energy_efficiency,
    placement_energy,
)

__all__ = [
    "DEFAULT_PROFILE",
    "DeviceEnergyProfile",
    "EnergyBreakdown",
    "energy_efficiency",
    "placement_energy",
]
