"""Sharded control plane: federated admission over a partitioned network.

One :class:`~repro.service.gateway.AdmissionGateway` over one global
:class:`~repro.core.network.Network` serializes every admission on a single
scheduler.  This module partitions the NCP/link graph into *regions*
(operator-supplied zones or a min-bottleneck-cut heuristic over link
capacity), runs one scheduler + gateway per region, and coordinates the
placements that cannot be satisfied inside a single region:

* :func:`partition_network` — split a network into connected region
  subnetworks plus the *boundary links* that cross regions.
* :class:`ShardNode` — one region: a private :class:`SparcleScheduler`
  over the region subnetwork, an :class:`AdmissionGateway` in front of it,
  and a durable JSONL :class:`ShardEventLog` recording every commit with
  the post-commit residual snapshot (physical logging).
* :class:`ShardCoordinator` — routes submits to the owning shard (pins
  decide; unpinned requests round-robin), and runs a **two-phase
  reserve/commit** for requests whose pins span regions: phase 1 evaluates
  against a merged view built from frozen
  :class:`~repro.core.network.ResidualSnapshot` reservations of every
  shard plus the boundary-link ledger; phase 2 revalidates optimistically
  against the live merged state and applies per-owner external
  reservations, aborting with
  :class:`~repro.exceptions.StaleProposalError` and re-queueing under a
  :class:`~repro.core.repair.RetryPolicy` budget, then falling back to a
  global serial evaluate+commit so every request terminates with a
  decision.

Cross-region Best-Effort flows are *pinned at their admitted share*: the
coordinator reserves their evaluated path rates like GR reservations
(Problem-(4) re-allocation stays intra-shard), which is what makes the
boundary-link ledger conservative — a boundary link can never be
double-booked by two shards because only the coordinator consumes it.

**Durability and warm start.**  Every log record embeds the full residual
snapshot after the commit it describes, so a killed shard warm-starts by
thawing the last record (snapshot + replay) bit-for-bit instead of
re-solving admission; logged live applications are *adopted* as opaque
external reservations (their capacity stays held, duplicates stay
rejected, withdrawal still works), while their queued-but-undecided
siblings are lost — exactly once-semantics is the submitting client's
retry loop, not the log's.
"""

from __future__ import annotations

import json
from collections.abc import Iterator, Mapping, Sequence
from dataclasses import dataclass
from pathlib import Path
from typing import TYPE_CHECKING, Any, TextIO

from repro.core.assignment import sparcle_assign
from repro.core.network import NCP, Link, Network, ResidualSnapshot
from repro.core.placement import CapacityView, Loads
from repro.core.repair import RetryPolicy
from repro.core.scheduler import (
    AdmissionProposal,
    Assigner,
    BERequest,
    Decision,
    GRRequest,
    SparcleScheduler,
    evaluate_admission,
)
from repro.core.taskgraph import BANDWIDTH
from repro.exceptions import (
    AdmissionError,
    BackpressureError,
    PlacementError,
    ShardError,
    StaleProposalError,
)
from repro.service.gateway import (
    MAX_DRAIN_EPOCHS,
    AdmissionGateway,
    EpochReport,
)

if TYPE_CHECKING:
    from repro.service.protocol import DecisionReply, SubmitRequest

#: Flat ``(element, resource, residual)`` override entries (see
#: :class:`~repro.core.network.ResidualSnapshot`).
Entries = tuple[tuple[str, str, float], ...]

#: Per-placement capacity consumptions: one ``(loads, rate)`` per path.
Consumptions = tuple[tuple[Loads, float], ...]

#: Owner key for boundary links in per-owner load splits (no shard owns
#: them; the coordinator's ledger does).
LEDGER = -1


# ----------------------------------------------------------------------
# Partitioning
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class NetworkPartition:
    """A network split into regions plus the links crossing them.

    ``assignments`` maps every NCP name to its shard id (``0..n-1``);
    ``subnetworks[i]`` is shard *i*'s connected subnetwork (its NCPs and
    the links internal to it); ``boundary_links`` are the global links
    whose endpoints live in different shards — they belong to no
    subnetwork and are reserved exclusively through the coordinator's
    ledger.
    """

    network: Network
    assignments: Mapping[str, int]
    subnetworks: tuple[Network, ...]
    boundary_links: tuple[str, ...]

    def __post_init__(self) -> None:
        object.__setattr__(self, "assignments", dict(self.assignments))

    @property
    def n_shards(self) -> int:
        """Number of regions in this partition."""
        return len(self.subnetworks)

    def shard_of(self, ncp_name: str) -> int:
        """The shard id owning one NCP."""
        try:
            return self.assignments[ncp_name]
        except KeyError:
            raise ShardError(
                f"NCP {ncp_name!r} is not covered by this partition"
            ) from None

    def owner_of(self, element_name: str) -> int:
        """The owner of one element: a shard id, or :data:`LEDGER`.

        NCPs and internal links are owned by their shard; boundary links
        are owned by the coordinator's ledger.
        """
        owner = self.assignments.get(element_name)
        if owner is not None:
            return owner
        if element_name in self.boundary_links:
            return LEDGER
        link = self.network.link(element_name)
        return self.shard_of(link.a)


class _UnionFind:
    """Path-compressed union-find over NCP names (Kruskal helper)."""

    def __init__(self, names: Sequence[str]) -> None:
        self._parent: dict[str, str] = {name: name for name in names}

    def find(self, name: str) -> str:
        """Representative of ``name``'s component."""
        root = name
        while self._parent[root] != root:
            root = self._parent[root]
        while self._parent[name] != root:
            self._parent[name], name = root, self._parent[name]
        return root

    def union(self, a: str, b: str) -> bool:
        """Merge the components of ``a`` and ``b``; False if already one."""
        ra, rb = self.find(a), self.find(b)
        if ra == rb:
            return False
        self._parent[rb] = ra
        return True


def _heuristic_zones(network: Network, n_shards: int) -> dict[str, int]:
    """Min-bottleneck-cut zones: cut the narrowest maximum-spanning-tree edges.

    Kruskal builds the maximum spanning tree over link capacity; removing
    the ``n_shards - 1`` smallest tree edges yields connected components
    whose cut edges are the lowest-capacity separators the tree admits —
    cheap, deterministic, and biased exactly the way a cross-region
    reservation protocol wants (boundary links are the scarce ones).
    """
    if not network.is_connected():
        raise ShardError(
            "the min-cut partition heuristic needs a connected network; "
            "supply explicit zones for disconnected topologies"
        )
    forest = _UnionFind(network.ncp_names)
    tree: list[Link] = []
    for link in sorted(network.links, key=lambda l: (-l.bandwidth, l.name)):
        if forest.union(link.a, link.b):
            tree.append(link)
    cuts = {
        link.name
        for link in sorted(tree, key=lambda l: (l.bandwidth, l.name))[
            : n_shards - 1
        ]
    }
    components = _UnionFind(network.ncp_names)
    for link in tree:
        if link.name not in cuts:
            components.union(link.a, link.b)
    groups: dict[str, list[str]] = {}
    for name in network.ncp_names:
        groups.setdefault(components.find(name), []).append(name)
    ordered = sorted(groups.values(), key=lambda members: min(members))
    return {name: index for index, members in enumerate(ordered) for name in members}


def _validated_zones(network: Network, zones: Mapping[str, int]) -> dict[str, int]:
    for name in zones:
        network.ncp(name)  # unknown names raise InvalidNetworkError
    missing = [name for name in network.ncp_names if name not in zones]
    if missing:
        raise ShardError(f"zones do not cover NCPs: {missing}")
    ids = sorted(set(zones.values()))
    if ids != list(range(len(ids))):
        raise ShardError(
            f"zone ids must be contiguous from 0, got {ids}"
        )
    return {name: int(shard) for name, shard in zones.items()}


def partition_network(
    network: Network,
    n_shards: int = 2,
    *,
    zones: Mapping[str, int] | None = None,
) -> NetworkPartition:
    """Partition a network into region subnetworks plus boundary links.

    ``zones`` (NCP name -> shard id, ids contiguous from 0) pins the
    partition explicitly; without it, a deterministic min-bottleneck-cut
    heuristic over link capacity picks ``n_shards`` regions.  Every
    region's subnetwork must be connected — a disconnected region raises
    :class:`~repro.exceptions.ShardError` (re-zone it).
    """
    if zones is not None:
        assignments = _validated_zones(network, zones)
        n_shards = max(assignments.values()) + 1
    else:
        if not 1 <= n_shards <= len(network.ncp_names):
            raise ShardError(
                f"n_shards must be in [1, {len(network.ncp_names)}], "
                f"got {n_shards}"
            )
        assignments = _heuristic_zones(network, n_shards)
    members: list[list[NCP]] = [[] for _ in range(n_shards)]
    for ncp in network.ncps:
        members[assignments[ncp.name]].append(ncp)
    internal: list[list[Link]] = [[] for _ in range(n_shards)]
    boundary: list[str] = []
    for link in network.links:
        owner_a, owner_b = assignments[link.a], assignments[link.b]
        if owner_a == owner_b:
            internal[owner_a].append(link)
        else:
            boundary.append(link.name)
    subnetworks: list[Network] = []
    for shard_id in range(n_shards):
        if not members[shard_id]:
            raise ShardError(f"shard {shard_id} has no NCPs")
        subnet = Network(
            f"{network.name}/shard{shard_id}",
            members[shard_id],
            internal[shard_id],
            directed=network.directed,
        )
        if len(members[shard_id]) > 1 and not subnet.is_connected():
            raise ShardError(
                f"shard {shard_id} subnetwork is disconnected; re-zone it"
            )
        subnetworks.append(subnet)
    return NetworkPartition(
        network=network,
        assignments=assignments,
        subnetworks=tuple(subnetworks),
        boundary_links=tuple(sorted(boundary)),
    )


# ----------------------------------------------------------------------
# Durable event log
# ----------------------------------------------------------------------
def _entries_to_json(entries: Entries) -> list[list[object]]:
    return [[element, resource, value] for element, resource, value in entries]


def _entries_from_json(raw: Sequence[Sequence[object]]) -> Entries:
    return tuple(
        (str(element), str(resource), float(value))  # type: ignore[arg-type]
        for element, resource, value in raw
    )


def _consumptions_to_json(consumptions: Consumptions) -> list[dict[str, Any]]:
    return [
        {
            "loads": {element: dict(bucket) for element, bucket in loads.items()},
            "rate": rate,
        }
        for loads, rate in consumptions
    ]


def _consumptions_from_json(raw: Sequence[Mapping[str, Any]]) -> Consumptions:
    out: list[tuple[Loads, float]] = []
    for item in raw:
        loads: Loads = {
            str(element): {str(r): float(v) for r, v in bucket.items()}
            for element, bucket in item["loads"].items()
        }
        out.append((loads, float(item["rate"])))
    return tuple(out)


class ShardEventLog:
    """Append-only JSONL log of one shard's admission/repair events.

    Each record is one JSON object per line carrying a monotonically
    increasing ``seq`` plus the full post-event residual snapshot
    (physical logging): replay never re-runs admission, it thaws state.
    With ``path=None`` the log is held in memory only (tests, throwaway
    federations); with a path, records are flushed line-by-line and an
    existing file is re-read on open, so a restarted process resumes the
    same log.
    """

    def __init__(self, path: str | Path | None = None) -> None:
        self._path = Path(path) if path is not None else None
        self._records: list[dict[str, Any]] = []
        self._handle: TextIO | None = None
        if self._path is not None:
            if self._path.exists():
                for line in self._path.read_text(encoding="utf-8").splitlines():
                    if line.strip():
                        self._records.append(json.loads(line))
            self._path.parent.mkdir(parents=True, exist_ok=True)
            self._handle = open(self._path, "a", encoding="utf-8")

    @property
    def path(self) -> Path | None:
        """Where this log persists, or ``None`` for in-memory logs."""
        return self._path

    def __len__(self) -> int:
        return len(self._records)

    def append(self, record: Mapping[str, Any]) -> dict[str, Any]:
        """Stamp, persist, and return one record."""
        stamped: dict[str, Any] = {"seq": len(self._records), **record}
        self._records.append(stamped)
        if self._handle is not None:
            self._handle.write(json.dumps(stamped, sort_keys=True) + "\n")
            self._handle.flush()
        return stamped

    def records(self) -> tuple[dict[str, Any], ...]:
        """Every record appended (or recovered) so far, in order."""
        return tuple(self._records)

    def close(self) -> None:
        """Release the underlying file handle (idempotent)."""
        if self._handle is not None:
            self._handle.close()
            self._handle = None


@dataclass(frozen=True)
class ReplayedApp:
    """One application alive at the end of a replayed event log."""

    app_id: str
    kind: str  # "GR" | "BE"
    origin: str  # "local" | "external"
    consumptions: Consumptions


@dataclass(frozen=True)
class ReplayState:
    """What replaying a :class:`ShardEventLog` reconstructs.

    ``residual``/``fcfs`` are the bit-exact capacity overrides at the end
    of the log; ``apps`` are the applications still holding reservations
    (their logged per-path consumptions included, so a warm-started shard
    can keep accounting for — and later release — their capacity).
    """

    residual: Entries
    fcfs: Entries
    apps: tuple[ReplayedApp, ...]


def replay_log(records: Sequence[Mapping[str, Any]]) -> ReplayState:
    """Reconstruct residual state and live tenants from log records.

    Raises :class:`~repro.exceptions.ShardError` for an empty log — there
    is nothing to warm-start from.
    """
    if not records:
        raise ShardError("cannot replay an empty shard event log")
    residual: Entries = ()
    fcfs: Entries = ()
    apps: dict[str, ReplayedApp] = {}
    for record in records:
        if "residual" in record:
            residual = _entries_from_json(record["residual"])
        if "fcfs" in record:
            fcfs = _entries_from_json(record["fcfs"])
        kind = record.get("type")
        if kind == "epoch":
            for decision in record["decisions"]:
                if decision["accepted"]:
                    apps[decision["app_id"]] = ReplayedApp(
                        app_id=decision["app_id"],
                        kind=decision["kind"],
                        origin="local",
                        consumptions=_consumptions_from_json(
                            decision["consumed"]
                        ),
                    )
        elif kind == "reserve":
            apps[record["app_id"]] = ReplayedApp(
                app_id=record["app_id"],
                kind=record.get("kind", "GR"),
                origin="external",
                consumptions=_consumptions_from_json(record["consumed"]),
            )
        elif kind == "release":
            apps.pop(record["app_id"], None)
    return ReplayState(residual=residual, fcfs=fcfs, apps=tuple(apps.values()))


# ----------------------------------------------------------------------
# One shard
# ----------------------------------------------------------------------
class ShardNode:
    """One region of the federation: scheduler + gateway + durable log.

    The node's scheduler sees only the region *subnetwork*, so locally
    admitted placements can never touch a boundary link or another
    region's elements by construction.  Every state change — gateway
    epoch, cross-shard reservation, withdrawal — appends one log record
    embedding the post-change residual snapshot, which is what
    :meth:`warm_start` thaws after a :meth:`kill`.
    """

    def __init__(
        self,
        shard_id: int,
        network: Network,
        *,
        assigner: Assigner = sparcle_assign,
        use_prediction: bool = True,
        workers: int = 0,
        executor: str = "thread",
        max_queue_depth: int = 128,
        batch_size: int | None = None,
        retry_policy: RetryPolicy | None = None,
        log: ShardEventLog | None = None,
    ) -> None:
        self.shard_id = shard_id
        self.network = network
        self.log = log if log is not None else ShardEventLog(None)
        self.alive = True
        self._assigner = assigner
        self._use_prediction = use_prediction
        self._workers = workers
        self._executor = executor
        self._max_queue_depth = max_queue_depth
        self._batch_size = batch_size
        self._retry_policy = retry_policy
        #: Live locally-admitted apps -> their per-path consumptions
        #: (empty for BE apps: intra-shard BE holds no reservation).
        self._local: dict[str, Consumptions] = {}
        #: Apps adopted from the log after a warm start (opaque tenants).
        self._adopted: dict[str, ReplayedApp] = {}
        self._decision_mark = 0
        self.scheduler: SparcleScheduler
        self.gateway: AdmissionGateway
        self._build()
        #: True when the log held records from an earlier process at open
        #: time — the signal :meth:`recover` keys off.
        self._preexisting = len(self.log) > 0
        if len(self.log) == 0:
            self.log.append(self._stamp({"type": "snapshot"}))

    def _build(self) -> None:
        self.scheduler = SparcleScheduler(
            self.network,
            assigner=self._assigner,
            use_prediction=self._use_prediction,
        )
        self.gateway = AdmissionGateway(
            self.scheduler,
            workers=self._workers,
            executor=self._executor,
            max_queue_depth=self._max_queue_depth,
            batch_size=self._batch_size,
            retry_policy=self._retry_policy,
        )
        self._decision_mark = 0

    # ------------------------------------------------------------------
    def _stamp(self, record: dict[str, Any]) -> dict[str, Any]:
        """Attach the post-event physical snapshot to one log record."""
        record["residual"] = _entries_to_json(
            self.scheduler.residual_snapshot().entries
        )
        record["fcfs"] = _entries_to_json(
            self.scheduler.fcfs_snapshot().entries
        )
        return record

    def _require_alive(self) -> None:
        if not self.alive:
            raise ShardError(f"shard {self.shard_id} is down")

    def residual_entries(self) -> Entries:
        """The live residual overrides (bit-exact comparison handle)."""
        return self.scheduler.residual_snapshot().entries

    def live_apps(self) -> tuple[str, ...]:
        """Locally-known live applications (admitted here or adopted)."""
        return tuple(self._local) + tuple(self._adopted)

    def consumption_ledger(self) -> dict[str, Consumptions]:
        """Every reservation this shard's residual accounts for.

        Keys are app ids: locally admitted apps, adopted apps, and
        cross-shard external reservations applied by the coordinator.
        The invariant checker re-derives the expected residual from this.
        """
        ledger: dict[str, Consumptions] = dict(self._local)
        for tag in self.scheduler.external_tags():
            ledger[tag] = self.scheduler.external_consumptions(tag)
        return ledger

    # ------------------------------------------------------------------
    # Admission
    # ------------------------------------------------------------------
    def submit(self, request: BERequest | GRRequest) -> int:
        """Enqueue one arrival on this shard's gateway (ticket returned)."""
        self._require_alive()
        return self.gateway.submit(request)

    def run_epoch(self) -> EpochReport:
        """Run one gateway epoch and log its decisions + post-state."""
        self._require_alive()
        report = self.gateway.run_epoch()
        self._log_new_decisions()
        return report

    def _log_new_decisions(self) -> None:
        news = self.scheduler.decisions[self._decision_mark :]
        if not news:
            return
        payload: list[dict[str, Any]] = []
        for decision in news:
            consumed: Consumptions = ()
            if decision.accepted and decision.kind == "GR":
                consumed = tuple(
                    (placement.loads(), rate)
                    for placement, rate in zip(
                        decision.placements, decision.path_rates
                    )
                )
            if decision.accepted:
                self._local[decision.app_id] = consumed
            payload.append(
                {
                    "app_id": decision.app_id,
                    "kind": decision.kind,
                    "accepted": decision.accepted,
                    "reason": decision.reason,
                    "path_rates": list(decision.path_rates),
                    "consumed": _consumptions_to_json(consumed),
                }
            )
        self._decision_mark = len(self.scheduler.decisions)
        self.log.append(
            self._stamp(
                {
                    "type": "epoch",
                    "epoch": self.gateway.epoch,
                    "decisions": payload,
                }
            )
        )

    def apply_external(self, app_id: str, consumptions: Consumptions) -> None:
        """Reserve capacity for a cross-shard app (coordinator phase 2)."""
        self._require_alive()
        self.scheduler.reserve_external(app_id, consumptions)
        self.log.append(
            self._stamp(
                {
                    "type": "reserve",
                    "app_id": app_id,
                    "consumed": _consumptions_to_json(consumptions),
                }
            )
        )

    def withdraw(self, app_id: str) -> None:
        """Release one app's reservations (local, adopted, or external)."""
        self._require_alive()
        self.scheduler.withdraw(app_id)
        self._local.pop(app_id, None)
        self._adopted.pop(app_id, None)
        self.log.append(self._stamp({"type": "release", "app_id": app_id}))

    # ------------------------------------------------------------------
    # Failure / warm start
    # ------------------------------------------------------------------
    def kill(self) -> None:
        """Crash this shard: queued requests are lost, the log survives."""
        self._require_alive()
        self.alive = False
        self.gateway.close()

    def warm_start(self) -> None:
        """Restart from the event log instead of re-solving admission.

        Thaws the last logged residual/FCFS snapshots bit-for-bit, then
        adopts every logged live application as an external reservation
        (capacity stays held, duplicate ids stay rejected, withdrawal
        still works).  Raises :class:`~repro.exceptions.ShardError` if
        the shard is still alive or the log is empty.
        """
        if self.alive:
            raise ShardError(f"shard {self.shard_id} is not down")
        state = replay_log(self.log.records())
        self._build()
        self.scheduler.restore_residual(
            ResidualSnapshot(self.network.name, state.residual),
            fcfs=ResidualSnapshot(self.network.name, state.fcfs),
        )
        self._local = {}
        self._adopted = {}
        for app in state.apps:
            self.scheduler.reserve_external(
                app.app_id, app.consumptions, charge=False
            )
            self._adopted[app.app_id] = app
        self.alive = True
        self.log.append(self._stamp({"type": "restart"}))

    def recover(self) -> bool:
        """Warm-start from a log written by an earlier process, if any.

        A fresh process that reopens a durable :class:`ShardEventLog`
        sees the previous incarnation's records but starts with an empty
        scheduler; this replays them (exactly like :meth:`warm_start`
        after an in-process :meth:`kill`) so the shard resumes with every
        reservation re-held before accepting traffic.  Returns ``True``
        when a replay happened, ``False`` when the log was fresh and the
        node is already in its initial state.
        """
        if not self._preexisting:
            return False
        self.alive = False
        self.gateway.close()
        self.warm_start()
        return True

    def adopted_externals(self) -> tuple[str, ...]:
        """Adopted apps that were cross-shard reservations before the crash."""
        return tuple(
            app.app_id
            for app in self._adopted.values()
            if app.origin == "external"
        )

    def close(self) -> None:
        """Release the gateway pool and the log handle."""
        self.gateway.close()
        self.log.close()


# ----------------------------------------------------------------------
# Coordinator
# ----------------------------------------------------------------------
@dataclass
class _CrossPending:
    """One queued cross-shard request with its scheduling metadata."""

    seq: int
    request: BERequest | GRRequest
    kind: str
    weight: float
    attempts: int = 0
    not_before_epoch: int = 0

    def sort_key(self) -> tuple[int, float, int]:
        rank = 0 if self.kind == "GR" else 1
        return (rank, self.seq / self.weight, self.seq)


@dataclass(frozen=True)
class _TicketRef:
    """Where one coordinator ticket's decision lives."""

    app_id: str
    shard_id: int  # LEDGER for cross-shard requests
    local: int  # shard gateway ticket, or the cross seq


@dataclass(frozen=True)
class _CrossApp:
    """A committed cross-shard application and its per-owner reservations."""

    app_id: str
    kind: str
    per_owner: tuple[tuple[int, Consumptions], ...]

    def ledger_consumptions(self) -> Consumptions:
        """The boundary-link part of this app's reservations."""
        for owner, consumptions in self.per_owner:
            if owner == LEDGER:
                return consumptions
        return ()


@dataclass(frozen=True)
class FederationEpochReport:
    """What one :meth:`ShardCoordinator.run_epoch` call did."""

    epoch: int
    shard_reports: tuple[tuple[int, EpochReport], ...]
    cross_batch: int
    cross_committed: int
    cross_accepted: int
    cross_rejected: int
    cross_conflicts: int
    cross_serial_fallbacks: int
    queue_depth: int


@dataclass(frozen=True)
class FederationStats:
    """Running totals over a federation's lifetime (restart-safe)."""

    submitted: int
    cross_submitted: int
    committed: int
    accepted: int
    rejected: int
    cross_conflicts: int
    cross_serial_fallbacks: int
    shards_alive: int
    lost_on_kill: int


class ShardCoordinator:
    """Federated admission over a partitioned network.

    Submits whose pinned hosts all live in one region go straight to that
    region's gateway; unpinned submits round-robin over live regions;
    submits whose pins span regions enter the coordinator's cross-shard
    queue and are admitted by the two-phase reserve/commit protocol
    described in the module docstring.  ``retry_policy`` tunes the
    per-shard gateways, ``cross_retry_policy`` the cross-shard conflict
    budget (both default to :class:`~repro.core.repair.RetryPolicy`'s
    defaults; backoff is measured in coordinator epochs).

    With ``n_shards=1`` the single region subnetwork *is* the global
    network and no request can cross a boundary, so the federation is
    decision-identical to one :class:`AdmissionGateway` with the same
    parameters — the property test pins this down bit-for-bit.

    Use as a context manager (or call :meth:`close`) to release pools
    and log handles.
    """

    def __init__(
        self,
        network: Network,
        *,
        n_shards: int = 2,
        zones: Mapping[str, int] | None = None,
        partition: NetworkPartition | None = None,
        assigner: Assigner = sparcle_assign,
        use_prediction: bool = True,
        workers: int = 0,
        executor: str = "thread",
        max_queue_depth: int = 128,
        batch_size: int | None = None,
        retry_policy: RetryPolicy | None = None,
        cross_retry_policy: RetryPolicy | None = None,
        log_dir: str | Path | None = None,
    ) -> None:
        self.network = network
        if partition is None:
            partition = partition_network(network, n_shards, zones=zones)
        elif partition.network is not network:
            raise ShardError("partition was built for a different network")
        self.partition = partition
        self._assigner = assigner
        self._max_queue_depth = max_queue_depth
        self._cross_retry = cross_retry_policy or retry_policy or RetryPolicy()
        base = Path(log_dir) if log_dir is not None else None
        self._log = ShardEventLog(
            base / "coordinator.jsonl" if base is not None else None
        )
        self._nodes: list[ShardNode] = []
        for shard_id, subnet in enumerate(partition.subnetworks):
            self._nodes.append(
                ShardNode(
                    shard_id,
                    subnet,
                    assigner=assigner,
                    use_prediction=use_prediction,
                    workers=workers,
                    executor=executor,
                    max_queue_depth=max_queue_depth,
                    batch_size=batch_size,
                    retry_policy=retry_policy,
                    log=ShardEventLog(
                        base / f"shard-{shard_id}.jsonl"
                        if base is not None
                        else None
                    ),
                )
            )
        self._owner_cache: dict[str, int] = {
            name: partition.owner_of(name)
            for name in network.element_names()
        }
        self._ledger = CapacityView(network)
        self._apps: dict[str, _CrossApp] = {}
        self._cross_queue: list[_CrossPending] = []
        self._cross_decisions: dict[int, Decision] = {}
        self._decisions: list[Decision] = []
        self._tickets: dict[int, _TicketRef] = {}
        self._all_ids: set[str] = set()
        self._node_marks: list[int] = [0] * partition.n_shards
        self._seq = 0
        self._cross_seq = 0
        self._epoch = 0
        self._rr = 0
        self._submitted = 0
        self._cross_submitted = 0
        self._committed = 0
        self._accepted = 0
        self._rejected = 0
        self._cross_conflicts = 0
        self._cross_fallbacks = 0
        self._lost_on_kill = 0
        #: True when the coordinator log held records from an earlier
        #: process at open time — the signal :meth:`recover` keys off.
        self._log_preexisted = len(self._log) > 0
        if len(self._log) == 0:
            self._log.append(
                {"type": "snapshot", "ledger": _entries_to_json(())}
            )

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def __enter__(self) -> "ShardCoordinator":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    def close(self) -> None:
        """Release every shard's pools/logs and the coordinator log."""
        for node in self._nodes:
            node.close()
        self._log.close()

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def nodes(self) -> tuple[ShardNode, ...]:
        """The region nodes, indexed by shard id."""
        return tuple(self._nodes)

    @property
    def epoch(self) -> int:
        """Coordinator epochs run so far."""
        return self._epoch

    @property
    def decisions(self) -> tuple[Decision, ...]:
        """Every decision across the federation, in commit order."""
        return tuple(self._decisions)

    @property
    def queue_depth(self) -> int:
        """Requests waiting anywhere: live shard queues + cross queue."""
        depth = len(self._cross_queue)
        for node in self._nodes:
            if node.alive:
                depth += node.gateway.queue_depth
        return depth

    @property
    def stats(self) -> FederationStats:
        """A restart-safe snapshot of the federation's running totals."""
        return FederationStats(
            submitted=self._submitted,
            cross_submitted=self._cross_submitted,
            committed=self._committed,
            accepted=self._accepted,
            rejected=self._rejected,
            cross_conflicts=self._cross_conflicts,
            cross_serial_fallbacks=self._cross_fallbacks,
            shards_alive=sum(1 for node in self._nodes if node.alive),
            lost_on_kill=self._lost_on_kill,
        )

    def ledger_entries(self) -> Entries:
        """The boundary-link ledger's residual overrides."""
        return self._ledger.freeze().entries

    def decision_for(self, ticket: int) -> Decision | None:
        """The decision for one :meth:`submit` ticket, if reached yet.

        ``None`` while the request is still queued — and forever, if the
        owning shard was killed before deciding it (the request was lost
        with the crash).
        """
        ref = self._tickets.get(ticket)
        if ref is None:
            return None
        if ref.shard_id == LEDGER:
            return self._cross_decisions.get(ref.local)
        return self._nodes[ref.shard_id].gateway.decision_for(ref.local)

    def decision_reply(self, ticket: int) -> "DecisionReply | None":
        """The wire-typed decision for one ticket, if reached yet.

        :meth:`decision_for` rendered through the versioned protocol —
        the form the serving front-end pushes to network clients.
        """
        from repro.service.protocol import DecisionReply

        decision = self.decision_for(ticket)
        if decision is None:
            return None
        return DecisionReply.from_decision(decision, seq=ticket)

    def residual_state(self) -> dict[str, Entries]:
        """Per-shard residual overrides plus the boundary ledger.

        Keys are ``"shard0"`` ... plus ``"ledger"`` — the comparison
        handle the warm-start and conservation tests use.
        """
        state: dict[str, Entries] = {
            f"shard{node.shard_id}": node.residual_entries()
            for node in self._nodes
        }
        state["ledger"] = self.ledger_entries()
        return state

    # ------------------------------------------------------------------
    # Arrival side
    # ------------------------------------------------------------------
    def _route(self, request: BERequest | GRRequest) -> int:
        """The owning shard id, or :data:`LEDGER` for cross-region pins."""
        shards = {
            self.partition.shard_of(ct.pinned_host)
            for ct in request.graph.cts
            if ct.pinned_host is not None
        }
        if len(shards) == 1:
            return shards.pop()
        if not shards:
            alive = [node.shard_id for node in self._nodes if node.alive]
            if not alive:
                raise ShardError("no live shard to route to")
            choice = alive[self._rr % len(alive)]
            self._rr += 1
            return choice
        return LEDGER

    def submit(
        self, request: "BERequest | GRRequest | SubmitRequest"
    ) -> int:
        """Route one arrival; returns a ticket for :meth:`decision_for`.

        Accepts the in-process request dataclasses and the wire-typed
        :class:`~repro.service.protocol.SubmitRequest` (converted via
        ``to_request()``), so network and in-process callers share one
        entry point.  Raises :class:`~repro.exceptions.AdmissionError`
        for duplicate app ids anywhere in the federation,
        :class:`~repro.exceptions.BackpressureError` when the owning
        queue is full, and :class:`~repro.exceptions.ShardError` when
        every pin lands on a killed shard.
        """
        from repro.service.protocol import SubmitRequest

        if isinstance(request, SubmitRequest):
            request = request.to_request()
        if isinstance(request, GRRequest):
            kind, weight = "GR", 1.0
        elif isinstance(request, BERequest):
            kind, weight = "BE", request.priority
        else:
            raise AdmissionError(
                f"unsupported request type {type(request).__name__!r}"
            )
        app_id = request.app_id
        if app_id in self._all_ids:
            raise AdmissionError(
                f"app id {app_id!r} already queued or admitted"
            )
        home = self._route(request)
        if home == LEDGER:
            if len(self._cross_queue) >= self._max_queue_depth:
                raise BackpressureError(
                    f"cross-shard queue full ({self._max_queue_depth}); "
                    f"request {app_id!r} shed"
                )
            entry = _CrossPending(self._cross_seq, request, kind, weight)
            self._cross_seq += 1
            self._cross_queue.append(entry)
            ref = _TicketRef(app_id, LEDGER, entry.seq)
            self._cross_submitted += 1
        else:
            node = self._nodes[home]
            if not node.alive:
                raise ShardError(
                    f"request {app_id!r} is pinned to killed shard {home}"
                )
            local = node.submit(request)
            ref = _TicketRef(app_id, home, local)
        ticket = self._seq
        self._seq += 1
        self._tickets[ticket] = ref
        self._all_ids.add(app_id)
        self._submitted += 1
        return ticket

    # ------------------------------------------------------------------
    # Epoch machinery
    # ------------------------------------------------------------------
    def run_epoch(self) -> FederationEpochReport:
        """Run one epoch on every live shard, then the cross-shard batch."""
        self._epoch += 1
        shard_reports: list[tuple[int, EpochReport]] = []
        for node in self._nodes:
            if node.alive:
                shard_reports.append((node.shard_id, node.run_epoch()))
                self._absorb_node_decisions(node)
        batch, committed, accepted, rejected, conflicts, fallbacks = (
            self._run_cross_epoch()
        )
        return FederationEpochReport(
            epoch=self._epoch,
            shard_reports=tuple(shard_reports),
            cross_batch=batch,
            cross_committed=committed,
            cross_accepted=accepted,
            cross_rejected=rejected,
            cross_conflicts=conflicts,
            cross_serial_fallbacks=fallbacks,
            queue_depth=self.queue_depth,
        )

    def _absorb_node_decisions(self, node: ShardNode) -> None:
        mark = self._node_marks[node.shard_id]
        news = node.gateway.decisions[mark:]
        self._node_marks[node.shard_id] = len(node.gateway.decisions)
        for decision in news:
            self._decisions.append(decision)
            self._committed += 1
            if decision.accepted:
                self._accepted += 1
            else:
                self._rejected += 1
                # A rejected id may be resubmitted, like on a bare gateway.
                self._all_ids.discard(decision.app_id)

    def _merged_entries(self) -> list[tuple[str, str, float]]:
        """The phase-1 merged residual basis over the global network.

        Live shards contribute their frozen residual overrides; dead
        shards contribute zeros for every element they own (nothing can
        be placed into a crashed region); the boundary ledger contributes
        its overrides, with boundary links into dead regions zeroed last.
        """
        entries: list[tuple[str, str, float]] = []
        for node in self._nodes:
            if node.alive:
                entries.extend(node.residual_entries())
            else:
                for ncp in node.network.ncps:
                    for resource in ncp.capacities:
                        entries.append((ncp.name, resource, 0.0))
                for link in node.network.links:
                    entries.append((link.name, BANDWIDTH, 0.0))
        entries.extend(self._ledger.freeze().entries)
        for name in self.partition.boundary_links:
            link = self.network.link(name)
            owner_a = self.partition.shard_of(link.a)
            owner_b = self.partition.shard_of(link.b)
            if not (self._nodes[owner_a].alive and self._nodes[owner_b].alive):
                entries.append((name, BANDWIDTH, 0.0))
        return entries

    def _thaw_merged(
        self, entries: Sequence[tuple[str, str, float]]
    ) -> CapacityView:
        view = CapacityView(self.network)
        for element, resource, value in entries:
            view.override(element, resource, value)
        return view

    def _split_loads(
        self, proposal: AdmissionProposal
    ) -> dict[int, list[tuple[Loads, float]]]:
        """Partition a proposal's loads by owner (shards + ledger)."""
        per_owner: dict[int, list[tuple[Loads, float]]] = {}
        for placement, rate in zip(proposal.placements, proposal.path_rates):
            split: dict[int, Loads] = {}
            for element, bucket in placement.loads().items():
                owner = self._owner_cache[element]
                split.setdefault(owner, {})[element] = dict(bucket)
            for owner, loads in split.items():
                per_owner.setdefault(owner, []).append((loads, rate))
        return per_owner

    def _commit_cross(
        self, request: BERequest | GRRequest, proposal: AdmissionProposal
    ) -> Decision:
        """Phase 2: optimistic revalidation, then per-owner reservation."""
        app_id = request.app_id
        working = self._thaw_merged(self._merged_entries())
        try:
            for placement, rate in zip(
                proposal.placements, proposal.path_rates
            ):
                working.consume(placement.loads(), rate)
        except PlacementError as error:
            raise StaleProposalError(
                f"cross-shard proposal for {app_id!r} no longer fits the "
                f"live residuals: {error}"
            ) from error
        per_owner = self._split_loads(proposal)
        applied: list[int] = []
        try:
            for owner, consumptions in per_owner.items():
                if owner == LEDGER:
                    continue
                self._nodes[owner].apply_external(
                    app_id, tuple(consumptions)
                )
                applied.append(owner)
            for loads, rate in per_owner.get(LEDGER, []):
                self._ledger.consume(loads, rate)
        except PlacementError as error:
            for owner in applied:
                self._nodes[owner].withdraw(app_id)
            # The ledger may have consumed a prefix of the boundary
            # entries before the failure; re-derive it from the app
            # table so the partial consumption cannot leak capacity.
            self._rebuild_ledger()
            raise StaleProposalError(
                f"cross-shard reservation for {app_id!r} aborted at an "
                f"owner: {error}"
            ) from error
        self._apps[app_id] = _CrossApp(
            app_id=app_id,
            kind=proposal.kind,
            per_owner=tuple(
                (owner, tuple(consumptions))
                for owner, consumptions in per_owner.items()
            ),
        )
        self._log.append(
            {
                "type": "commit",
                "app_id": app_id,
                "kind": proposal.kind,
                "consumed": _consumptions_to_json(
                    tuple(per_owner.get(LEDGER, []))
                ),
                "ledger": _entries_to_json(self.ledger_entries()),
            }
        )
        return Decision(
            app_id,
            proposal.kind,
            True,
            proposal.placements,
            proposal.path_rates,
            proposal.availability,
        )

    def _serial_cross(self, entry: _CrossPending) -> Decision:
        """Global serial fallback: evaluate+commit against live state."""
        self._cross_fallbacks += 1
        view = self._thaw_merged(self._merged_entries())
        proposal = evaluate_admission(
            entry.request, self.network, view, assigner=self._assigner
        )
        if not proposal.accepted:
            return Decision(
                entry.request.app_id, entry.kind, False, reason=proposal.reason
            )
        return self._commit_cross(entry.request, proposal)

    def _requeue_or_fallback(
        self, entry: _CrossPending
    ) -> Decision | None:
        """Handle one stale cross proposal; returns a decision on fallback."""
        entry.attempts += 1
        self._cross_conflicts += 1
        if entry.attempts >= self._cross_retry.max_attempts:
            return self._serial_cross(entry)
        entry.not_before_epoch = self._epoch + 1 + int(
            self._cross_retry.delay(entry.attempts)
        )
        self._cross_queue.append(entry)
        return None

    def _record_cross(self, entry: _CrossPending, decision: Decision) -> None:
        self._cross_decisions[entry.seq] = decision
        self._decisions.append(decision)
        self._committed += 1
        if decision.accepted:
            self._accepted += 1
        else:
            self._rejected += 1
            self._all_ids.discard(decision.app_id)

    def _run_cross_epoch(self) -> tuple[int, int, int, int, int, int]:
        eligible = [
            entry
            for entry in self._cross_queue
            if entry.not_before_epoch <= self._epoch
        ]
        self._cross_queue = [
            entry
            for entry in self._cross_queue
            if entry.not_before_epoch > self._epoch
        ]
        eligible.sort(key=_CrossPending.sort_key)
        committed = accepted = rejected = conflicts = fallbacks = 0
        if not eligible:
            return (0, 0, 0, 0, 0, 0)
        basis = self._merged_entries()
        proposals = [
            evaluate_admission(
                entry.request,
                self.network,
                self._thaw_merged(basis),
                assigner=self._assigner,
            )
            for entry in eligible
        ]
        for entry, proposal in zip(eligible, proposals):
            if not proposal.accepted:
                # Capacity only shrinks between the phase-1 snapshot and
                # phase 2, so a snapshot-time reject is final.
                decision = Decision(
                    entry.request.app_id,
                    entry.kind,
                    False,
                    reason=proposal.reason,
                )
            else:
                try:
                    decision = self._commit_cross(entry.request, proposal)
                except StaleProposalError:
                    before = self._cross_conflicts
                    fallback = self._requeue_or_fallback(entry)
                    conflicts += self._cross_conflicts - before
                    if fallback is None:
                        continue
                    decision = fallback
                    fallbacks += 1
            committed += 1
            if decision.accepted:
                accepted += 1
            else:
                rejected += 1
            self._record_cross(entry, decision)
        return (
            len(eligible),
            committed,
            accepted,
            rejected,
            conflicts,
            fallbacks,
        )

    # ------------------------------------------------------------------
    # Convenience drivers
    # ------------------------------------------------------------------
    def drain(self) -> list[FederationEpochReport]:
        """Run epochs until every queue is empty; returns the reports."""
        reports: list[FederationEpochReport] = []
        for _ in range(MAX_DRAIN_EPOCHS):
            if self.queue_depth == 0:
                return reports
            reports.append(self.run_epoch())
        raise ShardError(
            f"drain did not converge within {MAX_DRAIN_EPOCHS} epochs "
            f"({self.queue_depth} requests still queued)"
        )

    def process(
        self, requests: Sequence[BERequest | GRRequest]
    ) -> list[Decision | None]:
        """Submit a burst and drain it; decisions in submission order."""
        tickets = [self.submit(request) for request in requests]
        self.drain()
        return [self.decision_for(ticket) for ticket in tickets]

    # ------------------------------------------------------------------
    # Lifecycle: departures and shard failures
    # ------------------------------------------------------------------
    def withdraw(self, app_id: str) -> None:
        """Release one application's reservations, wherever they live."""
        app = self._apps.pop(app_id, None)
        if app is not None:
            for owner, _ in app.per_owner:
                if owner == LEDGER:
                    continue
                node = self._nodes[owner]
                if node.alive:
                    node.withdraw(app_id)
                # A dead owner's log keeps the reservation; the restart
                # path reconciles it against the coordinator's app table.
            self._rebuild_ledger()
            self._log.append({"type": "release", "app_id": app_id})
            self._all_ids.discard(app_id)
            return
        for node in self._nodes:
            if node.alive and node.scheduler.has_app(app_id):
                node.withdraw(app_id)
                self._all_ids.discard(app_id)
                return
        raise AdmissionError(f"no admitted app {app_id!r} to withdraw")

    def _rebuild_ledger(self) -> None:
        view = CapacityView(self.network)
        for app in self._apps.values():
            for loads, rate in app.ledger_consumptions():
                view.consume(loads, rate, clamp=True)
        self._ledger = view
        self._log.append(
            {"type": "ledger", "ledger": _entries_to_json(self.ledger_entries())}
        )

    def kill_shard(self, shard_id: int) -> int:
        """Crash one shard; returns how many queued requests were lost."""
        node = self._node(shard_id)
        lost = 0
        for ref in self._tickets.values():
            if ref.shard_id != shard_id:
                continue
            if node.gateway.decision_for(ref.local) is None:
                self._all_ids.discard(ref.app_id)
                lost += 1
        node.kill()
        self._lost_on_kill += lost
        self._log.append(
            {"type": "shard_kill", "shard": shard_id, "lost": lost}
        )
        return lost

    def restart_shard(self, shard_id: int) -> None:
        """Warm-start one killed shard from its event log.

        After the replay, adopted cross-shard reservations are reconciled
        against the coordinator's live app table: reservations whose app
        was withdrawn globally while the shard was down are released.
        """
        node = self._node(shard_id)
        node.warm_start()
        self._node_marks[shard_id] = 0
        for app_id in node.adopted_externals():
            if app_id not in self._apps:
                node.withdraw(app_id)
        self._log.append({"type": "shard_restart", "shard": shard_id})

    def recover(self) -> int:
        """Warm-start the whole federation from pre-existing event logs.

        Call once, right after constructing a coordinator over the same
        ``log_dir`` a previous (crashed) process wrote, **before**
        submitting any traffic.  Every shard replays its own log
        (:meth:`ShardNode.recover`), then the coordinator log is replayed
        to rebuild the cross-shard app table, the boundary ledger, and
        the global duplicate-id set — so every reservation the crashed
        process committed stays held and every admitted app id stays
        rejected as a duplicate.  Queued-but-undecided requests are not
        recovered (the logs are decision logs, not arrival logs);
        clients resubmit them.

        Returns the number of live applications recovered; ``0`` when
        the logs were fresh and there was nothing to replay.
        """
        if not self._log_preexisted:
            for node in self._nodes:
                node.recover()
            return 0
        for node in self._nodes:
            node.recover()
        self._node_marks = [0] * self.partition.n_shards
        # Rebuild the cross-shard app table from the coordinator log:
        # a "commit" record carries the app's boundary-link consumptions,
        # a "release" retires it.
        kinds: dict[str, str] = {}
        ledger_parts: dict[str, Consumptions] = {}
        for record in self._log.records():
            rtype = record.get("type")
            if rtype == "commit":
                app_id = str(record["app_id"])
                kinds[app_id] = str(record["kind"])
                ledger_parts[app_id] = _consumptions_from_json(
                    record["consumed"]
                )
            elif rtype == "release":
                app_id = str(record["app_id"])
                kinds.pop(app_id, None)
                ledger_parts.pop(app_id, None)
        self._apps = {}
        for app_id, kind in kinds.items():
            per_owner: list[tuple[int, Consumptions]] = []
            if ledger_parts[app_id]:
                per_owner.append((LEDGER, ledger_parts[app_id]))
            for node in self._nodes:
                if app_id in node.scheduler.external_tags():
                    per_owner.append(
                        (
                            node.shard_id,
                            node.scheduler.external_consumptions(app_id),
                        )
                    )
            self._apps[app_id] = _CrossApp(
                app_id=app_id, kind=kind, per_owner=tuple(per_owner)
            )
        # Reservations whose cross-shard app was withdrawn globally while
        # a shard was down were already reconciled by restart_shard in the
        # crashed process when possible; re-run the same reconciliation
        # here for adopted externals the coordinator no longer tracks.
        for node in self._nodes:
            for app_id in node.adopted_externals():
                if app_id not in self._apps:
                    node.withdraw(app_id)
        self._all_ids = set(self._apps)
        for node in self._nodes:
            self._all_ids.update(node.live_apps())
        self._ledger = CapacityView(self.network)
        for app in self._apps.values():
            for loads, rate in app.ledger_consumptions():
                self._ledger.consume(loads, rate, clamp=True)
        recovered = len(self._all_ids)
        self._log.append(
            {
                "type": "recover",
                "apps": sorted(self._all_ids),
                "ledger": _entries_to_json(self.ledger_entries()),
            }
        )
        return recovered

    def _node(self, shard_id: int) -> ShardNode:
        if not 0 <= shard_id < len(self._nodes):
            raise ShardError(f"no shard {shard_id}")
        return self._nodes[shard_id]

    def cross_apps(self) -> Iterator[tuple[str, tuple[tuple[int, Consumptions], ...]]]:
        """Live cross-shard apps and their per-owner reservations."""
        for app in self._apps.values():
            yield app.app_id, app.per_owner
