"""Async client for the SPARCLE serving front-end.

:class:`SparcleClient` speaks the JSON-lines protocol of
:mod:`repro.service.protocol` over one TCP connection.  A background
reader task demultiplexes the two reply streams a connection carries:

* **direct replies** (``submit_reply``/``error``/``withdraw_reply``/
  ``status_reply``/``topology_reply``/``drain_reply``) resolve the
  request that carried the same ``seq``;
* **pushed decisions** (:class:`~repro.service.protocol.DecisionReply`)
  arrive whenever the server's epoch loop decides a submitted app —
  possibly long after the submit ack — and resolve the per-submit
  decision future (also retrievable by app id).

Server-side errors come back as typed exceptions mirroring the
in-process API: an ``ErrorReply(code="backpressure")`` raises
:class:`~repro.exceptions.BackpressureError` exactly like a full
in-process gateway queue would, ``"duplicate"``/``"admission"`` raise
:class:`~repro.exceptions.AdmissionError`, and so on — code against one
exception surface whether the gateway is in-process or remote.

:meth:`SparcleClient.process` is the closed-loop driver the soak and the
benchmark use: submit with a bounded window, await decisions to refill
it, retry backpressure sheds, and return decisions in submission order.
"""

from __future__ import annotations

import asyncio
import dataclasses

from repro.core.scheduler import BERequest, GRRequest
from repro.exceptions import (
    AdmissionError,
    BackpressureError,
    ProtocolError,
    ServerError,
    ShardError,
    SparcleError,
)
from repro.service.protocol import (
    WIRE_LINE_LIMIT,
    DecisionReply,
    DrainReply,
    DrainRequest,
    ErrorReply,
    Message,
    StatusReply,
    StatusRequest,
    SubmitReply,
    SubmitRequest,
    TopologyReply,
    TopologyRequest,
    WithdrawReply,
    WithdrawRequest,
    decode,
    encode,
)

#: How an ``ErrorReply`` code maps back onto the library's exceptions.
_ERROR_TYPES: dict[str, type[SparcleError]] = {
    "protocol": ProtocolError,
    "backpressure": BackpressureError,
    "duplicate": AdmissionError,
    "admission": AdmissionError,
    "draining": ServerError,
    "shard": ShardError,
    "unknown": ServerError,
}


def error_to_exception(reply: ErrorReply) -> SparcleError:
    """The typed exception an :class:`ErrorReply` stands for."""
    return _ERROR_TYPES.get(reply.code, ServerError)(reply.message)


class SparcleClient:
    """One JSON-lines session against a :class:`SparcleServer`.

    Use :meth:`open` (or the async context manager) to connect::

        async with await SparcleClient.open(host, port) as client:
            ticket = await client.submit(request)
            decision = await client.decision(request.app_id)

    Not task-safe for concurrent ``submit`` calls by design — drive one
    client per logical producer, or serialize submits; decisions may be
    awaited concurrently.
    """

    def __init__(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        self._reader = reader
        self._writer = writer
        self._seq = 0
        self._direct: dict[int, asyncio.Future[Message]] = {}
        self._decision_futures: dict[str, asyncio.Future[DecisionReply]] = {}
        self.decisions: dict[str, DecisionReply] = {}
        self._closed = False
        self._read_task = asyncio.get_running_loop().create_task(
            self._read_loop()
        )

    @classmethod
    async def open(
        cls, host: str = "127.0.0.1", port: int = 0
    ) -> "SparcleClient":
        """Connect to a serving front-end."""
        reader, writer = await asyncio.open_connection(
            host, port, limit=WIRE_LINE_LIMIT
        )
        return cls(reader, writer)

    async def __aenter__(self) -> "SparcleClient":
        return self

    async def __aexit__(self, *exc_info: object) -> None:
        await self.close()

    async def close(self) -> None:
        """Tear down the connection and fail anything still waiting."""
        if self._closed:
            return
        self._closed = True
        self._read_task.cancel()
        try:
            await self._read_task
        except asyncio.CancelledError:
            pass
        except (ConnectionError, ProtocolError):
            pass
        if not self._writer.is_closing():
            self._writer.close()
        self._fail_waiters(ServerError("client closed"))

    # ------------------------------------------------------------------
    # Reader task
    # ------------------------------------------------------------------
    async def _read_loop(self) -> None:
        try:
            while True:
                line = await self._reader.readline()
                if not line:
                    break
                self._dispatch(decode(line))
        except ConnectionError:
            pass
        finally:
            self._fail_waiters(
                ConnectionResetError("server connection closed")
            )

    def _dispatch(self, message: Message) -> None:
        if isinstance(message, DecisionReply):
            self.decisions[message.app_id] = message
            future = self._decision_futures.pop(message.app_id, None)
            if future is not None and not future.done():
                future.set_result(message)
            # An error tied to a submit seq also unblocks the direct
            # waiter below; a decision never does (the ack already did).
            return
        seq = getattr(message, "seq", 0)
        future = self._direct.pop(int(seq), None)
        if future is not None and not future.done():
            future.set_result(message)

    def _fail_waiters(self, error: BaseException) -> None:
        for future in list(self._direct.values()):
            if not future.done():
                future.set_exception(error)
                future.exception()  # mark retrieved: waiters may be gone
        self._direct.clear()
        for future in list(self._decision_futures.values()):
            if not future.done():
                future.set_exception(error)
                future.exception()
        self._decision_futures.clear()

    # ------------------------------------------------------------------
    # Requests
    # ------------------------------------------------------------------
    async def _request(self, message: Message) -> Message:
        if self._closed:
            raise ServerError("client is closed")
        future: asyncio.Future[Message] = (
            asyncio.get_running_loop().create_future()
        )
        seq = int(getattr(message, "seq", 0))
        self._direct[seq] = future
        self._writer.write(encode(message))
        await self._writer.drain()
        return await future

    def _next_seq(self) -> int:
        self._seq += 1
        return self._seq

    async def submit(
        self, request: BERequest | GRRequest | SubmitRequest
    ) -> int:
        """Submit one application; returns the server's queue ticket.

        Raises the same exceptions the in-process gateway would —
        :class:`~repro.exceptions.BackpressureError` when shed (inflight
        window or arrival queue full), :class:`~repro.exceptions
        .AdmissionError` for duplicates/invalid parameters,
        :class:`~repro.exceptions.ServerError` while draining.  The
        admission *decision* arrives later; await :meth:`decision`.
        """
        seq = self._next_seq()
        if isinstance(request, SubmitRequest):
            wire = dataclasses.replace(request, seq=seq)
        else:
            wire = SubmitRequest.from_request(request, seq=seq)
        future: asyncio.Future[DecisionReply] = (
            asyncio.get_running_loop().create_future()
        )
        self._decision_futures.setdefault(wire.app_id, future)
        try:
            reply = await self._request(wire)
        except BaseException:  # sparcle: ignore[SPC006] reraised; must also unregister on CancelledError
            if self._decision_futures.get(wire.app_id) is future:
                del self._decision_futures[wire.app_id]
            raise
        if isinstance(reply, ErrorReply):
            if self._decision_futures.get(wire.app_id) is future:
                del self._decision_futures[wire.app_id]
            raise error_to_exception(reply)
        assert isinstance(reply, SubmitReply)
        return reply.ticket

    async def decision(self, app_id: str) -> DecisionReply:
        """Wait for (or fetch) the admission decision of one app."""
        done = self.decisions.get(app_id)
        if done is not None:
            return done
        future = self._decision_futures.get(app_id)
        if future is None:
            future = asyncio.get_running_loop().create_future()
            self._decision_futures[app_id] = future
        return await future

    async def withdraw(self, app_id: str) -> WithdrawReply:
        """Release one admitted application's reservations."""
        reply = await self._request(
            WithdrawRequest(app_id=app_id, seq=self._next_seq())
        )
        if isinstance(reply, ErrorReply):
            raise error_to_exception(reply)
        assert isinstance(reply, WithdrawReply)
        return reply

    async def status(self) -> StatusReply:
        """The server's counters and lifecycle state."""
        reply = await self._request(StatusRequest(seq=self._next_seq()))
        if isinstance(reply, ErrorReply):
            raise error_to_exception(reply)
        assert isinstance(reply, StatusReply)
        return reply

    async def topology(self) -> TopologyReply:
        """The shard layout behind the endpoint."""
        reply = await self._request(TopologyRequest(seq=self._next_seq()))
        if isinstance(reply, ErrorReply):
            raise error_to_exception(reply)
        assert isinstance(reply, TopologyReply)
        return reply

    async def drain(self) -> DrainReply:
        """Gracefully drain the server (it decides queued work and stops)."""
        reply = await self._request(DrainRequest(seq=self._next_seq()))
        if isinstance(reply, ErrorReply):
            raise error_to_exception(reply)
        assert isinstance(reply, DrainReply)
        return reply

    # ------------------------------------------------------------------
    # Closed-loop driver
    # ------------------------------------------------------------------
    async def process(
        self,
        requests: list[BERequest | GRRequest | SubmitRequest],
        *,
        window: int = 8,
        max_retries: int = 64,
    ) -> list[DecisionReply | None]:
        """Submit a burst closed-loop and return decisions in order.

        Keeps at most ``window`` submits awaiting decisions; a
        :class:`~repro.exceptions.BackpressureError` shed yields to let
        decisions flush and then retries (up to ``max_retries`` per
        request).  Duplicate rejections surface as ``None`` entries;
        other admission rejections are decisions and appear as rejected
        :class:`DecisionReply` objects.
        """
        results: list[DecisionReply | None] = [None] * len(requests)
        app_ids: list[str] = []
        inflight: set[str] = set()
        for index, request in enumerate(requests):
            app_id = request.app_id
            app_ids.append(app_id)
            attempts = 0
            while True:
                if len(inflight) >= window:
                    waited = await self.decision(next(iter(inflight)))
                    inflight.discard(waited.app_id)
                try:
                    await self.submit(request)
                except BackpressureError:
                    attempts += 1
                    if attempts > max_retries:
                        raise
                    if inflight:
                        waited = await self.decision(next(iter(inflight)))
                        inflight.discard(waited.app_id)
                    else:
                        await asyncio.sleep(0.01)
                    continue
                except AdmissionError:
                    break  # duplicate or invalid: no decision will come
                inflight.add(app_id)
                break
        for index, app_id in enumerate(app_ids):
            if app_id in inflight or app_id in self.decisions:
                results[index] = await self.decision(app_id)
        return results


async def scrape_metrics(host: str, port: int) -> str:
    """Fetch the Prometheus ``/metrics`` page from a serving front-end."""
    reader, writer = await asyncio.open_connection(host, port)
    try:
        writer.write(
            f"GET /metrics HTTP/1.1\r\nHost: {host}:{port}\r\n\r\n".encode(
                "latin-1"
            )
        )
        await writer.drain()
        raw = await reader.read()
    finally:
        writer.close()
    head, _, body = raw.partition(b"\r\n\r\n")
    if not head.startswith(b"HTTP/1.1 200"):
        raise ServerError(
            f"/metrics returned {head.splitlines()[0].decode('latin-1')!r}"
        )
    return body.decode("utf-8")


__all__ = [
    "SparcleClient",
    "error_to_exception",
    "scrape_metrics",
]
