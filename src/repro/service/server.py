"""Asyncio serving front-end over the sharded control plane.

:class:`SparcleServer` turns the in-process admission machinery — the
:class:`~repro.service.shard.ShardCoordinator` federation, or a single
:class:`~repro.service.gateway.AdmissionGateway` in ``no_shards`` mode —
into a long-running network service speaking the versioned JSON-lines
protocol of :mod:`repro.service.protocol` (the paper's Fig.-3 admission
controller as an online system instead of batch replay).

Design
------
*One port, two protocols.*  A connection whose first line starts with
``GET `` or ``HEAD `` is served as minimal HTTP — ``/metrics`` renders
the Prometheus text exposition from :func:`repro.perf.exporters
.prometheus_snapshot` and ``/healthz`` reports liveness — then closed.
Anything else is a JSON-lines session: one request object per line in,
one reply object per line out, plus asynchronously pushed
:class:`~repro.service.protocol.DecisionReply` lines when the epoch loop
decides a submitted application.

*The backend stays single-threaded.*  The gateway and coordinator are
explicitly not thread-safe: submits, epochs, and drains must come from
one thread.  Every backend call here runs synchronously on the event
loop (no ``await`` between entering and leaving the backend), so
concurrent client connections are multiplexed onto the same
single-threaded control-loop contract the in-process API has.

*Backpressure is layered.*  Each connection has a bounded inflight
window (``max_inflight`` submits awaiting decisions); past it, submits
are shed with an ``ErrorReply(code="backpressure")`` before they reach
the backend — the same treatment the backend's own
:class:`~repro.exceptions.BackpressureError` (bounded arrival queue)
receives.  Shed requests were never enqueued; clients resubmit.

*Recovery is the event log.*  ``recover=True`` warm-starts every shard
from its :class:`~repro.service.shard.ShardEventLog` (and the
coordinator from its own log) **before** the listening socket opens, so
a restarted server re-holds every committed reservation and keeps
rejecting admitted app ids as duplicates — zero double-admissions across
a crash.  Queued-but-undecided requests are not replayed (the logs are
decision logs); clients detect the dropped connection and resubmit.

Observability: ``server.*`` counters (``accepted``/``shed``/
``recovered``/``inflight``/...) land in the
:class:`~repro.perf.metrics.LabeledRegistry` and therefore in
``/metrics`` as ``sparcle_server_*``; per-connection trace spans are
emitted when a tracer is installed.
"""

from __future__ import annotations

import asyncio
import contextlib
import signal
import sys
from collections.abc import Mapping
from dataclasses import dataclass
from pathlib import Path
from typing import Any

from repro.core.assignment import sparcle_assign
from repro.core.network import Network
from repro.core.repair import RetryPolicy
from repro.core.scheduler import Assigner, Decision, SparcleScheduler
from repro.exceptions import (
    AdmissionError,
    BackpressureError,
    ProtocolError,
    ServerError,
    ShardError,
    SparcleError,
)
from repro.perf import tracing
from repro.perf.exporters import prometheus_snapshot
from repro.perf.metrics import LabeledRegistry, get_metrics
from repro.service.gateway import MAX_DRAIN_EPOCHS, AdmissionGateway
from repro.service.protocol import (
    PROTOCOL_VERSION,
    WIRE_LINE_LIMIT,
    DecisionReply,
    DrainReply,
    DrainRequest,
    ErrorReply,
    Message,
    StatusReply,
    StatusRequest,
    SubmitReply,
    SubmitRequest,
    TopologyReply,
    TopologyRequest,
    WithdrawReply,
    WithdrawRequest,
    parse_request,
)
from repro.service.protocol import encode as encode_message
from repro.service.shard import ShardCoordinator


# ----------------------------------------------------------------------
# Backends: one uniform, single-threaded surface over gateway/federation
# ----------------------------------------------------------------------
class _GatewayBackend:
    """``no_shards`` mode: one scheduler + one admission gateway."""

    name = "gateway"

    def __init__(
        self,
        network: Network,
        *,
        assigner: Assigner,
        workers: int,
        executor: str,
        max_queue_depth: int,
        batch_size: int | None,
        retry_policy: RetryPolicy | None,
    ) -> None:
        self.scheduler = SparcleScheduler(network, assigner=assigner)
        self.gateway = AdmissionGateway(
            self.scheduler,
            workers=workers,
            executor=executor,
            max_queue_depth=max_queue_depth,
            batch_size=batch_size,
            retry_policy=retry_policy,
        )

    @property
    def queue_depth(self) -> int:
        return self.gateway.queue_depth

    @property
    def epoch(self) -> int:
        return self.gateway.epoch

    def submit(self, request: SubmitRequest) -> int:
        return self.gateway.submit(request)

    def run_epoch(self) -> None:
        self.gateway.run_epoch()

    def decision_for(self, ticket: int) -> Decision | None:
        return self.gateway.decision_for(ticket)

    def withdraw(self, app_id: str) -> None:
        if not self.scheduler.has_app(app_id):
            raise AdmissionError(f"no admitted app {app_id!r} to withdraw")
        self.scheduler.withdraw(app_id)

    def recover(self) -> int:
        raise ServerError(
            "recover requires the sharded backend with a durable log_dir "
            "(no_shards mode keeps no event log)"
        )

    def shard_entries(self) -> tuple[dict[str, Any], ...]:
        return (
            {
                "shard": 0,
                "ncps": len(self.scheduler.network.ncps),
                "alive": True,
                "apps": len(self.scheduler.app_ids()),
            },
        )

    def boundary_links(self) -> int:
        return 0

    def close(self) -> None:
        self.gateway.close()


class _FederationBackend:
    """Default mode: a :class:`ShardCoordinator` over a partitioned net."""

    name = "shards"

    def __init__(
        self,
        network: Network,
        *,
        n_shards: int,
        zones: Mapping[str, int] | None,
        assigner: Assigner,
        workers: int,
        executor: str,
        max_queue_depth: int,
        batch_size: int | None,
        retry_policy: RetryPolicy | None,
        log_dir: str | Path | None,
    ) -> None:
        self.coordinator = ShardCoordinator(
            network,
            n_shards=n_shards,
            zones=zones,
            assigner=assigner,
            workers=workers,
            executor=executor,
            max_queue_depth=max_queue_depth,
            batch_size=batch_size,
            retry_policy=retry_policy,
            log_dir=log_dir,
        )
        self._durable = log_dir is not None

    @property
    def queue_depth(self) -> int:
        return self.coordinator.queue_depth

    @property
    def epoch(self) -> int:
        return self.coordinator.epoch

    def submit(self, request: SubmitRequest) -> int:
        return self.coordinator.submit(request)

    def run_epoch(self) -> None:
        self.coordinator.run_epoch()

    def decision_for(self, ticket: int) -> Decision | None:
        return self.coordinator.decision_for(ticket)

    def withdraw(self, app_id: str) -> None:
        self.coordinator.withdraw(app_id)

    def recover(self) -> int:
        if not self._durable:
            raise ServerError(
                "recover requires a durable log_dir: without one there is "
                "no ShardEventLog to warm-start from"
            )
        return self.coordinator.recover()

    def shard_entries(self) -> tuple[dict[str, Any], ...]:
        return tuple(
            {
                "shard": node.shard_id,
                "ncps": len(node.network.ncps),
                "alive": node.alive,
                "apps": len(node.live_apps()),
            }
            for node in self.coordinator.nodes
        )

    def boundary_links(self) -> int:
        return len(self.coordinator.partition.boundary_links)

    def close(self) -> None:
        self.coordinator.close()


# ----------------------------------------------------------------------
# Connection bookkeeping
# ----------------------------------------------------------------------
@dataclass
class _Connection:
    """One live JSON-lines session and its inflight window."""

    conn_id: int
    writer: asyncio.StreamWriter
    inflight: int = 0
    requests: int = 0

    def send(self, message: Message) -> None:
        if not self.writer.is_closing():
            self.writer.write(encode_message(message))


@dataclass(frozen=True)
class _PendingDecision:
    """Where one backend ticket's decision must be delivered."""

    conn: _Connection
    seq: int
    app_id: str


_HTTP_OK = (
    "HTTP/1.1 200 OK\r\n"
    "Content-Type: {ctype}\r\n"
    "Content-Length: {length}\r\n"
    "Connection: close\r\n\r\n"
)
_HTTP_NOT_FOUND = (
    "HTTP/1.1 404 Not Found\r\n"
    "Content-Length: 0\r\n"
    "Connection: close\r\n\r\n"
)


class SparcleServer:
    """The serving front-end; see the module docstring for the design.

    Construct, then ``await start()`` (binds the socket, recovers state
    when asked), then ``await wait_closed()`` — or use it as an async
    context manager.  ``port=0`` binds an ephemeral port, published as
    ``self.port`` after :meth:`start`.
    """

    def __init__(
        self,
        network: Network,
        *,
        host: str = "127.0.0.1",
        port: int = 0,
        no_shards: bool = False,
        n_shards: int = 2,
        zones: Mapping[str, int] | None = None,
        assigner: Assigner = sparcle_assign,
        workers: int = 0,
        executor: str = "thread",
        max_queue_depth: int = 128,
        batch_size: int | None = None,
        retry_policy: RetryPolicy | None = None,
        log_dir: str | Path | None = None,
        max_inflight: int = 8,
        epoch_interval: float = 0.02,
        recover: bool = False,
        install_signal_handlers: bool = False,
        registry: LabeledRegistry | None = None,
    ) -> None:
        if max_inflight < 1:
            raise ServerError(
                f"max_inflight must be positive, got {max_inflight}"
            )
        if epoch_interval <= 0:
            raise ServerError(
                f"epoch_interval must be positive, got {epoch_interval}"
            )
        self.network = network
        self.host = host
        self.port = port
        self.max_inflight = max_inflight
        self.epoch_interval = epoch_interval
        self._recover_requested = recover
        self._install_signals = install_signal_handlers
        self._metrics = registry if registry is not None else get_metrics()
        self.backend: _GatewayBackend | _FederationBackend
        if no_shards:
            if recover:
                # Fail fast at construction: there is no log to replay.
                raise ServerError(
                    "recover requires the sharded backend with a durable "
                    "log_dir (no_shards mode keeps no event log)"
                )
            self.backend = _GatewayBackend(
                network,
                assigner=assigner,
                workers=workers,
                executor=executor,
                max_queue_depth=max_queue_depth,
                batch_size=batch_size,
                retry_policy=retry_policy,
            )
        else:
            self.backend = _FederationBackend(
                network,
                n_shards=n_shards,
                zones=zones,
                assigner=assigner,
                workers=workers,
                executor=executor,
                max_queue_depth=max_queue_depth,
                batch_size=batch_size,
                retry_policy=retry_policy,
                log_dir=log_dir,
            )
        self._server: asyncio.Server | None = None
        self._epoch_task: asyncio.Task[None] | None = None
        self._shutdown_task: asyncio.Task[None] | None = None
        self._wakeup = asyncio.Event()
        self._closed = asyncio.Event()
        self._connections: dict[int, _Connection] = {}
        self._session_tasks: set[asyncio.Task[None]] = set()
        self._pending: dict[int, _PendingDecision] = {}
        self._conn_seq = 0
        self._draining = False
        self._stopping = False
        self.recovered = 0
        # Running totals mirrored into the metrics registry.
        self._submitted = 0
        self._accepted_decisions = 0
        self._rejected_decisions = 0
        self._shed = 0

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    async def __aenter__(self) -> "SparcleServer":
        await self.start()
        return self

    async def __aexit__(self, *exc_info: object) -> None:
        await self.shutdown()

    async def start(self) -> None:
        """Recover state (when asked), bind, and start the epoch loop."""
        if self._server is not None:
            raise ServerError("server already started")
        if self._recover_requested:
            self.recovered = self.backend.recover()
            self._metrics.incr("server.recovered", self.recovered)
            tr = tracing.get_tracer()
            if tr.enabled:
                tr.event("server.recover", apps=self.recovered)
        self._server = await asyncio.start_server(
            self._handle_connection,
            self.host,
            self.port,
            limit=WIRE_LINE_LIMIT,
        )
        self.port = self._server.sockets[0].getsockname()[1]
        if self._install_signals:
            loop = asyncio.get_running_loop()
            for signum in (signal.SIGTERM, signal.SIGINT):
                # NotImplementedError on platforms without signal support;
                # ValueError/RuntimeError off the main thread.
                with contextlib.suppress(
                    NotImplementedError, ValueError, RuntimeError
                ):
                    loop.add_signal_handler(signum, self._on_signal)
        self._epoch_task = asyncio.get_running_loop().create_task(
            self._epoch_loop()
        )

    def _on_signal(self) -> None:
        self._begin_shutdown(drain=True)

    def _begin_shutdown(self, *, drain: bool) -> None:
        """Schedule :meth:`shutdown` exactly once from synchronous code.

        The task reference is retained on the server (so it cannot be
        garbage-collected mid-shutdown) and its exception, if any, is
        surfaced through the metrics registry and stderr instead of
        vanishing with the task object.
        """
        if self._shutdown_task is not None and not self._shutdown_task.done():
            return
        task = asyncio.get_running_loop().create_task(
            self.shutdown(drain=drain)
        )
        self._shutdown_task = task

        def _report(done: asyncio.Task[None]) -> None:
            if done.cancelled():
                return
            error = done.exception()
            if error is not None:
                self._metrics.incr("server.shutdown_errors")
                print(
                    f"sparcle-server: shutdown failed: {error!r}",
                    file=sys.stderr,
                )

        task.add_done_callback(_report)

    async def wait_closed(self) -> None:
        """Block until the server has fully shut down."""
        await self._closed.wait()

    async def shutdown(self, *, drain: bool = True) -> None:
        """Stop serving; with ``drain`` (default) decide queued work first.

        ``drain=False`` is the crash path the chaos harness uses: the
        socket closes immediately, queued requests are lost, and the
        event logs end exactly where the last epoch left them — recovery
        must replay from there.
        """
        if self._stopping:
            await self._closed.wait()
            return
        self._stopping = True
        self._draining = True
        if drain:
            self._drain_backend()
        if self._server is not None:
            self._server.close()
            with contextlib.suppress(OSError):
                await self._server.wait_closed()
        if self._epoch_task is not None:
            self._wakeup.set()
            self._epoch_task.cancel()
            with contextlib.suppress(asyncio.CancelledError):
                await self._epoch_task
        for conn in list(self._connections.values()):
            with contextlib.suppress(OSError):
                if not conn.writer.is_closing():
                    conn.writer.close()
        # Let session handlers observe the EOF their closed writers imply
        # so loop teardown never cancels them mid-read.
        pending_tasks = {
            task
            for task in self._session_tasks
            if task is not asyncio.current_task()
        }
        if pending_tasks:
            await asyncio.wait(pending_tasks, timeout=1.0)
        self.backend.close()
        self._closed.set()

    async def abort(self) -> None:
        """Hard-kill the server without draining (chaos crash path)."""
        await self.shutdown(drain=False)

    # ------------------------------------------------------------------
    # Epoch loop
    # ------------------------------------------------------------------
    async def _epoch_loop(self) -> None:
        while not self._stopping:
            with contextlib.suppress(asyncio.TimeoutError):
                await asyncio.wait_for(
                    self._wakeup.wait(), timeout=self.epoch_interval
                )
            self._wakeup.clear()
            if self._stopping:
                return
            if self.backend.queue_depth > 0:
                self.backend.run_epoch()
                self._flush_decisions()
                await self._drain_writers()

    def _drain_backend(self) -> tuple[int, int]:
        """Synchronously decide everything still queued; (decided, epochs)."""
        decided = 0
        epochs = 0
        for _ in range(MAX_DRAIN_EPOCHS):
            if self.backend.queue_depth == 0:
                break
            self.backend.run_epoch()
            epochs += 1
            decided += self._flush_decisions()
        return decided, epochs

    def _flush_decisions(self) -> int:
        """Push every newly committed decision to its owning connection."""
        flushed = 0
        for ticket in list(self._pending):
            decision = self.backend.decision_for(ticket)
            if decision is None:
                continue
            pending = self._pending.pop(ticket)
            pending.conn.inflight -= 1
            flushed += 1
            if decision.accepted:
                self._accepted_decisions += 1
                self._metrics.incr("server.decisions", outcome="accepted")
            else:
                self._rejected_decisions += 1
                self._metrics.incr("server.decisions", outcome="rejected")
            pending.conn.send(
                DecisionReply.from_decision(decision, seq=pending.seq)
            )
        if flushed:
            self._metrics.set_gauge(
                "server.inflight", float(self._total_inflight())
            )
        return flushed

    async def _drain_writers(self) -> None:
        for conn in list(self._connections.values()):
            if not conn.writer.is_closing():
                with contextlib.suppress(ConnectionError):
                    await conn.writer.drain()

    def _total_inflight(self) -> int:
        return sum(conn.inflight for conn in self._connections.values())

    # ------------------------------------------------------------------
    # Connections
    # ------------------------------------------------------------------
    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        task = asyncio.current_task()
        if task is not None:
            self._session_tasks.add(task)
        try:
            try:
                first = await reader.readline()
            except ConnectionError:
                first = b""
            if not first:
                writer.close()
                return
            if first.startswith(b"GET ") or first.startswith(b"HEAD "):
                await self._handle_http(first, reader, writer)
                return
            await self._handle_session(first, reader, writer)
        finally:
            if task is not None:
                self._session_tasks.discard(task)

    async def _handle_http(
        self,
        request_line: bytes,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
    ) -> None:
        """Minimal HTTP: ``/metrics`` (Prometheus text) and ``/healthz``."""
        try:
            while True:  # swallow the header block
                line = await reader.readline()
                if line in (b"\r\n", b"\n", b""):
                    break
            parts = request_line.decode("latin-1").split()
            target = parts[1] if len(parts) >= 2 else "/"
            if target.split("?", 1)[0] == "/metrics":
                body = prometheus_snapshot(labeled=self._metrics)
                ctype = "text/plain; version=0.0.4; charset=utf-8"
            elif target.split("?", 1)[0] == "/healthz":
                body = "draining\n" if self._draining else "ok\n"
                ctype = "text/plain; charset=utf-8"
            else:
                writer.write(_HTTP_NOT_FOUND.encode("latin-1"))
                await writer.drain()
                return
            payload = body.encode("utf-8")
            head = _HTTP_OK.format(ctype=ctype, length=len(payload))
            writer.write(head.encode("latin-1"))
            if not request_line.startswith(b"HEAD "):
                writer.write(payload)
            await writer.drain()
        except ConnectionError:
            pass
        finally:
            with contextlib.suppress(OSError):
                writer.close()

    async def _handle_session(
        self,
        first_line: bytes,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
    ) -> None:
        self._conn_seq += 1
        conn = _Connection(self._conn_seq, writer)
        self._connections[conn.conn_id] = conn
        self._metrics.set_gauge(
            "server.connections", float(len(self._connections))
        )
        tr = tracing.get_tracer()
        span = (
            tr.span("server.connection", conn=conn.conn_id)
            if tr.enabled
            else contextlib.nullcontext({})
        )
        try:
            with span as fields:
                line = first_line
                while line:
                    self._handle_line(conn, line)
                    with contextlib.suppress(ConnectionError):
                        await writer.drain()
                    if self._stopping:
                        break
                    try:
                        line = await reader.readline()
                    except ConnectionError:
                        break
                if isinstance(fields, dict):
                    fields["requests"] = conn.requests
        finally:
            self._connections.pop(conn.conn_id, None)
            # Decisions for a vanished client are still committed (and
            # logged); they just have nowhere to be delivered.
            for ticket, pending in list(self._pending.items()):
                if pending.conn is conn:
                    del self._pending[ticket]
            self._metrics.set_gauge(
                "server.connections", float(len(self._connections))
            )
            self._metrics.set_gauge(
                "server.inflight", float(self._total_inflight())
            )
            with contextlib.suppress(OSError):
                writer.close()

    # ------------------------------------------------------------------
    # Request dispatch (synchronous: the backend contract)
    # ------------------------------------------------------------------
    def _handle_line(self, conn: _Connection, line: bytes) -> None:
        if not line.strip():
            return
        conn.requests += 1
        self._metrics.incr("server.requests")
        try:
            message = parse_request(line)
        except ProtocolError as error:
            conn.send(ErrorReply(code="protocol", message=str(error)))
            return
        reply: Message
        if isinstance(message, SubmitRequest):
            reply = self._handle_submit(conn, message)
        elif isinstance(message, WithdrawRequest):
            reply = self._handle_withdraw(message)
        elif isinstance(message, StatusRequest):
            reply = self._status_reply(message.seq)
        elif isinstance(message, TopologyRequest):
            reply = TopologyReply(
                shards=self.backend.shard_entries(),
                boundary_links=self.backend.boundary_links(),
                seq=message.seq,
            )
        else:
            assert isinstance(message, DrainRequest)
            reply = self._handle_drain(message)
        conn.send(reply)

    def _handle_submit(
        self, conn: _Connection, message: SubmitRequest
    ) -> Message:
        if self._draining:
            return ErrorReply(
                code="draining",
                message="server is draining; no new submits",
                app_id=message.app_id,
                seq=message.seq,
            )
        if conn.inflight >= self.max_inflight:
            self._shed += 1
            self._metrics.incr("server.shed", reason="inflight")
            return ErrorReply(
                code="backpressure",
                message=(
                    f"inflight window full ({self.max_inflight}); "
                    f"await a decision before resubmitting"
                ),
                app_id=message.app_id,
                seq=message.seq,
            )
        try:
            ticket = self.backend.submit(message)
        except BackpressureError as error:
            self._shed += 1
            self._metrics.incr("server.shed", reason="queue")
            return ErrorReply(
                code="backpressure",
                message=str(error),
                app_id=message.app_id,
                seq=message.seq,
            )
        except AdmissionError as error:
            code = "duplicate" if "already" in str(error) else "admission"
            return ErrorReply(
                code=code,
                message=str(error),
                app_id=message.app_id,
                seq=message.seq,
            )
        except ProtocolError as error:
            return ErrorReply(
                code="protocol",
                message=str(error),
                app_id=message.app_id,
                seq=message.seq,
            )
        except ShardError as error:
            return ErrorReply(
                code="shard",
                message=str(error),
                app_id=message.app_id,
                seq=message.seq,
            )
        conn.inflight += 1
        self._submitted += 1
        self._pending[ticket] = _PendingDecision(
            conn, message.seq, message.app_id
        )
        self._metrics.incr("server.accepted")
        self._metrics.set_gauge(
            "server.inflight", float(self._total_inflight())
        )
        self._wakeup.set()
        return SubmitReply(
            app_id=message.app_id, ticket=ticket, seq=message.seq
        )

    def _handle_withdraw(self, message: WithdrawRequest) -> Message:
        try:
            self.backend.withdraw(message.app_id)
        except SparcleError as error:
            return ErrorReply(
                code="admission",
                message=str(error),
                app_id=message.app_id,
                seq=message.seq,
            )
        self._metrics.incr("server.withdrawn")
        return WithdrawReply(app_id=message.app_id, seq=message.seq)

    def _handle_drain(self, message: DrainRequest) -> Message:
        self._draining = True
        decided, epochs = self._drain_backend()
        self._begin_shutdown(drain=False)
        return DrainReply(decided=decided, epochs=epochs, seq=message.seq)

    def _status_reply(self, seq: int) -> StatusReply:
        return StatusReply(
            protocol_version=PROTOCOL_VERSION,
            backend=self.backend.name,
            submitted=self._submitted,
            accepted=self._accepted_decisions,
            rejected=self._rejected_decisions,
            shed=self._shed,
            recovered=self.recovered,
            inflight=self._total_inflight(),
            queue_depth=self.backend.queue_depth,
            epoch=self.backend.epoch,
            draining=self._draining,
            seq=seq,
        )


def serve(
    network: Network,
    *,
    host: str = "127.0.0.1",
    port: int = 0,
    no_shards: bool = False,
    n_shards: int = 2,
    zones: Mapping[str, int] | None = None,
    assigner: Assigner = sparcle_assign,
    workers: int = 0,
    max_queue_depth: int = 128,
    log_dir: str | Path | None = None,
    max_inflight: int = 8,
    recover: bool = False,
    ready: asyncio.Queue[int] | None = None,
) -> None:
    """Run a :class:`SparcleServer` until SIGTERM/SIGINT drains it.

    The synchronous convenience entry the CLI uses: builds the server,
    installs the signal handlers, and blocks until a graceful drain
    (signal or wire :class:`~repro.service.protocol.DrainRequest`)
    completes.  ``ready``, if given, receives the bound port once the
    socket is listening — callers that asked for ``port=0`` learn the
    ephemeral port from it.
    """

    async def _run() -> None:
        server = SparcleServer(
            network,
            host=host,
            port=port,
            no_shards=no_shards,
            n_shards=n_shards,
            zones=zones,
            assigner=assigner,
            workers=workers,
            max_queue_depth=max_queue_depth,
            log_dir=log_dir,
            max_inflight=max_inflight,
            recover=recover,
            install_signal_handlers=True,
        )
        await server.start()
        if ready is not None:
            ready.put_nowait(server.port)
        print(
            f"sparcle serve: listening on {server.host}:{server.port} "
            f"(backend={server.backend.name}, protocol v{PROTOCOL_VERSION})"
        )
        await server.wait_closed()

    asyncio.run(_run())
