"""Versioned wire protocol for the SPARCLE serving front-end.

One schema for in-process and network callers: every request a client can
make of :class:`~repro.service.server.SparcleServer` — and every reply the
server can send — is a frozen dataclass here with ``to_wire()`` /
``from_wire()`` methods.  The wire form is one JSON object per line
(JSON-lines framing), always carrying::

    {"v": <PROTOCOL_VERSION>, "type": "<message type>", ...fields}

Messages are strictly validated on parse: a missing or mismatched ``v``,
an unknown ``type``, a missing required field, or an unknown field all
raise :class:`~repro.exceptions.ProtocolError` — v1 is a closed schema,
so drift between client and server fails loudly instead of being half
understood.  ``from_wire(msg.to_wire()) == msg`` holds for every message
type (the Hypothesis suite proves it through a JSON round trip).

Request messages (client -> server)
    :class:`SubmitRequest` (GR/BE admission), :class:`WithdrawRequest`,
    :class:`StatusRequest`, :class:`TopologyRequest`,
    :class:`DrainRequest`.

Reply messages (server -> client)
    :class:`SubmitReply` (the ack carrying the gateway ticket),
    :class:`DecisionReply` (pushed when the epoch loop decides the app),
    :class:`WithdrawReply`, :class:`StatusReply`, :class:`TopologyReply`,
    :class:`DrainReply`, and :class:`ErrorReply`.

``seq`` is the client's per-connection correlation id: the server echoes
it in the direct reply to each request, and a :class:`DecisionReply`
carries the ``seq`` of the submit it resolves.

:class:`SubmitRequest` embeds the application task graph in the scenario
JSON form (:func:`repro.emulator.scenario.graph_to_dict`), so a wire
submit converts losslessly to the in-process
:class:`~repro.core.scheduler.GRRequest` / ``BERequest`` via
:meth:`SubmitRequest.to_request` — and back via
:meth:`SubmitRequest.from_request`, which is how the gateway and the
shard coordinator accept wire-typed submits directly.
"""

from __future__ import annotations

import dataclasses
import json
from collections.abc import Mapping
from dataclasses import dataclass
from typing import Any, ClassVar, TypeVar

from repro.core.scheduler import BERequest, Decision, GRRequest
from repro.emulator.scenario import graph_from_dict, graph_to_dict
from repro.exceptions import ProtocolError, ScenarioError

#: The wire schema version; bump on any incompatible message change.
PROTOCOL_VERSION = 1

#: StreamReader line limit both endpoints use: one wire message (a
#: submit carries its whole task graph as JSON) must fit in one line;
#: the asyncio default of 64 KiB is too small for dense graphs.
WIRE_LINE_LIMIT = 8 * 1024 * 1024

#: Error codes an :class:`ErrorReply` may carry.
ERROR_CODES = (
    "protocol",      # malformed/unknown message
    "backpressure",  # inflight window or gateway queue full; back off
    "duplicate",     # app id already queued or admitted
    "admission",     # invalid request parameters
    "draining",      # server is draining; no new submits
    "shard",         # routed to a killed shard / federation misuse
    "unknown",       # anything else the server chose to surface
)

_M = TypeVar("_M", bound="Message")


def _jsonify(value: Any) -> Any:
    """Tuples become lists so ``to_wire`` output is JSON-natural."""
    if isinstance(value, tuple):
        return [_jsonify(item) for item in value]
    if isinstance(value, list):
        return [_jsonify(item) for item in value]
    if isinstance(value, dict):
        return {key: _jsonify(item) for key, item in value.items()}
    return value


@dataclass(frozen=True)
class Message:
    """Base class: generic ``to_wire``/``from_wire`` over dataclass fields.

    Subclasses declare ``TYPE`` (the wire ``type`` string) and list their
    sequence-valued fields in ``TUPLE_FIELDS`` so parsing restores them as
    tuples (JSON has only lists) and equality round-trips exactly.
    """

    TYPE: ClassVar[str] = ""
    TUPLE_FIELDS: ClassVar[frozenset[str]] = frozenset()

    def to_wire(self) -> dict[str, Any]:
        """The JSON-compatible wire document for this message."""
        doc: dict[str, Any] = {"v": PROTOCOL_VERSION, "type": self.TYPE}
        for spec in dataclasses.fields(self):
            doc[spec.name] = _jsonify(getattr(self, spec.name))
        return doc

    @classmethod
    def from_wire(cls: type[_M], doc: Mapping[str, Any]) -> _M:
        """Parse one wire document into this message type (strict).

        Raises :class:`~repro.exceptions.ProtocolError` on version or
        type mismatch, missing required fields, unknown fields, or field
        values the dataclass rejects.
        """
        _check_envelope(doc, expected_type=cls.TYPE)
        specs = {spec.name: spec for spec in dataclasses.fields(cls)}
        unknown = set(doc) - set(specs) - {"v", "type"}
        if unknown:
            raise ProtocolError(
                f"{cls.TYPE} message has unknown field(s) "
                f"{sorted(unknown)} (v{PROTOCOL_VERSION} is a closed schema)"
            )
        kwargs: dict[str, Any] = {}
        for name, spec in specs.items():
            if name in doc:
                value = doc[name]
                if name in cls.TUPLE_FIELDS:
                    if not isinstance(value, (list, tuple)):
                        raise ProtocolError(
                            f"{cls.TYPE}.{name} must be an array, "
                            f"got {type(value).__name__}"
                        )
                    value = tuple(value)
                kwargs[name] = value
            elif (
                spec.default is dataclasses.MISSING
                and spec.default_factory is dataclasses.MISSING
            ):
                raise ProtocolError(
                    f"{cls.TYPE} message is missing required field {name!r}"
                )
        try:
            return cls(**kwargs)
        except (TypeError, ValueError) as error:
            raise ProtocolError(
                f"malformed {cls.TYPE} message: {error}"
            ) from error


def _check_envelope(doc: Mapping[str, Any], *, expected_type: str | None) -> str:
    if not isinstance(doc, Mapping):
        raise ProtocolError(
            f"wire message must be a JSON object, got {type(doc).__name__}"
        )
    version = doc.get("v")
    if version != PROTOCOL_VERSION:
        raise ProtocolError(
            f"unsupported protocol version {version!r} "
            f"(this endpoint speaks v{PROTOCOL_VERSION})"
        )
    kind = doc.get("type")
    if not isinstance(kind, str) or kind not in MESSAGE_TYPES:
        raise ProtocolError(f"unknown message type {kind!r}")
    if expected_type is not None and kind != expected_type:
        raise ProtocolError(
            f"expected a {expected_type!r} message, got {kind!r}"
        )
    return kind


# ----------------------------------------------------------------------
# Requests (client -> server)
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class SubmitRequest(Message):
    """Submit one GR or BE application for admission.

    ``graph`` is the application task graph in the scenario JSON form
    (:func:`repro.emulator.scenario.graph_to_dict`).  GR submits must
    carry ``min_rate``; BE submits use ``priority``/``availability``.
    ``max_paths`` of ``None`` takes the class default (5 for GR, 4 for
    BE, matching the in-process request dataclasses).
    """

    TYPE: ClassVar[str] = "submit"

    app_id: str
    kind: str  # "GR" | "BE"
    graph: dict[str, Any]
    min_rate: float | None = None
    min_rate_availability: float = 0.0
    priority: float = 1.0
    availability: float | None = None
    max_paths: int | None = None
    seq: int = 0

    def __post_init__(self) -> None:
        if self.kind not in ("GR", "BE"):
            raise ProtocolError(
                f"submit kind must be 'GR' or 'BE', got {self.kind!r}"
            )
        if self.kind == "GR" and self.min_rate is None:
            raise ProtocolError(
                f"GR submit {self.app_id!r} must carry min_rate"
            )

    def to_request(self) -> BERequest | GRRequest:
        """The in-process admission request this wire submit describes."""
        try:
            graph = graph_from_dict(self.graph)
        except ScenarioError as error:
            raise ProtocolError(
                f"submit {self.app_id!r} carries a malformed task graph: "
                f"{error}"
            ) from error
        if self.kind == "GR":
            assert self.min_rate is not None  # __post_init__ guarantees
            return GRRequest(
                self.app_id,
                graph,
                min_rate=self.min_rate,
                min_rate_availability=self.min_rate_availability,
                **({} if self.max_paths is None
                   else {"max_paths": self.max_paths}),
            )
        return BERequest(
            self.app_id,
            graph,
            priority=self.priority,
            availability=self.availability,
            **({} if self.max_paths is None
               else {"max_paths": self.max_paths}),
        )

    @classmethod
    def from_request(
        cls, request: BERequest | GRRequest, *, seq: int = 0
    ) -> "SubmitRequest":
        """The wire form of one in-process admission request."""
        if isinstance(request, GRRequest):
            return cls(
                app_id=request.app_id,
                kind="GR",
                graph=graph_to_dict(request.graph),
                min_rate=request.min_rate,
                min_rate_availability=request.min_rate_availability,
                max_paths=request.max_paths,
                seq=seq,
            )
        return cls(
            app_id=request.app_id,
            kind="BE",
            graph=graph_to_dict(request.graph),
            priority=request.priority,
            availability=request.availability,
            max_paths=request.max_paths,
            seq=seq,
        )


@dataclass(frozen=True)
class WithdrawRequest(Message):
    """Release one admitted application's reservations."""

    TYPE: ClassVar[str] = "withdraw"

    app_id: str
    seq: int = 0


@dataclass(frozen=True)
class StatusRequest(Message):
    """Ask for the server's counters and lifecycle state."""

    TYPE: ClassVar[str] = "status"

    seq: int = 0


@dataclass(frozen=True)
class TopologyRequest(Message):
    """Ask for the shard topology behind this endpoint."""

    TYPE: ClassVar[str] = "topology"

    seq: int = 0


@dataclass(frozen=True)
class DrainRequest(Message):
    """Gracefully drain the server: decide queued work, then stop."""

    TYPE: ClassVar[str] = "drain"

    seq: int = 0


# ----------------------------------------------------------------------
# Replies (server -> client)
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class SubmitReply(Message):
    """Ack for one submit: the request is queued under ``ticket``."""

    TYPE: ClassVar[str] = "submit_reply"

    app_id: str
    ticket: int
    seq: int = 0


@dataclass(frozen=True)
class DecisionReply(Message):
    """One admission outcome, pushed when the epoch loop decides the app.

    ``placements`` serializes each admitted path as
    ``{"ct_hosts": {...}, "tt_routes": {tt: [links...]}}`` — the same
    shape :meth:`repro.core.scheduler.SparcleScheduler.export_decisions`
    writes, so wire consumers and audit logs share one schema.
    """

    TYPE: ClassVar[str] = "decision"
    TUPLE_FIELDS: ClassVar[frozenset[str]] = frozenset(
        {"path_rates", "placements"}
    )

    app_id: str
    kind: str  # "GR" | "BE"
    accepted: bool
    reason: str = ""
    path_rates: tuple[float, ...] = ()
    placements: tuple[dict[str, Any], ...] = ()
    availability: float | None = None
    seq: int = 0

    @property
    def total_rate(self) -> float:
        """Aggregate rate over all admitted paths."""
        return float(sum(self.path_rates))

    @classmethod
    def from_decision(
        cls, decision: Decision, *, seq: int = 0
    ) -> "DecisionReply":
        """The wire form of one in-process scheduler decision."""
        return cls(
            app_id=decision.app_id,
            kind=decision.kind,
            accepted=decision.accepted,
            reason=decision.reason,
            path_rates=tuple(float(rate) for rate in decision.path_rates),
            placements=tuple(
                {
                    "ct_hosts": dict(placement.ct_hosts),
                    "tt_routes": {
                        tt: list(route)
                        for tt, route in placement.tt_routes.items()
                    },
                }
                for placement in decision.placements
            ),
            availability=decision.availability,
            seq=seq,
        )


@dataclass(frozen=True)
class WithdrawReply(Message):
    """Ack for one withdraw: the reservations were released."""

    TYPE: ClassVar[str] = "withdraw_reply"

    app_id: str
    seq: int = 0


@dataclass(frozen=True)
class StatusReply(Message):
    """The server's counters and lifecycle state."""

    TYPE: ClassVar[str] = "status_reply"

    protocol_version: int
    backend: str  # "shards" | "gateway"
    submitted: int
    accepted: int
    rejected: int
    shed: int
    recovered: int
    inflight: int
    queue_depth: int
    epoch: int
    draining: bool
    seq: int = 0


@dataclass(frozen=True)
class TopologyReply(Message):
    """The shard layout behind this endpoint.

    One entry per shard: ``{"shard": id, "ncps": n, "alive": bool,
    "apps": n}``.  A ``--no-shards`` server reports its single gateway
    as shard 0 with zero boundary links.
    """

    TYPE: ClassVar[str] = "topology_reply"
    TUPLE_FIELDS: ClassVar[frozenset[str]] = frozenset({"shards"})

    shards: tuple[dict[str, Any], ...]
    boundary_links: int = 0
    seq: int = 0


@dataclass(frozen=True)
class DrainReply(Message):
    """The drain finished: every queued request was decided."""

    TYPE: ClassVar[str] = "drain_reply"

    decided: int
    epochs: int
    seq: int = 0


@dataclass(frozen=True)
class ErrorReply(Message):
    """A request failed; ``code`` is one of :data:`ERROR_CODES`."""

    TYPE: ClassVar[str] = "error"

    code: str
    message: str
    app_id: str = ""
    seq: int = 0

    def __post_init__(self) -> None:
        if self.code not in ERROR_CODES:
            raise ProtocolError(f"unknown error code {self.code!r}")


#: Every message type, keyed by its wire ``type`` string.
MESSAGE_TYPES: dict[str, type[Message]] = {
    cls.TYPE: cls
    for cls in (
        SubmitRequest,
        WithdrawRequest,
        StatusRequest,
        TopologyRequest,
        DrainRequest,
        SubmitReply,
        DecisionReply,
        WithdrawReply,
        StatusReply,
        TopologyReply,
        DrainReply,
        ErrorReply,
    )
}

#: The request types a server accepts on a connection.
REQUEST_TYPES = ("submit", "withdraw", "status", "topology", "drain")


# ----------------------------------------------------------------------
# Framing
# ----------------------------------------------------------------------
def from_wire(doc: Mapping[str, Any]) -> Message:
    """Parse one wire document into its typed message."""
    kind = _check_envelope(doc, expected_type=None)
    return MESSAGE_TYPES[kind].from_wire(doc)


def to_wire(message: Message) -> dict[str, Any]:
    """The wire document for any message (delegates to the method)."""
    return message.to_wire()


def encode(message: Message) -> bytes:
    """One JSON line (UTF-8, newline-terminated) for the wire."""
    return (
        json.dumps(message.to_wire(), sort_keys=True, separators=(",", ":"))
        + "\n"
    ).encode("utf-8")


def decode(line: str | bytes) -> Message:
    """Parse one JSON line into its typed message.

    Raises :class:`~repro.exceptions.ProtocolError` for malformed JSON,
    a non-object document, or any envelope/field violation.
    """
    if isinstance(line, bytes):
        try:
            line = line.decode("utf-8")
        except UnicodeDecodeError as error:
            raise ProtocolError(f"wire line is not UTF-8: {error}") from error
    try:
        doc = json.loads(line)
    except json.JSONDecodeError as error:
        raise ProtocolError(f"wire line is not valid JSON: {error}") from error
    if not isinstance(doc, dict):
        raise ProtocolError(
            f"wire message must be a JSON object, got {type(doc).__name__}"
        )
    return from_wire(doc)


def parse_request(line: str | bytes) -> Message:
    """Decode one line and require it to be a client request type."""
    message = decode(line)
    if message.TYPE not in REQUEST_TYPES:
        raise ProtocolError(
            f"{message.TYPE!r} is a reply type, not a client request"
        )
    return message
