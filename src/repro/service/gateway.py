"""Concurrent admission gateway for bursty multi-application arrivals.

The Fig.-3 control loop admits applications one at a time; under a burst of
arrivals that serializes on a single solver even though the expensive part
of admission — candidate task-assignment-path search (Algorithm 2 per
path) — is independent per request.  The gateway turns admission into a
queue/batch problem, the way R-Storm-style resource-aware schedulers and
HEFT-style list schedulers treat placement:

1. **Queue** — arrivals land in a bounded priority queue: Guaranteed-Rate
   requests ahead of Best-Effort, weighted FIFO within each class (a BE
   request with priority ``w`` advances ``w`` times faster than a
   priority-1 peer).  A full queue sheds load by raising
   :class:`~repro.exceptions.BackpressureError` — nothing is silently
   dropped.
2. **Evaluate in parallel** — each epoch pops a batch and evaluates every
   request against the same frozen
   :class:`~repro.core.scheduler.AdmissionSnapshot` using
   :func:`~repro.core.scheduler.evaluate_against_snapshot`, fanned out
   over worker threads or processes (processes sidestep the GIL: the
   per-request Algorithm-2 search is pure Python).
3. **Commit sequentially with optimistic revalidation** — proposals are
   committed in priority order against the *live* scheduler.  An accepted
   GR proposal re-checks residual feasibility and Eq. (7) at commit time
   (``SparcleScheduler.commit(..., revalidate=True)``); an accepted BE
   proposal conflicts when its footprint overlaps elements already
   committed this epoch (its Theorem-3 predicted shares are stale).
   Conflicting proposals are re-queued with a bounded retry budget
   (reusing :class:`~repro.core.repair.RetryPolicy`; the policy's backoff
   is measured in epochs here) and finally fall back to an exact serial
   evaluate+commit against live state, so every submitted request always
   gets a decision.

Rejections commit without revalidation: between snapshot and commit,
capacity only shrinks (commits consume; nothing releases mid-epoch), so a
request the richer snapshot rejects would be rejected serially too.

**Decision equivalence.**  For *conflict-free* batches — no proposal's
footprint overlaps another's — every proposal revalidates trivially and
the gateway's accept/reject set equals serial admission in the same
priority order (the property test in
``tests/properties/test_gateway_properties.py`` checks exactly this).
Overlapping-but-feasible GR proposals still commit (the reservations are
revalidated, so capacity is never oversubscribed) but the chosen paths may
differ from what a strictly serial scheduler would have picked; the
``overlap_commits`` stat counts how often that relaxation was exercised.

The gateway is a single-threaded control loop: ``submit``/``run_epoch``/
``drain`` must be called from one thread, and no other code may mutate the
scheduler between an epoch's snapshot and its commits.  Parallelism lives
entirely inside the evaluation fan-out.
"""

from __future__ import annotations

import heapq
from collections.abc import Iterable, Sequence
from concurrent.futures import Executor, ProcessPoolExecutor, ThreadPoolExecutor
from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.core.network import Network
from repro.core.repair import RetryPolicy
from repro.core.scheduler import (
    AdmissionProposal,
    AdmissionSnapshot,
    Assigner,
    BERequest,
    Decision,
    GRRequest,
    SparcleScheduler,
    evaluate_against_snapshot,
)
from repro.exceptions import (
    AdmissionError,
    BackpressureError,
    GatewayError,
    StaleProposalError,
)
from repro.perf import timer, tracing
from repro.perf.metrics import get_metrics

if TYPE_CHECKING:
    from repro.service.protocol import DecisionReply, SubmitRequest

#: Epochs a drain() is allowed to run before concluding the queue is stuck.
MAX_DRAIN_EPOCHS = 10_000


# ----------------------------------------------------------------------
# Process-pool plumbing: workers hold the (immutable) network + assigner
# once, and receive only (request, snapshot) per task.
# ----------------------------------------------------------------------
_WORKER_CONTEXT: dict = {}


def _init_worker(network: Network, assigner: Assigner) -> None:
    """Process-pool initializer: stash the per-worker evaluation context."""
    _WORKER_CONTEXT["network"] = network
    _WORKER_CONTEXT["assigner"] = assigner


def _evaluate_in_worker(
    payload: tuple[BERequest | GRRequest, AdmissionSnapshot],
) -> AdmissionProposal:
    """Evaluate one request inside a pool worker (see :func:`_init_worker`)."""
    request, snapshot = payload
    return evaluate_against_snapshot(
        request,
        _WORKER_CONTEXT["network"],
        snapshot,
        assigner=_WORKER_CONTEXT["assigner"],
    )


@dataclass
class _Pending:
    """One queued request with its scheduling metadata."""

    seq: int
    request: BERequest | GRRequest
    kind: str  # "GR" or "BE"
    weight: float
    attempts: int = 0
    not_before_epoch: int = 0

    def sort_key(self) -> tuple[int, float, int]:
        """Priority-class, weighted-FIFO virtual time, then arrival order."""
        rank = 0 if self.kind == "GR" else 1
        return (rank, self.seq / self.weight, self.seq)


@dataclass(frozen=True)
class EpochReport:
    """What one :meth:`AdmissionGateway.run_epoch` call did."""

    epoch: int
    batch: int
    committed: int
    accepted: int
    rejected: int
    conflicts: int
    serial_fallbacks: int
    queue_depth: int


@dataclass
class GatewayStats:
    """Running totals over the gateway's lifetime."""

    submitted: int = 0
    epochs: int = 0
    evaluated: int = 0
    committed: int = 0
    accepted: int = 0
    rejected: int = 0
    #: Requeues caused by commit-time staleness (GR infeasibility or BE
    #: footprint overlap).  Zero conflicts on a drain means the batch was
    #: conflict-free and the accept/reject set matches serial admission.
    conflicts: int = 0
    #: Accepted proposals whose footprint overlapped earlier commits in the
    #: same epoch but still revalidated — committed, with the caveat that a
    #: serial scheduler might have chosen different paths.
    overlap_commits: int = 0
    serial_fallbacks: int = 0
    backpressure_rejections: int = 0


class AdmissionGateway:
    """Batched, parallel admission control in front of one scheduler.

    ``workers`` sets the evaluation fan-out (0 evaluates in-line);
    ``executor`` picks ``"thread"`` or ``"process"`` pools — processes pay
    a spawn/IPC cost but actually parallelize the pure-Python Algorithm-2
    search, and require a picklable assigner.  ``batch_size`` caps how many
    requests one epoch evaluates (default: everything eligible);
    ``retry_policy`` bounds per-request conflict retries before the serial
    fallback, with the policy's backoff delay interpreted in epochs.

    Use as a context manager (or call :meth:`close`) to release pools.
    """

    def __init__(
        self,
        scheduler: SparcleScheduler,
        *,
        workers: int = 0,
        executor: str = "thread",
        max_queue_depth: int = 128,
        batch_size: int | None = None,
        retry_policy: RetryPolicy | None = None,
    ) -> None:
        if workers < 0:
            raise GatewayError(f"workers must be non-negative, got {workers}")
        if executor not in ("thread", "process"):
            raise GatewayError(
                f"executor must be 'thread' or 'process', got {executor!r}"
            )
        if max_queue_depth < 1:
            raise GatewayError(
                f"max_queue_depth must be positive, got {max_queue_depth}"
            )
        if batch_size is not None and batch_size < 1:
            raise GatewayError(f"batch_size must be positive, got {batch_size}")
        self.scheduler = scheduler
        self.workers = workers
        self.executor_kind = executor
        self.max_queue_depth = max_queue_depth
        self.batch_size = batch_size
        self.retry_policy = retry_policy or RetryPolicy()
        self.stats = GatewayStats()
        #: Decisions in commit order (the scheduler's log holds them too).
        self.decisions: list[Decision] = []
        self._queue: list[tuple[tuple[int, float, int], _Pending]] = []
        self._pending_ids: set[str] = set()
        self._decision_by_seq: dict[int, Decision] = {}
        self._seq = 0
        self._epoch = 0
        self._pool: Executor | None = None

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def __enter__(self) -> "AdmissionGateway":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    def close(self) -> None:
        """Shut down any worker pool (idempotent)."""
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None

    def _ensure_pool(self) -> Executor:
        if self._pool is None:
            if self.executor_kind == "process":
                self._pool = ProcessPoolExecutor(
                    max_workers=self.workers,
                    initializer=_init_worker,
                    initargs=(self.scheduler.network, self.scheduler.assigner),
                )
            else:
                self._pool = ThreadPoolExecutor(max_workers=self.workers)
        return self._pool

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def queue_depth(self) -> int:
        """Requests currently waiting for an epoch."""
        return len(self._queue)

    @property
    def epoch(self) -> int:
        """Epochs run so far."""
        return self._epoch

    def decision_for(self, ticket: int) -> Decision | None:
        """The decision for one :meth:`submit` ticket, if committed yet."""
        return self._decision_by_seq.get(ticket)

    def decision_reply(self, ticket: int) -> "DecisionReply | None":
        """The wire-typed decision for one ticket, if committed yet.

        The serving front-end pushes this form to network clients; it is
        :meth:`decision_for` rendered through the versioned protocol.
        """
        from repro.service.protocol import DecisionReply

        decision = self._decision_by_seq.get(ticket)
        if decision is None:
            return None
        return DecisionReply.from_decision(decision, seq=ticket)

    @staticmethod
    def priority_order(
        requests: Iterable[BERequest | GRRequest],
    ) -> list[BERequest | GRRequest]:
        """The gateway's commit order for a one-shot batch of requests.

        A serial baseline that submits in this order sees the same
        priority discipline the gateway applies (GR class first, weighted
        FIFO within class) — the order used by the decision-equivalence
        property and the benchmark.
        """
        entries = []
        for seq, request in enumerate(requests):
            kind = "GR" if isinstance(request, GRRequest) else "BE"
            weight = 1.0 if kind == "GR" else request.priority
            entries.append(_Pending(seq, request, kind, weight))
        return [e.request for e in sorted(entries, key=_Pending.sort_key)]

    # ------------------------------------------------------------------
    # Arrival side
    # ------------------------------------------------------------------
    def submit(
        self, request: "BERequest | GRRequest | SubmitRequest"
    ) -> int:
        """Enqueue one arrival; returns a ticket for :meth:`decision_for`.

        Accepts the in-process request dataclasses and the wire-typed
        :class:`~repro.service.protocol.SubmitRequest` (converted via
        ``to_request()``), so network and in-process callers share one
        entry point.  Raises :class:`BackpressureError` when the bounded
        queue is full and :class:`AdmissionError` for duplicate app ids
        (already admitted or already queued).
        """
        from repro.service.protocol import SubmitRequest

        if isinstance(request, SubmitRequest):
            request = request.to_request()
        if isinstance(request, GRRequest):
            kind, weight = "GR", 1.0
        elif isinstance(request, BERequest):
            kind, weight = "BE", request.priority
        else:
            raise AdmissionError(
                f"unsupported request type {type(request).__name__!r}"
            )
        if request.app_id in self._pending_ids or self.scheduler.has_app(
            request.app_id
        ):
            raise AdmissionError(
                f"app id {request.app_id!r} already queued or admitted"
            )
        if len(self._queue) >= self.max_queue_depth:
            self.stats.backpressure_rejections += 1
            metrics = get_metrics()
            metrics.incr("gateway.backpressure")
            tr = tracing.get_tracer()
            if tr.enabled:
                tr.event(
                    "gateway.backpressure",
                    app_id=request.app_id,
                    queue_depth=len(self._queue),
                )
            raise BackpressureError(
                f"gateway queue full ({self.max_queue_depth}); "
                f"request {request.app_id!r} shed"
            )
        entry = _Pending(self._seq, request, kind, weight)
        self._seq += 1
        heapq.heappush(self._queue, (entry.sort_key(), entry))
        self._pending_ids.add(request.app_id)
        self.stats.submitted += 1
        get_metrics().set_gauge("gateway.queue_depth", float(len(self._queue)))
        return entry.seq

    # ------------------------------------------------------------------
    # Epoch machinery
    # ------------------------------------------------------------------
    def _pop_batch(self) -> list[_Pending]:
        """Pop the epoch's batch in priority order, honoring backoff."""
        limit = self.batch_size if self.batch_size is not None else len(self._queue)
        batch: list[_Pending] = []
        deferred: list[tuple[tuple[int, float, int], _Pending]] = []
        while self._queue and len(batch) < limit:
            key, entry = heapq.heappop(self._queue)
            if entry.not_before_epoch > self._epoch:
                deferred.append((key, entry))
                continue
            batch.append(entry)
        for item in deferred:
            heapq.heappush(self._queue, item)
        return batch

    def _evaluate_batch(
        self, batch: Sequence[_Pending], snapshot: AdmissionSnapshot
    ) -> list[AdmissionProposal]:
        network = self.scheduler.network
        assigner = self.scheduler.assigner
        if self.workers <= 1:
            return [
                evaluate_against_snapshot(
                    entry.request, network, snapshot, assigner=assigner
                )
                for entry in batch
            ]
        pool = self._ensure_pool()
        if self.executor_kind == "process":
            payloads = [(entry.request, snapshot) for entry in batch]
            chunksize = max(1, len(batch) // (self.workers * 2))
            return list(
                pool.map(_evaluate_in_worker, payloads, chunksize=chunksize)
            )
        return list(
            pool.map(
                lambda entry: evaluate_against_snapshot(
                    entry.request, network, snapshot, assigner=assigner
                ),
                batch,
            )
        )

    def _requeue_or_fallback(self, entry: _Pending, reason: str) -> Decision | None:
        """Handle one conflicted proposal; returns a decision on fallback."""
        entry.attempts += 1
        self.stats.conflicts += 1
        metrics = get_metrics()
        metrics.incr("gateway.conflicts", kind=entry.kind)
        tr = tracing.get_tracer()
        if tr.enabled:
            tr.event(
                "gateway.conflict",
                app_id=entry.request.app_id,
                kind=entry.kind,
                attempt=entry.attempts,
                reason=reason,
            )
        if entry.attempts >= self.retry_policy.max_attempts:
            # Retry budget spent: decide exactly as the serial path would,
            # against live state — guarantees every request terminates
            # with a decision.
            self.stats.serial_fallbacks += 1
            metrics.incr("gateway.serial_fallbacks")
            return self.scheduler.commit(self.scheduler.evaluate(entry.request))
        entry.not_before_epoch = self._epoch + 1 + int(
            self.retry_policy.delay(entry.attempts)
        )
        heapq.heappush(self._queue, (entry.sort_key(), entry))
        return None

    def run_epoch(self) -> EpochReport:
        """Evaluate one batch in parallel, then commit sequentially.

        Returns an :class:`EpochReport`; an empty report (batch 0) means
        the queue was empty or every entry is still backing off.
        """
        self._epoch += 1
        self.stats.epochs += 1
        metrics = get_metrics()
        metrics.incr("gateway.epochs")
        with timer("gateway.epoch"):
            batch = self._pop_batch()
            committed = accepted = rejected = conflicts = fallbacks = 0
            if batch:
                snapshot = self.scheduler.admission_snapshot()
                proposals = self._evaluate_batch(batch, snapshot)
                self.stats.evaluated += len(batch)
                dirty: set[str] = set()
                for entry, proposal in zip(batch, proposals):
                    decision: Decision | None
                    if not proposal.accepted:
                        # Capacity only shrinks between snapshot and
                        # commit, so a snapshot-time reject is final.
                        decision = self.scheduler.commit(proposal)
                    else:
                        footprint = proposal.used_elements()
                        overlap = bool(footprint & dirty)
                        if proposal.kind == "BE" and overlap:
                            # Stale Theorem-3 shares on contested elements.
                            before = self.stats.conflicts
                            decision = self._requeue_or_fallback(
                                entry, "predicted view stale"
                            )
                            conflicts += self.stats.conflicts - before
                            if decision is None:
                                continue
                            fallbacks += 1
                        else:
                            try:
                                decision = self.scheduler.commit(
                                    proposal, revalidate=True
                                )
                                if overlap:
                                    self.stats.overlap_commits += 1
                            except StaleProposalError as error:
                                before = self.stats.conflicts
                                decision = self._requeue_or_fallback(
                                    entry, str(error)
                                )
                                conflicts += self.stats.conflicts - before
                                if decision is None:
                                    continue
                                fallbacks += 1
                        if decision.accepted:
                            dirty |= footprint
                    committed += 1
                    self.stats.committed += 1
                    if decision.accepted:
                        accepted += 1
                        self.stats.accepted += 1
                    else:
                        rejected += 1
                        self.stats.rejected += 1
                    self._record(entry, decision)
        metrics.set_gauge("gateway.queue_depth", float(len(self._queue)))
        report = EpochReport(
            epoch=self._epoch,
            batch=len(batch),
            committed=committed,
            accepted=accepted,
            rejected=rejected,
            conflicts=conflicts,
            serial_fallbacks=fallbacks,
            queue_depth=len(self._queue),
        )
        tr = tracing.get_tracer()
        if tr.enabled:
            tr.event(
                "gateway.epoch",
                epoch=report.epoch,
                batch=report.batch,
                committed=report.committed,
                accepted=report.accepted,
                conflicts=report.conflicts,
                queue_depth=report.queue_depth,
            )
        return report

    def _record(self, entry: _Pending, decision: Decision) -> None:
        self.decisions.append(decision)
        self._decision_by_seq[entry.seq] = decision
        self._pending_ids.discard(entry.request.app_id)

    # ------------------------------------------------------------------
    # Convenience drivers
    # ------------------------------------------------------------------
    def drain(self) -> list[EpochReport]:
        """Run epochs until the queue is empty; returns the epoch reports."""
        reports: list[EpochReport] = []
        for _ in range(MAX_DRAIN_EPOCHS):
            if not self._queue:
                return reports
            reports.append(self.run_epoch())
        raise GatewayError(
            f"drain did not converge within {MAX_DRAIN_EPOCHS} epochs "
            f"({len(self._queue)} requests still queued)"
        )

    def process(
        self, requests: Sequence[BERequest | GRRequest]
    ) -> list[Decision]:
        """Submit a burst and drain it; decisions in submission order."""
        tickets = [self.submit(request) for request in requests]
        self.drain()
        return [self._decision_by_seq[ticket] for ticket in tickets]
