"""Service layer: long-running entry points above the core scheduler.

The core (:mod:`repro.core`) is a library of pure-ish algorithms and one
mutable :class:`~repro.core.scheduler.SparcleScheduler`; this package wraps
it in the machinery a deployed admission service needs — bounded arrival
queues, priority classes, epoch batching, and parallel candidate-placement
evaluation with optimistic commit (:mod:`repro.service.gateway`) — and
scales it out horizontally: :mod:`repro.service.shard` partitions the
network into regions, runs one gateway per shard, and coordinates
cross-shard placements with a two-phase reserve/commit protocol backed by
durable per-shard event logs.
"""

from repro.service.gateway import (
    AdmissionGateway,
    EpochReport,
    GatewayStats,
)
from repro.service.shard import (
    FederationEpochReport,
    FederationStats,
    NetworkPartition,
    ReplayedApp,
    ReplayState,
    ShardCoordinator,
    ShardEventLog,
    ShardNode,
    partition_network,
    replay_log,
)

__all__ = [
    "AdmissionGateway",
    "EpochReport",
    "FederationEpochReport",
    "FederationStats",
    "GatewayStats",
    "NetworkPartition",
    "ReplayState",
    "ReplayedApp",
    "ShardCoordinator",
    "ShardEventLog",
    "ShardNode",
    "partition_network",
    "replay_log",
]
