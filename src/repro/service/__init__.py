"""Service layer: long-running entry points above the core scheduler.

The core (:mod:`repro.core`) is a library of pure-ish algorithms and one
mutable :class:`~repro.core.scheduler.SparcleScheduler`; this package wraps
it in the machinery a deployed admission service needs — bounded arrival
queues, priority classes, epoch batching, and parallel candidate-placement
evaluation with optimistic commit (:mod:`repro.service.gateway`) — and
scales it out horizontally: :mod:`repro.service.shard` partitions the
network into regions, runs one gateway per shard, and coordinates
cross-shard placements with a two-phase reserve/commit protocol backed by
durable per-shard event logs.

On top of both sits the network surface: :mod:`repro.service.protocol`
defines the versioned JSON-lines wire schema shared by in-process and
remote callers, :mod:`repro.service.server` runs the asyncio serving
front-end (``sparcle serve``) with per-client backpressure, graceful
drain, ``/metrics``, and event-log crash recovery, and
:mod:`repro.service.client` is the matching async client.
"""

from repro.service.client import SparcleClient, scrape_metrics
from repro.service.gateway import (
    AdmissionGateway,
    EpochReport,
    GatewayStats,
)
from repro.service.protocol import (
    PROTOCOL_VERSION,
    DecisionReply,
    DrainReply,
    DrainRequest,
    ErrorReply,
    Message,
    StatusReply,
    StatusRequest,
    SubmitReply,
    SubmitRequest,
    TopologyReply,
    TopologyRequest,
    WithdrawReply,
    WithdrawRequest,
)
from repro.service.server import SparcleServer, serve
from repro.service.shard import (
    FederationEpochReport,
    FederationStats,
    NetworkPartition,
    ReplayedApp,
    ReplayState,
    ShardCoordinator,
    ShardEventLog,
    ShardNode,
    partition_network,
    replay_log,
)

__all__ = [
    "AdmissionGateway",
    "DecisionReply",
    "DrainReply",
    "DrainRequest",
    "EpochReport",
    "ErrorReply",
    "FederationEpochReport",
    "FederationStats",
    "GatewayStats",
    "Message",
    "NetworkPartition",
    "PROTOCOL_VERSION",
    "ReplayState",
    "ReplayedApp",
    "ShardCoordinator",
    "ShardEventLog",
    "ShardNode",
    "SparcleClient",
    "SparcleServer",
    "StatusReply",
    "StatusRequest",
    "SubmitReply",
    "SubmitRequest",
    "TopologyReply",
    "TopologyRequest",
    "WithdrawReply",
    "WithdrawRequest",
    "partition_network",
    "replay_log",
    "scrape_metrics",
    "serve",
]
