"""Service layer: long-running entry points above the core scheduler.

The core (:mod:`repro.core`) is a library of pure-ish algorithms and one
mutable :class:`~repro.core.scheduler.SparcleScheduler`; this package wraps
it in the machinery a deployed admission service needs — bounded arrival
queues, priority classes, epoch batching, and parallel candidate-placement
evaluation with optimistic commit (:mod:`repro.service.gateway`).
"""

from repro.service.gateway import (
    AdmissionGateway,
    EpochReport,
    GatewayStats,
)

__all__ = [
    "AdmissionGateway",
    "EpochReport",
    "GatewayStats",
]
