"""Randomized simulation scenarios for the paper's evaluation (Sec. V-B).

The simulations sweep random instances of two task-graph shapes (linear and
diamond, Fig. 7) over three network topologies (star, linear, fully
connected) in three resource regimes:

* **link-bottleneck** — links are scarce relative to the TT sizes while
  NCPs enjoy a 10x larger capacity-to-requirement ratio;
* **NCP-bottleneck** — the mirror image: compute is scarce, bandwidth is
  plentiful (10x);
* **balanced** — either can bind.

Every draw takes an explicit RNG so experiment sweeps are reproducible, and
each scenario pins the graph's source/sink onto distinct NCPs (data sources
and consumers have predetermined hosts).
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum

import numpy as np

from repro.core.network import (
    Network,
    fully_connected_network,
    linear_network,
    star_network,
)
from repro.core.taskgraph import (
    CPU,
    MEMORY,
    TaskGraph,
    diamond_task_graph,
    linear_task_graph,
)
from repro.exceptions import ScenarioError
from repro.utils.rng import ensure_rng


class BottleneckCase(Enum):
    """Which resource class binds the processing rate."""

    NCP = "ncp-bottleneck"
    LINK = "link-bottleneck"
    BALANCED = "balanced"


class GraphKind(Enum):
    """Task-graph shapes of Fig. 7."""

    LINEAR = "linear"
    DIAMOND = "diamond"


class TopologyKind(Enum):
    """Network topologies used in the evaluation (typical IoT shapes)."""

    STAR = "star"
    LINEAR = "linear"
    FULL = "fully-connected"


#: Capacity advantage of the non-bottleneck resource class.
HEADROOM = 10.0


@dataclass(frozen=True)
class Scenario:
    """One randomized (application, network) instance."""

    graph: TaskGraph
    network: Network
    case: BottleneckCase
    graph_kind: GraphKind
    topology: TopologyKind
    seed_hint: str = ""


def _uniform(rng: np.random.Generator, low: float, high: float, n: int) -> list[float]:
    return [float(v) for v in rng.uniform(low, high, size=n)]


def random_task_graph(
    kind: GraphKind,
    rng: int | np.random.Generator | None,
    *,
    n_linear_cts: int = 4,
    cpu_range: tuple[float, float] = (500.0, 5000.0),
    tt_range: tuple[float, float] = (1.0, 10.0),
    memory_range: tuple[float, float] | None = None,
) -> TaskGraph:
    """A random linear or diamond task graph.

    ``memory_range`` adds a second NCP resource type (the Fig. 12 setting).
    """
    generator = ensure_rng(rng)
    if kind is GraphKind.LINEAR:
        n_cts, n_tts = n_linear_cts, n_linear_cts + 1
    elif kind is GraphKind.DIAMOND:
        n_cts, n_tts = 6, 14
    else:
        raise ScenarioError(f"unknown graph kind {kind!r}")
    cpu = _uniform(generator, *cpu_range, n_cts)
    tts = _uniform(generator, *tt_range, n_tts)
    extras = None
    if memory_range is not None:
        extras = {MEMORY: _uniform(generator, *memory_range, n_cts)}
    if kind is GraphKind.LINEAR:
        return linear_task_graph(
            n_linear_cts, cpu_per_ct=cpu, megabits_per_tt=tts,
            extra_requirements=extras,
        )
    return diamond_task_graph(
        cpu_per_ct=cpu, megabits_per_tt=tts, extra_requirements=extras
    )


def random_network(
    topology: TopologyKind,
    rng: int | np.random.Generator | None,
    *,
    n_ncps: int = 8,
    cpu_range: tuple[float, float] = (1000.0, 5000.0),
    bandwidth_range: tuple[float, float] = (5.0, 40.0),
    memory_range: tuple[float, float] | None = None,
    link_failure_probability: float = 0.0,
    ncp_failure_probability: float = 0.0,
) -> Network:
    """A random star/linear/fully-connected network.

    For the star, ``n_ncps`` counts hub + leaves (the paper's "star network
    with eight NCPs" is ``n_ncps=8``).
    """
    generator = ensure_rng(rng)
    if n_ncps < 2:
        raise ScenarioError("need at least two NCPs")
    cpus = _uniform(generator, *cpu_range, n_ncps)
    extras = None
    if memory_range is not None:
        extras = {MEMORY: _uniform(generator, *memory_range, n_ncps)}
    if topology is TopologyKind.STAR:
        bandwidths = _uniform(generator, *bandwidth_range, n_ncps - 1)
        return star_network(
            n_ncps - 1,
            hub_cpu=cpus[0],
            leaf_cpu=cpus[1:],
            link_bandwidth=bandwidths,
            extra_capacities=extras,
            link_failure_probability=link_failure_probability,
            ncp_failure_probability=ncp_failure_probability,
        )
    if topology is TopologyKind.LINEAR:
        bandwidths = _uniform(generator, *bandwidth_range, n_ncps - 1)
        return linear_network(
            n_ncps,
            cpu=cpus,
            link_bandwidth=bandwidths,
            extra_capacities=extras,
            link_failure_probability=link_failure_probability,
            ncp_failure_probability=ncp_failure_probability,
        )
    if topology is TopologyKind.FULL:
        n_links = n_ncps * (n_ncps - 1) // 2
        bandwidths = _uniform(generator, *bandwidth_range, n_links)
        return fully_connected_network(
            n_ncps,
            cpu=cpus,
            link_bandwidth=bandwidths,
            extra_capacities=extras,
            link_failure_probability=link_failure_probability,
            ncp_failure_probability=ncp_failure_probability,
        )
    raise ScenarioError(f"unknown topology {topology!r}")


def _pin_endpoints(
    graph: TaskGraph, network: Network, rng: np.random.Generator
) -> TaskGraph:
    """Pin every source and sink onto distinct random NCPs."""
    endpoints = list(graph.sources) + list(graph.sinks)
    names = list(network.ncp_names)
    if len(endpoints) > len(names):
        raise ScenarioError("more pinned endpoints than NCPs")
    chosen = rng.choice(len(names), size=len(endpoints), replace=False)
    pins = {ct: names[int(k)] for ct, k in zip(endpoints, chosen)}
    return graph.with_pins(pins)


def make_scenario(
    case: BottleneckCase,
    graph_kind: GraphKind,
    topology: TopologyKind,
    rng: int | np.random.Generator | None,
    *,
    n_ncps: int = 8,
    n_linear_cts: int = 4,
    with_memory: bool = False,
    link_failure_probability: float = 0.0,
    ncp_failure_probability: float = 0.0,
) -> Scenario:
    """Draw one random scenario in the requested bottleneck regime.

    The regime is created by giving the *non*-bottleneck resource class a
    :data:`HEADROOM` (10x) capacity multiplier over the balanced baseline,
    matching the paper's setup description.
    """
    generator = ensure_rng(rng)
    memory_req = (50.0, 500.0) if with_memory else None
    memory_cap = (300.0, 1500.0) if with_memory else None
    graph = random_task_graph(
        graph_kind, generator, n_linear_cts=n_linear_cts, memory_range=memory_req
    )
    network = random_network(
        topology,
        generator,
        n_ncps=n_ncps,
        memory_range=memory_cap,
        link_failure_probability=link_failure_probability,
        ncp_failure_probability=ncp_failure_probability,
    )
    if case is BottleneckCase.LINK:
        graph = graph.scaled(graph.name, ct_factor=1.0 / HEADROOM)
    elif case is BottleneckCase.NCP:
        graph = graph.scaled(graph.name, tt_factor=1.0 / HEADROOM)
    elif case is not BottleneckCase.BALANCED:
        raise ScenarioError(f"unknown case {case!r}")
    graph = _pin_endpoints(graph, network, generator)
    return Scenario(
        graph=graph,
        network=network,
        case=case,
        graph_kind=graph_kind,
        topology=topology,
    )


def memory_bottleneck_scenario(
    topology: TopologyKind,
    rng: int | np.random.Generator | None,
    *,
    n_ncps: int = 8,
) -> Scenario:
    """A two-resource scenario where NCP *memory* binds (Fig. 12).

    CPU and bandwidth get the 10x headroom; memory requirements are drawn
    against tight memory capacities.
    """
    generator = ensure_rng(rng)
    graph = random_task_graph(
        GraphKind.DIAMOND, generator, memory_range=(100.0, 1000.0)
    )
    # Loosen CPU and links: scale CPU demand down, keep memory as drawn.
    scaled_cts = []
    from repro.core.taskgraph import ComputationTask

    for ct in graph.cts:
        requirements = dict(ct.requirements)
        if CPU in requirements:
            requirements[CPU] = requirements[CPU] / HEADROOM
        scaled_cts.append(ComputationTask(ct.name, requirements, pinned_host=ct.pinned_host))
    graph = TaskGraph(graph.name, scaled_cts, graph.tts)
    graph = graph.scaled(graph.name, ct_factor=1.0, tt_factor=1.0 / HEADROOM)
    network = random_network(
        topology, generator, n_ncps=n_ncps, memory_range=(300.0, 1500.0)
    )
    graph = _pin_endpoints(graph, network, generator)
    return Scenario(
        graph=graph,
        network=network,
        case=BottleneckCase.NCP,
        graph_kind=GraphKind.DIAMOND,
        topology=topology,
        seed_hint="memory-bottleneck",
    )
