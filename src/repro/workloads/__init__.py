"""Workload generators: paper parameter tables and randomized scenarios."""

from repro.workloads.facedetect import (
    CLOUD,
    CONSUMER_HOST,
    FIG6_FIELD_BANDWIDTHS,
    SOURCE_HOST,
    TABLE_I,
    TABLE_II,
    cloud_only_rate,
    face_detection_graph,
    testbed_network,
)
from repro.workloads.generators import (
    random_geometric_network,
    random_layered_task_graph,
)
from repro.workloads.scenarios import (
    HEADROOM,
    BottleneckCase,
    GraphKind,
    Scenario,
    TopologyKind,
    make_scenario,
    memory_bottleneck_scenario,
    random_network,
    random_task_graph,
)

__all__ = [
    "BottleneckCase",
    "CLOUD",
    "CONSUMER_HOST",
    "FIG6_FIELD_BANDWIDTHS",
    "GraphKind",
    "HEADROOM",
    "SOURCE_HOST",
    "Scenario",
    "TABLE_I",
    "TABLE_II",
    "TopologyKind",
    "cloud_only_rate",
    "face_detection_graph",
    "make_scenario",
    "memory_bottleneck_scenario",
    "random_geometric_network",
    "random_layered_task_graph",
    "random_network",
    "random_task_graph",
    "testbed_network",
]
