"""Extra generators: layered random DAGs and geometric IoT topologies.

Beyond the paper's two task-graph shapes and three regular topologies,
extension experiments want variety:

* :func:`random_layered_task_graph` — a source, ``depth`` layers of up to
  ``width`` parallel CTs with random cross-layer wiring, and a sink; the
  general shape real stream topologies (Storm/Flink jobs) take;
* :func:`random_geometric_network` — NCPs dropped uniformly in the unit
  square and linked when within ``radius`` (plus a connectivity patch-up),
  the standard model for ad-hoc/IoT deployments.  Link bandwidth decays
  with distance, mimicking radio links.
"""

from __future__ import annotations

import math

import numpy as np

from repro.core.network import NCP, Link, Network
from repro.core.taskgraph import CPU, ComputationTask, TaskGraph, TransportTask
from repro.exceptions import ScenarioError
from repro.utils.rng import ensure_rng


def random_layered_task_graph(
    rng: int | np.random.Generator | None,
    *,
    name: str = "layered",
    depth: int = 3,
    width: int = 3,
    edge_probability: float = 0.5,
    cpu_range: tuple[float, float] = (500.0, 5000.0),
    tt_range: tuple[float, float] = (1.0, 10.0),
) -> TaskGraph:
    """A random layered DAG: source -> layers -> sink, always connected.

    Every CT gets at least one incoming and one outgoing edge (extra
    cross-layer edges appear with ``edge_probability``), so the graph has a
    unique source/sink pair and no dangling work.
    """
    if depth < 1 or width < 1:
        raise ScenarioError("depth and width must be at least 1")
    if not 0.0 <= edge_probability <= 1.0:
        raise ScenarioError("edge_probability must be in [0, 1]")
    generator = ensure_rng(rng)
    cts = [ComputationTask("source", {})]
    layers: list[list[str]] = [["source"]]
    for d in range(depth):
        layer_width = int(generator.integers(1, width + 1))
        layer = []
        for w in range(layer_width):
            ct_name = f"l{d}_{w}"
            cts.append(
                ComputationTask(
                    ct_name, {CPU: float(generator.uniform(*cpu_range))}
                )
            )
            layer.append(ct_name)
        layers.append(layer)
    cts.append(ComputationTask("sink", {}))
    layers.append(["sink"])

    tts: list[TransportTask] = []
    counter = 0

    def connect(src: str, dst: str) -> None:
        nonlocal counter
        tts.append(
            TransportTask(
                f"tt{counter}", src, dst, float(generator.uniform(*tt_range))
            )
        )
        counter += 1

    for upper, lower in zip(layers, layers[1:]):
        connected_dsts: set[str] = set()
        for src in upper:
            # every CT keeps at least one outgoing edge
            first = lower[int(generator.integers(0, len(lower)))]
            connect(src, first)
            connected_dsts.add(first)
            for dst in lower:
                if dst != first and generator.random() < edge_probability:
                    connect(src, dst)
                    connected_dsts.add(dst)
        for dst in lower:
            # ...and every CT at least one incoming edge
            if dst not in connected_dsts:
                src = upper[int(generator.integers(0, len(upper)))]
                connect(src, dst)
    return TaskGraph(name, cts, tts)


def random_geometric_network(
    rng: int | np.random.Generator | None,
    *,
    name: str = "geo",
    n_ncps: int = 10,
    radius: float = 0.45,
    cpu_range: tuple[float, float] = (1000.0, 5000.0),
    bandwidth_at_zero: float = 50.0,
    link_failure_probability: float = 0.0,
) -> Network:
    """NCPs in the unit square, linked within ``radius`` (always connected).

    Bandwidth decays linearly with distance —
    ``bw = bandwidth_at_zero * (1 - d / (2 * radius))`` — so nearby nodes
    enjoy fat links and marginal ones thin links.  If the random geometric
    graph is disconnected, each stranded component is patched to its
    nearest neighbour (with the bandwidth its distance implies).
    """
    if n_ncps < 2:
        raise ScenarioError("need at least two NCPs")
    if radius <= 0:
        raise ScenarioError("radius must be positive")
    generator = ensure_rng(rng)
    xs = generator.random(n_ncps)
    ys = generator.random(n_ncps)
    ncps = [
        NCP(f"ncp{k + 1}", {CPU: float(generator.uniform(*cpu_range))})
        for k in range(n_ncps)
    ]

    def distance(i: int, j: int) -> float:
        return math.hypot(xs[i] - xs[j], ys[i] - ys[j])

    def bandwidth(d: float) -> float:
        return max(bandwidth_at_zero * (1.0 - d / (2.0 * radius)), 0.5)

    links: list[Link] = []
    counter = 0
    adjacency: dict[int, set[int]] = {k: set() for k in range(n_ncps)}

    def add_link(i: int, j: int) -> None:
        nonlocal counter
        counter += 1
        links.append(
            Link(
                f"l{counter}", f"ncp{i + 1}", f"ncp{j + 1}",
                bandwidth(distance(i, j)),
                failure_probability=link_failure_probability,
            )
        )
        adjacency[i].add(j)
        adjacency[j].add(i)

    for i in range(n_ncps):
        for j in range(i + 1, n_ncps):
            if distance(i, j) <= radius:
                add_link(i, j)

    # Patch connectivity: merge components along their closest pair.
    def components() -> list[set[int]]:
        remaining = set(range(n_ncps))
        out = []
        while remaining:
            seed = remaining.pop()
            component = {seed}
            frontier = [seed]
            while frontier:
                node = frontier.pop()
                for neighbor in adjacency[node]:
                    if neighbor not in component:
                        component.add(neighbor)
                        frontier.append(neighbor)
            remaining -= component
            out.append(component)
        return out

    comps = components()
    while len(comps) > 1:
        first, rest = comps[0], comps[1:]
        best = None
        for other in rest:
            for i in first:
                for j in other:
                    d = distance(i, j)
                    if best is None or d < best[0]:
                        best = (d, i, j)
        assert best is not None
        add_link(best[1], best[2])
        comps = components()
    return Network(name, ncps, links)
