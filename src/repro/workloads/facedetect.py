"""The face-detection testbed workload (Tables I–II, Figs. 4–6).

This module encodes the paper's experimental artifacts:

* **Table II** — the OpenCV face-detection pipeline's per-image costs:
  resize 9880 MC, denoise 12800 MC, edge detection 4826 MC, face detection
  5658 MC; raw image 3.1 MB, resized 182 kB, denoised 145 kB, edge map
  188 kB, detected faces 11 kB (converted to megabits internally).
* **Table I** — capacities: cloud CPU 4 x 3.8 GHz, field CPU 3000 MHz,
  cloud access bandwidth 100 Mbps.
* **Fig. 4** — the dispersed network: six field NCPs behind a cloud access
  link.  The paper's figure does not fully specify the field wiring, so we
  use a documented adaptation (see :func:`testbed_network`): a field mesh
  ``ncp1-ncp2-ncp3-ncp4`` chain with ``ncp5``/``ncp6`` forming a lower
  cycle, and the cloud attached to ``ncp1``.  The camera (data source) sits
  on ``ncp2`` and the result consumer on ``ncp4``; every inter-field link
  carries the swept "field bandwidth".

With these numbers the Fig. 6 shape emerges from first principles: at
0.5 Mbps field bandwidth the raw 24.8 Mb image throttles the cloud to
~0.02 images/sec while the dispersed pipeline sustains ~0.23 (an order of
magnitude better); at 10 Mbps shipping raw images to the cloud is optimal;
at 22 Mbps a cloud+field hybrid (face detection on a field NCP) still beats
cloud-only by ~15-25%.
"""

from __future__ import annotations

from repro.core.network import NCP, Link, Network
from repro.core.taskgraph import CPU, ComputationTask, TaskGraph, TransportTask
from repro.utils.units import ghz, kilobytes_to_megabits, megabytes_to_megabits

#: Table I — testbed capacities, in canonical units (MHz / Mbps).
TABLE_I = {
    "cloud_cpu_mhz": ghz(4 * 3.8),  # 4 cores x 3.8 GHz, pooled
    "field_cpu_mhz": 3000.0,
    "cloud_bandwidth_mbps": 100.0,
}

#: Table II — per-image task costs: CPU in megacycles, transport in megabits.
TABLE_II = {
    "resize_mc": 9880.0,
    "denoise_mc": 12800.0,
    "edge_detection_mc": 4826.0,
    "face_detection_mc": 5658.0,
    "raw_image_mb": megabytes_to_megabits(3.1),
    "resized_image_mb": kilobytes_to_megabits(182.0),
    "denoised_image_mb": kilobytes_to_megabits(145.0),
    "edge_map_mb": kilobytes_to_megabits(188.0),
    "detected_faces_mb": kilobytes_to_megabits(11.0),
}

#: Field bandwidths swept on the Fig. 6 x-axis (Mbps).
FIG6_FIELD_BANDWIDTHS = (0.5, 10.0, 22.0)

#: Name of the cloud NCP in the testbed network.
CLOUD = "cloud"
#: Default camera (source) and consumer hosts on the field.
SOURCE_HOST = "ncp2"
CONSUMER_HOST = "ncp4"


def face_detection_graph(
    *,
    source_host: str = SOURCE_HOST,
    consumer_host: str = CONSUMER_HOST,
    name: str = "face-detection",
) -> TaskGraph:
    """The Fig. 5 pipeline: camera -> resize -> denoise -> edge -> face -> consumer."""
    cts = [
        ComputationTask("camera", {}, pinned_host=source_host),
        ComputationTask("resize", {CPU: TABLE_II["resize_mc"]}),
        ComputationTask("denoise", {CPU: TABLE_II["denoise_mc"]}),
        ComputationTask("edge", {CPU: TABLE_II["edge_detection_mc"]}),
        ComputationTask("face", {CPU: TABLE_II["face_detection_mc"]}),
        ComputationTask("consumer", {}, pinned_host=consumer_host),
    ]
    tts = [
        TransportTask("raw", "camera", "resize", TABLE_II["raw_image_mb"]),
        TransportTask("resized", "resize", "denoise", TABLE_II["resized_image_mb"]),
        TransportTask("denoised", "denoise", "edge", TABLE_II["denoised_image_mb"]),
        TransportTask("edges", "edge", "face", TABLE_II["edge_map_mb"]),
        TransportTask("faces", "face", "consumer", TABLE_II["detected_faces_mb"]),
    ]
    return TaskGraph(name, cts, tts)


def testbed_network(
    field_bandwidth: float,
    *,
    cloud_bandwidth: float | None = None,
    link_failure_probability: float = 0.0,
    name: str | None = None,
) -> Network:
    """The Fig. 4 testbed: six field NCPs plus the cloud.

    Field wiring (documented adaptation — the paper's figure leaves the
    mesh unspecified)::

        cloud --(cloud BW)-- ncp1 -- ncp2 -- ncp3 -- ncp4
                                |       |
                              ncp5 -- ncp6

    All seven field links carry ``field_bandwidth`` Mbps; the cloud access
    link carries Table I's 100 Mbps unless overridden.
    ``link_failure_probability`` applies to the six *field* links (the
    wireless mesh is what fails in practice); the wired access link and
    the NCPs stay reliable.
    """
    cloud_bw = cloud_bandwidth if cloud_bandwidth is not None else TABLE_I["cloud_bandwidth_mbps"]
    field_cpu = TABLE_I["field_cpu_mhz"]
    ncps = [NCP(CLOUD, {CPU: TABLE_I["cloud_cpu_mhz"]})]
    ncps += [NCP(f"ncp{k}", {CPU: field_cpu}) for k in range(1, 7)]
    field_edges = [
        ("ncp1", "ncp2"),
        ("ncp2", "ncp3"),
        ("ncp3", "ncp4"),
        ("ncp2", "ncp5"),
        ("ncp3", "ncp6"),
        ("ncp5", "ncp6"),
    ]
    links = [Link("access", CLOUD, "ncp1", cloud_bw)]
    links += [
        Link(
            f"f{k + 1}", a, b, field_bandwidth,
            failure_probability=link_failure_probability,
        )
        for k, (a, b) in enumerate(field_edges)
    ]
    return Network(name or f"testbed-{field_bandwidth}mbps", ncps, links)


def cloud_only_rate(field_bandwidth: float) -> float:
    """Analytical cloud-computing rate for the testbed (sanity baseline).

    The raw image crosses two field links (``ncp2 -> ncp1``) — each a
    separate link at ``field_bandwidth`` — and the 100 Mbps access link; the
    cloud then runs all four pipeline stages.  The detected-faces stream
    returns over the same field links but is tiny.
    """
    total_mc = (
        TABLE_II["resize_mc"]
        + TABLE_II["denoise_mc"]
        + TABLE_II["edge_detection_mc"]
        + TABLE_II["face_detection_mc"]
    )
    raw = TABLE_II["raw_image_mb"]
    faces = TABLE_II["detected_faces_mb"]
    return min(
        TABLE_I["cloud_cpu_mhz"] / total_mc,
        field_bandwidth / (raw + faces),  # the shared ncp1-ncp2 field link
        TABLE_I["cloud_bandwidth_mbps"] / (raw + faces),
    )
