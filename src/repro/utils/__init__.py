"""Small shared utilities: deterministic RNG handling, math helpers,
pretty-printing of experiment tables, and percentile summaries.
"""

from repro.utils.rng import ensure_rng, spawn_rngs
from repro.utils.stats import cdf_points, percentile_summary
from repro.utils.tables import format_table

__all__ = [
    "ensure_rng",
    "spawn_rngs",
    "cdf_points",
    "percentile_summary",
    "format_table",
]
