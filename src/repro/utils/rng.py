"""Deterministic random-number-generator plumbing.

Every stochastic component in the library accepts either a seed or a
:class:`numpy.random.Generator`.  Centralizing the coercion here keeps the
experiments reproducible run-to-run: an experiment module fixes one integer
seed and derives independent child generators for each trial.
"""

from __future__ import annotations

import numpy as np

RngLike = "int | np.random.Generator | None"


def ensure_rng(rng: int | np.random.Generator | None = None) -> np.random.Generator:
    """Coerce ``rng`` into a :class:`numpy.random.Generator`.

    ``None`` yields a fresh non-deterministic generator; an ``int`` seeds a
    new PCG64 generator; an existing generator is returned unchanged.
    """
    if rng is None:
        return np.random.default_rng()
    if isinstance(rng, np.random.Generator):
        return rng
    if isinstance(rng, (int, np.integer)):
        return np.random.default_rng(int(rng))
    raise TypeError(f"expected int, Generator, or None, got {type(rng).__name__}")


def spawn_rngs(rng: int | np.random.Generator | None, count: int) -> list[np.random.Generator]:
    """Derive ``count`` statistically independent child generators.

    Children are derived through :class:`numpy.random.SeedSequence` spawning,
    so per-trial streams do not overlap and adding trials never perturbs the
    existing ones.
    """
    if count < 0:
        raise ValueError(f"count must be non-negative, got {count}")
    base = ensure_rng(rng)
    seeds = base.integers(0, 2**63 - 1, size=count, dtype=np.int64)
    return [np.random.default_rng(int(s)) for s in seeds]
