"""Unit conversions used when encoding the paper's parameter tables.

Canonical internal units (everything in the library is expressed in these):

* computation requirement ``a^(cpu)``: **megacycles per data unit** (MC/unit)
* computation capacity ``C^(cpu)``: **MHz** (megacycles per second)
* transport requirement ``a^(b)``: **megabits per data unit** (Mb/unit)
* link capacity ``C^(b)``: **Mbps**
* memory requirement/capacity: **MB per unit / MB**

With these choices, ``capacity / requirement`` is directly a processing rate
in data units per second, matching the paper's ``images/sec``.
"""

from __future__ import annotations

BITS_PER_BYTE = 8.0


def ghz(value: float) -> float:
    """GHz -> MHz."""
    return value * 1e3


def mhz(value: float) -> float:
    """MHz -> MHz (identity, for symmetry when encoding tables)."""
    return value


def megacycles(value: float) -> float:
    """MC/unit -> MC/unit (identity, used for self-documenting tables)."""
    return value


def mbps(value: float) -> float:
    """Mbps -> Mbps (identity)."""
    return value


def megabytes_to_megabits(value: float) -> float:
    """MB -> Mb."""
    return value * BITS_PER_BYTE


def kilobytes_to_megabits(value: float) -> float:
    """kB -> Mb."""
    return value * BITS_PER_BYTE / 1000.0
