"""Plain-text table rendering for experiment output.

Experiments print the same rows/series the paper reports; this renderer keeps
that output aligned and diff-friendly without pulling in a formatting
dependency.
"""

from __future__ import annotations

from collections.abc import Sequence


def _cell(value: object, ndigits: int) -> str:
    if isinstance(value, float):
        return f"{value:.{ndigits}f}"
    return str(value)


def format_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    *,
    ndigits: int = 4,
    title: str | None = None,
) -> str:
    """Render ``rows`` under ``headers`` as an aligned monospace table."""
    header_cells = [str(h) for h in headers]
    body = [[_cell(v, ndigits) for v in row] for row in rows]
    for i, row in enumerate(body):
        if len(row) != len(header_cells):
            raise ValueError(
                f"row {i} has {len(row)} cells but there are {len(header_cells)} headers"
            )
    widths = [
        max(len(header_cells[c]), *(len(r[c]) for r in body)) if body else len(header_cells[c])
        for c in range(len(header_cells))
    ]
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.ljust(w) for h, w in zip(header_cells, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in body:
        lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)
