"""ASCII rendering of task graphs and placements.

Terminal-friendly sketches used by the CLI and the examples: the task
graph drawn layer by layer (topological generations), and a placement
rendered as a network-side map of which CTs sit on which NCP and which TTs
cross which link.  No plotting dependency, deterministic output.
"""

from __future__ import annotations

import networkx as nx

from repro.core.network import Network
from repro.core.placement import Placement
from repro.core.taskgraph import TaskGraph


def _generations(graph: TaskGraph) -> list[list[str]]:
    """Topological generations of the CT DAG."""
    digraph = nx.DiGraph()
    digraph.add_nodes_from(ct.name for ct in graph.cts)
    digraph.add_edges_from((tt.src, tt.dst) for tt in graph.tts)
    return [sorted(layer) for layer in nx.topological_generations(digraph)]


def render_task_graph(graph: TaskGraph) -> str:
    """The DAG as indented layers with per-edge TT sizes.

    Example output::

        [sensor-pipeline]
        layer 0: source
          source -(tt1: 8.0Mb)-> ct1
        layer 1: ct1 (cpu=2000)
          ...
    """
    lines = [f"[{graph.name}]"]
    for depth, layer in enumerate(_generations(graph)):
        rendered = []
        for name in layer:
            ct = graph.ct(name)
            if ct.requirements:
                reqs = ",".join(
                    f"{resource}={amount:g}"
                    for resource, amount in sorted(ct.requirements.items())
                )
                rendered.append(f"{name} ({reqs})")
            else:
                rendered.append(name)
        lines.append(f"layer {depth}: " + ", ".join(rendered))
        for name in layer:
            for tt in graph.tts:
                if tt.src == name:
                    lines.append(
                        f"  {tt.src} -({tt.name}: {tt.megabits_per_unit:g}Mb)-> {tt.dst}"
                    )
    return "\n".join(lines)


def render_placement(network: Network, placement: Placement) -> str:
    """The placement as a per-NCP / per-link occupancy map.

    Example output::

        NCPs
          ncp1 <- source, ct1
          hub  <- ct2
        links
          l1 <- tt2 (4Mb)
          l2 <- (idle)
    """
    graph = placement.graph
    by_ncp: dict[str, list[str]] = {}
    for ct in graph.cts:
        by_ncp.setdefault(placement.host(ct.name), []).append(ct.name)
    by_link: dict[str, list[str]] = {}
    for tt in graph.tts:
        for link_name in placement.route(tt.name):
            by_link.setdefault(link_name, []).append(tt.name)
    width = max((len(name) for name in network.element_names()), default=4)
    lines = ["NCPs"]
    for name in network.ncp_names:
        tenants = ", ".join(by_ncp.get(name, [])) or "(idle)"
        lines.append(f"  {name:<{width}} <- {tenants}")
    lines.append("links")
    for name in network.link_names:
        tts = by_link.get(name)
        if tts:
            rendered = ", ".join(
                f"{tt_name} ({graph.tt(tt_name).megabits_per_unit:g}Mb)"
                for tt_name in tts
            )
        else:
            rendered = "(idle)"
        lines.append(f"  {name:<{width}} <- {rendered}")
    return "\n".join(lines)
