"""Statistics helpers used by the experiment harness.

The paper reports results as percentiles (Figs. 8 and 12), empirical CDFs
(Figs. 11 and 13), and means (Figs. 9 and 14).  These helpers compute those
summaries in one canonical way so every experiment module agrees on the
definitions.
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np


def percentile_summary(
    values: Sequence[float],
    percentiles: Sequence[float] = (25.0, 50.0, 75.0),
) -> dict[float, float]:
    """Return ``{percentile: value}`` using linear interpolation.

    Raises ``ValueError`` on an empty sample, because silently returning NaN
    has repeatedly hidden broken experiment sweeps.
    """
    arr = np.asarray(list(values), dtype=float)
    if arr.size == 0:
        raise ValueError("cannot summarize an empty sample")
    out = np.percentile(arr, list(percentiles))
    return {float(p): float(v) for p, v in zip(percentiles, out)}


def cdf_points(values: Sequence[float]) -> list[tuple[float, float]]:
    """Empirical CDF as sorted ``(value, P[X <= value])`` pairs."""
    arr = np.sort(np.asarray(list(values), dtype=float))
    if arr.size == 0:
        return []
    n = arr.size
    return [(float(v), (i + 1) / n) for i, v in enumerate(arr)]


def empirical_cdf_at(values: Sequence[float], threshold: float) -> float:
    """Fraction of ``values`` that are <= ``threshold``."""
    arr = np.asarray(list(values), dtype=float)
    if arr.size == 0:
        raise ValueError("cannot evaluate the CDF of an empty sample")
    return float(np.mean(arr <= threshold))


def mean(values: Sequence[float]) -> float:
    """Arithmetic mean, raising on empty input."""
    arr = np.asarray(list(values), dtype=float)
    if arr.size == 0:
        raise ValueError("cannot average an empty sample")
    return float(arr.mean())
