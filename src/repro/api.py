"""The supported public surface of the ``repro`` library, in one place.

Everything a downstream user of this reproduction should need is importable
from here::

    from repro.api import SparcleScheduler, AdmissionGateway, GRRequest

The facade groups the supported entry points by concern:

* **Modeling** — build applications (:class:`TaskGraph` et al.) and
  dispersed computing networks (:class:`Network` et al.).
* **Algorithms** — one-shot Algorithm-2 task assignment
  (:func:`sparcle_assign`) and its building blocks.
* **Admission** — the Fig.-3 multi-application control loop
  (:class:`SparcleScheduler`) plus the concurrent burst-admission service
  (:class:`AdmissionGateway`) and the online failure-repair loop
  (:class:`RepairController`).
* **Sharding** — the horizontally partitioned control plane:
  :func:`partition_network` splits a dispersed network into regions,
  :class:`ShardCoordinator` runs one gateway per region and brokers
  cross-shard placements through a two-phase reserve/commit protocol,
  and :class:`ShardEventLog` / :func:`replay_log` give each shard a
  durable event log with snapshot-and-replay warm starts.
* **Serving** — the asyncio front-end over the control plane:
  :class:`SparcleServer` listens on one TCP port speaking both the
  versioned JSON-lines wire protocol (:data:`PROTOCOL_VERSION`,
  :class:`SubmitRequest` / :class:`DecisionReply`) and minimal HTTP
  (``/metrics``, ``/healthz``); :class:`SparcleClient` is the matching
  async client and :func:`serve` the blocking run-until-drained entry
  the ``sparcle serve`` CLI wraps.
* **Observability** — traced experiment runs and metric/trace exporters.
* **Devtools** — the ``sparcle lint`` static-analysis pass: the
  per-file rules SPC001–SPC006 (:class:`LintEngine`,
  :data:`DEFAULT_RULES`), the whole-program analyses SPC007–SPC010
  (:class:`Analysis`, :data:`DEFAULT_ANALYSES`), structured per-file
  error reporting (:class:`LintError`), and the scenario-document
  validator :func:`lint_scenario`.
* **Chaos** — the ``sparcle soak`` harness: scenario fuzzing
  (:func:`fuzz_world`), deterministic event traces
  (:func:`generate_events`), the invariant registry
  (:func:`registered_invariants`) and the one-call soak pipeline
  (:func:`run_soak`).

Internal modules (``repro.core.*``, ``repro.service.*``, ``repro.perf.*``)
remain importable for power users and tests, but only the names re-exported
here — the exact contents of :data:`__all__` — are covered by the export
drift guard in ``tests/test_public_api.py``.  Add or remove names
deliberately: the test snapshot must change in the same commit.
"""

from __future__ import annotations

# --- Modeling -----------------------------------------------------------
from repro.core.network import (
    NCP,
    Link,
    Network,
    fully_connected_network,
    linear_network,
    star_network,
)
from repro.core.placement import CapacityView, Placement
from repro.core.taskgraph import (
    BANDWIDTH,
    CPU,
    MEMORY,
    ComputationTask,
    TaskGraph,
    TransportTask,
    diamond_task_graph,
    linear_task_graph,
    multi_camera_task_graph,
)

# --- Algorithms ---------------------------------------------------------
from repro.core.assignment import AssignmentResult, sparcle_assign
from repro.core.allocation import predicted_view, solve_proportional_fairness
from repro.core.availability import min_rate_availability
from repro.core.routing import resolve_route_kernel, widest_path

# --- Admission ----------------------------------------------------------
from repro.core.repair import RepairController, RepairEvent, RetryPolicy
from repro.core.scheduler import (
    AdmissionProposal,
    BERequest,
    Decision,
    GRRequest,
    SparcleScheduler,
    admit_all_gr,
    evaluate_admission,
)
from repro.exceptions import (
    AdmissionError,
    BackpressureError,
    GatewayError,
    SparcleError,
    StaleProposalError,
)
from repro.service.gateway import AdmissionGateway, EpochReport, GatewayStats

# --- Sharding -----------------------------------------------------------
from repro.exceptions import ShardError
from repro.service.shard import (
    FederationEpochReport,
    FederationStats,
    NetworkPartition,
    ShardCoordinator,
    ShardEventLog,
    ShardNode,
    partition_network,
    replay_log,
)

# --- Serving ------------------------------------------------------------
from repro.exceptions import ProtocolError, ServerError
from repro.service.client import SparcleClient
from repro.service.protocol import (
    PROTOCOL_VERSION,
    DecisionReply,
    SubmitRequest,
)
from repro.service.server import SparcleServer, serve

# --- Observability ------------------------------------------------------
from repro.experiments.base import export_observability, traced_run
from repro.perf.exporters import export_run, prometheus_snapshot, run_report

# --- Chaos --------------------------------------------------------------
from repro.chaos import (
    ChaosDriver,
    FuzzProfile,
    InvariantViolation,
    ServeSoakReport,
    SoakReport,
    fuzz_world,
    ShardSoakReport,
    generate_events,
    registered_invariants,
    run_serve_soak,
    run_shard_soak,
    run_soak,
)
from repro.exceptions import ChaosError

# --- Devtools -----------------------------------------------------------
from repro.devtools import (
    DEFAULT_ANALYSES,
    DEFAULT_RULES,
    Analysis,
    LintEngine,
    LintError,
    LintReport,
    Rule,
    Violation,
    lint_paths,
    lint_scenario,
)

__all__ = [
    # modeling
    "BANDWIDTH",
    "CPU",
    "CapacityView",
    "ComputationTask",
    "Link",
    "MEMORY",
    "NCP",
    "Network",
    "Placement",
    "TaskGraph",
    "TransportTask",
    "diamond_task_graph",
    "fully_connected_network",
    "linear_network",
    "linear_task_graph",
    "multi_camera_task_graph",
    "star_network",
    # algorithms
    "AssignmentResult",
    "min_rate_availability",
    "predicted_view",
    "resolve_route_kernel",
    "solve_proportional_fairness",
    "sparcle_assign",
    "widest_path",
    # admission
    "AdmissionError",
    "AdmissionGateway",
    "AdmissionProposal",
    "BERequest",
    "BackpressureError",
    "Decision",
    "EpochReport",
    "GRRequest",
    "GatewayError",
    "GatewayStats",
    "RepairController",
    "RepairEvent",
    "RetryPolicy",
    "SparcleError",
    "SparcleScheduler",
    "StaleProposalError",
    "admit_all_gr",
    "evaluate_admission",
    # sharding
    "FederationEpochReport",
    "FederationStats",
    "NetworkPartition",
    "ShardCoordinator",
    "ShardError",
    "ShardEventLog",
    "ShardNode",
    "partition_network",
    "replay_log",
    # serving
    "DecisionReply",
    "PROTOCOL_VERSION",
    "ProtocolError",
    "ServerError",
    "SparcleClient",
    "SparcleServer",
    "SubmitRequest",
    "serve",
    # observability
    "export_observability",
    "export_run",
    "prometheus_snapshot",
    "run_report",
    "traced_run",
    # chaos
    "ChaosDriver",
    "ChaosError",
    "FuzzProfile",
    "InvariantViolation",
    "ServeSoakReport",
    "ShardSoakReport",
    "SoakReport",
    "fuzz_world",
    "generate_events",
    "registered_invariants",
    "run_serve_soak",
    "run_shard_soak",
    "run_soak",
    # devtools
    "Analysis",
    "DEFAULT_ANALYSES",
    "DEFAULT_RULES",
    "LintEngine",
    "LintError",
    "LintReport",
    "Rule",
    "Violation",
    "lint_paths",
    "lint_scenario",
]
