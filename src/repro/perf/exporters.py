"""Exporters: Prometheus-style text snapshots and merged run reports.

Three output formats, one per consumer:

* :func:`prometheus_snapshot` — the text exposition format scrapers and
  humans both read: ``# TYPE`` headers, ``name{label="value"} value``
  sample lines.  Counters/gauges map directly; timers export as
  ``_count`` / ``_seconds_sum`` / ``_seconds_max`` samples (a summary
  without quantiles).
* :meth:`Tracer.export_jsonl` (in :mod:`repro.perf.tracing`) — the raw
  event stream for post-hoc audit.
* :func:`run_report` / :func:`export_run` — one merged JSON document tying
  both together with run metadata, which is what the CLI ``trace``
  subcommand and ``experiments/base.export_observability`` write next to
  the experiment artifacts.
"""

from __future__ import annotations

import json
import os
import re
import time
from collections.abc import Callable
from pathlib import Path
from typing import Any

from repro.perf.counters import PerfRegistry, counters
from repro.perf.metrics import LabeledRegistry, get_metrics
from repro.perf.tracing import Tracer, get_tracer

#: Prefix applied to every exported metric name.
PROM_PREFIX = "sparcle"

_NAME_RE = re.compile(r"[^a-zA-Z0-9_]")


def _report_timestamp(clock: Callable[[], float] | None) -> float:
    """The ``generated_at_unix`` stamp for one run report.

    Precedence: an explicitly injected ``clock``, then the standard
    ``SOURCE_DATE_EPOCH`` reproducible-build variable, then the wall
    clock.  The first two make re-exports of the same run bit-identical,
    which is what lets soak/export artifacts be diffed across reruns.
    """
    if clock is not None:
        return float(clock())
    epoch = os.environ.get("SOURCE_DATE_EPOCH")
    if epoch is not None:
        return float(int(epoch))
    return time.time()


def _prom_name(name: str) -> str:
    """``assignment.tree_cache_hit`` -> ``sparcle_assignment_tree_cache_hit``."""
    return f"{PROM_PREFIX}_{_NAME_RE.sub('_', name)}"


def _prom_labels(labels: tuple[tuple[str, str], ...]) -> str:
    if not labels:
        return ""
    escaped = ",".join(
        '{}="{}"'.format(k, v.replace("\\", "\\\\").replace('"', '\\"'))
        for k, v in labels
    )
    return f"{{{escaped}}}"


def _format_value(value: float) -> str:
    # Integral values print without a trailing ".0" (Prometheus style).
    if isinstance(value, float) and value.is_integer():
        return str(int(value))
    return repr(value) if isinstance(value, float) else str(value)


def prometheus_snapshot(
    registry: PerfRegistry | None = None,
    labeled: LabeledRegistry | None = None,
) -> str:
    """Render both registries in the Prometheus text exposition format.

    ``registry`` defaults to the process-wide :data:`repro.perf.counters`
    and ``labeled`` to the context's :func:`~repro.perf.metrics
    .get_metrics` registry, so a bare call snapshots whatever the run
    recorded.
    """
    registry = registry if registry is not None else counters
    labeled = labeled if labeled is not None else get_metrics()
    lines: list[str] = []

    snap = registry.snapshot()
    for name, value in snap["counters"].items():
        prom = _prom_name(name)
        lines.append(f"# TYPE {prom} counter")
        lines.append(f"{prom} {_format_value(value)}")
    for name, value in snap["gauges"].items():
        prom = _prom_name(name)
        lines.append(f"# TYPE {prom} gauge")
        lines.append(f"{prom} {_format_value(value)}")
    for name, stat in snap["timers"].items():
        prom = _prom_name(name)
        lines.append(f"# TYPE {prom} summary")
        lines.append(f"{prom}_count {stat['calls']}")
        lines.append(f"{prom}_seconds_sum {_format_value(stat['total_seconds'])}")
        lines.append(f"{prom}_seconds_max {_format_value(stat['max_seconds'])}")

    raw = labeled.raw_items()
    by_name: dict[str, list[str]] = {}
    for (name, labels), value in sorted(raw["counters"].items()):
        by_name.setdefault(f"counter {name}", []).append(
            f"{_prom_name(name)}{_prom_labels(labels)} {_format_value(value)}"
        )
    for (name, labels), value in sorted(raw["gauges"].items()):
        by_name.setdefault(f"gauge {name}", []).append(
            f"{_prom_name(name)}{_prom_labels(labels)} {_format_value(value)}"
        )
    for (name, labels), stat in sorted(raw["timers"].items()):
        prom, suffix = _prom_name(name), _prom_labels(labels)
        by_name.setdefault(f"summary {name}", []).extend(
            [
                f"{prom}_count{suffix} {stat.calls}",
                f"{prom}_seconds_sum{suffix} {_format_value(stat.total_seconds)}",
                f"{prom}_seconds_max{suffix} {_format_value(stat.max_seconds)}",
            ]
        )
    for header, samples in sorted(by_name.items()):
        kind, name = header.split(" ", 1)
        lines.append(f"# TYPE {_prom_name(name)} {kind}")
        lines.extend(samples)
    return "\n".join(lines) + ("\n" if lines else "")


def run_report(
    *,
    tracer_obj: Tracer | None = None,
    registry: PerfRegistry | None = None,
    labeled: LabeledRegistry | None = None,
    extra: dict[str, Any] | None = None,
    clock: Callable[[], float] | None = None,
) -> dict[str, Any]:
    """One merged JSON document: counters + labeled metrics + trace digest.

    The trace digest carries per-kind record counts and drop statistics —
    enough to sanity-check coverage without re-reading the JSONL stream.
    ``clock`` (or the ``SOURCE_DATE_EPOCH`` environment variable) pins
    ``generated_at_unix`` so two exports of the same run compare equal.
    """
    tracer_obj = tracer_obj if tracer_obj is not None else get_tracer()
    registry = registry if registry is not None else counters
    labeled = labeled if labeled is not None else get_metrics()
    report: dict[str, Any] = {
        "generated_at_unix": _report_timestamp(clock),
        "perf": registry.snapshot(),
        "metrics": labeled.snapshot(),
        "trace": {
            "records": len(tracer_obj),
            "dropped": tracer_obj.dropped,
            "capacity": tracer_obj.capacity,
            "kinds": tracer_obj.kind_counts(),
        },
    }
    if extra:
        report.update(extra)
    return report


def export_run(
    directory: str | Path,
    *,
    tracer_obj: Tracer | None = None,
    registry: PerfRegistry | None = None,
    labeled: LabeledRegistry | None = None,
    extra: dict[str, Any] | None = None,
    prefix: str = "",
    clock: Callable[[], float] | None = None,
) -> dict[str, Path]:
    """Write the full observability artifact set into ``directory``.

    Creates ``<prefix>trace.jsonl`` (raw records), ``<prefix>perf.prom``
    (Prometheus text snapshot), and ``<prefix>report.json`` (merged run
    report).  Returns the written paths keyed by artifact name.
    ``clock`` (or ``SOURCE_DATE_EPOCH``) makes the report bit-identical
    across reruns of the same run.
    """
    tracer_obj = tracer_obj if tracer_obj is not None else get_tracer()
    target = Path(directory)
    target.mkdir(parents=True, exist_ok=True)
    paths = {
        "trace": tracer_obj.export_jsonl(target / f"{prefix}trace.jsonl"),
        "prom": target / f"{prefix}perf.prom",
        "report": target / f"{prefix}report.json",
    }
    paths["prom"].write_text(prometheus_snapshot(registry, labeled))
    paths["report"].write_text(
        json.dumps(
            run_report(
                tracer_obj=tracer_obj,
                registry=registry,
                labeled=labeled,
                extra=extra,
                clock=clock,
            ),
            indent=2,
            sort_keys=True,
        )
        + "\n"
    )
    return paths
