"""Process-wide perf counters, ``@timed`` hooks, and JSON export.

A single module-level :class:`PerfRegistry` (:data:`counters`) backs all
instrumentation so callers never have to thread a registry through the
scheduler layers.  Events cost one dict update; timers add two
``perf_counter`` calls around the wrapped block.  Everything is queryable
(``get``, ``timer_stats``, ``snapshot``) and resettable, which is what the
benchmark runner and the perf-counter tests rely on.
"""

from __future__ import annotations

import json
import threading
import time
from collections.abc import Iterator
from contextlib import contextmanager
from dataclasses import dataclass
from functools import wraps
from pathlib import Path
from typing import Any, Callable, TypeVar

F = TypeVar("F", bound=Callable[..., Any])


@dataclass
class TimerStat:
    """Aggregate wall-clock statistics of one named timer."""

    calls: int = 0
    total_seconds: float = 0.0
    max_seconds: float = 0.0

    def record(self, seconds: float) -> None:
        self.calls += 1
        self.total_seconds += seconds
        if seconds > self.max_seconds:
            self.max_seconds = seconds

    @property
    def mean_seconds(self) -> float:
        return self.total_seconds / self.calls if self.calls else 0.0


class PerfRegistry:
    """Named monotonic counters plus named wall-clock timers.

    Thread-safe: the exporters and simulator probes may report from
    worker threads, and an unsynchronized ``dict.get``/store pair loses
    increments under contention.  One registry-wide lock guards every
    read-modify-write; uncontended acquisition is tens of nanoseconds,
    invisible next to the work being counted.
    """

    def __init__(self) -> None:
        self._counters: dict[str, int] = {}
        self._timers: dict[str, TimerStat] = {}
        self._gauges: dict[str, float] = {}
        self._lock = threading.Lock()

    # -- counters ------------------------------------------------------
    def incr(self, name: str, amount: int = 1) -> None:
        """Add ``amount`` to counter ``name`` (created at zero)."""
        with self._lock:
            self._counters[name] = self._counters.get(name, 0) + amount

    def get(self, name: str) -> int:
        """Current value of counter ``name`` (0 if never incremented)."""
        return self._counters.get(name, 0)

    def counter_names(self) -> tuple[str, ...]:
        return tuple(sorted(self._counters))

    # -- gauges (float accumulators) -----------------------------------
    def accumulate(self, name: str, amount: float) -> None:
        """Add a float ``amount`` to gauge ``name`` (created at zero).

        Gauges carry physical quantities (capacity units released, rate
        restored) that integer counters cannot represent.
        """
        with self._lock:
            self._gauges[name] = self._gauges.get(name, 0.0) + amount

    def gauge(self, name: str) -> float:
        """Current value of gauge ``name`` (0.0 if never accumulated)."""
        return self._gauges.get(name, 0.0)

    def hit_rate(self, hits: str, misses: str) -> float:
        """``hits / (hits + misses)`` — the fraction of events that hit.

        Returns 0.0 when both counters are zero.  Note this is *not* a
        plain quotient of the two counters: the second argument is the
        complementary outcome count, not a denominator.
        """
        n, d = self.get(hits), self.get(misses)
        total = n + d
        return n / total if total else 0.0

    # -- timers --------------------------------------------------------
    def add_time(self, name: str, seconds: float) -> None:
        with self._lock:
            stat = self._timers.get(name)
            if stat is None:
                stat = self._timers[name] = TimerStat()
            stat.record(seconds)

    def timer_stats(self, name: str) -> TimerStat:
        """Stats of timer ``name`` (a zero stat if never recorded)."""
        return self._timers.get(name, TimerStat())

    # -- lifecycle / export --------------------------------------------
    def reset(self) -> None:
        """Zero every counter, gauge, and timer (between benchmark rounds)."""
        with self._lock:
            self._counters.clear()
            self._timers.clear()
            self._gauges.clear()

    def snapshot(self) -> dict[str, Any]:
        """All counters, gauges, and timers as a JSON-serializable dict."""
        with self._lock:
            return {
                "counters": dict(sorted(self._counters.items())),
                "gauges": dict(sorted(self._gauges.items())),
                "timers": {
                    name: {
                        "calls": stat.calls,
                        "total_seconds": stat.total_seconds,
                        "mean_seconds": stat.mean_seconds,
                        "max_seconds": stat.max_seconds,
                    }
                    for name, stat in sorted(self._timers.items())
                },
            }

    def export_json(self, path: str | Path, *, extra: dict[str, Any] | None = None) -> Path:
        """Write :meth:`snapshot` (plus optional metadata) to ``path``."""
        payload = self.snapshot()
        if extra:
            payload.update(extra)
        target = Path(path)
        target.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
        return target


#: The process-wide registry every instrumented call site reports into.
counters = PerfRegistry()


def timed(name: str, registry: PerfRegistry | None = None) -> Callable[[F], F]:
    """Decorator recording call count and wall time under timer ``name``."""

    def decorate(fn: F) -> F:
        reg = registry if registry is not None else counters

        @wraps(fn)
        def wrapper(*args: Any, **kwargs: Any) -> Any:
            start = time.perf_counter()
            try:
                return fn(*args, **kwargs)
            finally:
                reg.add_time(name, time.perf_counter() - start)

        return wrapper  # type: ignore[return-value]

    return decorate


@contextmanager
def timer(name: str, registry: PerfRegistry | None = None) -> Iterator[None]:
    """Context-manager flavour of :func:`timed`."""
    reg = registry if registry is not None else counters
    start = time.perf_counter()
    try:
        yield
    finally:
        reg.add_time(name, time.perf_counter() - start)
