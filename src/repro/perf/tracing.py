"""Structured trace layer: typed, timestamped event/span records.

Where :mod:`repro.perf.counters` answers "how many / how long in
aggregate", this module answers "what exactly happened, in order": every
admission attempt, Algorithm-2 path selection, repair step, and simulator
element transition can be recorded as a :class:`TraceEvent` and exported
as JSONL for post-hoc audit (the observability layer's core promise — a
full admit→fail→repair run is reconstructible from its trace alone).

Design constraints, in priority order:

1. **Off by default, near-free when off.**  Call sites are guarded::

       tr = tracing.get_tracer()
       if tr.enabled:
           tr.event("admission.decision", app_id=..., accepted=True)

   so a disabled tracer costs one function call plus one attribute check
   — no dict is built, nothing is appended.  ``benchmarks/
   check_overhead.py`` enforces <5% overhead on the assignment benchmarks.
2. **Bounded memory.**  Records land in a ring buffer
   (``collections.deque(maxlen=...)``); a runaway simulation cannot OOM
   the process through its own telemetry.  Drops are counted
   (:attr:`Tracer.dropped`) rather than silent.
3. **Scoped, not global-only.**  :func:`use_tracer` installs a tracer for
   the current context (``contextvars``), so concurrent runs — threaded
   experiments, parallel tests — each get their own buffer instead of
   interleaving into one shared global.

Record schema (see ``docs/observability.md``)::

    {"ts": <monotonic-or-sim time>, "seq": <int>, "kind": "<dotted.name>",
     "fields": {...}}                          # event
    {"ts": ..., "seq": ..., "kind": ..., "fields": {...},
     "duration_s": <float>}                    # span (closed)
"""

from __future__ import annotations

import contextvars
import io
import json
import threading
import time
from collections import Counter, deque
from collections.abc import Iterator
from contextlib import contextmanager
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any

#: Default ring-buffer capacity (records, not bytes).
DEFAULT_CAPACITY = 65_536


@dataclass(frozen=True)
class TraceEvent:
    """One structured trace record.

    ``ts`` is the caller-supplied time when given (simulated seconds in
    the simulator probes, repair-loop time in the controller) and a
    process-monotonic wall clock otherwise; ``seq`` is a per-tracer
    monotonic sequence number that orders records even at equal
    timestamps.  ``duration_s`` is ``None`` for point events and the
    elapsed wall time for spans.
    """

    ts: float
    seq: int
    kind: str
    fields: dict[str, Any] = field(default_factory=dict)
    duration_s: float | None = None

    def to_dict(self) -> dict[str, Any]:
        """JSON-serializable form (JSONL export uses exactly this)."""
        record: dict[str, Any] = {
            "ts": self.ts,
            "seq": self.seq,
            "kind": self.kind,
            "fields": self.fields,
        }
        if self.duration_s is not None:
            record["duration_s"] = self.duration_s
        return record


class Tracer:
    """A bounded, thread-safe buffer of :class:`TraceEvent` records.

    Disabled on construction; :meth:`enable` / :meth:`disable` toggle
    recording.  All mutation is guarded by one lock — trace call sites
    are coarse (per decision, not per inner-loop iteration), so the lock
    is uncontended in practice.
    """

    def __init__(self, capacity: int = DEFAULT_CAPACITY) -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be positive, got {capacity}")
        self.enabled = False
        self.capacity = capacity
        self.dropped = 0
        self._buffer: deque[TraceEvent] = deque(maxlen=capacity)
        self._seq = 0
        self._lock = threading.Lock()

    # -- recording -----------------------------------------------------
    def enable(self) -> None:
        """Start recording (idempotent)."""
        self.enabled = True

    def disable(self) -> None:
        """Stop recording (idempotent); buffered records are kept."""
        self.enabled = False

    def event(
        self, kind: str, /, *, ts: float | None = None, **fields: Any
    ) -> None:
        """Record one point event (no-op when disabled).

        ``ts`` overrides the wall clock with a domain time (simulated
        seconds, repair-loop time); ``fields`` become the record payload.
        ``kind`` is positional-only so a payload field may also be named
        ``kind`` (e.g. GR/BE on admission records).
        """
        if not self.enabled:
            return
        with self._lock:
            if len(self._buffer) == self.capacity:
                self.dropped += 1
            self._buffer.append(
                TraceEvent(
                    ts=time.monotonic() if ts is None else ts,
                    seq=self._seq,
                    kind=kind,
                    fields=fields,
                )
            )
            self._seq += 1

    @contextmanager
    def span(self, kind: str, /, **fields: Any) -> Iterator[dict[str, Any]]:
        """Record a span: one record carrying the block's wall duration.

        Yields the mutable ``fields`` dict so the block can attach
        results discovered mid-flight (e.g. the chosen bottleneck)::

            with tracer.span("assignment.solve", app_id=app) as sp:
                ...
                sp["rate"] = result.rate
        """
        if not self.enabled:
            yield fields
            return
        start = time.perf_counter()
        try:
            yield fields
        finally:
            elapsed = time.perf_counter() - start
            with self._lock:
                if len(self._buffer) == self.capacity:
                    self.dropped += 1
                self._buffer.append(
                    TraceEvent(
                        ts=time.monotonic(),
                        seq=self._seq,
                        kind=kind,
                        fields=fields,
                        duration_s=elapsed,
                    )
                )
                self._seq += 1

    # -- querying ------------------------------------------------------
    def records(self, kind: str | None = None) -> tuple[TraceEvent, ...]:
        """Buffered records in arrival order, optionally filtered by kind.

        ``kind`` matches exactly, or as a dotted prefix when it ends with
        ``.`` (``records("repair.")`` returns every repair record).
        """
        with self._lock:
            snapshot = tuple(self._buffer)
        if kind is None:
            return snapshot
        if kind.endswith("."):
            return tuple(r for r in snapshot if r.kind.startswith(kind))
        return tuple(r for r in snapshot if r.kind == kind)

    def __len__(self) -> int:
        return len(self._buffer)

    def kind_counts(self) -> dict[str, int]:
        """``kind -> record count`` over the current buffer, sorted."""
        with self._lock:
            counts = Counter(r.kind for r in self._buffer)
        return dict(sorted(counts.items()))

    def clear(self) -> None:
        """Drop every buffered record and reset the drop counter."""
        with self._lock:
            self._buffer.clear()
            self.dropped = 0
            self._seq = 0

    # -- export --------------------------------------------------------
    def export_jsonl(self, path: str | Path) -> Path:
        """Write the buffer as JSON Lines (one record per line)."""
        target = Path(path)
        with self._lock:
            snapshot = tuple(self._buffer)
        with io.StringIO() as sink:
            for record in snapshot:
                sink.write(json.dumps(record.to_dict(), sort_keys=True))
                sink.write("\n")
            target.write_text(sink.getvalue())
        return target


#: The process-wide default tracer (disabled until someone enables it).
tracer = Tracer()

#: Context-local override installed by :func:`use_tracer`.
_current: contextvars.ContextVar[Tracer | None] = contextvars.ContextVar(
    "repro_perf_tracer", default=None
)


def get_tracer() -> Tracer:
    """The tracer for the current context (scoped override or global)."""
    scoped = _current.get()
    return scoped if scoped is not None else tracer


@contextmanager
def use_tracer(scoped: Tracer) -> Iterator[Tracer]:
    """Route this context's trace records into ``scoped``.

    Concurrent runs (threads, parallel experiment sweeps) each install
    their own tracer so their records never interleave into one buffer::

        with use_tracer(Tracer()) as tr:
            tr.enable()
            run_experiment()
            tr.export_jsonl("run.jsonl")
    """
    token = _current.set(scoped)
    try:
        yield scoped
    finally:
        _current.reset(token)
