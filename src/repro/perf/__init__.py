"""Lightweight performance instrumentation for the scheduling hot path.

The Algorithm-2 optimizations (batched widest-path trees, incremental
route-cache invalidation, memoized load vectors) are only trustworthy if
their effect is *observable*: this package provides process-wide counters
and wall-clock timers with near-zero overhead (a dict update per event),
plus a JSON export used by ``benchmarks/export_bench.py`` to record the
perf trajectory in ``BENCH_*.json`` files.

Usage::

    from repro.perf import counters, timed

    counters.incr("assignment.tree_cache_hit")

    @timed("assignment.total")
    def sparcle_assign(...): ...

    counters.snapshot()   # {"counters": {...}, "timers": {...}}
    counters.reset()      # e.g. between benchmark rounds
"""

from repro.perf.counters import PerfRegistry, counters, timed, timer

__all__ = ["PerfRegistry", "counters", "timed", "timer"]
