"""Observability for the scheduling hot path and control loops.

Three layers, cheapest first:

* :mod:`repro.perf.counters` — process-wide counters and wall-clock
  timers keyed by bare strings (a locked dict update per event); used by
  the Algorithm-2 hot path and exported into ``BENCH_*.json``.
* :mod:`repro.perf.metrics` — labeled, optionally scoped registries
  (``incr("scheduler.decisions", kind="GR")``) so per-app / per-element
  series don't collide and concurrent runs don't share one global dict.
* :mod:`repro.perf.tracing` — structured, timestamped event/span records
  in a bounded ring buffer with JSONL export: the post-hoc audit trail
  for admission decisions, path selections, repair actions, and
  simulator element transitions.

:mod:`repro.perf.exporters` renders any of them as a Prometheus-style
text snapshot or a merged JSON run report.

Tracing is **off by default**; instrumented call sites guard with one
attribute check (``if tr.enabled:``) so a disabled tracer is free —
``benchmarks/check_overhead.py`` enforces <5% overhead on the assignment
benchmarks.

Usage::

    from repro.perf import counters, timed, tracing

    counters.incr("assignment.tree_cache_hit")

    @timed("assignment.total")
    def sparcle_assign(...): ...

    tr = tracing.get_tracer()
    tr.enable()
    ...                            # instrumented run
    tr.export_jsonl("trace.jsonl")
"""

from repro.perf import exporters, metrics, tracing
from repro.perf.counters import PerfRegistry, counters, timed, timer
from repro.perf.exporters import export_run, prometheus_snapshot, run_report
from repro.perf.metrics import (
    LabeledRegistry,
    ScopedMetrics,
    get_metrics,
    use_registry,
)
from repro.perf.tracing import TraceEvent, Tracer, get_tracer, use_tracer

__all__ = [
    "PerfRegistry",
    "counters",
    "timed",
    "timer",
    "tracing",
    "metrics",
    "exporters",
    "TraceEvent",
    "Tracer",
    "get_tracer",
    "use_tracer",
    "LabeledRegistry",
    "ScopedMetrics",
    "get_metrics",
    "use_registry",
    "prometheus_snapshot",
    "run_report",
    "export_run",
]
