"""Labeled, optionally scoped metric registries.

:mod:`repro.perf.counters` keys everything by a bare string, which breaks
down the moment two applications or elements share a metric name: either
call sites mangle labels into the key (``"repair.rate.app1"`` — unqueryable)
or per-app series silently collide.  This module gives metrics first-class
labels, Prometheus-style::

    metrics.incr("scheduler.decisions", kind="GR", accepted="true")
    metrics.observe("scheduler.admission_seconds", 0.012, kind="BE")
    metrics.set_gauge("gr.active_rate", 0.37, app="face")

and two layers of scoping:

* :meth:`LabeledRegistry.scoped` returns a view that injects fixed labels
  into every call (one scope per app / per element / per run);
* :func:`use_registry` installs a registry for the current context
  (``contextvars``), so concurrent runs do not share one global dict.

Thread safety: one lock per registry around every read-modify-write, the
same discipline :class:`repro.perf.counters.PerfRegistry` follows.
"""

from __future__ import annotations

import contextvars
import threading
from collections.abc import Iterator
from contextlib import contextmanager
from typing import Any

from repro.perf.counters import TimerStat

#: A metric identity: name plus its sorted ``(label, value)`` pairs.
MetricKey = tuple[str, tuple[tuple[str, str], ...]]


def metric_key(name: str, labels: dict[str, Any]) -> MetricKey:
    """Canonical key for ``name`` under ``labels`` (values stringified)."""
    return name, tuple(sorted((k, str(v)) for k, v in labels.items()))


class LabeledRegistry:
    """Counters, gauges, and timers keyed by ``(name, labels)``."""

    def __init__(self) -> None:
        self._counters: dict[MetricKey, float] = {}
        self._gauges: dict[MetricKey, float] = {}
        self._timers: dict[MetricKey, TimerStat] = {}
        self._lock = threading.Lock()

    # -- writes --------------------------------------------------------
    def incr(self, name: str, amount: float = 1, **labels: Any) -> None:
        """Add ``amount`` to the counter ``name{labels}`` (created at 0)."""
        key = metric_key(name, labels)
        with self._lock:
            self._counters[key] = self._counters.get(key, 0) + amount

    def set_gauge(self, name: str, value: float, **labels: Any) -> None:
        """Set the gauge ``name{labels}`` to ``value`` (last write wins)."""
        key = metric_key(name, labels)
        with self._lock:
            self._gauges[key] = value

    def observe(self, name: str, seconds: float, **labels: Any) -> None:
        """Record one duration sample under the timer ``name{labels}``."""
        key = metric_key(name, labels)
        with self._lock:
            stat = self._timers.get(key)
            if stat is None:
                stat = self._timers[key] = TimerStat()
            stat.record(seconds)

    # -- reads ---------------------------------------------------------
    def get(self, name: str, **labels: Any) -> float:
        """Counter value for exactly ``name{labels}`` (0 when absent)."""
        return self._counters.get(metric_key(name, labels), 0)

    def gauge(self, name: str, **labels: Any) -> float:
        """Gauge value for exactly ``name{labels}`` (0.0 when absent)."""
        return self._gauges.get(metric_key(name, labels), 0.0)

    def timer_stats(self, name: str, **labels: Any) -> TimerStat:
        """Timer stats for ``name{labels}`` (a zero stat when absent)."""
        return self._timers.get(metric_key(name, labels), TimerStat())

    def series(self, name: str) -> dict[tuple[tuple[str, str], ...], float]:
        """Every labeled counter series under one name: labels -> value."""
        with self._lock:
            return {
                labels: value
                for (metric, labels), value in self._counters.items()
                if metric == name
            }

    def total(self, name: str) -> float:
        """Sum of the counter ``name`` across all label combinations."""
        return sum(self.series(name).values())

    # -- lifecycle / export --------------------------------------------
    def reset(self) -> None:
        """Zero every counter, gauge, and timer."""
        with self._lock:
            self._counters.clear()
            self._gauges.clear()
            self._timers.clear()

    def scoped(self, **labels: Any) -> "ScopedMetrics":
        """A view that injects ``labels`` into every write/read."""
        return ScopedMetrics(self, labels)

    def snapshot(self) -> dict[str, Any]:
        """JSON-serializable dump; label sets render as ``name{k=v,...}``."""

        def render(key: MetricKey) -> str:
            name, labels = key
            if not labels:
                return name
            inner = ",".join(f"{k}={v}" for k, v in labels)
            return f"{name}{{{inner}}}"

        with self._lock:
            counters = {render(k): v for k, v in self._counters.items()}
            gauges = {render(k): v for k, v in self._gauges.items()}
            timers = {
                render(k): {
                    "calls": stat.calls,
                    "total_seconds": stat.total_seconds,
                    "mean_seconds": stat.mean_seconds,
                    "max_seconds": stat.max_seconds,
                }
                for k, stat in self._timers.items()
            }
        return {
            "counters": dict(sorted(counters.items())),
            "gauges": dict(sorted(gauges.items())),
            "timers": dict(sorted(timers.items())),
        }

    def raw_items(
        self,
    ) -> dict[str, dict[MetricKey, Any]]:
        """Internal tables keyed by :data:`MetricKey` (exporter input)."""
        with self._lock:
            return {
                "counters": dict(self._counters),
                "gauges": dict(self._gauges),
                "timers": dict(self._timers),
            }


class ScopedMetrics:
    """A :class:`LabeledRegistry` view with fixed labels pre-applied.

    Scopes nest: ``registry.scoped(app="a").scoped(path="0")`` writes under
    both labels.  Call-site labels win on collision with scope labels.
    """

    def __init__(self, registry: LabeledRegistry, labels: dict[str, Any]) -> None:
        self._registry = registry
        self._labels = dict(labels)

    def _merge(self, labels: dict[str, Any]) -> dict[str, Any]:
        return {**self._labels, **labels}

    def incr(self, name: str, amount: float = 1, **labels: Any) -> None:
        self._registry.incr(name, amount, **self._merge(labels))

    def set_gauge(self, name: str, value: float, **labels: Any) -> None:
        self._registry.set_gauge(name, value, **self._merge(labels))

    def observe(self, name: str, seconds: float, **labels: Any) -> None:
        self._registry.observe(name, seconds, **self._merge(labels))

    def get(self, name: str, **labels: Any) -> float:
        return self._registry.get(name, **self._merge(labels))

    def gauge(self, name: str, **labels: Any) -> float:
        return self._registry.gauge(name, **self._merge(labels))

    def timer_stats(self, name: str, **labels: Any) -> TimerStat:
        return self._registry.timer_stats(name, **self._merge(labels))

    def scoped(self, **labels: Any) -> "ScopedMetrics":
        return ScopedMetrics(self._registry, self._merge(labels))


#: The process-wide default labeled registry.
metrics = LabeledRegistry()

_current: contextvars.ContextVar[LabeledRegistry | None] = contextvars.ContextVar(
    "repro_perf_metrics", default=None
)


def get_metrics() -> LabeledRegistry:
    """The registry for the current context (scoped override or global)."""
    scoped = _current.get()
    return scoped if scoped is not None else metrics


@contextmanager
def use_registry(registry: LabeledRegistry) -> Iterator[LabeledRegistry]:
    """Route this context's labeled metrics into ``registry``.

    The metrics counterpart of :func:`repro.perf.tracing.use_tracer`:
    concurrent runs install private registries so their per-app series
    never collide in the shared global.
    """
    token = _current.set(registry)
    try:
        yield registry
    finally:
        _current.reset(token)
