"""Algorithm 2: SPARCLE's dynamic-ranking task assignment.

The assignment problem (Eq. (1)) — place every CT on an NCP and every TT on
a link path so as to maximize the bottleneck processing rate — is NP-hard
(Theorem 1).  SPARCLE's polynomial-time heuristic places one CT at a time:

1.  Pinned CTs (data sources / result consumers) are placed first on their
    predetermined hosts.
2.  For every unplaced CT ``i`` and candidate host ``j``, compute
    ``gamma(i, j)`` (Eq. (2)): the processing-rate bottleneck the placement
    would impose, combining (a) the NCP-side rate with ``i`` added to ``j``'s
    existing per-unit load and (b), for every already-placed CT reachable
    from ``i``, the widest-path bottleneck from ``j`` to that CT's host for
    the cheapest TT between them.
3.  Each CT's best host is ``j*_i = argmax_j gamma(i, j)``; the CT actually
    placed this round is the *most constrained* one,
    ``i* = argmin_i gamma(i, j*_i)`` (Algorithm 2 line 16) — the task whose
    best case is worst goes first, while resources are still plentiful.
4.  Placing ``i*`` commits its NCP load and routes the TTs to every
    already-placed *neighbour* via Algorithm 1, committing link loads.

Because ``gamma`` depends on what is already placed, the ranking changes
every round — hence "dynamic ranking".  The same machinery with a frozen
CT order implements the paper's GS/GRand baselines
(:func:`greedy_assign_with_order`).
"""

from __future__ import annotations

import math
from collections.abc import Iterable, Mapping, Sequence
from dataclasses import dataclass, field

from repro.core.network import Network
from repro.core.placement import CapacityView, Placement
from repro.core.routing import (
    WeightsCache,
    WidestPathTree,
    widest_path,
    widest_path_tree,
)
from repro.core.taskgraph import BANDWIDTH, ComputationTask, TaskGraph, TransportTask
from repro.exceptions import InfeasiblePlacementError, PlacementError
from repro.perf import counters, timed, tracing

#: gamma value marking a host from which some required TT cannot be routed.
UNREACHABLE = -math.inf


@dataclass
class AssignmentResult:
    """Outcome of one task-assignment run.

    ``rate`` is the stable bottleneck rate of ``placement`` under the
    capacities the assignment saw, and ``placement_order`` records the CT
    placement sequence (useful for debugging the dynamic ranking).
    """

    placement: Placement
    rate: float
    placement_order: tuple[str, ...] = ()


@dataclass
class _State:
    """Mutable working state of one assignment run."""

    graph: TaskGraph
    network: Network
    capacities: CapacityView
    ct_hosts: dict[str, str] = field(default_factory=dict)
    tt_routes: dict[str, tuple[str, ...]] = field(default_factory=dict)
    ncp_loads: dict[str, dict[str, float]] = field(default_factory=dict)
    link_loads: dict[str, float] = field(default_factory=dict)
    order: list[str] = field(default_factory=list)

    # Batched widest-path memo: one single-source tree per (root host,
    # TT megabits, direction) serves every candidate-host probe at once.
    # Entries survive commits; `_invalidate` evicts only the trees whose
    # settled routes cross a link the commit loaded (loads only ever grow
    # within a run, so untouched trees remain exact — see WidestPathTree).
    _tree_cache: dict[tuple[str, float, bool], WidestPathTree] = field(
        default_factory=dict
    )

    # The task graph is immutable, so the cheapest-TT argmin per CT pair
    # (queried once per gamma probe) is memoized for the whole run.
    _cheapest_tt_cache: dict[tuple[str, str], TransportTask | None] = field(
        default_factory=dict
    )

    # Probe plan per (unplaced CT, placed CT): reachability, the cheapest
    # TT's megabits, and the probe direction are all static properties of
    # the task graph, so they are resolved once per pair.  ``None`` marks
    # a pair needing no link-side probe.
    _probe_plan_cache: dict[tuple[str, str], tuple[float, bool] | None] = field(
        default_factory=dict
    )

    # NCP-side Eq.-(2) term per (CT, host).  It changes only when the
    # host's committed loads change, so `commit` evicts one host bucket
    # and every other (CT, host) score is a dict probe across rounds.
    _ncp_term_cache: dict[str, dict[str, float]] = field(default_factory=dict)

    # Shared Eq.-(3) weight arrays for the *current* ``link_loads`` state
    # (see routing.WeightsCache); cleared whenever a commit loads links.
    _weights_cache: WeightsCache = field(default_factory=dict)

    # Part-(a) rate vector per CT for the host list `gamma_over_hosts`
    # sweeps (valid only for one host-list object, checked by identity).
    # `_dirty_hosts` logs each commit's host; a cached vector replays the
    # log suffix it has not seen instead of recomputing every entry.
    _rates_base: dict[str, tuple[list[float], int]] = field(default_factory=dict)
    _dirty_hosts: list[str] = field(default_factory=list)
    _hosts_ref: Sequence[str] | None = field(default=None, repr=False)
    _host_pos: dict[str, int] = field(default_factory=dict)

    # Tree-cache traffic, buffered locally (one lock-protected counter
    # update per run in `finalize` instead of one per probe).
    # `_width_probes` counts the per-(candidate host) width reads the
    # fetched trees answered — the denominator that shows each tree
    # search being amortized over a whole host sweep.
    _tree_hits: int = 0
    _tree_misses: int = 0
    _width_probes: int = 0

    # hosts -> compiled node ids, resolved once per (node-index, host
    # list) pair for the array-kernel width fast path.
    _host_ids_cache: tuple[object, Sequence[str], list[int]] | None = field(
        default=None, repr=False
    )

    # ------------------------------------------------------------------
    def placed(self) -> set[str]:
        return set(self.ct_hosts)

    def probe_tree(self, root: str, megabits: float, *, reverse: bool) -> WidestPathTree:
        """Memoized single-source widest-path tree for the current loads.

        ``reverse=True`` yields widths of paths *into* ``root`` (used when
        the probe route runs from a candidate host towards a placed host).
        On undirected networks both directions are the same search, so the
        flag is normalized away and the tree shared.
        """
        if not self.network.directed:
            reverse = False
        key = (root, megabits, reverse)
        tree = self._tree_cache.get(key)
        if tree is None:
            self._tree_misses += 1
            tree = widest_path_tree(
                self.network, self.capacities, root, megabits, self.link_loads,
                reverse=reverse, weights_cache=self._weights_cache,
            )
            self._tree_cache[key] = tree
        else:
            self._tree_hits += 1
        return tree

    def probe_width(self, src: str, dst: str, megabits: float) -> float | None:
        """Bottleneck width of ``P*(src, dst)`` for the current load state.

        Equal to ``widest_path(...).bottleneck`` (``None`` if unreachable)
        but answered from a batched tree rooted at the *placed* endpoint —
        gamma probes fix one endpoint (the placed CT's host) and sweep the
        other over all candidate hosts, so the tree is reused ``|N|`` times.
        """
        if src == dst:
            return math.inf
        return self.probe_tree(src, megabits, reverse=False).width_to(dst)

    def probe_width_reverse(self, dst: str, src: str, megabits: float) -> float | None:
        """Like :meth:`probe_width` but rooted at the destination ``dst``."""
        if src == dst:
            return math.inf
        return self.probe_tree(dst, megabits, reverse=True).width_to(src)

    def _invalidate(self, dirtied_links: set[str]) -> None:
        """Evict cached trees whose settled routes cross a dirtied link."""
        counters.incr("assignment.commits")
        if not dirtied_links or not self._tree_cache:
            return
        stale = [
            key
            for key, tree in self._tree_cache.items()
            if tree.tree_links & dirtied_links
        ]
        for key in stale:
            del self._tree_cache[key]
        counters.incr("assignment.trees_invalidated", len(stale))
        counters.incr("assignment.trees_retained", len(self._tree_cache))

    def cheapest_tt(self, a: str, b: str) -> TransportTask | None:
        """Algorithm 2 line 12: argmin of ``a^(b)`` over ``G(a, b)``."""
        key = (a, b)
        if key in self._cheapest_tt_cache:
            return self._cheapest_tt_cache[key]
        candidates = self.graph.tts_between(a, b)
        cheapest = (
            min(candidates, key=lambda tt: (tt.megabits_per_unit, tt.name))
            if candidates
            else None
        )
        self._cheapest_tt_cache[key] = cheapest
        return cheapest

    def probe_plan(self, ct_name: str, other: str) -> tuple[float, bool] | None:
        """The static part of one gamma link-probe, memoized per CT pair.

        ``None`` when no probe is needed (``other`` unreachable from
        ``ct_name`` in the task graph, or no TT connects them); otherwise
        ``(megabits, reverse)`` — the cheapest TT's per-unit megabits and
        whether the probe runs *towards* the placed host (data flowing
        candidate -> placed, i.e. ``other`` downstream of ``ct_name``).
        """
        key = (ct_name, other)
        if key in self._probe_plan_cache:
            return self._probe_plan_cache[key]
        plan: tuple[float, bool] | None = None
        if other != ct_name and self.graph.is_reachable(ct_name, other):
            tt = self.cheapest_tt(ct_name, other)
            if tt is not None:
                plan = (
                    tt.megabits_per_unit,
                    self.graph.is_downstream(ct_name, other),
                )
        self._probe_plan_cache[key] = plan
        return plan

    def ncp_term(self, ct_name: str, host: str) -> float:
        """The NCP-side term of Eq. (2), cached per (CT, host).

        ``min`` over resources of host capacity over (CT requirement +
        existing committed load).  Valid until the host's loads change,
        at which point :meth:`commit` evicts the host's bucket.
        """
        bucket = self._ncp_term_cache.get(host)
        if bucket is None:
            bucket = self._ncp_term_cache[host] = {}
        else:
            cached = bucket.get(ct_name)
            if cached is not None:
                return cached
        ct = self.graph.ct(ct_name)
        rate = math.inf
        loads = self.ncp_loads.get(host)
        if loads:
            resources: Iterable[str] = set(ct.requirements) | set(loads)
        else:
            resources = ct.requirements
        for resource in resources:
            demand = ct.requirement(resource) + (
                loads.get(resource, 0.0) if loads else 0.0
            )
            if demand <= 0.0:
                continue
            rate = min(rate, self.capacities.capacity(host, resource) / demand)
        bucket[ct_name] = rate
        return rate

    # ------------------------------------------------------------------
    def gamma(self, ct_name: str, host: str) -> float:
        """Eq. (2): the rate bottleneck imposed by placing ``ct_name`` on ``host``."""
        # (a) NCP-side term: every resource the CT or the host's existing
        # tenants need.
        rate = self.ncp_term(ct_name, host)
        # (b) link-side terms: one per placed reachable CT.  The probe
        # route follows the *data direction* (towards descendants, from
        # ancestors) — irrelevant on undirected networks, decisive on
        # directed ones with asymmetric bandwidth.  Only the bottleneck
        # *width* matters here, so each probe is answered from a batched
        # widest-path tree rooted at the placed CT's host and shared by
        # every candidate host (and every unplaced CT using the same TT
        # megabits) in the round.
        for other in sorted(self.placed()):
            plan = self.probe_plan(ct_name, other)
            if plan is None:
                continue
            other_host = self.ct_hosts[other]
            if other_host == host:
                continue  # co-located: the TT would be free
            megabits, reverse = plan
            if reverse:
                # Data flows candidate host -> other_host: reverse tree.
                width = self.probe_width_reverse(other_host, host, megabits)
            else:
                width = self.probe_width(other_host, host, megabits)
            if width is None:
                return UNREACHABLE
            rate = min(rate, width)
        return rate

    def partial_rate_after(self, ct_name: str, host: str) -> float:
        """The exact bottleneck rate of the partial placement after a commit.

        Simulates placing ``ct_name`` on ``host`` (including routing the TTs
        to already-placed neighbours, largest-first as :meth:`commit` would)
        without mutating state, and returns the min over touched elements of
        residual capacity over per-unit load.  Used only to break exact ties
        in the Eq.-(2) ranking: gamma scores each reachable CT's TT
        separately, so it cannot see several TTs accumulating on one link —
        the true partial rate can.
        """
        ct = self.graph.ct(ct_name)
        ncp_loads = {n: dict(b) for n, b in self.ncp_loads.items()}
        link_loads = dict(self.link_loads)
        bucket = ncp_loads.setdefault(host, {})
        for resource, amount in ct.requirements.items():
            bucket[resource] = bucket.get(resource, 0.0) + amount
        for neighbor in self.graph.neighbors(ct_name):
            if neighbor not in self.ct_hosts:
                continue
            other_host = self.ct_hosts[neighbor]
            if other_host == host:
                continue
            tt = self.graph.connecting_tt(ct_name, neighbor)
            assert tt is not None
            src_host = host if tt.src == ct_name else other_host
            dst_host = other_host if tt.src == ct_name else host
            route = widest_path(
                self.network, self.capacities, src_host, dst_host,
                tt.megabits_per_unit, link_loads,
            )
            if route is None:
                return UNREACHABLE
            for link_name in route.links:
                link_loads[link_name] = (
                    link_loads.get(link_name, 0.0) + tt.megabits_per_unit
                )
        rate = math.inf
        for ncp_name, loads in ncp_loads.items():
            for resource, load in loads.items():
                if load > 0.0:
                    rate = min(rate, self.capacities.capacity(ncp_name, resource) / load)
        for link_name, load in link_loads.items():
            if load > 0.0:
                rate = min(rate, self.capacities.capacity(link_name, BANDWIDTH) / load)
        return rate

    def compute_only_gamma(self, ct_name: str, host: str) -> float:
        """The NCP-side term of Eq. (2) alone (link state ignored).

        This is the host score used by the paper's GS/GRand baselines,
        which place CTs "not considering the connecting TTs' resource
        requirements" (Sec. V) — they see compute capacity but are blind to
        what their choice does to the links.
        """
        return self.ncp_term(ct_name, host)

    def best_host_compute_only(
        self, ct_name: str, hosts: Sequence[str]
    ) -> tuple[float, str]:
        """``argmax_j`` of the NCP-only score, first-host tiebreak."""
        best: tuple[float, str] | None = None
        for host in hosts:
            score = self.compute_only_gamma(ct_name, host)
            if best is None or score > best[0]:
                best = (score, host)
        assert best is not None
        return best

    def gamma_over_hosts(self, ct_name: str, hosts: Sequence[str]) -> list[float]:
        """Eq. (2) for one CT against *every* candidate host in one sweep.

        Produces exactly ``[gamma(ct_name, h) for h in hosts]`` but hoists
        the per-placed-CT work (reachability, cheapest-TT argmin, the
        batched widest-path tree fetch) out of the host loop: the tree
        rooted at each placed CT's host is fetched once and its width map
        is read per host, instead of re-entering the probe machinery
        ``|hosts|`` times.  All combining is exact ``min`` over the same
        floats the scalar :meth:`gamma` sees, so the results are
        bit-identical.
        """
        # (a) NCP-side term per host — a cached vector per CT, repaired by
        # replaying the commit log (only committed-to hosts can change).
        rates = self._rates_for(ct_name, hosts)
        # (b) link-side terms: one batched tree per placed reachable CT,
        # its width map shared across every candidate host.
        for other in sorted(self.placed()):
            plan = self.probe_plan(ct_name, other)
            if plan is None:
                continue
            megabits, reverse = plan
            other_host = self.ct_hosts[other]
            tree = self.probe_tree(other_host, megabits, reverse=reverse)
            self._width_probes += len(hosts)
            width_list = tree._width_list
            if width_list is not None:
                # Array-kernel trees: read node-id list slots directly.
                # The -inf unreachable sentinel IS the UNREACHABLE gamma,
                # so min-folding the raw widths needs no translation.
                node_pos = tree._node_pos
                assert node_pos is not None
                ids = self._host_ids(node_pos, hosts)
                other_id = node_pos[other_host]
                for index, hid in enumerate(ids):
                    if hid == other_id:
                        continue  # co-located: the TT would be free
                    width = width_list[hid]
                    if width < rates[index]:
                        rates[index] = width
                continue
            widths_get = tree.widths.get
            for index, host in enumerate(hosts):
                if host == other_host:
                    continue  # co-located: the TT would be free
                width = widths_get(host)
                if width is None:
                    rates[index] = UNREACHABLE
                elif width < rates[index]:
                    rates[index] = width
        return rates

    def _host_ids(
        self, node_pos: Mapping[str, int], hosts: Sequence[str]
    ) -> list[int]:
        """``hosts`` resolved to compiled node ids, cached by identity."""
        cached = self._host_ids_cache
        if (
            cached is not None
            and cached[0] is node_pos
            and cached[1] is hosts
        ):
            return cached[2]
        ids = [node_pos[host] for host in hosts]
        self._host_ids_cache = (node_pos, hosts, ids)
        return ids

    def _rates_for(self, ct_name: str, hosts: Sequence[str]) -> list[float]:
        """A fresh copy of ``[ncp_term(ct_name, h) for h in hosts]``.

        The vector is cached per CT and kept current by replaying the
        suffix of the commit log (``_dirty_hosts``) it has not seen —
        a commit changes one host's loads, so only that host's entry can
        differ.  The cache is tied to one host-list object (the list
        :func:`sparcle_assign` builds once); any other list bypasses it.
        """
        if hosts is not self._hosts_ref:
            if self._hosts_ref is not None:
                return [self.ncp_term(ct_name, host) for host in hosts]
            self._hosts_ref = hosts
            self._host_pos = {host: i for i, host in enumerate(hosts)}
        cached = self._rates_base.get(ct_name)
        log = self._dirty_hosts
        if cached is None:
            base = [self.ncp_term(ct_name, host) for host in hosts]
        else:
            base, seen = cached
            host_pos = self._host_pos
            for host in log[seen:]:
                pos = host_pos.get(host)
                if pos is not None:
                    base[pos] = self.ncp_term(ct_name, host)
        self._rates_base[ct_name] = (base, len(log))
        return list(base)

    def best_host(self, ct_name: str, hosts: Sequence[str]) -> tuple[float, str]:
        """``argmax_j gamma(i, j)`` with true-rate tiebreak.

        Returns ``(gamma, host)``.  Hosts whose gamma ties the maximum
        (within a relative 1e-9 tolerance) are separated by the exact
        partial rate a commit would produce; remaining ties fall back to
        NCP declaration order for determinism.
        """
        gammas = list(zip(self.gamma_over_hosts(ct_name, hosts), hosts))
        best_gamma = max(g for g, _ in gammas)
        if best_gamma == UNREACHABLE:
            return UNREACHABLE, gammas[0][1]
        tolerance = 1e-9 * max(1.0, abs(best_gamma)) if math.isfinite(best_gamma) else 0.0
        tied = [h for g, h in gammas if g >= best_gamma - tolerance]
        if len(tied) == 1:
            return best_gamma, tied[0]
        winner = max(tied, key=lambda h: self.partial_rate_after(ct_name, h))
        return best_gamma, winner

    def commit(self, ct_name: str, host: str) -> None:
        """Place ``ct_name`` on ``host`` and route TTs to placed neighbours.

        Routing the TTs only adds load to the links the routes actually
        cross, so instead of discarding the whole widest-path memo the
        commit invalidates exactly the cached trees touching those links.
        """
        if ct_name in self.ct_hosts:
            raise PlacementError(f"CT {ct_name!r} already placed")
        ct = self.graph.ct(ct_name)
        self.ct_hosts[ct_name] = host
        self.order.append(ct_name)
        bucket = self.ncp_loads.setdefault(host, {})
        for resource, amount in ct.requirements.items():
            bucket[resource] = bucket.get(resource, 0.0) + amount
        # The host's committed loads changed: its cached NCP-side terms
        # are stale (every other host's are untouched).
        self._ncp_term_cache.pop(host, None)
        self._dirty_hosts.append(host)
        dirtied: set[str] = set()
        for neighbor in self.graph.neighbors(ct_name):
            if neighbor not in self.ct_hosts:
                continue
            tt = self.graph.connecting_tt(ct_name, neighbor)
            assert tt is not None  # neighbours are by definition TT-connected
            dirtied.update(self._route_tt(tt))
        self._invalidate(dirtied)

    def _route_tt(self, tt: TransportTask) -> tuple[str, ...]:
        """Route ``tt`` between its endpoints' hosts (both must be placed).

        Returns the links the route loaded (empty when co-located) so the
        caller can invalidate the affected cache entries.
        """
        host_a = self.ct_hosts[tt.src]
        host_b = self.ct_hosts[tt.dst]
        if host_a == host_b:
            self.tt_routes[tt.name] = ()
            return ()
        route = widest_path(
            self.network, self.capacities, host_a, host_b, tt.megabits_per_unit,
            self.link_loads, weights_cache=self._weights_cache,
        )
        if route is None:
            raise InfeasiblePlacementError(
                f"no network path between {host_a!r} and {host_b!r} for TT {tt.name!r}"
            )
        self.tt_routes[tt.name] = route.links
        for link_name in route.links:
            self.link_loads[link_name] = (
                self.link_loads.get(link_name, 0.0) + tt.megabits_per_unit
            )
        if route.links:
            # The load state changed, so every memoized weight array built
            # against it is stale.
            self._weights_cache.clear()
        return route.links

    def finalize(self) -> AssignmentResult:
        """Build the validated :class:`Placement` and its stable rate."""
        # Flush the locally buffered tree-cache traffic in two counter
        # updates instead of one lock round-trip per probe.
        counters.incr("assignment.tree_cache_hit", self._tree_hits)
        counters.incr("assignment.tree_cache_miss", self._tree_misses)
        counters.incr("assignment.width_probes", self._width_probes)
        self._tree_hits = 0
        self._tree_misses = 0
        self._width_probes = 0
        placement = Placement(self.graph, self.ct_hosts, self.tt_routes)
        placement.validate(self.network)
        rate = placement.bottleneck_rate(self.capacities)
        return AssignmentResult(placement, rate, tuple(self.order))


def _pin_initial_cts(state: _State) -> None:
    """Algorithm 2 lines 3–5: place pinned CTs (sources/sinks) first.

    TTs whose endpoints are both pinned are routed immediately.  The routing
    order is the TT declaration order, deterministic by construction.
    """
    for ct in state.graph.cts:
        if ct.pinned_host is None:
            continue
        if not state.network.has_ncp(ct.pinned_host):
            raise InfeasiblePlacementError(
                f"CT {ct.name!r} pinned to unknown NCP {ct.pinned_host!r}"
            )
        state.ct_hosts[ct.name] = ct.pinned_host
        state.order.append(ct.name)
        bucket = state.ncp_loads.setdefault(ct.pinned_host, {})
        for resource, amount in ct.requirements.items():
            bucket[resource] = bucket.get(resource, 0.0) + amount
    for tt in state.graph.tts:
        if tt.src in state.ct_hosts and tt.dst in state.ct_hosts:
            state._route_tt(tt)
    # No probes have run yet, so the tree cache is empty by construction;
    # clearing keeps the invariant obvious if pinning ever moves later.
    state._tree_cache.clear()


@timed("assignment.sparcle_assign")
def sparcle_assign(
    graph: TaskGraph,
    network: Network,
    capacities: CapacityView | None = None,
) -> AssignmentResult:
    """Run Algorithm 2 and return one task assignment path.

    ``capacities`` defaults to a fresh view of the raw network; pass a
    residual view to assign on top of existing tenants.  Raises
    :class:`InfeasiblePlacementError` when some CT cannot be connected to
    its already-placed reachable CTs from any host.
    """
    caps = capacities if capacities is not None else CapacityView(network)
    state = _State(graph, network, caps)
    _pin_initial_cts(state)
    unplaced = [ct.name for ct in graph.cts if ct.name not in state.ct_hosts]
    hosts = list(network.ncp_names)
    while unplaced:
        best: tuple[float, str, str] | None = None  # (gamma, ct, host)
        for ct_name in unplaced:
            gamma, host = state.best_host(ct_name, hosts)
            # Highest-rank CT: argmin_i gamma(i, j*_i) — most constrained first.
            if best is None or gamma < best[0]:
                best = (gamma, ct_name, host)
        assert best is not None
        g_star, i_star, j_star = best
        if g_star == UNREACHABLE:
            raise InfeasiblePlacementError(
                f"CT {i_star!r} cannot reach its placed reachable CTs from any NCP"
            )
        state.commit(i_star, j_star)
        unplaced.remove(i_star)
    result = state.finalize()
    tr = tracing.get_tracer()
    if tr.enabled:
        element, resource = bottleneck_of(result.placement, caps)
        tr.event(
            "assignment.path_selected",
            rate=result.rate,
            order=list(result.placement_order),
            ct_hosts=dict(result.placement.ct_hosts),
            bottleneck_element=element,
            bottleneck_resource=resource,
        )
    return result


def bottleneck_of(
    placement: Placement, capacities: CapacityView
) -> tuple[str, str]:
    """The ``(element, resource)`` pair binding a placement's stable rate.

    Ties break toward the lexicographically first element (determinism);
    returns ``("", "")`` for a placement that loads nothing.
    """
    best: tuple[str, str] = ("", "")
    best_rate = math.inf
    for element in sorted(placement.loads()):
        for resource, load in sorted(placement.loads()[element].items()):
            if load <= 0.0:
                continue
            rate = capacities.capacity(element, resource) / load
            if rate < best_rate:
                best_rate = rate
                best = (element, resource)
    return best


def greedy_assign_with_order(
    graph: TaskGraph,
    network: Network,
    order: Sequence[str],
    capacities: CapacityView | None = None,
    *,
    consider_links: bool = False,
) -> AssignmentResult:
    """Place CTs in a *fixed* order with SPARCLE's placement machinery.

    ``order`` lists the non-pinned CTs in placement sequence.  With the
    default ``consider_links=False`` the host score is the NCP-side term of
    Eq. (2) only — matching the paper's GS/GRand baselines, which place CTs
    "not considering the connecting TTs' resource requirements" (Sec. V);
    TTs are still routed with Algorithm 1 once hosts are fixed.  Setting
    ``consider_links=True`` gives a static-order ablation of the full
    gamma (useful for isolating the value of the dynamic ranking alone).
    """
    caps = capacities if capacities is not None else CapacityView(network)
    state = _State(graph, network, caps)
    _pin_initial_cts(state)
    expected = {ct.name for ct in graph.cts if ct.name not in state.ct_hosts}
    if set(order) != expected:
        raise PlacementError(
            f"order must cover exactly the unpinned CTs {sorted(expected)}, got {list(order)}"
        )
    hosts = list(network.ncp_names)
    for ct_name in order:
        if consider_links:
            gamma, host = state.best_host(ct_name, hosts)
        else:
            gamma, host = state.best_host_compute_only(ct_name, hosts)
        if gamma == UNREACHABLE:
            raise InfeasiblePlacementError(
                f"CT {ct_name!r} cannot reach its placed reachable CTs from any NCP"
            )
        state.commit(ct_name, host)
    return state.finalize()


def fixed_placement(
    graph: TaskGraph,
    network: Network,
    ct_hosts: dict[str, str],
    capacities: CapacityView | None = None,
    *,
    router: str = "widest",
) -> AssignmentResult:
    """Route TTs for an externally chosen CT->NCP map and compute its rate.

    Baselines that only decide CT hosts (Random, HEFT, T-Storm, VNE, Cloud)
    use this to obtain a full placement.  ``router`` selects Algorithm 1
    (``"widest"``, load-aware) or plain minimum-hop (``"hops"``).
    """
    caps = capacities if capacities is not None else CapacityView(network)
    state = _State(graph, network, caps)
    missing = [ct.name for ct in graph.cts if ct.name not in ct_hosts]
    if missing:
        raise PlacementError(f"fixed placement missing hosts for CTs {missing}")
    for ct in graph.cts:
        host = ct_hosts[ct.name]
        if ct.pinned_host is not None and host != ct.pinned_host:
            raise PlacementError(
                f"CT {ct.name!r} pinned to {ct.pinned_host!r} but mapped to {host!r}"
            )
        if not network.has_ncp(host):
            raise InfeasiblePlacementError(f"CT {ct.name!r} mapped to unknown NCP {host!r}")
        state.ct_hosts[ct.name] = host
        state.order.append(ct.name)
        bucket = state.ncp_loads.setdefault(host, {})
        for resource, amount in ct.requirements.items():
            bucket[resource] = bucket.get(resource, 0.0) + amount
    for tt in graph.tts:
        src_host, dst_host = state.ct_hosts[tt.src], state.ct_hosts[tt.dst]
        if router == "widest":
            state._route_tt(tt)
        elif router == "hops":
            from repro.core.routing import hop_shortest_path

            if src_host == dst_host:
                state.tt_routes[tt.name] = ()
                continue
            route = hop_shortest_path(network, src_host, dst_host)
            if route is None:
                raise InfeasiblePlacementError(
                    f"no network path between {src_host!r} and {dst_host!r} "
                    f"for TT {tt.name!r}"
                )
            state.tt_routes[tt.name] = route.links
            for link_name in route.links:
                state.link_loads[link_name] = (
                    state.link_loads.get(link_name, 0.0) + tt.megabits_per_unit
                )
        else:
            raise ValueError(f"unknown router {router!r}")
    return state.finalize()


def feasible_hosts(graph: TaskGraph, network: Network) -> dict[str, list[str]]:
    """For each CT, the NCPs that could host it (pin-respecting).

    A host is listed when it is the pinned host, or when the CT is unpinned;
    capacity shortfalls are *not* filtered here (a zero-rate placement is
    still a placement — admission control rejects it later).
    """
    out: dict[str, list[str]] = {}
    for ct in graph.cts:
        if ct.pinned_host is not None:
            out[ct.name] = [ct.pinned_host]
        else:
            out[ct.name] = list(network.ncp_names)
    return out


def iter_orders_by_requirement(graph: TaskGraph, resources: Iterable[str]) -> list[str]:
    """Unpinned CTs ordered by descending total requirement (GS order)."""
    resources = list(resources)
    unpinned = [ct for ct in graph.cts if ct.pinned_host is None]

    def total(ct: ComputationTask) -> float:
        return sum(ct.requirement(r) for r in resources if r != BANDWIDTH)

    return [ct.name for ct in sorted(unpinned, key=lambda c: (-total(c), c.name))]
