"""Algorithm 1: load-aware widest-path routing for transport tasks.

When Algorithm 2 considers sending a TT ``k`` between NCPs ``j`` and ``j'``,
the *best path* is the one maximizing the bottleneck processing rate its
links would impose (Eq. (3)):

    P*_k(j, j') = argmax over paths P of  min over links l in P of
                    C_l^(b) / (a_k^(b) + existing per-unit TT load on l).

This is a max-min ("widest") path problem over link weights that depend on
what has already been placed, solved with a modified Dijkstra in
``O(|L| log |N|)``.  Ties are broken deterministically (lexicographically
smallest predecessor) so the whole scheduler is reproducible.
"""

from __future__ import annotations

import heapq
import math
from collections.abc import Mapping
from dataclasses import dataclass, field

import networkx as nx

from repro.core.network import Network
from repro.core.placement import CapacityView
from repro.exceptions import InvalidNetworkError
from repro.perf import counters


@dataclass(frozen=True)
class RouteResult:
    """A routed path and the rate bottleneck its links impose.

    ``links`` is ordered from source to destination; ``bottleneck`` is the
    max-min weight (``inf`` for the trivial same-node path).
    """

    links: tuple[str, ...]
    bottleneck: float


def link_weight(
    network: Network,
    capacities: CapacityView,
    link_name: str,
    tt_megabits: float,
    link_loads: Mapping[str, float],
) -> float:
    """The rate the link could sustain if the TT were added to it.

    ``link_loads`` carries the per-unit megabit load of TTs *of the same
    assignment path* already routed over each link (the ``y_{i'',l}`` terms
    in Eq. (3)); capacity consumed by other applications/paths is already
    reflected in ``capacities``.
    """
    from repro.core.taskgraph import BANDWIDTH

    denominator = tt_megabits + link_loads.get(link_name, 0.0)
    if denominator <= 0.0:
        return math.inf
    return capacities.capacity(link_name, BANDWIDTH) / denominator


def widest_path(
    network: Network,
    capacities: CapacityView,
    src: str,
    dst: str,
    tt_megabits: float,
    link_loads: Mapping[str, float] | None = None,
) -> RouteResult | None:
    """Find ``P*_k(src, dst)`` with the modified Dijkstra of Algorithm 1.

    Returns ``None`` when ``dst`` is unreachable from ``src``.  A path whose
    bottleneck is ``0`` (some link has zero residual bandwidth) is still
    returned — the caller decides whether a zero-rate path is acceptable —
    but wider paths always win over it.
    """
    network.ncp(src)
    network.ncp(dst)
    loads = link_loads or {}
    counters.incr("routing.widest_path")
    if src == dst:
        return RouteResult((), math.inf)

    # phi[v]: best known bottleneck from src to v (Algorithm 1's phi).
    phi: dict[str, float] = {src: math.inf}
    prev: dict[str, tuple[str, str]] = {}  # v -> (previous NCP, link used)
    visited: set[str] = set()
    # Max-heap via negated keys; the node name is the deterministic tiebreak.
    heap: list[tuple[float, str]] = [(-math.inf, src)]
    while heap:
        negwidth, node = heapq.heappop(heap)
        if node in visited:
            continue
        visited.add(node)
        if node == dst:
            break
        width = -negwidth
        for link in network.forward_links(node):
            neighbor = link.other(node)
            if neighbor in visited:
                continue
            w = link_weight(network, capacities, link.name, tt_megabits, loads)
            candidate = min(width, w)
            if candidate > phi.get(neighbor, -math.inf):
                phi[neighbor] = candidate
                prev[neighbor] = (node, link.name)
                heapq.heappush(heap, (-candidate, neighbor))
    if dst not in prev:
        return None
    links: list[str] = []
    node = dst
    while node != src:
        parent, link_name = prev[node]
        links.append(link_name)
        node = parent
    links.reverse()
    return RouteResult(tuple(links), phi[dst])


@dataclass(frozen=True)
class WidestPathTree:
    """Single-source widest-path widths (and routes) from one root.

    One modified-Dijkstra pass from ``root`` settles the max-min bottleneck
    width to *every* reachable NCP, with the same strict-improvement /
    name-ordered tiebreaks as :func:`widest_path` — so ``route_to`` (in
    forward mode) and ``width_to`` reproduce per-destination
    :func:`widest_path` results bit-for-bit while paying the
    ``O(|L| log |N|)`` search once instead of once per destination.

    ``reverse=True`` computes widths of paths *into* the root (traversing
    directed links backwards), which is what Algorithm 2 needs when probing
    candidate source hosts against a fixed placed destination host.

    ``tree_links`` is the set of links on at least one settled route.  The
    tree stays exact under any load state that differs from the one it was
    computed against only by *added* load on links outside ``tree_links``:
    added load never widens a link, every settled route avoids the dirtied
    links (so its width is unchanged), and a competitor path can only get
    narrower — hence the incremental cache invalidation in
    ``core/assignment.py`` evicts exactly the trees whose ``tree_links``
    intersect a commit's dirtied links.
    """

    root: str
    tt_megabits: float
    reverse: bool
    widths: Mapping[str, float]
    prev: Mapping[str, tuple[str, str]] = field(repr=False)
    tree_links: frozenset[str] = frozenset()

    def width_to(self, node: str) -> float | None:
        """Bottleneck width root->node (node->root when reversed).

        ``None`` when unreachable, matching :func:`widest_path` returning
        ``None``; ``inf`` for the trivial ``node == root`` case.
        """
        return self.widths.get(node)

    def links_to(self, node: str) -> tuple[str, ...] | None:
        """The settled route's links, ordered in data direction."""
        if node not in self.widths:
            return None
        links: list[str] = []
        current = node
        while current != self.root:
            parent, link_name = self.prev[current]
            links.append(link_name)
            current = parent
        if not self.reverse:
            links.reverse()
        return tuple(links)

    def route_to(self, node: str) -> RouteResult | None:
        """Per-destination :class:`RouteResult` (``None`` if unreachable)."""
        links = self.links_to(node)
        if links is None:
            return None
        return RouteResult(links, self.widths[node])


def widest_path_tree(
    network: Network,
    capacities: CapacityView,
    root: str,
    tt_megabits: float,
    link_loads: Mapping[str, float] | None = None,
    *,
    reverse: bool = False,
) -> WidestPathTree:
    """Batched Algorithm 1: widest paths from ``root`` to all NCPs at once.

    Runs the modified Dijkstra of :func:`widest_path` to exhaustion instead
    of stopping at one destination.  Because a settled node's ``phi`` and
    predecessor can never change after it is popped, the per-destination
    results are identical to what the early-stopping point-to-point search
    would have produced — including tiebreaks.
    """
    network.ncp(root)
    loads = link_loads or {}
    counters.incr("routing.widest_path_tree")
    expand = network.backward_links if reverse else network.forward_links
    phi: dict[str, float] = {root: math.inf}
    prev: dict[str, tuple[str, str]] = {}
    visited: set[str] = set()
    heap: list[tuple[float, str]] = [(-math.inf, root)]
    while heap:
        negwidth, node = heapq.heappop(heap)
        if node in visited:
            continue
        visited.add(node)
        width = -negwidth
        for link in expand(node):
            neighbor = link.other(node)
            if neighbor in visited:
                continue
            w = link_weight(network, capacities, link.name, tt_megabits, loads)
            candidate = min(width, w)
            if candidate > phi.get(neighbor, -math.inf):
                phi[neighbor] = candidate
                prev[neighbor] = (node, link.name)
                heapq.heappush(heap, (-candidate, neighbor))
    return WidestPathTree(
        root,
        tt_megabits,
        reverse,
        phi,
        prev,
        frozenset(link_name for _, link_name in prev.values()),
    )


def hop_shortest_path(network: Network, src: str, dst: str) -> RouteResult | None:
    """Minimum-hop routing (the baseline schedulers' router).

    The bottleneck reported is the raw minimum link bandwidth along the
    path, ignoring load — deliberately, to mirror network-oblivious
    schedulers like those of Spark/Kubernetes the paper contrasts with.
    """
    network.ncp(src)
    network.ncp(dst)
    if src == dst:
        return RouteResult((), math.inf)
    graph = nx.DiGraph() if network.directed else nx.Graph()
    for link in network.links:
        graph.add_edge(link.a, link.b, link=link.name, bandwidth=link.bandwidth)
    graph.add_nodes_from(network.ncp_names)
    try:
        nodes = nx.shortest_path(graph, src, dst)
    except nx.NetworkXNoPath:
        return None
    links: list[str] = []
    bottleneck = math.inf
    for a, b in zip(nodes, nodes[1:]):
        data = graph.edges[a, b]
        links.append(data["link"])
        bottleneck = min(bottleneck, data["bandwidth"])
    return RouteResult(tuple(links), bottleneck)


def all_simple_routes(
    network: Network, src: str, dst: str, *, cutoff: int | None = None
) -> list[tuple[str, ...]]:
    """Every simple path (as link tuples) between two NCPs.

    Used by the exhaustive-search optimal baseline; exponential in general,
    so ``cutoff`` bounds path length.  Deterministically ordered.
    """
    network.ncp(src)
    network.ncp(dst)
    if src == dst:
        return [()]
    graph = nx.DiGraph() if network.directed else nx.Graph()
    for link in network.links:
        graph.add_edge(link.a, link.b, link=link.name)
    graph.add_nodes_from(network.ncp_names)
    if not nx.has_path(graph, src, dst):
        return []
    routes = []
    for nodes in nx.all_simple_paths(graph, src, dst, cutoff=cutoff):
        routes.append(tuple(graph.edges[a, b]["link"] for a, b in zip(nodes, nodes[1:])))
    routes.sort()
    return routes


def validate_route(network: Network, src: str, dst: str, links: tuple[str, ...]) -> None:
    """Raise unless ``links`` is a contiguous simple path from src to dst.

    In a directed network every hop must also follow the link's direction.
    """
    current = src
    seen: set[str] = set()
    for link_name in links:
        link = network.link(link_name)
        if link_name in seen:
            raise InvalidNetworkError(f"route repeats link {link_name!r}")
        seen.add(link_name)
        if current not in link.endpoints():
            raise InvalidNetworkError(f"route not contiguous at {link_name!r}")
        if network.directed and link.a != current:
            raise InvalidNetworkError(
                f"route traverses {link_name!r} against its direction"
            )
        current = link.other(current)
    if current != dst:
        raise InvalidNetworkError(f"route ends at {current!r}, expected {dst!r}")
