"""Algorithm 1: load-aware widest-path routing for transport tasks.

When Algorithm 2 considers sending a TT ``k`` between NCPs ``j`` and ``j'``,
the *best path* is the one maximizing the bottleneck processing rate its
links would impose (Eq. (3)):

    P*_k(j, j') = argmax over paths P of  min over links l in P of
                    C_l^(b) / (a_k^(b) + existing per-unit TT load on l).

This is a max-min ("widest") path problem over link weights that depend on
what has already been placed, solved with a modified Dijkstra in
``O(|L| log |N|)``.  Ties are broken deterministically (lexicographically
smallest predecessor) so the whole scheduler is reproducible.

Two interchangeable kernels implement the search:

* ``"array"`` — the CSR-compiled kernel of :mod:`repro.core.arrays`:
  link weights for the whole network are evaluated in one vectorized
  pass and the relaxation loop runs over int arrays (numba-JITted when
  the optional dependency is installed);
* ``"dict"`` — the original dict-of-dicts kernel, retained verbatim as
  the equivalence baseline.

The default selection is ``"auto"``: networks with fewer than
:data:`SMALL_NETWORK_ELEMENTS` elements (NCPs + links) route through the
dict kernel — below that size the CSR compile/warm-up overhead exceeds
the vectorized win (the star-8 ``kernel_speedup: 0.88`` regression in
``BENCH_assignment.json``) — and everything larger uses the array
kernel.  Both kernels produce bit-identical decisions (widths,
predecessors, tiebreaks), so the dispatch never changes a scheduling
outcome; select explicitly with :func:`set_route_kernel` or the
``SPARCLE_ROUTE_KERNEL`` environment variable.
"""

from __future__ import annotations

import heapq
import math
import os
from collections.abc import Iterator, Mapping, Sequence
from contextlib import contextmanager
from dataclasses import dataclass, field

import networkx as nx

from repro.core import arrays
from repro.core.network import Network
from repro.core.placement import CapacityView
from repro.exceptions import InvalidNetworkError
from repro.perf import counters


# ----------------------------------------------------------------------
# Kernel selection
# ----------------------------------------------------------------------
_VALID_KERNELS = ("auto", "array", "dict")

#: Networks with fewer elements (NCPs + links) than this route through the
#: dict kernel under ``"auto"``: the CSR compile + per-query array setup
#: costs more than the vectorized relaxation saves on tiny graphs
#: (star-8 is 15 elements and loses ~12%; star-16 at 31 elements already
#: wins 1.2x), so the crossover sits between those sizes.
SMALL_NETWORK_ELEMENTS = 24

_route_kernel = os.environ.get("SPARCLE_ROUTE_KERNEL", "auto")
if _route_kernel not in _VALID_KERNELS:  # pragma: no cover - env misuse
    raise ValueError(
        f"SPARCLE_ROUTE_KERNEL must be one of {_VALID_KERNELS}, "
        f"got {_route_kernel!r}"
    )


def get_route_kernel() -> str:
    """The selected Algorithm-1 kernel: ``"auto"``, ``"array"`` or ``"dict"``."""
    return _route_kernel


def resolve_route_kernel(network: Network) -> str:
    """The concrete kernel (``"array"`` or ``"dict"``) a query would use.

    ``"auto"`` resolves per network by element count; an explicit
    selection is returned unchanged.
    """
    if _route_kernel != "auto":
        return _route_kernel
    elements = len(network.ncp_names) + len(network.links)
    return "dict" if elements < SMALL_NETWORK_ELEMENTS else "array"


def set_route_kernel(kernel: str) -> str:
    """Select the Algorithm-1 kernel; returns the previous selection.

    ``"array"`` is the CSR/numpy kernel, ``"dict"`` the legacy reference
    kernel, and ``"auto"`` (the default) dispatches per network size via
    :func:`resolve_route_kernel`.  Decision identity between the kernels
    is enforced by the equivalence suites, so switching is safe at any
    point — the flag exists for benchmarking and for bisecting kernel
    regressions.
    """
    global _route_kernel
    if kernel not in _VALID_KERNELS:
        raise ValueError(f"kernel must be one of {_VALID_KERNELS}, got {kernel!r}")
    previous = _route_kernel
    _route_kernel = kernel
    return previous


@contextmanager
def route_kernel(kernel: str) -> Iterator[None]:
    """Temporarily select a kernel (tests and A/B benchmarks)."""
    previous = set_route_kernel(kernel)
    try:
        yield
    finally:
        set_route_kernel(previous)


@dataclass(frozen=True)
class RouteResult:
    """A routed path and the rate bottleneck its links impose.

    ``links`` is ordered from source to destination; ``bottleneck`` is the
    max-min weight (``inf`` for the trivial same-node path).
    """

    links: tuple[str, ...]
    bottleneck: float


def link_weight(
    network: Network,
    capacities: CapacityView,
    link_name: str,
    tt_megabits: float,
    link_loads: Mapping[str, float],
) -> float:
    """The rate the link could sustain if the TT were added to it.

    ``link_loads`` carries the per-unit megabit load of TTs *of the same
    assignment path* already routed over each link (the ``y_{i'',l}`` terms
    in Eq. (3)); capacity consumed by other applications/paths is already
    reflected in ``capacities``.
    """
    from repro.core.taskgraph import BANDWIDTH

    denominator = tt_megabits + link_loads.get(link_name, 0.0)
    if denominator <= 0.0:
        return math.inf
    return capacities.capacity(link_name, BANDWIDTH) / denominator


#: Caller-owned memo for Eq.-(3) weight arrays, keyed by
#: ``(CapacityView.version, tt_megabits)``.  The caller owns the link-load
#: state, so it also owns the cache's validity: pass the same dict across
#: queries made under one load state and *clear it whenever the loads
#: mutate* (capacity mutations are keyed out automatically via the view
#: version).  Only the array kernel consults it; the dict kernel computes
#: per-edge weights inline either way.
WeightsCache = dict[tuple[int, float], "arrays.FloatArray"]


def widest_path(
    network: Network,
    capacities: CapacityView,
    src: str,
    dst: str,
    tt_megabits: float,
    link_loads: Mapping[str, float] | None = None,
    *,
    weights_cache: WeightsCache | None = None,
) -> RouteResult | None:
    """Find ``P*_k(src, dst)`` with the modified Dijkstra of Algorithm 1.

    Returns ``None`` when ``dst`` is unreachable from ``src``.  A path whose
    bottleneck is ``0`` (some link has zero residual bandwidth) is still
    returned — the caller decides whether a zero-rate path is acceptable —
    but wider paths always win over it.
    """
    network.ncp(src)
    network.ncp(dst)
    loads = link_loads or {}
    counters.incr("routing.widest_path")
    if src == dst:
        return RouteResult((), math.inf)
    if resolve_route_kernel(network) == "array":
        return _widest_path_array(
            network, capacities, src, dst, tt_megabits, loads, weights_cache
        )
    return _widest_path_dict(network, capacities, src, dst, tt_megabits, loads)


def _link_weights_cached(
    compiled: "arrays.CompiledNetwork",
    capacities: CapacityView,
    tt_megabits: float,
    loads: Mapping[str, float],
    cache: WeightsCache | None,
) -> "arrays.FloatArray":
    """One vectorized Eq.-(3) pass, memoized in the caller-owned cache."""
    if cache is None:
        residual = arrays.link_residuals(compiled, capacities)
        return arrays.link_weights(compiled, residual, tt_megabits, loads)
    key = (capacities.version, tt_megabits)
    weights = cache.get(key)
    if weights is None:
        residual = arrays.link_residuals(compiled, capacities)
        weights = arrays.link_weights(compiled, residual, tt_megabits, loads)
        cache[key] = weights
    return weights


def _widest_path_array(
    network: Network,
    capacities: CapacityView,
    src: str,
    dst: str,
    tt_megabits: float,
    loads: Mapping[str, float],
    weights_cache: WeightsCache | None = None,
) -> RouteResult | None:
    """Point query on the CSR kernel, early-exiting once ``dst`` settles."""
    compiled = arrays.compile_network(network)
    weights = _link_weights_cached(
        compiled, capacities, tt_megabits, loads, weights_cache
    )
    src_idx = compiled.node_index[src]
    dst_idx = compiled.node_index[dst]
    widths, prev_node, prev_link = arrays.run_widest(
        compiled, weights, src_idx, dst=dst_idx
    )
    if prev_node[dst_idx] < 0:
        return None
    link_names = compiled.link_names
    links: list[str] = []
    node = dst_idx
    while node != src_idx:
        links.append(link_names[prev_link[node]])
        node = prev_node[node]
    links.reverse()
    return RouteResult(tuple(links), widths[dst_idx])


def _widest_path_dict(
    network: Network,
    capacities: CapacityView,
    src: str,
    dst: str,
    tt_megabits: float,
    loads: Mapping[str, float],
) -> RouteResult | None:
    """The original dict-of-dicts Algorithm-1 point search (reference)."""
    # phi[v]: best known bottleneck from src to v (Algorithm 1's phi).
    phi: dict[str, float] = {src: math.inf}
    prev: dict[str, tuple[str, str]] = {}  # v -> (previous NCP, link used)
    visited: set[str] = set()
    # Max-heap via negated keys; the node name is the deterministic tiebreak.
    heap: list[tuple[float, str]] = [(-math.inf, src)]
    while heap:
        negwidth, node = heapq.heappop(heap)
        if node in visited:
            continue
        visited.add(node)
        if node == dst:
            break
        width = -negwidth
        for link in network.forward_links(node):
            neighbor = link.other(node)
            if neighbor in visited:
                continue
            w = link_weight(network, capacities, link.name, tt_megabits, loads)
            candidate = min(width, w)
            if candidate > phi.get(neighbor, -math.inf):
                phi[neighbor] = candidate
                prev[neighbor] = (node, link.name)
                heapq.heappush(heap, (-candidate, neighbor))
    if dst not in prev:
        return None
    links: list[str] = []
    node = dst
    while node != src:
        parent, link_name = prev[node]
        links.append(link_name)
        node = parent
    links.reverse()
    return RouteResult(tuple(links), phi[dst])


@dataclass(frozen=True)
class WidestPathTree:
    """Single-source widest-path widths (and routes) from one root.

    One modified-Dijkstra pass from ``root`` settles the max-min bottleneck
    width to *every* reachable NCP, with the same strict-improvement /
    name-ordered tiebreaks as :func:`widest_path` — so ``route_to`` (in
    forward mode) and ``width_to`` reproduce per-destination
    :func:`widest_path` results bit-for-bit while paying the
    ``O(|L| log |N|)`` search once instead of once per destination.

    ``reverse=True`` computes widths of paths *into* the root (traversing
    directed links backwards), which is what Algorithm 2 needs when probing
    candidate source hosts against a fixed placed destination host.

    ``tree_links`` is the set of links on at least one settled route.  The
    tree stays exact under any load state that differs from the one it was
    computed against only by *added* load on links outside ``tree_links``:
    added load never widens a link, every settled route avoids the dirtied
    links (so its width is unchanged), and a competitor path can only get
    narrower — hence the incremental cache invalidation in
    ``core/assignment.py`` evicts exactly the trees whose ``tree_links``
    intersect a commit's dirtied links.
    """

    root: str
    tt_megabits: float
    reverse: bool
    widths: Mapping[str, float]
    prev: Mapping[str, tuple[str, str]] = field(repr=False)
    tree_links: frozenset[str] = frozenset()
    # Array-kernel fast path: the same widths indexed by compiled node id
    # (``-inf`` = unreachable) plus the name->id map, letting batch
    # consumers (Algorithm 2's host sweeps) read a list slot per probe
    # instead of hashing a node name.  ``None`` on dict-kernel trees;
    # excluded from equality so trees compare by decision content only.
    _width_list: Sequence[float] | None = field(
        default=None, repr=False, compare=False
    )
    _node_pos: Mapping[str, int] | None = field(
        default=None, repr=False, compare=False
    )

    def width_to(self, node: str) -> float | None:
        """Bottleneck width root->node (node->root when reversed).

        ``None`` when unreachable, matching :func:`widest_path` returning
        ``None``; ``inf`` for the trivial ``node == root`` case.
        """
        return self.widths.get(node)

    def links_to(self, node: str) -> tuple[str, ...] | None:
        """The settled route's links, ordered in data direction."""
        if node not in self.widths:
            return None
        links: list[str] = []
        current = node
        while current != self.root:
            parent, link_name = self.prev[current]
            links.append(link_name)
            current = parent
        if not self.reverse:
            links.reverse()
        return tuple(links)

    def route_to(self, node: str) -> RouteResult | None:
        """Per-destination :class:`RouteResult` (``None`` if unreachable)."""
        links = self.links_to(node)
        if links is None:
            return None
        return RouteResult(links, self.widths[node])


def widest_path_tree(
    network: Network,
    capacities: CapacityView,
    root: str,
    tt_megabits: float,
    link_loads: Mapping[str, float] | None = None,
    *,
    reverse: bool = False,
    weights_cache: WeightsCache | None = None,
) -> WidestPathTree:
    """Batched Algorithm 1: widest paths from ``root`` to all NCPs at once.

    Runs the modified Dijkstra of :func:`widest_path` to exhaustion instead
    of stopping at one destination.  Because a settled node's ``phi`` and
    predecessor can never change after it is popped, the per-destination
    results are identical to what the early-stopping point-to-point search
    would have produced — including tiebreaks.

    ``weights_cache`` (see :data:`WeightsCache`) lets a caller issuing many
    searches under one load state share the vectorized weight pass — the
    weights depend on ``(capacities, tt_megabits, loads)`` but not on the
    root, so Algorithm 2's per-round probes all hit the same array.
    """
    network.ncp(root)
    loads = link_loads or {}
    counters.incr("routing.widest_path_tree")
    if resolve_route_kernel(network) == "array":
        return _widest_path_tree_array(
            network, capacities, root, tt_megabits, loads, reverse, weights_cache
        )
    return _widest_path_tree_dict(
        network, capacities, root, tt_megabits, loads, reverse
    )


def _widest_path_tree_array(
    network: Network,
    capacities: CapacityView,
    root: str,
    tt_megabits: float,
    loads: Mapping[str, float],
    reverse: bool,
    weights_cache: WeightsCache | None = None,
) -> WidestPathTree:
    """Single-source tree on the CSR kernel (run to exhaustion)."""
    compiled = arrays.compile_network(network)
    weights = _link_weights_cached(
        compiled, capacities, tt_megabits, loads, weights_cache
    )
    root_idx = compiled.node_index[root]
    width_l, prev_node, prev_link = arrays.run_widest(
        compiled, weights, root_idx, reverse=reverse
    )
    node_names = compiled.node_names
    link_names = compiled.link_names
    neg_inf = -math.inf
    if neg_inf in width_l:
        phi = {
            name: w for name, w in zip(node_names, width_l) if w != neg_inf
        }
    else:  # every node reached (the common connected-network case)
        phi = dict(zip(node_names, width_l))
    prev = {
        node_names[i]: (node_names[p], link_names[prev_link[i]])
        for i, p in enumerate(prev_node)
        if p >= 0
    }
    tree_links = frozenset(
        link_names[lid] for lid in prev_link if lid >= 0
    )
    return WidestPathTree(
        root, tt_megabits, reverse, phi, prev, tree_links,
        _width_list=width_l, _node_pos=compiled.node_index,
    )


def _widest_path_tree_dict(
    network: Network,
    capacities: CapacityView,
    root: str,
    tt_megabits: float,
    loads: Mapping[str, float],
    reverse: bool,
) -> WidestPathTree:
    """The original dict-of-dicts single-source tree (reference)."""
    expand = network.backward_links if reverse else network.forward_links
    phi: dict[str, float] = {root: math.inf}
    prev: dict[str, tuple[str, str]] = {}
    visited: set[str] = set()
    heap: list[tuple[float, str]] = [(-math.inf, root)]
    while heap:
        negwidth, node = heapq.heappop(heap)
        if node in visited:
            continue
        visited.add(node)
        width = -negwidth
        for link in expand(node):
            neighbor = link.other(node)
            if neighbor in visited:
                continue
            w = link_weight(network, capacities, link.name, tt_megabits, loads)
            candidate = min(width, w)
            if candidate > phi.get(neighbor, -math.inf):
                phi[neighbor] = candidate
                prev[neighbor] = (node, link.name)
                heapq.heappush(heap, (-candidate, neighbor))
    return WidestPathTree(
        root,
        tt_megabits,
        reverse,
        phi,
        prev,
        frozenset(link_name for _, link_name in prev.values()),
    )


def hop_shortest_path(network: Network, src: str, dst: str) -> RouteResult | None:
    """Minimum-hop routing (the baseline schedulers' router).

    The bottleneck reported is the raw minimum link bandwidth along the
    path, ignoring load — deliberately, to mirror network-oblivious
    schedulers like those of Spark/Kubernetes the paper contrasts with.

    The networkx graph searched is ``Network.routing_graph()`` — built
    once per (immutable) network and reused across calls, instead of
    being reconstructed per query as it historically was.
    """
    network.ncp(src)
    network.ncp(dst)
    counters.incr("routing.hop_shortest_path")
    if src == dst:
        return RouteResult((), math.inf)
    graph = network.routing_graph()
    try:
        nodes = nx.shortest_path(graph, src, dst)
    except nx.NetworkXNoPath:
        return None
    links: list[str] = []
    bottleneck = math.inf
    for a, b in zip(nodes, nodes[1:]):
        data = graph.edges[a, b]
        links.append(data["link"])
        bottleneck = min(bottleneck, data["bandwidth"])
    return RouteResult(tuple(links), bottleneck)


def all_simple_routes(
    network: Network, src: str, dst: str, *, cutoff: int | None = None
) -> list[tuple[str, ...]]:
    """Every simple path (as link tuples) between two NCPs.

    Used by the exhaustive-search optimal baseline; exponential in general,
    so ``cutoff`` bounds path length.  Deterministically ordered.
    """
    network.ncp(src)
    network.ncp(dst)
    if src == dst:
        return [()]
    graph = network.routing_graph()
    if not nx.has_path(graph, src, dst):
        return []
    routes = []
    for nodes in nx.all_simple_paths(graph, src, dst, cutoff=cutoff):
        routes.append(tuple(graph.edges[a, b]["link"] for a, b in zip(nodes, nodes[1:])))
    routes.sort()
    return routes


def validate_route(network: Network, src: str, dst: str, links: tuple[str, ...]) -> None:
    """Raise unless ``links`` is a contiguous simple path from src to dst.

    In a directed network every hop must also follow the link's direction.
    """
    current = src
    seen: set[str] = set()
    for link_name in links:
        link = network.link(link_name)
        if link_name in seen:
            raise InvalidNetworkError(f"route repeats link {link_name!r}")
        seen.add(link_name)
        if current not in link.endpoints():
            raise InvalidNetworkError(f"route not contiguous at {link_name!r}")
        if network.directed and link.a != current:
            raise InvalidNetworkError(
                f"route traverses {link_name!r} against its direction"
            )
        current = link.other(current)
    if current != dst:
        raise InvalidNetworkError(f"route ends at {current!r}, expected {dst!r}")
