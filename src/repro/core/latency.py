"""End-to-end latency analysis of a placed stream application.

The paper optimizes throughput (the stable processing rate), but its
queueing-network model also yields latency structure, which this module
exposes:

* :func:`zero_load_latency` — the *critical-path* latency of one data unit
  through an otherwise empty pipeline: the longest source-to-sink path in
  the task graph where each CT contributes its service time on its host and
  each TT contributes its transfer time over every link of its route.
  This is the latency floor no admission policy can beat.
* :func:`estimated_latency` — a heuristic steady-state estimate at input
  rate ``x``: each element is approximated as an M/D/1 queue with
  utilization ``rho = x * load / capacity``, inflating every visit's
  service time by the Pollaczek–Khinchine waiting factor
  ``1 + rho / (2 (1 - rho))``.  The discrete-event simulator measures the
  true value; integration tests confirm the estimate brackets it sensibly
  (exact at ``x -> 0``, diverging as the bottleneck saturates).

Latency here is *per data unit* (seconds from source emission to the last
sink completion), matching the simulator's measurement.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.network import Network
from repro.core.placement import CapacityView, Placement
from repro.core.taskgraph import BANDWIDTH, TaskGraph
from repro.exceptions import SparcleError


@dataclass(frozen=True)
class LatencyBreakdown:
    """Critical-path latency and its per-task composition."""

    total_seconds: float
    critical_path: tuple[str, ...]  # alternating CT / TT names
    per_task_seconds: dict[str, float]


def _service_times(
    network: Network,
    placement: Placement,
    capacities: CapacityView,
) -> dict[str, float]:
    """Zero-load service seconds per task (CTs and TTs)."""
    graph = placement.graph
    times: dict[str, float] = {}
    for ct in graph.cts:
        host = placement.host(ct.name)
        worst = 0.0
        for resource, amount in ct.requirements.items():
            if amount <= 0:
                continue
            capacity = capacities.capacity(host, resource)
            if capacity <= 0:
                raise SparcleError(
                    f"CT {ct.name!r} needs {resource!r} on {host!r} which has none"
                )
            worst = max(worst, amount / capacity)
        times[ct.name] = worst
    for tt in graph.tts:
        total = 0.0
        for link_name in placement.route(tt.name):
            capacity = capacities.capacity(link_name, BANDWIDTH)
            if capacity <= 0:
                if tt.megabits_per_unit > 0:
                    raise SparcleError(
                        f"TT {tt.name!r} crosses {link_name!r} which has no bandwidth"
                    )
                continue
            total += tt.megabits_per_unit / capacity
        times[tt.name] = total
    return times


def _critical_path(
    graph: TaskGraph, task_seconds: dict[str, float]
) -> tuple[float, tuple[str, ...]]:
    """Longest path through the DAG under the given per-task durations."""
    finish: dict[str, float] = {}
    via: dict[str, tuple[str, ...]] = {}
    for ct_name in graph.topological_order():
        best: float | None = None
        best_chain: tuple[str, ...] = ()
        for tt in graph.tts:
            if tt.dst != ct_name:
                continue
            candidate = finish[tt.src] + task_seconds[tt.name]
            if best is None or candidate > best:
                best = candidate
                best_chain = via[tt.src] + (tt.name,)
        arrival = best if best is not None else 0.0
        finish[ct_name] = arrival + task_seconds[ct_name]
        via[ct_name] = best_chain + (ct_name,)
    sink = max(graph.sinks, key=lambda s: finish[s])
    return finish[sink], via[sink]


def zero_load_latency(
    network: Network,
    placement: Placement,
    *,
    capacities: CapacityView | None = None,
) -> LatencyBreakdown:
    """Critical-path latency of one unit through the empty pipeline."""
    caps = capacities if capacities is not None else CapacityView(network)
    task_seconds = _service_times(network, placement, caps)
    total, chain = _critical_path(placement.graph, task_seconds)
    return LatencyBreakdown(
        total_seconds=total,
        critical_path=chain,
        per_task_seconds=task_seconds,
    )


def estimated_latency(
    network: Network,
    placement: Placement,
    rate: float,
    *,
    capacities: CapacityView | None = None,
) -> float:
    """M/D/1-style steady-state latency estimate at input rate ``rate``.

    Each element's utilization is ``rho_j = rate * R_j / C_j`` (max over
    resources); every task hosted there has its service time inflated by
    the deterministic-service waiting factor ``1 + rho/(2(1-rho))``.
    Raises when ``rate`` meets or exceeds the placement's stable rate —
    there is no steady state to estimate then.
    """
    if rate < 0:
        raise SparcleError(f"rate must be non-negative, got {rate}")
    caps = capacities if capacities is not None else CapacityView(network)
    stable = placement.bottleneck_rate(caps)
    if rate >= stable:
        raise SparcleError(
            f"rate {rate} is at or beyond the stable rate {stable}; "
            "latency is unbounded"
        )
    loads = placement.loads()
    utilization: dict[str, float] = {}
    for element, bucket in loads.items():
        rho = 0.0
        for resource, load in bucket.items():
            if load <= 0:
                continue
            rho = max(rho, rate * load / caps.capacity(element, resource))
        utilization[element] = min(rho, 1.0 - 1e-12)

    def element_of(task_name: str) -> list[str]:
        graph = placement.graph
        if graph.has_ct(task_name):
            return [placement.host(task_name)]
        return list(placement.route(task_name))

    task_seconds = _service_times(network, placement, caps)
    inflated: dict[str, float] = {}
    graph = placement.graph
    for task_name, base in task_seconds.items():
        elements = element_of(task_name)
        if not elements or base == 0.0:
            inflated[task_name] = base
            continue
        if graph.has_ct(task_name):
            rho = utilization.get(elements[0], 0.0)
            inflated[task_name] = base * (1.0 + rho / (2.0 * (1.0 - rho)))
        else:
            # Links along a TT route inflate hop by hop.
            tt = graph.tt(task_name)
            total = 0.0
            for link_name in elements:
                capacity = caps.capacity(link_name, BANDWIDTH)
                hop = tt.megabits_per_unit / capacity
                rho = utilization.get(link_name, 0.0)
                total += hop * (1.0 + rho / (2.0 * (1.0 - rho)))
            inflated[task_name] = total
    total, _ = _critical_path(graph, inflated)
    return total
