"""Straight-line reference implementation of Algorithm 2 (pre-optimization).

This module preserves the original, unoptimized assignment hot path exactly
as it shipped in the seed: one point-to-point :func:`~repro.core.routing.
widest_path` Dijkstra per ``(unplaced CT, candidate host, placed CT)``
probe, a per-round route memo that is wholesale-cleared on every commit,
and per-call load-vector recomputation.

It exists for two reasons:

* the **golden equivalence suite** (``tests/core/test_assignment_
  equivalence.py``) asserts that the optimized ``sparcle_assign`` is
  decision-identical — same hosts, same routes, same rates, same placement
  order — to this reference on seeded random scenarios;
* the **benchmark runner** (``benchmarks/export_bench.py``) times it as the
  pre-change baseline recorded in ``BENCH_assignment.json``.

Keep this file boring: no caching cleverness, no batching.  It should only
change if the *semantics* of Algorithm 2 change, in which case the golden
suite is the alarm bell.
"""

from __future__ import annotations

import math
from collections.abc import Sequence
from dataclasses import dataclass, field

from repro.core.assignment import UNREACHABLE, AssignmentResult
from repro.core.network import Network
from repro.core.placement import CapacityView, Placement
from repro.core.routing import RouteResult, widest_path
from repro.core.taskgraph import BANDWIDTH, TaskGraph, TransportTask
from repro.exceptions import InfeasiblePlacementError, PlacementError


@dataclass
class _ReferenceState:
    """Mutable working state of one reference assignment run."""

    graph: TaskGraph
    network: Network
    capacities: CapacityView
    ct_hosts: dict[str, str] = field(default_factory=dict)
    tt_routes: dict[str, tuple[str, ...]] = field(default_factory=dict)
    ncp_loads: dict[str, dict[str, float]] = field(default_factory=dict)
    link_loads: dict[str, float] = field(default_factory=dict)
    order: list[str] = field(default_factory=list)

    # Per-round widest-path memo; invalidated whenever loads change.
    _route_cache: dict[tuple[str, str, float], RouteResult | None] = field(
        default_factory=dict
    )

    # ------------------------------------------------------------------
    def placed(self) -> set[str]:
        return set(self.ct_hosts)

    def best_route(self, j: str, j_prime: str, megabits: float) -> RouteResult | None:
        """Memoized Algorithm-1 call for the current load state."""
        key = (j, j_prime, megabits)
        if key not in self._route_cache:
            self._route_cache[key] = widest_path(
                self.network, self.capacities, j, j_prime, megabits, self.link_loads
            )
        return self._route_cache[key]

    def cheapest_tt(self, a: str, b: str) -> TransportTask | None:
        """Algorithm 2 line 12: argmin of ``a^(b)`` over ``G(a, b)``."""
        candidates = self.graph.tts_between(a, b)
        if not candidates:
            return None
        return min(candidates, key=lambda tt: (tt.megabits_per_unit, tt.name))

    # ------------------------------------------------------------------
    def gamma(self, ct_name: str, host: str) -> float:
        """Eq. (2): the rate bottleneck imposed by placing ``ct_name`` on ``host``."""
        ct = self.graph.ct(ct_name)
        rate = math.inf
        loads = self.ncp_loads.get(host, {})
        resources = set(ct.requirements) | set(loads)
        for resource in resources:
            demand = ct.requirement(resource) + loads.get(resource, 0.0)
            if demand <= 0.0:
                continue
            rate = min(rate, self.capacities.capacity(host, resource) / demand)
        for other in sorted(self.placed()):
            if other == ct_name or not self.graph.is_reachable(ct_name, other):
                continue
            other_host = self.ct_hosts[other]
            if other_host == host:
                continue  # co-located: the TT would be free
            tt = self.cheapest_tt(ct_name, other)
            if tt is None:
                continue
            if self.graph.is_downstream(ct_name, other):
                route = self.best_route(host, other_host, tt.megabits_per_unit)
            else:
                route = self.best_route(other_host, host, tt.megabits_per_unit)
            if route is None:
                return UNREACHABLE
            rate = min(rate, route.bottleneck)
        return rate

    def partial_rate_after(self, ct_name: str, host: str) -> float:
        """The exact bottleneck rate of the partial placement after a commit."""
        ct = self.graph.ct(ct_name)
        ncp_loads = {n: dict(b) for n, b in self.ncp_loads.items()}
        link_loads = dict(self.link_loads)
        bucket = ncp_loads.setdefault(host, {})
        for resource, amount in ct.requirements.items():
            bucket[resource] = bucket.get(resource, 0.0) + amount
        for neighbor in self.graph.neighbors(ct_name):
            if neighbor not in self.ct_hosts:
                continue
            other_host = self.ct_hosts[neighbor]
            if other_host == host:
                continue
            tt = self.graph.connecting_tt(ct_name, neighbor)
            assert tt is not None
            src_host = host if tt.src == ct_name else other_host
            dst_host = other_host if tt.src == ct_name else host
            route = widest_path(
                self.network, self.capacities, src_host, dst_host,
                tt.megabits_per_unit, link_loads,
            )
            if route is None:
                return UNREACHABLE
            for link_name in route.links:
                link_loads[link_name] = (
                    link_loads.get(link_name, 0.0) + tt.megabits_per_unit
                )
        rate = math.inf
        for ncp_name, loads in ncp_loads.items():
            for resource, load in loads.items():
                if load > 0.0:
                    rate = min(rate, self.capacities.capacity(ncp_name, resource) / load)
        for link_name, load in link_loads.items():
            if load > 0.0:
                rate = min(rate, self.capacities.capacity(link_name, BANDWIDTH) / load)
        return rate

    def best_host(self, ct_name: str, hosts: Sequence[str]) -> tuple[float, str]:
        """``argmax_j gamma(i, j)`` with true-rate tiebreak."""
        gammas = [(self.gamma(ct_name, host), host) for host in hosts]
        best_gamma = max(g for g, _ in gammas)
        if best_gamma == UNREACHABLE:
            return UNREACHABLE, gammas[0][1]
        tolerance = 1e-9 * max(1.0, abs(best_gamma)) if math.isfinite(best_gamma) else 0.0
        tied = [h for g, h in gammas if g >= best_gamma - tolerance]
        if len(tied) == 1:
            return best_gamma, tied[0]
        winner = max(tied, key=lambda h: self.partial_rate_after(ct_name, h))
        return best_gamma, winner

    def commit(self, ct_name: str, host: str) -> None:
        """Place ``ct_name`` on ``host`` and route TTs to placed neighbours."""
        if ct_name in self.ct_hosts:
            raise PlacementError(f"CT {ct_name!r} already placed")
        ct = self.graph.ct(ct_name)
        self.ct_hosts[ct_name] = host
        self.order.append(ct_name)
        bucket = self.ncp_loads.setdefault(host, {})
        for resource, amount in ct.requirements.items():
            bucket[resource] = bucket.get(resource, 0.0) + amount
        for neighbor in self.graph.neighbors(ct_name):
            if neighbor not in self.ct_hosts:
                continue
            tt = self.graph.connecting_tt(ct_name, neighbor)
            assert tt is not None  # neighbours are by definition TT-connected
            self._route_tt(tt)
        self._route_cache.clear()

    def _route_tt(self, tt: TransportTask) -> None:
        """Route ``tt`` between its endpoints' hosts (both must be placed)."""
        host_a = self.ct_hosts[tt.src]
        host_b = self.ct_hosts[tt.dst]
        if host_a == host_b:
            self.tt_routes[tt.name] = ()
            return
        route = widest_path(
            self.network, self.capacities, host_a, host_b, tt.megabits_per_unit, self.link_loads
        )
        if route is None:
            raise InfeasiblePlacementError(
                f"no network path between {host_a!r} and {host_b!r} for TT {tt.name!r}"
            )
        self.tt_routes[tt.name] = route.links
        for link_name in route.links:
            self.link_loads[link_name] = (
                self.link_loads.get(link_name, 0.0) + tt.megabits_per_unit
            )

    def finalize(self) -> AssignmentResult:
        """Build the validated :class:`Placement` and its stable rate."""
        placement = Placement(self.graph, self.ct_hosts, self.tt_routes)
        placement.validate(self.network)
        rate = placement.bottleneck_rate(self.capacities)
        return AssignmentResult(placement, rate, tuple(self.order))


def _pin_initial_cts(state: _ReferenceState) -> None:
    """Algorithm 2 lines 3-5: place pinned CTs (sources/sinks) first."""
    for ct in state.graph.cts:
        if ct.pinned_host is None:
            continue
        if not state.network.has_ncp(ct.pinned_host):
            raise InfeasiblePlacementError(
                f"CT {ct.name!r} pinned to unknown NCP {ct.pinned_host!r}"
            )
        state.ct_hosts[ct.name] = ct.pinned_host
        state.order.append(ct.name)
        bucket = state.ncp_loads.setdefault(ct.pinned_host, {})
        for resource, amount in ct.requirements.items():
            bucket[resource] = bucket.get(resource, 0.0) + amount
    for tt in state.graph.tts:
        if tt.src in state.ct_hosts and tt.dst in state.ct_hosts:
            state._route_tt(tt)
    state._route_cache.clear()


def reference_assign(
    graph: TaskGraph,
    network: Network,
    capacities: CapacityView | None = None,
) -> AssignmentResult:
    """Run the unoptimized Algorithm 2 and return one task assignment path.

    Drop-in signature-compatible with :func:`repro.core.assignment.
    sparcle_assign`; see the module docstring for why both exist.
    """
    caps = capacities if capacities is not None else CapacityView(network)
    state = _ReferenceState(graph, network, caps)
    _pin_initial_cts(state)
    unplaced = [ct.name for ct in graph.cts if ct.name not in state.ct_hosts]
    hosts = list(network.ncp_names)
    while unplaced:
        best: tuple[float, str, str] | None = None  # (gamma, ct, host)
        for ct_name in unplaced:
            gamma, host = state.best_host(ct_name, hosts)
            if best is None or gamma < best[0]:
                best = (gamma, ct_name, host)
        assert best is not None
        g_star, i_star, j_star = best
        if g_star == UNREACHABLE:
            raise InfeasiblePlacementError(
                f"CT {i_star!r} cannot reach its placed reachable CTs from any NCP"
            )
        state.commit(i_star, j_star)
        unplaced.remove(i_star)
    return state.finalize()
