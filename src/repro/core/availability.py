"""Availability analysis under independent element failures (Sec. IV-C/D).

Every NCP and link fails independently with its probability ``Pf_j``.  A
task assignment path *works* only when every element it uses is up, so:

* a single path's availability is ``prod over used elements (1 - Pf)``;
* a BE application with several (possibly overlapping) paths is *available*
  when at least one path works;
* a GR application with paths of rates ``r_1..r_n`` meets its min-rate
  requirement ``R`` exactly when the aggregate rate of the *working* paths
  is at least ``R`` — Eq. (7).

Overlap between paths makes path up/down events dependent, so this module
computes probabilities at the *element* level:

* :func:`any_path_availability` — exact inclusion–exclusion over path
  subsets (events "all elements of these paths are up" intersect cleanly);
* :func:`min_rate_availability` — exact enumeration of the failure states
  of all fallible elements when there are few enough, otherwise a seeded
  Monte-Carlo estimate;
* :func:`min_rate_availability_disjoint` — the paper's Eq.-(7) subset-sum
  form, exact when paths share no elements (used as a cross-check and as
  the fast path for disjoint routings).
"""

from __future__ import annotations

import itertools
import math
from collections.abc import Sequence
from dataclasses import dataclass

import numpy as np

from repro.core.network import Network
from repro.core.placement import Placement
from repro.utils.rng import ensure_rng

#: Above this many fallible elements, exact state enumeration is refused.
MAX_EXACT_ELEMENTS = 22

#: Above this many paths, the disjoint subset-sum form is refused.  The
#: sorted-rate pruning in :func:`min_rate_availability_disjoint` usually
#: collapses the 2^n subset walk long before this, but adversarial rate
#: vectors (all paths needed, none sufficient) stay exponential — refuse
#: loudly instead of hanging the process.
MAX_EXACT_PATHS = 30


@dataclass(frozen=True)
class PathProfile:
    """The availability-relevant view of one task assignment path."""

    elements: frozenset[str]
    rate: float

    @classmethod
    def of(cls, placement: Placement, rate: float) -> "PathProfile":
        """Build a profile from a placement and its allocated rate."""
        return cls(placement.used_elements(), rate)


def path_availability(network: Network, elements: frozenset[str] | Placement) -> float:
    """Probability that every element of one path is up."""
    if isinstance(elements, Placement):
        elements = elements.used_elements()
    probability = 1.0
    for element in elements:
        probability *= 1.0 - network.failure_probability(element)
    return probability


def any_path_availability(
    network: Network, paths: Sequence[frozenset[str] | Placement]
) -> float:
    """P(at least one path fully up), exact via inclusion–exclusion.

    ``P(union of A_s)`` where ``A_s`` = "all elements of path s are up";
    the intersection over a subset of paths is the product of up-
    probabilities over the *union* of their elements, so overlap is handled
    exactly.  Exponential only in the number of paths (small by design —
    the scheduler adds paths one at a time).
    """
    element_sets = [
        p.used_elements() if isinstance(p, Placement) else frozenset(p) for p in paths
    ]
    if not element_sets:
        return 0.0
    total = 0.0
    for size in range(1, len(element_sets) + 1):
        sign = 1.0 if size % 2 == 1 else -1.0
        for combo in itertools.combinations(element_sets, size):
            union: frozenset[str] = frozenset().union(*combo)
            total += sign * path_availability(network, union)
    return min(max(total, 0.0), 1.0)


def _fallible_elements(network: Network, profiles: Sequence[PathProfile]) -> list[str]:
    """Elements used by any path that can actually fail, sorted."""
    used: set[str] = set()
    for profile in profiles:
        used |= profile.elements
    return sorted(e for e in used if network.failure_probability(e) > 0.0)


def rate_distribution(
    network: Network, profiles: Sequence[PathProfile]
) -> dict[float, float]:
    """Exact distribution of the aggregate rate of working paths.

    Enumerates the up/down state of every fallible element (elements with
    ``Pf = 0`` are always up).  Raises when more than
    :data:`MAX_EXACT_ELEMENTS` elements are fallible — use the Monte-Carlo
    estimator then.
    """
    fallible = _fallible_elements(network, profiles)
    if len(fallible) > MAX_EXACT_ELEMENTS:
        raise ValueError(
            f"{len(fallible)} fallible elements exceed the exact-enumeration "
            f"limit of {MAX_EXACT_ELEMENTS}; use min_rate_availability(..., "
            f'method="monte-carlo")'
        )
    up_probability = {e: 1.0 - network.failure_probability(e) for e in fallible}
    distribution: dict[float, float] = {}
    for states in itertools.product((True, False), repeat=len(fallible)):
        state = dict(zip(fallible, states))
        probability = 1.0
        for element, up in state.items():
            probability *= up_probability[element] if up else 1.0 - up_probability[element]
        if probability == 0.0:
            continue
        rate = sum(
            profile.rate
            for profile in profiles
            if all(state.get(e, True) for e in profile.elements)
        )
        distribution[rate] = distribution.get(rate, 0.0) + probability
    return distribution


def min_rate_availability(
    network: Network,
    profiles: Sequence[PathProfile],
    min_rate: float,
    *,
    method: str = "auto",
    rng: int | np.random.Generator | None = 0,
    samples: int = 200_000,
) -> float:
    """``P(aggregate rate of working paths >= min_rate)`` — Eq. (7).

    ``method`` is ``"exact"`` (element-state enumeration), ``"monte-carlo"``
    (seeded sampling), or ``"auto"`` (exact when tractable).  A small
    tolerance absorbs floating-point noise at the threshold so a path whose
    rate *equals* the requirement counts as satisfying it.
    """
    if min_rate < 0:
        raise ValueError(f"min_rate must be non-negative, got {min_rate}")
    if method not in ("auto", "exact", "monte-carlo"):
        raise ValueError(f"unknown method {method!r}")
    if not profiles:
        return 1.0 if min_rate <= 0.0 else 0.0
    tolerance = 1e-9 * max(1.0, min_rate)
    if method == "auto":
        fallible = _fallible_elements(network, profiles)
        method = "exact" if len(fallible) <= MAX_EXACT_ELEMENTS else "monte-carlo"
    if method == "exact":
        distribution = rate_distribution(network, profiles)
        return min(
            1.0,
            sum(p for rate, p in distribution.items() if rate >= min_rate - tolerance),
        )
    if method == "monte-carlo":
        return _min_rate_monte_carlo(network, profiles, min_rate - tolerance, rng, samples)
    raise ValueError(f"unknown method {method!r}")


def _min_rate_monte_carlo(
    network: Network,
    profiles: Sequence[PathProfile],
    threshold: float,
    rng: int | np.random.Generator | None,
    samples: int,
) -> float:
    generator = ensure_rng(rng)
    fallible = _fallible_elements(network, profiles)
    if not fallible:
        total = sum(p.rate for p in profiles)
        return 1.0 if total >= threshold else 0.0
    failure = np.array([network.failure_probability(e) for e in fallible])
    index = {e: k for k, e in enumerate(fallible)}
    # Membership matrix: paths x fallible elements.
    membership = np.zeros((len(profiles), len(fallible)), dtype=bool)
    rates = np.zeros(len(profiles))
    for row, profile in enumerate(profiles):
        rates[row] = profile.rate
        for element in profile.elements:
            if element in index:
                membership[row, index[element]] = True
    up = generator.random((samples, len(fallible))) >= failure  # samples x elements
    # A path works when all of its fallible elements are up.
    works = np.all(up[:, None, :] | ~membership[None, :, :], axis=2)  # samples x paths
    aggregate = works @ rates
    return float(np.mean(aggregate >= threshold))


def min_rate_availability_disjoint(
    up_probabilities: Sequence[float],
    rates: Sequence[float],
    min_rate: float,
) -> float:
    """Eq. (7) in its subset-sum form, assuming element-disjoint paths.

    Sums, over every subset of paths whose rates total at least
    ``min_rate``, the probability that exactly those paths work.  Exact
    when no two paths share a fallible element; an overestimate otherwise
    (shared failures are double-counted as independent).

    The subset walk is pruned on sorted rates: a branch whose committed
    paths already meet the requirement contributes its prefix probability
    in closed form (every completion of the branch works), and a branch
    that cannot reach the requirement even with every remaining path is
    dropped outright.  Typical multipath profiles (a handful of paths,
    each a sizable fraction of the requirement) therefore finish in
    near-linear time; pathological rate vectors remain exponential, so
    more than :data:`MAX_EXACT_PATHS` paths are refused with a clear
    error instead of hanging the process.
    """
    if len(up_probabilities) != len(rates):
        raise ValueError("up_probabilities and rates must have equal length")
    n = len(rates)
    if n > MAX_EXACT_PATHS:
        raise ValueError(
            f"{n} paths exceed the disjoint subset-sum limit of "
            f"{MAX_EXACT_PATHS}; aggregate overlapping paths or use "
            f'min_rate_availability(..., method="monte-carlo")'
        )
    tolerance = 1e-9 * max(1.0, min_rate)
    threshold = min_rate - tolerance
    # Largest rates first makes both prunes bite earliest: the met-branch
    # short-circuit fires near the root, and the unreachable-branch bound
    # (suffix sums) decays fastest.
    order = sorted(range(n), key=lambda k: -rates[k])
    sorted_rates = [rates[k] for k in order]
    sorted_up = [up_probabilities[k] for k in order]
    suffix = [0.0] * (n + 1)
    for k in range(n - 1, -1, -1):
        suffix[k] = suffix[k + 1] + sorted_rates[k]

    def walk(k: int, rate: float, probability: float) -> float:
        if probability == 0.0:
            return 0.0
        if rate >= threshold:
            # Every subset extending this prefix works: the remaining
            # paths' up/down probabilities sum to 1.
            return probability
        if rate + suffix[k] < threshold:
            return 0.0  # even taking every remaining path falls short
        p_up = sorted_up[k]
        return walk(k + 1, rate + sorted_rates[k], probability * p_up) + walk(
            k + 1, rate, probability * (1.0 - p_up)
        )

    if n == 0:
        return 1.0 if 0.0 >= threshold else 0.0
    return min(walk(0, 0.0, 1.0), 1.0)


def paths_needed_for_availability(
    network: Network,
    candidate_paths: Sequence[frozenset[str] | Placement],
    target: float,
) -> int | None:
    """Smallest prefix of ``candidate_paths`` reaching BE availability ``target``.

    Returns ``None`` when even all candidates together fall short.  Mirrors
    the Fig.-3 loop: the scheduler asks for paths one at a time and stops as
    soon as the requested availability is met.
    """
    if not 0.0 <= target <= 1.0:
        raise ValueError(f"target availability must be in [0, 1], got {target}")
    for count in range(1, len(candidate_paths) + 1):
        if any_path_availability(network, candidate_paths[:count]) >= target - 1e-12:
            return count
    return None


def expected_rate(network: Network, profiles: Sequence[PathProfile]) -> float:
    """Expected aggregate processing rate under failures.

    Linearity of expectation makes overlap irrelevant here: each path
    contributes ``rate * P(path up)``.
    """
    return sum(p.rate * path_availability(network, p.elements) for p in profiles)


def availability_with_and_without(
    network: Network, profiles: Sequence[PathProfile], min_rate: float
) -> tuple[float, float]:
    """(exact, disjoint-approximation) min-rate availability pair.

    Convenience for experiments that want to report how much path overlap
    matters; both numbers use the same path rates.
    """
    exact = min_rate_availability(network, profiles, min_rate, method="auto")
    approx = min_rate_availability_disjoint(
        [path_availability(network, p.elements) for p in profiles],
        [p.rate for p in profiles],
        min_rate,
    )
    return exact, approx


def worst_case_paths(profiles: Sequence[PathProfile]) -> float:
    """Aggregate rate when every path works (the failure-free ceiling)."""
    return math.fsum(p.rate for p in profiles)


def single_points_of_failure(
    paths: Sequence[frozenset[str] | Placement],
) -> frozenset[str]:
    """Elements shared by *every* path — each one alone can kill the app.

    For multipath placements this is the fragility headline: adding paths
    only helps availability outside this set.  With pinned sources/sinks
    the pinned hosts (and, on a star, their access links) typically appear
    here, which is exactly why Fig. 10's availability saturates.
    """
    element_sets = [
        p.used_elements() if isinstance(p, Placement) else frozenset(p)
        for p in paths
    ]
    if not element_sets:
        return frozenset()
    common = set(element_sets[0])
    for elements in element_sets[1:]:
        common &= elements
    return frozenset(common)


def availability_ceiling(
    network: Network, paths: Sequence[frozenset[str] | Placement]
) -> float:
    """An upper bound on any-path availability: P(all shared elements up).

    No number of additional paths can push availability above the product
    of the up-probabilities of the single points of failure.
    """
    return path_availability(network, single_points_of_failure(paths))
