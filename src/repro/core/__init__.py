"""SPARCLE's core: application/network models and the scheduling algorithms.

The public surface of the paper's contribution:

* :mod:`repro.core.taskgraph` — stream application DAGs (CTs + TTs);
* :mod:`repro.core.network` — dispersed computing networks (NCPs + links);
* :mod:`repro.core.placement` — task assignment paths, loads, stable rates;
* :mod:`repro.core.routing` — Algorithm 1 (load-aware widest path);
* :mod:`repro.core.arrays` — the CSR-compiled array kernel behind it;
* :mod:`repro.core.assignment` — Algorithm 2 (dynamic-ranking assignment);
* :mod:`repro.core.allocation` — Problem (4) solvers + Eq. (6) prediction;
* :mod:`repro.core.availability` — failure analysis, Eq. (7);
* :mod:`repro.core.scheduler` — the Fig. 3 multi-application control loop;
* :mod:`repro.core.repair` — the online failure-repair loop (extension).
"""

from repro.core.analysis import (
    PlacementSummary,
    UtilizationEntry,
    bottleneck_sensitivity,
    placement_summary,
    utilization_report,
    what_if_capacity,
)
from repro.core.latency import (
    LatencyBreakdown,
    estimated_latency,
    zero_load_latency,
)
from repro.core.allocation import (
    AllocationResult,
    BEApp,
    predict_capacity_factors,
    predicted_view,
    solve_proportional_fairness,
)
from repro.core.assignment import (
    AssignmentResult,
    fixed_placement,
    greedy_assign_with_order,
    sparcle_assign,
)
from repro.core.availability import (
    PathProfile,
    any_path_availability,
    availability_ceiling,
    min_rate_availability,
    min_rate_availability_disjoint,
    path_availability,
    single_points_of_failure,
)
from repro.core.network import (
    NCP,
    Link,
    Network,
    fully_connected_network,
    linear_network,
    star_network,
)
from repro.core.placement import CapacityView, Placement
from repro.core.repair import (
    RepairController,
    RepairEvent,
    RepairOutcome,
    RetryPolicy,
)
from repro.core.arrays import (
    CompiledNetwork,
    compile_network,
    link_residuals,
    link_weights,
    residuals_from_snapshot,
)
from repro.core.routing import (
    RouteResult,
    get_route_kernel,
    hop_shortest_path,
    resolve_route_kernel,
    route_kernel,
    set_route_kernel,
    widest_path,
)
from repro.core.scheduler import (
    BEHealth,
    BERequest,
    Decision,
    FluctuationReport,
    GRHealth,
    GRRequest,
    OutageReport,
    PathRecord,
    ReplanReport,
    SparcleScheduler,
    admit_all_gr,
)
from repro.core.taskgraph import (
    BANDWIDTH,
    CPU,
    MEMORY,
    ComputationTask,
    TaskGraph,
    TransportTask,
    diamond_task_graph,
    linear_task_graph,
    multi_camera_task_graph,
)

__all__ = [
    "AllocationResult",
    "AssignmentResult",
    "BANDWIDTH",
    "BEApp",
    "BEHealth",
    "BERequest",
    "CPU",
    "CapacityView",
    "CompiledNetwork",
    "ComputationTask",
    "Decision",
    "FluctuationReport",
    "GRHealth",
    "GRRequest",
    "LatencyBreakdown",
    "Link",
    "MEMORY",
    "NCP",
    "Network",
    "OutageReport",
    "PathProfile",
    "PathRecord",
    "Placement",
    "PlacementSummary",
    "RepairController",
    "RepairEvent",
    "RepairOutcome",
    "ReplanReport",
    "RetryPolicy",
    "RouteResult",
    "SparcleScheduler",
    "TaskGraph",
    "TransportTask",
    "UtilizationEntry",
    "bottleneck_sensitivity",
    "estimated_latency",
    "placement_summary",
    "utilization_report",
    "what_if_capacity",
    "zero_load_latency",
    "admit_all_gr",
    "any_path_availability",
    "availability_ceiling",
    "compile_network",
    "diamond_task_graph",
    "fixed_placement",
    "fully_connected_network",
    "get_route_kernel",
    "greedy_assign_with_order",
    "hop_shortest_path",
    "link_residuals",
    "link_weights",
    "residuals_from_snapshot",
    "resolve_route_kernel",
    "route_kernel",
    "set_route_kernel",
    "linear_network",
    "linear_task_graph",
    "min_rate_availability",
    "min_rate_availability_disjoint",
    "multi_camera_task_graph",
    "path_availability",
    "predict_capacity_factors",
    "predicted_view",
    "single_points_of_failure",
    "solve_proportional_fairness",
    "sparcle_assign",
    "star_network",
    "widest_path",
]
