"""Placement diagnostics: utilization, bottleneck sensitivity, what-ifs.

The scheduler answers "where should tasks go"; operators then ask "why is
the rate what it is, and what would change it?"  This module answers those
questions for any placement:

* :func:`utilization_report` — per-element, per-resource utilization at a
  given operating rate;
* :func:`bottleneck_sensitivity` — how much the stable rate improves per
  unit of capacity added to each element (zero for non-binding elements);
* :func:`what_if_capacity` — recompute the stable rate under hypothetical
  capacity changes without touching the network;
* :func:`placement_summary` — a one-stop human-readable digest.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.network import Network
from repro.core.placement import CapacityView, Placement
from repro.exceptions import SparcleError
from repro.utils.tables import format_table


@dataclass(frozen=True)
class UtilizationEntry:
    """One element's load picture at a given rate."""

    element: str
    resource: str
    capacity: float
    per_unit_load: float
    utilization: float
    binding: bool


def utilization_report(
    network: Network,
    placement: Placement,
    rate: float,
    *,
    capacities: CapacityView | None = None,
) -> list[UtilizationEntry]:
    """Utilization of every loaded (element, resource) pair at ``rate``.

    Entries are sorted most-utilized first; ``binding`` marks pairs whose
    utilization is within 1e-9 of the maximum.
    """
    if rate < 0:
        raise SparcleError(f"rate must be non-negative, got {rate}")
    caps = capacities if capacities is not None else CapacityView(network)
    entries: list[UtilizationEntry] = []
    peak = 0.0
    raw: list[tuple[str, str, float, float, float]] = []
    for element, bucket in placement.loads().items():
        for resource, load in bucket.items():
            if load <= 0:
                continue
            capacity = caps.capacity(element, resource)
            utilization = rate * load / capacity if capacity > 0 else float("inf")
            peak = max(peak, utilization)
            raw.append((element, resource, capacity, load, utilization))
    for element, resource, capacity, load, utilization in raw:
        entries.append(
            UtilizationEntry(
                element=element,
                resource=resource,
                capacity=capacity,
                per_unit_load=load,
                utilization=utilization,
                binding=utilization >= peak * (1 - 1e-9) and peak > 0,
            )
        )
    entries.sort(key=lambda e: (-e.utilization, e.element, e.resource))
    return entries


def bottleneck_sensitivity(
    network: Network,
    placement: Placement,
    *,
    capacities: CapacityView | None = None,
) -> dict[str, float]:
    """d(stable rate) / d(capacity) for every loaded element.

    For a binding element with per-unit load ``R`` the stable rate is
    ``C/R``, so adding capacity there buys ``1/R`` rate per unit — until the
    next-tightest element binds.  Non-binding elements report 0.  When
    several elements bind simultaneously, each reports its marginal slope
    (improving only one of them does not raise the overall rate; the report
    flags that via multiple non-zero entries).
    """
    caps = capacities if capacities is not None else CapacityView(network)
    rate = placement.bottleneck_rate(caps)
    sensitivities: dict[str, float] = {}
    if not (rate > 0) or rate == float("inf"):
        return sensitivities
    for element, bucket in placement.loads().items():
        slope = 0.0
        for resource, load in bucket.items():
            if load <= 0:
                continue
            if caps.capacity(element, resource) / load <= rate * (1 + 1e-9):
                slope = max(slope, 1.0 / load)
        sensitivities[element] = slope
    return sensitivities


def what_if_capacity(
    network: Network,
    placement: Placement,
    changes: dict[str, dict[str, float]],
    *,
    capacities: CapacityView | None = None,
) -> float:
    """Stable rate if element capacities were set to the given values.

    ``changes`` maps ``element -> {resource: new_capacity}``; untouched
    pairs keep their current (residual) values.  The placement itself is
    held fixed — this answers "is upgrading this link worth it for the
    current deployment", not "what would the scheduler do then".
    """
    caps = capacities if capacities is not None else CapacityView(network)
    view = caps.copy()
    for element, bucket in changes.items():
        for resource, value in bucket.items():
            view.override(element, resource, value)
    return placement.bottleneck_rate(view)


@dataclass
class PlacementSummary:
    """Digest of one placement for logs and notebooks."""

    rate: float
    hosts: dict[str, str]
    routes: dict[str, tuple[str, ...]]
    binding_elements: list[str]
    utilization: list[UtilizationEntry] = field(default_factory=list)

    def to_text(self) -> str:
        """Render as an aligned table."""
        rows = [
            [e.element, e.resource, e.capacity, e.per_unit_load,
             e.utilization, "yes" if e.binding else ""]
            for e in self.utilization
        ]
        table = format_table(
            ["element", "resource", "capacity", "load/unit", "utilization",
             "binding"],
            rows,
            title=f"stable rate: {self.rate:.4f} units/sec",
        )
        return table


def placement_summary(
    network: Network,
    placement: Placement,
    *,
    capacities: CapacityView | None = None,
) -> PlacementSummary:
    """Everything an operator wants to know about one placement."""
    caps = capacities if capacities is not None else CapacityView(network)
    rate = placement.bottleneck_rate(caps)
    report_rate = 0.0 if rate == float("inf") else rate
    return PlacementSummary(
        rate=rate,
        hosts=dict(placement.ct_hosts),
        routes={k: tuple(v) for k, v in placement.tt_routes.items()},
        binding_elements=placement.bottleneck_elements(caps),
        utilization=utilization_report(network, placement, report_rate, capacities=caps),
    )
