"""Dispersed computing network model (Sec. III-B of the paper).

The network is a graph whose vertices are Networked Computing Points (NCPs)
and whose edges are communication links.  Each NCP carries a multi-resource
capacity vector ``C_j^(r)`` (CPU MHz, memory MB, ...); each link carries a
bandwidth capacity ``C_j^(b)`` in Mbps.  Every element has an independent
failure probability ``Pf_j`` used for availability analysis.

Links are undirected by default (bandwidth shared across directions, per the
paper's footnote 2); a directed variant is supported for asymmetric links.
"""

from __future__ import annotations

import itertools
from collections.abc import Iterable, Mapping
from dataclasses import dataclass, field

import networkx as nx

from repro.core.taskgraph import BANDWIDTH, CPU
from repro.exceptions import InvalidNetworkError


@dataclass(frozen=True)
class NCP:
    """A Networked Computing Point: one compute node of the network.

    ``capacities`` maps resource names to capacity in canonical units (CPU in
    MHz, memory in MB).  A zero capacity for a resource means the NCP cannot
    host any CT requiring that resource.
    """

    name: str
    capacities: Mapping[str, float] = field(default_factory=dict)
    failure_probability: float = 0.0

    def __post_init__(self) -> None:
        if not self.name:
            raise InvalidNetworkError("an NCP must have a non-empty name")
        for resource, cap in self.capacities.items():
            if cap < 0:
                raise InvalidNetworkError(
                    f"NCP {self.name!r} has negative capacity for {resource!r}: {cap}"
                )
        if not 0.0 <= self.failure_probability <= 1.0:
            raise InvalidNetworkError(
                f"NCP {self.name!r} failure probability {self.failure_probability} not in [0, 1]"
            )
        object.__setattr__(self, "capacities", dict(self.capacities))

    def capacity(self, resource: str) -> float:
        """Capacity of ``resource`` (0 when the NCP does not provide it)."""
        return self.capacities.get(resource, 0.0)

    def __hash__(self) -> int:
        return hash(("NCP", self.name))


@dataclass(frozen=True)
class Link:
    """An undirected communication link between two NCPs."""

    name: str
    a: str
    b: str
    bandwidth: float
    failure_probability: float = 0.0

    def __post_init__(self) -> None:
        if not self.name:
            raise InvalidNetworkError("a link must have a non-empty name")
        if self.a == self.b:
            raise InvalidNetworkError(f"link {self.name!r} is a self-loop on {self.a!r}")
        if self.bandwidth < 0:
            raise InvalidNetworkError(
                f"link {self.name!r} has negative bandwidth {self.bandwidth}"
            )
        if not 0.0 <= self.failure_probability <= 1.0:
            raise InvalidNetworkError(
                f"link {self.name!r} failure probability {self.failure_probability} not in [0, 1]"
            )

    def endpoints(self) -> frozenset[str]:
        """The two NCP names this link connects."""
        return frozenset((self.a, self.b))

    def other(self, ncp_name: str) -> str:
        """The endpoint opposite ``ncp_name``."""
        if ncp_name == self.a:
            return self.b
        if ncp_name == self.b:
            return self.a
        raise InvalidNetworkError(f"NCP {ncp_name!r} is not an endpoint of link {self.name!r}")

    def __hash__(self) -> int:
        return hash(("Link", self.name))


@dataclass(frozen=True)
class ResidualSnapshot:
    """A cheap, immutable, picklable snapshot of residual capacities.

    Captures one :class:`~repro.core.placement.CapacityView`'s overrides —
    only the ``(element, resource)`` pairs that differ from the raw
    network capacities — as a flat tuple, so snapshots ship to worker
    threads/processes for nothing and thaw back into views in O(overrides)
    without re-validating element names.  Produced by
    ``CapacityView.freeze()``; consumed by ``CapacityView.from_snapshot``.
    """

    network_name: str
    entries: tuple[tuple[str, str, float], ...] = ()

    def __len__(self) -> int:
        return len(self.entries)


class Network:
    """A validated dispersed-computing network graph.

    The topology is immutable; *capacities* are also immutable here — the
    scheduler tracks consumed resources in a separate
    :class:`~repro.core.placement.LoadLedger` so one ``Network`` can be
    shared across experiments and threads.
    """

    def __init__(
        self,
        name: str,
        ncps: Iterable[NCP],
        links: Iterable[Link],
        *,
        directed: bool = False,
    ) -> None:
        self.name = name
        self.directed = directed
        self._ncps: dict[str, NCP] = {}
        for ncp in ncps:
            if ncp.name in self._ncps:
                raise InvalidNetworkError(f"duplicate NCP name {ncp.name!r}")
            self._ncps[ncp.name] = ncp
        self._links: dict[str, Link] = {}
        self._graph = nx.DiGraph() if directed else nx.Graph()
        self._graph.add_nodes_from(self._ncps)
        for link in links:
            if link.name in self._links:
                raise InvalidNetworkError(f"duplicate link name {link.name!r}")
            if link.name in self._ncps:
                raise InvalidNetworkError(f"name {link.name!r} used by both an NCP and a link")
            for endpoint in (link.a, link.b):
                if endpoint not in self._ncps:
                    raise InvalidNetworkError(
                        f"link {link.name!r} references unknown NCP {endpoint!r}"
                    )
            if self._graph.has_edge(link.a, link.b):
                direction = "from" if directed else "between"
                raise InvalidNetworkError(
                    f"parallel links {direction} {link.a!r} "
                    f"{'to' if directed else 'and'} {link.b!r} are not supported"
                )
            self._links[link.name] = link
            self._graph.add_edge(link.a, link.b, link=link)
        if not self._ncps:
            raise InvalidNetworkError("a network needs at least one NCP")
        # The topology is immutable, so adjacency and capacity lookups —
        # both on the widest-path hot path — are memoized lazily.
        self._capacity_cache: dict[tuple[str, str], float] = {}
        self._incident_cache: dict[str, tuple[Link, ...]] = {}
        self._forward_cache: dict[str, tuple[Link, ...]] = {}
        self._backward_cache: dict[str, tuple[Link, ...]] = {}
        self._routing_graph: nx.Graph | nx.DiGraph | None = None

    # ------------------------------------------------------------------
    # Accessors
    # ------------------------------------------------------------------
    @property
    def ncps(self) -> tuple[NCP, ...]:
        """All NCPs, in insertion order."""
        return tuple(self._ncps.values())

    @property
    def links(self) -> tuple[Link, ...]:
        """All links, in insertion order."""
        return tuple(self._links.values())

    @property
    def ncp_names(self) -> tuple[str, ...]:
        """Names of all NCPs, in insertion order."""
        return tuple(self._ncps)

    @property
    def link_names(self) -> tuple[str, ...]:
        """Names of all links, in insertion order."""
        return tuple(self._links)

    def ncp(self, name: str) -> NCP:
        """Look up an NCP by name."""
        try:
            return self._ncps[name]
        except KeyError:
            raise InvalidNetworkError(f"no NCP named {name!r} in {self.name!r}") from None

    def link(self, name: str) -> Link:
        """Look up a link by name."""
        try:
            return self._links[name]
        except KeyError:
            raise InvalidNetworkError(f"no link named {name!r} in {self.name!r}") from None

    def has_ncp(self, name: str) -> bool:
        """Whether an NCP with this name exists."""
        return name in self._ncps

    def element(self, name: str) -> NCP | Link:
        """Look up an element (NCP or link) by name."""
        if name in self._ncps:
            return self._ncps[name]
        if name in self._links:
            return self._links[name]
        raise InvalidNetworkError(f"no element named {name!r} in {self.name!r}")

    def element_names(self) -> tuple[str, ...]:
        """Names of all elements: NCPs then links, insertion order."""
        return tuple(itertools.chain(self._ncps, self._links))

    def link_between(self, a: str, b: str) -> Link | None:
        """The link connecting NCPs ``a`` and ``b``, or ``None``.

        In a directed network only the ``a -> b`` direction matches.
        """
        if self._graph.has_edge(a, b):
            return self._graph.edges[a, b]["link"]
        return None

    def incident_links(self, ncp_name: str) -> tuple[Link, ...]:
        """Links touching ``ncp_name`` (either direction), sorted by name."""
        cached = self._incident_cache.get(ncp_name)
        if cached is None:
            self.ncp(ncp_name)
            touching = [
                link for link in self._links.values() if ncp_name in link.endpoints()
            ]
            cached = tuple(sorted(touching, key=lambda l: l.name))
            self._incident_cache[ncp_name] = cached
        return cached

    def forward_links(self, ncp_name: str) -> tuple[Link, ...]:
        """Links traversable *from* ``ncp_name`` (what routing may use).

        Every incident link in an undirected network; only outgoing links
        (``link.a == ncp_name``) in a directed one.
        """
        if not self.directed:
            return self.incident_links(ncp_name)
        cached = self._forward_cache.get(ncp_name)
        if cached is None:
            self.ncp(ncp_name)
            cached = tuple(
                sorted(
                    (l for l in self._links.values() if l.a == ncp_name),
                    key=lambda l: l.name,
                )
            )
            self._forward_cache[ncp_name] = cached
        return cached

    def backward_links(self, ncp_name: str) -> tuple[Link, ...]:
        """Links traversable *into* ``ncp_name`` (reverse routing).

        Every incident link in an undirected network; only incoming links
        (``link.b == ncp_name``) in a directed one.  Used by the batched
        reverse widest-path trees of Algorithm 2.
        """
        if not self.directed:
            return self.incident_links(ncp_name)
        cached = self._backward_cache.get(ncp_name)
        if cached is None:
            self.ncp(ncp_name)
            cached = tuple(
                sorted(
                    (l for l in self._links.values() if l.b == ncp_name),
                    key=lambda l: l.name,
                )
            )
            self._backward_cache[ncp_name] = cached
        return cached

    def neighbors(self, ncp_name: str) -> list[str]:
        """NCPs adjacent to ``ncp_name`` (either direction), sorted."""
        self.ncp(ncp_name)
        if self.directed:
            adjacent = set(self._graph.successors(ncp_name)) | set(
                self._graph.predecessors(ncp_name)
            )
            return sorted(adjacent)
        return sorted(self._graph.neighbors(ncp_name))

    def routing_graph(self) -> "nx.Graph | nx.DiGraph":
        """The memoized networkx view the hop-count routers search over.

        Edges carry ``link`` (the link *name*) and ``bandwidth`` (the raw
        capacity).  The topology is immutable, so the graph is built once
        per network and reused by every subsequent call — there is no
        topology-change path that could invalidate it, and constructing a
        changed topology means constructing a new :class:`Network` (with
        its own fresh cache).  ``network.routing_graph_build`` /
        ``network.routing_graph_reuse`` count the build-vs-hit traffic so
        the reuse is observable.  Callers must treat the graph as
        read-only.
        """
        from repro.perf import counters

        if self._routing_graph is None:
            counters.incr("network.routing_graph_build")
            graph = nx.DiGraph() if self.directed else nx.Graph()
            for link in self._links.values():
                graph.add_edge(
                    link.a, link.b, link=link.name, bandwidth=link.bandwidth
                )
            graph.add_nodes_from(self._ncps)
            self._routing_graph = graph
        else:
            counters.incr("network.routing_graph_reuse")
        return self._routing_graph

    def is_connected(self) -> bool:
        """Single connected component (weakly connected when directed)."""
        if self.directed:
            return nx.is_weakly_connected(self._graph)
        return nx.is_connected(self._graph)

    def capacity(self, element_name: str, resource: str) -> float:
        """Capacity of ``resource`` on the given NCP or link.

        For links the only meaningful resource is :data:`BANDWIDTH`.
        """
        key = (element_name, resource)
        value = self._capacity_cache.get(key)
        if value is None:
            element = self.element(element_name)
            if isinstance(element, Link):
                value = element.bandwidth if resource == BANDWIDTH else 0.0
            else:
                value = element.capacity(resource)
            self._capacity_cache[key] = value
        return value

    def failure_probability(self, element_name: str) -> float:
        """Failure probability of the given NCP or link."""
        return self.element(element_name).failure_probability

    def resources(self) -> frozenset[str]:
        """All NCP resource types any node provides."""
        return frozenset(
            itertools.chain.from_iterable(ncp.capacities for ncp in self._ncps.values())
        )

    def __repr__(self) -> str:
        return f"Network({self.name!r}, |N|={len(self._ncps)}, |L|={len(self._links)})"


def as_directed(network: Network, *, name: str | None = None) -> Network:
    """A directed twin of an undirected network (paper footnote 2).

    Every undirected link ``l`` becomes two one-way links ``l>`` (a to b)
    and ``l<`` (b to a), each carrying the *full* bandwidth — modelling
    full-duplex links whose directions do not share capacity.  Failure
    probabilities carry over to both directions.
    """
    if network.directed:
        raise InvalidNetworkError(f"network {network.name!r} is already directed")
    links: list[Link] = []
    for link in network.links:
        links.append(
            Link(f"{link.name}>", link.a, link.b, link.bandwidth,
                 failure_probability=link.failure_probability)
        )
        links.append(
            Link(f"{link.name}<", link.b, link.a, link.bandwidth,
                 failure_probability=link.failure_probability)
        )
    return Network(
        name or f"{network.name}-directed", network.ncps, links, directed=True
    )


# ----------------------------------------------------------------------
# Topology builders used across the paper's evaluation
# ----------------------------------------------------------------------
def star_network(
    n_leaves: int = 7,
    *,
    name: str = "star",
    hub_cpu: float = 3000.0,
    leaf_cpu: Iterable[float] | float = 3000.0,
    link_bandwidth: Iterable[float] | float = 10.0,
    link_failure_probability: float = 0.0,
    ncp_failure_probability: float = 0.0,
    extra_capacities: Mapping[str, Iterable[float] | float] | None = None,
) -> Network:
    """A star of ``n_leaves`` NCPs around a hub (``n_leaves + 1`` NCPs total).

    This is the paper's "star computing network with eight NCPs" when
    ``n_leaves=7``.  ``extra_capacities`` adds more resource types (e.g.
    memory) to hub+leaves with broadcast semantics.
    """
    if n_leaves < 1:
        raise InvalidNetworkError("a star needs at least one leaf")
    leaf_cpus = _broadcast(leaf_cpu, n_leaves, "leaf_cpu")
    bandwidths = _broadcast(link_bandwidth, n_leaves, "link_bandwidth")
    extras = {
        resource: _broadcast(values, n_leaves + 1, f"extra_capacities[{resource!r}]")
        for resource, values in (extra_capacities or {}).items()
    }

    def caps(index: int, cpu_value: float) -> dict[str, float]:
        out = {CPU: cpu_value}
        for resource, values in extras.items():
            out[resource] = values[index]
        return out

    ncps = [NCP("hub", caps(0, hub_cpu), failure_probability=ncp_failure_probability)]
    ncps += [
        NCP(f"ncp{k + 1}", caps(k + 1, leaf_cpus[k]), failure_probability=ncp_failure_probability)
        for k in range(n_leaves)
    ]
    links = [
        Link(
            f"l{k + 1}",
            "hub",
            f"ncp{k + 1}",
            bandwidths[k],
            failure_probability=link_failure_probability,
        )
        for k in range(n_leaves)
    ]
    return Network(name, ncps, links)


def linear_network(
    n_ncps: int = 5,
    *,
    name: str = "linear-net",
    cpu: Iterable[float] | float = 3000.0,
    link_bandwidth: Iterable[float] | float = 10.0,
    link_failure_probability: float = 0.0,
    ncp_failure_probability: float = 0.0,
    extra_capacities: Mapping[str, Iterable[float] | float] | None = None,
) -> Network:
    """A chain topology ``ncp1 - ncp2 - ... - ncpN``."""
    if n_ncps < 2:
        raise InvalidNetworkError("a linear network needs at least two NCPs")
    cpus = _broadcast(cpu, n_ncps, CPU)
    bandwidths = _broadcast(link_bandwidth, n_ncps - 1, "link_bandwidth")
    extras = {
        resource: _broadcast(values, n_ncps, f"extra_capacities[{resource!r}]")
        for resource, values in (extra_capacities or {}).items()
    }

    def caps(index: int) -> dict[str, float]:
        out = {CPU: cpus[index]}
        for resource, values in extras.items():
            out[resource] = values[index]
        return out

    ncps = [
        NCP(f"ncp{k + 1}", caps(k), failure_probability=ncp_failure_probability)
        for k in range(n_ncps)
    ]
    links = [
        Link(
            f"l{k + 1}",
            f"ncp{k + 1}",
            f"ncp{k + 2}",
            bandwidths[k],
            failure_probability=link_failure_probability,
        )
        for k in range(n_ncps - 1)
    ]
    return Network(name, ncps, links)


def fully_connected_network(
    n_ncps: int = 5,
    *,
    name: str = "full-net",
    cpu: Iterable[float] | float = 3000.0,
    link_bandwidth: Iterable[float] | float = 10.0,
    link_failure_probability: float = 0.0,
    ncp_failure_probability: float = 0.0,
    extra_capacities: Mapping[str, Iterable[float] | float] | None = None,
) -> Network:
    """A clique topology over ``n_ncps`` NCPs."""
    if n_ncps < 2:
        raise InvalidNetworkError("a fully connected network needs at least two NCPs")
    cpus = _broadcast(cpu, n_ncps, CPU)
    n_links = n_ncps * (n_ncps - 1) // 2
    bandwidths = _broadcast(link_bandwidth, n_links, "link_bandwidth")
    extras = {
        resource: _broadcast(values, n_ncps, f"extra_capacities[{resource!r}]")
        for resource, values in (extra_capacities or {}).items()
    }

    def caps(index: int) -> dict[str, float]:
        out = {CPU: cpus[index]}
        for resource, values in extras.items():
            out[resource] = values[index]
        return out

    ncps = [
        NCP(f"ncp{k + 1}", caps(k), failure_probability=ncp_failure_probability)
        for k in range(n_ncps)
    ]
    links = []
    index = 0
    for i in range(n_ncps):
        for j in range(i + 1, n_ncps):
            links.append(
                Link(
                    f"l{index + 1}",
                    f"ncp{i + 1}",
                    f"ncp{j + 1}",
                    bandwidths[index],
                    failure_probability=link_failure_probability,
                )
            )
            index += 1
    return Network(name, ncps, links)


def _broadcast(value: Iterable[float] | float, count: int, label: str) -> list[float]:
    """Expand a scalar to ``count`` copies, or validate an iterable's length."""
    if isinstance(value, (int, float)):
        return [float(value)] * count
    values = [float(v) for v in value]
    if len(values) != count:
        raise InvalidNetworkError(f"{label} must have {count} entries, got {len(values)}")
    return values
