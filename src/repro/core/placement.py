"""Task assignment paths, load accounting, and stable-rate computation.

A *placement* (one "task assignment path" in the paper's terminology) maps
every CT of an application to an NCP and every TT to the sequence of links
its data crosses.  Sec. IV-A derives the application's stable processing
rate from a placement: modelling the pipeline as a queueing network, the
input rate must not exceed the service rate of the slowest element,

    x  <=  min over elements j, resources r of  C_j^(r) / R_j^(r),

where ``R_j^(r)`` is the per-data-unit load that the placement puts on
element ``j`` for resource ``r`` (the sum of ``a_i^(r)`` over tasks hosted
on ``j``).  Neighbouring CTs placed on the *same* NCP exchange data locally,
so their connecting TT occupies no link and contributes no load — this is
why concentrating chatty CTs can win when bandwidth is scarce.

:class:`CapacityView` holds *residual* capacities.  The network itself is
immutable; every consumer of capacity (multiple paths of one application,
multiple applications, Theorem-3 predictions) works through a view.
"""

from __future__ import annotations

import math
from collections.abc import Iterable, Iterator, Mapping
from dataclasses import dataclass

from repro.core.network import Network, ResidualSnapshot
from repro.core.taskgraph import BANDWIDTH, TaskGraph
from repro.exceptions import PlacementError

#: Per-element, per-resource load vector: ``{element: {resource: per-unit load}}``.
Loads = dict[str, dict[str, float]]


@dataclass(frozen=True)
class Placement:
    """One task assignment path: CT -> NCP and TT -> link sequence.

    ``tt_routes`` maps each TT name to the (ordered) tuple of link names the
    TT is placed on; an empty tuple means the TT's endpoints are co-located
    and the transfer is NCP-internal (free).
    """

    graph: TaskGraph
    ct_hosts: Mapping[str, str]
    tt_routes: Mapping[str, tuple[str, ...]]

    def __post_init__(self) -> None:
        object.__setattr__(self, "ct_hosts", dict(self.ct_hosts))
        object.__setattr__(
            self, "tt_routes", {k: tuple(v) for k, v in self.tt_routes.items()}
        )
        # Memoized load vector: a Placement is deeply immutable, but loads()
        # is called from every consume/starved/bottleneck/rebuild path.
        object.__setattr__(self, "_loads_cache", None)

    # ------------------------------------------------------------------
    # Accessors
    # ------------------------------------------------------------------
    def host(self, ct_name: str) -> str:
        """The NCP hosting ``ct_name``."""
        try:
            return self.ct_hosts[ct_name]
        except KeyError:
            raise PlacementError(f"CT {ct_name!r} is not placed") from None

    def route(self, tt_name: str) -> tuple[str, ...]:
        """The link names hosting ``tt_name`` (empty if co-located)."""
        try:
            return self.tt_routes[tt_name]
        except KeyError:
            raise PlacementError(f"TT {tt_name!r} is not placed") from None

    def used_ncps(self) -> frozenset[str]:
        """NCPs hosting at least one CT."""
        return frozenset(self.ct_hosts.values())

    def used_links(self) -> frozenset[str]:
        """Links hosting at least one TT."""
        return frozenset(l for route in self.tt_routes.values() for l in route)

    def used_elements(self) -> frozenset[str]:
        """All network elements this path depends on (for availability)."""
        return self.used_ncps() | self.used_links()

    # ------------------------------------------------------------------
    # Load accounting and rates
    # ------------------------------------------------------------------
    def loads(self) -> Loads:
        """Per-unit load ``R`` of this path on every touched element.

        NCP entries accumulate every CT resource; link entries accumulate
        TT megabits under the :data:`~repro.core.taskgraph.BANDWIDTH` key.

        The result is computed once and memoized on the (immutable)
        instance; callers must treat the returned mapping as read-only.
        """
        cached: Loads | None = self._loads_cache  # type: ignore[attr-defined]
        if cached is not None:
            return cached
        loads: Loads = {}
        for ct in self.graph.cts:
            host = self.host(ct.name)
            bucket = loads.setdefault(host, {})
            for resource, amount in ct.requirements.items():
                bucket[resource] = bucket.get(resource, 0.0) + amount
        for tt in self.graph.tts:
            for link_name in self.route(tt.name):
                bucket = loads.setdefault(link_name, {})
                bucket[BANDWIDTH] = bucket.get(BANDWIDTH, 0.0) + tt.megabits_per_unit
        object.__setattr__(self, "_loads_cache", loads)
        return loads

    def bottleneck_rate(self, capacities: "CapacityView") -> float:
        """The maximum stable processing rate of this path.

        Returns ``inf`` for a placement that loads nothing (all-zero
        requirements) and ``0.0`` when some element lacks a required
        resource entirely.
        """
        rate = math.inf
        for element, bucket in self.loads().items():
            for resource, load in bucket.items():
                if load <= 0.0:
                    continue
                rate = min(rate, capacities.capacity(element, resource) / load)
        return rate

    def bottleneck_elements(self, capacities: "CapacityView") -> list[str]:
        """Elements whose capacity binds the rate (within a 1e-9 tolerance)."""
        rate = self.bottleneck_rate(capacities)
        if math.isinf(rate):
            return []
        out = []
        for element, bucket in self.loads().items():
            for resource, load in bucket.items():
                if load <= 0.0:
                    continue
                if capacities.capacity(element, resource) / load <= rate * (1 + 1e-9):
                    out.append(element)
                    break
        return sorted(out)

    # ------------------------------------------------------------------
    # Validation
    # ------------------------------------------------------------------
    def validate(self, network: Network) -> None:
        """Raise :class:`PlacementError` unless this placement is coherent.

        Checks: every CT placed on an existing NCP, pinned CTs respected,
        every TT routed, each TT route is a connected path in the network
        whose endpoints are the hosts of the TT's endpoints (and empty iff
        the hosts coincide).
        """
        for ct in self.graph.cts:
            host = self.host(ct.name)
            if not network.has_ncp(host):
                raise PlacementError(f"CT {ct.name!r} placed on unknown NCP {host!r}")
            if ct.pinned_host is not None and host != ct.pinned_host:
                raise PlacementError(
                    f"CT {ct.name!r} is pinned to {ct.pinned_host!r} but placed on {host!r}"
                )
        for tt in self.graph.tts:
            route = self.route(tt.name)
            src_host = self.host(tt.src)
            dst_host = self.host(tt.dst)
            if src_host == dst_host:
                if route:
                    raise PlacementError(
                        f"TT {tt.name!r} endpoints are co-located on {src_host!r} "
                        f"but it is routed over {route}"
                    )
                continue
            if not route:
                raise PlacementError(
                    f"TT {tt.name!r} endpoints are on {src_host!r} and {dst_host!r} "
                    "but it has an empty route"
                )
            current = src_host
            seen_links: set[str] = set()
            for link_name in route:
                link = network.link(link_name)
                if link_name in seen_links:
                    raise PlacementError(f"TT {tt.name!r} route repeats link {link_name!r}")
                seen_links.add(link_name)
                if current not in link.endpoints():
                    raise PlacementError(
                        f"TT {tt.name!r} route is not contiguous at link {link_name!r}"
                    )
                if network.directed and link.a != current:
                    raise PlacementError(
                        f"TT {tt.name!r} traverses link {link_name!r} against "
                        "its direction"
                    )
                current = link.other(current)
            if current != dst_host:
                raise PlacementError(
                    f"TT {tt.name!r} route ends at {current!r}, expected {dst_host!r}"
                )

    def __repr__(self) -> str:
        routes = {name: list(route) for name, route in self.tt_routes.items()}
        return (
            f"Placement({self.graph.name!r}, hosts={dict(self.ct_hosts)}, "
            f"routes={routes})"
        )


def merge_loads(load_list: Iterable[Loads]) -> Loads:
    """Element-wise sum of several per-unit load vectors."""
    total: Loads = {}
    for loads in load_list:
        for element, bucket in loads.items():
            out = total.setdefault(element, {})
            for resource, amount in bucket.items():
                out[resource] = out.get(resource, 0.0) + amount
    return total


class CapacityView:
    """Residual (or predicted) capacities over a network.

    A fresh view exposes the network's raw capacities.  Scheduling code then
    either *consumes* capacity (``consume``: an accepted path at a committed
    rate removes ``rate * load`` from each element) or *scales* it
    (``scaled``: the Theorem-3 priority prediction of Eq. (6) gives a later
    BE application only its fair share of contested elements).
    """

    def __init__(
        self,
        network: Network,
        available: Mapping[str, Mapping[str, float]] | None = None,
    ) -> None:
        self.network = network
        self._available: dict[str, dict[str, float]] = {}
        # Flat (element, resource) -> residual mirror of _available: one
        # dict probe on the capacity() hot path instead of two probes plus
        # a network lookup (the network itself memoizes base capacities).
        self._flat: dict[tuple[str, str], float] = {}
        # Monotonic mutation counter: every residual write bumps it, so
        # derived caches (e.g. the repro.core.arrays residual-bandwidth
        # array) can key on (view, version) instead of re-reading every
        # entry per probe.  Population during construction stays at 0 —
        # the caches key on the instance, which did not exist yet.
        self._version: int = 0
        if available is not None:
            for element, bucket in available.items():
                network.element(element)  # validate names early
                self._available[element] = dict(bucket)
                for resource, value in bucket.items():
                    self._flat[(element, resource)] = value

    # ------------------------------------------------------------------
    @property
    def version(self) -> int:
        """Mutation counter: increments on every residual write.

        Lets derived caches (residual arrays, link-weight vectors) detect
        staleness with one integer compare instead of rereading overrides.
        """
        return self._version

    def iter_overrides(self) -> Iterator[tuple[str, str, float]]:
        """Iterate ``(element, resource, residual)`` overrides, unordered.

        Only the entries that differ from the raw network capacities are
        yielded — the same set :meth:`freeze` snapshots (unsorted here:
        this is the O(overrides) hot path for array compilation).
        """
        for (element, resource), value in self._flat.items():
            yield element, resource, value

    def capacity(self, element_name: str, resource: str) -> float:
        """Residual capacity of ``resource`` on ``element_name``."""
        value = self._flat.get((element_name, resource))
        if value is not None:
            return value
        return self.network.capacity(element_name, resource)

    def _set(self, element_name: str, resource: str, value: float) -> None:
        value = max(0.0, value)
        self._available.setdefault(element_name, {})[resource] = value
        self._flat[(element_name, resource)] = value
        self._version += 1

    def consume(self, loads: Loads, rate: float, *, clamp: bool = False) -> None:
        """Subtract ``rate * load`` from every element the loads touch.

        Raises if the consumption would drive any residual below a small
        negative tolerance (callers must only commit feasible rates);
        tiny numerical overshoot is clamped to zero.  ``clamp=True``
        suppresses the check and floors residuals at zero — for advisory
        bookkeeping views whose entries were not admitted against each
        other (e.g. the scheduler's FCFS ablation ledger).
        """
        if rate < 0:
            raise PlacementError(f"cannot consume at negative rate {rate}")
        for element, bucket in loads.items():
            for resource, load in bucket.items():
                if load <= 0.0:
                    continue
                residual = self.capacity(element, resource) - rate * load
                if not clamp and residual < -1e-6 * max(
                    1.0, self.network.capacity(element, resource)
                ):
                    raise PlacementError(
                        f"consuming {rate} units/s of {resource!r} on {element!r} "
                        f"exceeds residual capacity by {-residual}"
                    )
                self._set(element, resource, residual)

    def release(self, loads: Loads, rate: float) -> None:
        """Return previously consumed capacity (inverse of :meth:`consume`).

        Residuals are capped at the raw network capacity so that releasing
        more than was consumed cannot mint capacity.
        """
        if rate < 0:
            raise PlacementError(f"cannot release at negative rate {rate}")
        for element, bucket in loads.items():
            for resource, load in bucket.items():
                if load <= 0.0:
                    continue
                raw = self.network.capacity(element, resource)
                self._set(element, resource, min(raw, self.capacity(element, resource) + rate * load))

    def scaled(self, factors: Mapping[str, float]) -> "CapacityView":
        """A copy with per-element multiplicative factors applied.

        ``factors`` maps element names to a multiplier in ``[0, 1]`` (the
        Eq. (6) priority share); elements not listed keep their residual.
        All resources of a scaled element are scaled alike, matching the
        paper's per-NCP/per-link prediction.
        """
        view = self.copy()
        for element, factor in factors.items():
            if not 0.0 <= factor <= 1.0 + 1e-12:
                raise PlacementError(f"prediction factor for {element!r} must be in [0,1]")
            resources = set(self.network.resources()) | {BANDWIDTH}
            for resource in resources:
                current = view.capacity(element, resource)
                if current > 0.0:
                    view._set(element, resource, current * factor)
        return view

    def override(self, element_name: str, resource: str, value: float) -> None:
        """Set the residual capacity of one (element, resource) pair.

        Unlike :meth:`consume`/:meth:`release` this is an absolute
        assignment, used for what-if analysis and capacity fluctuation
        events; it may exceed the raw network capacity (a hypothetical
        upgrade) or drop to zero (an outage).
        """
        if value < 0:
            raise PlacementError(
                f"capacity for {element_name!r}/{resource!r} must be non-negative"
            )
        self.network.element(element_name)  # validate the name
        self._available.setdefault(element_name, {})[resource] = value
        self._flat[(element_name, resource)] = value
        self._version += 1

    def copy(self) -> "CapacityView":
        """An independent deep copy of this view."""
        return CapacityView(self.network, self._available)

    def freeze(self) -> ResidualSnapshot:
        """An immutable, picklable snapshot of this view's overrides.

        The snapshot records only the residuals that differ from the raw
        network capacities, so it is cheap to take, ship to worker
        threads/processes, and thaw with :meth:`from_snapshot`.
        """
        return ResidualSnapshot(
            network_name=self.network.name,
            entries=tuple(
                (element, resource, value)
                for (element, resource), value in sorted(self._flat.items())
            ),
        )

    @classmethod
    def from_snapshot(
        cls, network: Network, snapshot: ResidualSnapshot
    ) -> "CapacityView":
        """Thaw a :meth:`freeze` snapshot back into a mutable view.

        ``network`` must be the (possibly re-pickled) network the snapshot
        was frozen from; element names are trusted rather than re-validated,
        which is what makes per-request thawing cheap on the gateway's
        parallel evaluation path.
        """
        if snapshot.network_name != network.name:
            raise PlacementError(
                f"snapshot of network {snapshot.network_name!r} cannot thaw "
                f"against {network.name!r}"
            )
        view = cls(network)
        for element, resource, value in snapshot.entries:
            view._available.setdefault(element, {})[resource] = value
            view._flat[(element, resource)] = value
        return view

    def snapshot(self) -> dict[str, dict[str, float]]:
        """The residual overrides as plain dicts (for logging/serializing)."""
        return {e: dict(b) for e, b in self._available.items()}

    def __repr__(self) -> str:
        return f"CapacityView({self.network.name!r}, overrides={len(self._available)})"
