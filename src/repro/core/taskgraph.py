"""Stream-processing application model (Sec. III-A of the paper).

An application is a directed acyclic graph whose vertices are *computation
tasks* (CTs) and whose edges are *transport tasks* (TTs).  Each CT carries a
resource-requirement vector ``a_i^(r)`` (resources needed to process one data
unit, e.g. CPU megacycles or MB of memory per unit); each TT carries the
number of megabits ``a_i^(b)`` that must cross a link per data unit.

Source CTs (no incoming TT) model data sources such as cameras, and sink CTs
(no outgoing TT) model result consumers.  Both are typically *pinned* to a
specific NCP of the computing network and may have zero resource
requirements, exactly as footnote 1 of the paper allows.
"""

from __future__ import annotations

import itertools
from collections.abc import Iterable, Mapping
from dataclasses import dataclass, field
from enum import Enum

import networkx as nx

from repro.exceptions import InvalidTaskGraphError

#: Canonical name of the CPU resource on NCPs.
CPU = "cpu"
#: Canonical name of the memory resource on NCPs.
MEMORY = "memory"
#: Canonical name of the bandwidth resource on links.
BANDWIDTH = "bandwidth"


class TaskRole(Enum):
    """Structural role of a computation task inside its task graph."""

    SOURCE = "source"
    COMPUTE = "compute"
    SINK = "sink"


@dataclass(frozen=True)
class ComputationTask:
    """A computation task (CT): one vertex of the application DAG.

    Parameters
    ----------
    name:
        Unique identifier within the task graph.
    requirements:
        Per-data-unit resource needs, ``{resource: amount}`` — e.g.
        ``{"cpu": 9880.0}`` for 9880 megacycles per image.  May be empty for
        pure source/sink tasks.
    pinned_host:
        NCP name this CT must be placed on (data sources and result
        consumers have predetermined hosts), or ``None`` if the scheduler is
        free to choose.
    """

    name: str
    requirements: Mapping[str, float] = field(default_factory=dict)
    pinned_host: str | None = None

    def __post_init__(self) -> None:
        if not self.name:
            raise InvalidTaskGraphError("a CT must have a non-empty name")
        for resource, amount in self.requirements.items():
            if amount < 0:
                raise InvalidTaskGraphError(
                    f"CT {self.name!r} has negative requirement for {resource!r}: {amount}"
                )
        # Freeze the mapping so the dataclass is hashable and safe to share.
        object.__setattr__(self, "requirements", dict(self.requirements))

    def requirement(self, resource: str) -> float:
        """Per-unit amount of ``resource`` needed (0 when not required)."""
        return self.requirements.get(resource, 0.0)

    def __hash__(self) -> int:  # requirements dict excluded on purpose
        return hash(("CT", self.name))

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, ComputationTask):
            return NotImplemented
        return (
            self.name == other.name
            and self.requirements == other.requirements
            and self.pinned_host == other.pinned_host
        )


@dataclass(frozen=True)
class TransportTask:
    """A transport task (TT): one edge of the application DAG.

    ``megabits_per_unit`` is ``a^(b)`` from the paper — how many megabits
    must be moved across every link hosting this TT for each data unit.
    """

    name: str
    src: str
    dst: str
    megabits_per_unit: float

    def __post_init__(self) -> None:
        if not self.name:
            raise InvalidTaskGraphError("a TT must have a non-empty name")
        if self.src == self.dst:
            raise InvalidTaskGraphError(f"TT {self.name!r} is a self-loop on {self.src!r}")
        if self.megabits_per_unit < 0:
            raise InvalidTaskGraphError(
                f"TT {self.name!r} has negative size {self.megabits_per_unit}"
            )

    def __hash__(self) -> int:
        return hash(("TT", self.name))


class TaskGraph:
    """A validated stream-processing application DAG.

    The graph is immutable after construction; all derived structure
    (reachability, per-pair TT sets) is computed eagerly and cached, because
    the assignment algorithm queries it inside its inner loop.
    """

    def __init__(
        self,
        name: str,
        cts: Iterable[ComputationTask],
        tts: Iterable[TransportTask],
    ) -> None:
        self.name = name
        self._cts: dict[str, ComputationTask] = {}
        for ct in cts:
            if ct.name in self._cts:
                raise InvalidTaskGraphError(f"duplicate CT name {ct.name!r}")
            self._cts[ct.name] = ct
        self._tts: dict[str, TransportTask] = {}
        self._graph = nx.DiGraph()
        self._graph.add_nodes_from(self._cts)
        for tt in tts:
            if tt.name in self._tts:
                raise InvalidTaskGraphError(f"duplicate TT name {tt.name!r}")
            if tt.name in self._cts:
                raise InvalidTaskGraphError(f"name {tt.name!r} used by both a CT and a TT")
            for endpoint in (tt.src, tt.dst):
                if endpoint not in self._cts:
                    raise InvalidTaskGraphError(
                        f"TT {tt.name!r} references unknown CT {endpoint!r}"
                    )
            if self._graph.has_edge(tt.src, tt.dst):
                raise InvalidTaskGraphError(
                    f"parallel TTs between {tt.src!r} and {tt.dst!r} are not supported"
                )
            self._tts[tt.name] = tt
            self._graph.add_edge(tt.src, tt.dst, tt=tt)
        if len(self._cts) == 0:
            raise InvalidTaskGraphError("a task graph needs at least one CT")
        if not nx.is_directed_acyclic_graph(self._graph):
            cycle = nx.find_cycle(self._graph)
            raise InvalidTaskGraphError(f"task graph contains a cycle: {cycle}")
        self._sources = tuple(
            n for n in nx.topological_sort(self._graph) if self._graph.in_degree(n) == 0
        )
        self._sinks = tuple(
            n for n in nx.topological_sort(self._graph) if self._graph.out_degree(n) == 0
        )
        self._descendants = {n: frozenset(nx.descendants(self._graph, n)) for n in self._graph}
        self._tts_between_cache: dict[tuple[str, str], frozenset[TransportTask]] = {}

    # ------------------------------------------------------------------
    # Basic accessors
    # ------------------------------------------------------------------
    @property
    def cts(self) -> tuple[ComputationTask, ...]:
        """All computation tasks, in insertion order."""
        return tuple(self._cts.values())

    @property
    def tts(self) -> tuple[TransportTask, ...]:
        """All transport tasks, in insertion order."""
        return tuple(self._tts.values())

    @property
    def sources(self) -> tuple[str, ...]:
        """Names of CTs with no incoming TT (data sources)."""
        return self._sources

    @property
    def sinks(self) -> tuple[str, ...]:
        """Names of CTs with no outgoing TT (result consumers)."""
        return self._sinks

    def ct(self, name: str) -> ComputationTask:
        """Look up a CT by name."""
        try:
            return self._cts[name]
        except KeyError:
            raise InvalidTaskGraphError(f"no CT named {name!r} in {self.name!r}") from None

    def tt(self, name: str) -> TransportTask:
        """Look up a TT by name."""
        try:
            return self._tts[name]
        except KeyError:
            raise InvalidTaskGraphError(f"no TT named {name!r} in {self.name!r}") from None

    def has_ct(self, name: str) -> bool:
        """Whether a CT with this name exists."""
        return name in self._cts

    def role(self, ct_name: str) -> TaskRole:
        """Structural role of ``ct_name``: source, sink, or compute."""
        self.ct(ct_name)
        if ct_name in self._sources:
            return TaskRole.SOURCE
        if ct_name in self._sinks:
            return TaskRole.SINK
        return TaskRole.COMPUTE

    def topological_order(self) -> list[str]:
        """CT names in a deterministic topological order."""
        return list(nx.lexicographical_topological_sort(self._graph))

    # ------------------------------------------------------------------
    # Structure queries used by Algorithm 2
    # ------------------------------------------------------------------
    def neighbors(self, ct_name: str) -> list[str]:
        """CTs adjacent to ``ct_name`` in either direction."""
        self.ct(ct_name)
        return sorted(
            set(self._graph.predecessors(ct_name)) | set(self._graph.successors(ct_name))
        )

    def connecting_tt(self, a: str, b: str) -> TransportTask | None:
        """The TT directly between CTs ``a`` and ``b`` (either direction)."""
        if self._graph.has_edge(a, b):
            return self._graph.edges[a, b]["tt"]
        if self._graph.has_edge(b, a):
            return self._graph.edges[b, a]["tt"]
        return None

    def is_reachable(self, a: str, b: str) -> bool:
        """Whether there is a directed path ``a -> b`` or ``b -> a``."""
        return b in self._descendants[a] or a in self._descendants[b]

    def is_downstream(self, a: str, b: str) -> bool:
        """Whether data flows from ``a`` towards ``b`` (``b`` is a descendant)."""
        self.ct(a)
        self.ct(b)
        return b in self._descendants[a]

    def reachable_cts(self, ct_name: str) -> frozenset[str]:
        """All CTs connected to ``ct_name`` by a directed path (any direction).

        This is the ``nu_i`` candidate set of Algorithm 2 before intersecting
        with the already-placed set.
        """
        self.ct(ct_name)
        ancestors = {n for n, desc in self._descendants.items() if ct_name in desc}
        return frozenset(self._descendants[ct_name] | ancestors)

    def tts_between(self, a: str, b: str) -> frozenset[TransportTask]:
        """``G(i, i')``: the TTs lying on directed paths between ``a`` and ``b``.

        For neighbours this is the single connecting TT; for a reachable
        non-adjacent pair it is every TT appearing on at least one directed
        path between them.  Algorithm 2 (line 12) picks the cheapest member
        of this set when estimating the link-side bottleneck.
        """
        key = (a, b) if a <= b else (b, a)
        cached = self._tts_between_cache.get(key)
        if cached is not None:
            return cached
        if b in self._descendants[a]:
            upstream, downstream = a, b
        elif a in self._descendants[b]:
            upstream, downstream = b, a
        else:
            self._tts_between_cache[key] = frozenset()
            return frozenset()
        on_path = {
            self._graph.edges[u, v]["tt"]
            for u, v in self._graph.edges
            if (u == upstream or u in self._descendants[upstream])
            and (v == downstream or downstream in self._descendants[v])
        }
        result = frozenset(on_path)
        self._tts_between_cache[key] = result
        return result

    # ------------------------------------------------------------------
    # Aggregates
    # ------------------------------------------------------------------
    def resources(self) -> frozenset[str]:
        """All NCP resource types any CT of this graph requires."""
        return frozenset(
            itertools.chain.from_iterable(ct.requirements for ct in self._cts.values())
        )

    def total_ct_requirement(self, resource: str) -> float:
        """Sum of ``resource`` requirement over all CTs (per data unit)."""
        return sum(ct.requirement(resource) for ct in self._cts.values())

    def total_tt_megabits(self) -> float:
        """Sum of TT sizes over all TTs (megabits per data unit)."""
        return sum(tt.megabits_per_unit for tt in self._tts.values())

    def scaled(self, name: str, *, ct_factor: float = 1.0, tt_factor: float = 1.0) -> "TaskGraph":
        """A copy with all CT requirements and TT sizes scaled.

        Used by workload generators to move a scenario between the
        NCP-bottleneck, link-bottleneck, and balanced regimes without
        changing the graph shape.
        """
        if ct_factor < 0 or tt_factor < 0:
            raise InvalidTaskGraphError("scale factors must be non-negative")
        cts = [
            ComputationTask(
                ct.name,
                {r: v * ct_factor for r, v in ct.requirements.items()},
                pinned_host=ct.pinned_host,
            )
            for ct in self._cts.values()
        ]
        tts = [
            TransportTask(tt.name, tt.src, tt.dst, tt.megabits_per_unit * tt_factor)
            for tt in self._tts.values()
        ]
        return TaskGraph(name, cts, tts)

    def with_pins(self, pins: Mapping[str, str], name: str | None = None) -> "TaskGraph":
        """A copy with the given CTs pinned to hosts (``{ct: ncp}``)."""
        for ct_name in pins:
            self.ct(ct_name)
        cts = [
            ComputationTask(
                ct.name,
                ct.requirements,
                pinned_host=pins.get(ct.name, ct.pinned_host),
            )
            for ct in self._cts.values()
        ]
        return TaskGraph(name or self.name, cts, self.tts)

    def __len__(self) -> int:
        return len(self._cts)

    def __repr__(self) -> str:
        return (
            f"TaskGraph({self.name!r}, |C|={len(self._cts)}, |T|={len(self._tts)}, "
            f"sources={list(self._sources)}, sinks={list(self._sinks)})"
        )


# ----------------------------------------------------------------------
# Standard task graphs from the paper
# ----------------------------------------------------------------------
def linear_task_graph(
    n_compute: int = 4,
    *,
    name: str = "linear",
    cpu_per_ct: Iterable[float] | float = 100.0,
    megabits_per_tt: Iterable[float] | float = 1.0,
    extra_requirements: Mapping[str, Iterable[float]] | None = None,
) -> TaskGraph:
    """The linear task graph of Fig. 7(a).

    ``data source -> CT_1 -> ... -> CT_n -> consumer``, with ``n_compute``
    compute CTs between a zero-cost pinned-free source and sink.  ``cpu_per_ct``
    and ``megabits_per_tt`` may be scalars (uniform) or per-task iterables.
    """
    if n_compute < 1:
        raise InvalidTaskGraphError("a linear task graph needs at least one compute CT")
    cpu = _broadcast(cpu_per_ct, n_compute, "cpu_per_ct")
    bits = _broadcast(megabits_per_tt, n_compute + 1, "megabits_per_tt")
    extras = {
        resource: _broadcast(values, n_compute, f"extra_requirements[{resource!r}]")
        for resource, values in (extra_requirements or {}).items()
    }
    cts = [ComputationTask("source", {})]
    for k in range(n_compute):
        reqs: dict[str, float] = {CPU: cpu[k]}
        for resource, values in extras.items():
            reqs[resource] = values[k]
        cts.append(ComputationTask(f"ct{k + 1}", reqs))
    cts.append(ComputationTask("sink", {}))
    names = [ct.name for ct in cts]
    tts = [
        TransportTask(f"tt{k + 1}", names[k], names[k + 1], bits[k])
        for k in range(len(names) - 1)
    ]
    return TaskGraph(name, cts, tts)


def diamond_task_graph(
    *,
    name: str = "diamond",
    cpu_per_ct: Iterable[float] | float = 100.0,
    megabits_per_tt: Iterable[float] | float = 1.0,
    extra_requirements: Mapping[str, Iterable[float]] | None = None,
) -> TaskGraph:
    """The diamond task graph of Fig. 7(b): 8 CTs and 14 TTs.

    ``CT1`` (source) fans out to the middle layer ``CT2..CT5`` (4 TTs); the
    middle layer fans in to the two aggregators ``CT6`` and ``CT7``
    (4 + 4 TTs); both aggregators feed the consumer ``CT8`` (2 TTs) — 14 TTs
    total, matching the paper's figure.
    """
    n_compute = 6  # ct2..ct7 are compute; ct1 is the source, ct8 the consumer
    cpu = _broadcast(cpu_per_ct, n_compute, "cpu_per_ct")
    bits = _broadcast(megabits_per_tt, 14, "megabits_per_tt")
    extras = {
        resource: _broadcast(values, n_compute, f"extra_requirements[{resource!r}]")
        for resource, values in (extra_requirements or {}).items()
    }

    def reqs(k: int) -> dict[str, float]:
        out: dict[str, float] = {CPU: cpu[k]}
        for resource, values in extras.items():
            out[resource] = values[k]
        return out

    cts = [ComputationTask("ct1", {})]
    cts += [ComputationTask(f"ct{k + 2}", reqs(k)) for k in range(n_compute)]
    cts.append(ComputationTask("ct8", {}))
    edges = (
        [("ct1", f"ct{m}") for m in (2, 3, 4, 5)]
        + [(f"ct{m}", "ct6") for m in (2, 3, 4, 5)]
        + [(f"ct{m}", "ct7") for m in (2, 3, 4, 5)]
        + [("ct6", "ct8"), ("ct7", "ct8")]
    )
    tts = [
        TransportTask(f"tt{k + 1}", src, dst, bits[k]) for k, (src, dst) in enumerate(edges)
    ]
    return TaskGraph(name, cts, tts)


def diamond_chain_task_graph(
    n_diamonds: int = 4,
    *,
    name: str = "diamond-chain",
    cpu_per_ct: Iterable[float] | float = 100.0,
    megabits_per_tt: Iterable[float] | float = 1.0,
) -> TaskGraph:
    """A chain of ``n_diamonds`` fork/join diamonds between source and sink.

    Each diamond ``k`` forks the previous stage into two parallel compute CTs
    (``fork{k}a``/``fork{k}b``) that rejoin at ``join{k}``; ``join{k}`` feeds
    the next diamond, and the last one feeds the sink.  The result is a deep
    graph with ``3 * n_diamonds`` compute CTs and ``4 * n_diamonds + 1`` TTs
    — the "deep pipeline" shape used by the dense scalability benchmarks.
    """
    if n_diamonds < 1:
        raise InvalidTaskGraphError("a diamond chain needs at least one diamond")
    n_compute = 3 * n_diamonds
    cpu = _broadcast(cpu_per_ct, n_compute, "cpu_per_ct")
    bits = _broadcast(megabits_per_tt, 4 * n_diamonds + 1, "megabits_per_tt")
    cts = [ComputationTask("source", {})]
    tts: list[TransportTask] = []
    prev = "source"
    for k in range(1, n_diamonds + 1):
        fork_a, fork_b, join = f"fork{k}a", f"fork{k}b", f"join{k}"
        base = 3 * (k - 1)
        cts.append(ComputationTask(fork_a, {CPU: cpu[base]}))
        cts.append(ComputationTask(fork_b, {CPU: cpu[base + 1]}))
        cts.append(ComputationTask(join, {CPU: cpu[base + 2]}))
        edge_base = 4 * (k - 1)
        tts.append(TransportTask(f"tt{edge_base + 1}", prev, fork_a, bits[edge_base]))
        tts.append(TransportTask(f"tt{edge_base + 2}", prev, fork_b, bits[edge_base + 1]))
        tts.append(TransportTask(f"tt{edge_base + 3}", fork_a, join, bits[edge_base + 2]))
        tts.append(TransportTask(f"tt{edge_base + 4}", fork_b, join, bits[edge_base + 3]))
        prev = join
    cts.append(ComputationTask("sink", {}))
    tts.append(TransportTask(f"tt{4 * n_diamonds + 1}", prev, "sink", bits[-1]))
    return TaskGraph(name, cts, tts)


def multi_camera_task_graph(*, name: str = "multi-camera") -> TaskGraph:
    """The Fig. 1 example: two camera sources, detection, classification.

    ``CT1``/``CT2`` are cameras, ``CT3`` detects objects from both views,
    ``CT4`` classifies each object, ``CT5`` consumes the results.  The
    requirement values are illustrative (the paper gives none for Fig. 1).
    """
    cts = [
        ComputationTask("camera1", {}),
        ComputationTask("camera2", {}),
        ComputationTask("detect", {CPU: 8000.0}),
        ComputationTask("classify", {CPU: 5000.0}),
        ComputationTask("consumer", {}),
    ]
    tts = [
        TransportTask("tt1", "camera1", "detect", 24.8),
        TransportTask("tt2", "camera2", "detect", 24.8),
        TransportTask("tt3", "detect", "classify", 1.5),
        TransportTask("tt4", "classify", "consumer", 0.09),
    ]
    return TaskGraph(name, cts, tts)


def _broadcast(value: Iterable[float] | float, count: int, label: str) -> list[float]:
    """Expand a scalar to ``count`` copies, or validate an iterable's length."""
    if isinstance(value, (int, float)):
        return [float(value)] * count
    values = [float(v) for v in value]
    if len(values) != count:
        raise InvalidTaskGraphError(f"{label} must have {count} entries, got {len(values)}")
    return values
