"""SPARCLE's multi-application control loop (Fig. 3 of the paper).

Applications arrive over time and are admitted (or rejected) one at a time;
placements of already-admitted applications never change (migration is
assumed prohibitively expensive), but Best-Effort *rates* are re-optimized
on every arrival.

Guaranteed-Rate (GR) applications
    reserve capacity exclusively.  On arrival, task assignment paths are
    found one at a time with Algorithm 2 against the GR-residual view; each
    path reserves ``min(path rate, requested rate)`` — reserving beyond the
    guarantee would only starve later applications — and paths keep being
    added until the failure-free aggregate reaches the guarantee and the
    Eq.-(7) min-rate availability meets the request (accept), or the path
    budget/network is exhausted (reject, releasing reservations).

Best-Effort (BE) applications
    share whatever the GR reservations leave.  Before placing application
    ``J``, the scheduler *predicts* its fair share of every contested
    element via Theorem 3 / Eq. (6) and hands Algorithm 2 the predicted
    view — so the placement an app receives is (approximately) independent
    of its arrival position.  Paths are added until the requested
    availability is met; finally Problem (4) is re-solved over all admitted
    BE applications for the exact rates.
"""

from __future__ import annotations

import warnings
from collections.abc import Callable, Sequence
from dataclasses import dataclass, field

from repro.core.allocation import (
    AllocationResult,
    BEApp,
    predicted_view,
    solve_proportional_fairness,
)
from repro.core.assignment import AssignmentResult, sparcle_assign
from repro.core.availability import (
    PathProfile,
    any_path_availability,
    min_rate_availability,
)
from repro.core.network import Network, ResidualSnapshot
from repro.core.placement import CapacityView, Loads, Placement
from repro.core.taskgraph import BANDWIDTH, TaskGraph
from repro.exceptions import (
    AdmissionError,
    InfeasiblePlacementError,
    PlacementError,
    SparcleError,
    StaleProposalError,
)
from repro.perf import tracing
from repro.perf.metrics import get_metrics

#: Signature of a task-assignment algorithm pluggable into the scheduler.
Assigner = Callable[[TaskGraph, Network, CapacityView], AssignmentResult]

#: Rates below this are useless in practice and fail admission.
MIN_USEFUL_RATE = 1e-9


@dataclass(frozen=True)
class BERequest:
    """A Best-Effort application request.

    ``availability`` is the optional requested probability that at least
    one path is working; ``None`` means a single path suffices.
    """

    app_id: str
    graph: TaskGraph
    priority: float = 1.0
    availability: float | None = None
    max_paths: int = 4

    def __post_init__(self) -> None:
        if self.priority <= 0:
            raise AdmissionError(f"BE app {self.app_id!r} needs a positive priority")
        if self.availability is not None and not 0.0 <= self.availability <= 1.0:
            raise AdmissionError(
                f"BE app {self.app_id!r} availability must be in [0, 1]"
            )
        if self.max_paths < 1:
            raise AdmissionError(f"BE app {self.app_id!r} needs max_paths >= 1")


@dataclass(frozen=True)
class GRRequest:
    """A Guaranteed-Rate application request.

    The application needs rate ``min_rate`` for at least the
    ``min_rate_availability`` fraction of time (e.g. 2 images/sec in 90% of
    the time).
    """

    app_id: str
    graph: TaskGraph
    min_rate: float
    min_rate_availability: float = 0.0
    max_paths: int = 5

    def __post_init__(self) -> None:
        if self.min_rate <= 0:
            raise AdmissionError(f"GR app {self.app_id!r} needs a positive min_rate")
        if not 0.0 <= self.min_rate_availability <= 1.0:
            raise AdmissionError(
                f"GR app {self.app_id!r} min-rate availability must be in [0, 1]"
            )
        if self.max_paths < 1:
            raise AdmissionError(f"GR app {self.app_id!r} needs max_paths >= 1")


@dataclass(frozen=True)
class Decision:
    """Outcome of one admission attempt."""

    app_id: str
    kind: str  # "BE" or "GR"
    accepted: bool
    placements: tuple[Placement, ...] = ()
    path_rates: tuple[float, ...] = ()
    availability: float | None = None
    reason: str = ""

    @property
    def total_rate(self) -> float:
        """Aggregate rate over all admitted paths."""
        return sum(self.path_rates)


@dataclass(frozen=True)
class AdmissionProposal:
    """A candidate admission outcome, not yet committed to any scheduler.

    Produced by :func:`evaluate_admission` (and by
    :meth:`SparcleScheduler.evaluate`); carries everything
    :meth:`SparcleScheduler.commit` needs to turn the proposal into an
    admitted application — or to detect that the world moved on since the
    proposal was computed (optimistic-concurrency revalidation in the
    admission gateway).
    """

    request: "BERequest | GRRequest"
    kind: str  # "BE" or "GR"
    accepted: bool
    placements: tuple[Placement, ...] = ()
    path_rates: tuple[float, ...] = ()
    availability: float | None = None
    reason: str = ""

    @property
    def app_id(self) -> str:
        """The application id the proposal is for."""
        return self.request.app_id

    @property
    def total_rate(self) -> float:
        """Aggregate rate over all proposed paths."""
        return sum(self.path_rates)

    def used_elements(self) -> frozenset[str]:
        """Every network element any proposed path depends on."""
        out: set[str] = set()
        for placement in self.placements:
            out |= placement.used_elements()
        return frozenset(out)


@dataclass(frozen=True)
class AdmissionSnapshot:
    """Frozen, picklable admission context for out-of-band evaluation.

    Captures exactly what :func:`evaluate_admission` needs to reproduce the
    scheduler's view of the world at one instant: the GR-residual
    capacities, the admitted BE tenants (for the Theorem-3 prediction), and
    the FCFS ledger used by the no-prediction ablation.  Workers evaluating
    against a snapshot never touch live scheduler state.
    """

    residual: ResidualSnapshot
    tenants: tuple[tuple[float, tuple[Placement, ...]], ...] = ()
    use_prediction: bool = True
    fcfs: ResidualSnapshot | None = None


@dataclass
class _PlacedBE:
    request: BERequest
    placements: tuple[Placement, ...]
    predicted_rates: tuple[float, ...] = ()
    # Per-path activity flag, parallel to ``placements``.  A path crossing a
    # down element is *suspended* (False): its placement maps are preserved
    # (no migration) but it carries no traffic and is excluded from the
    # Problem-(4) allocation until every element it uses is back up.
    active: list[bool] = field(default_factory=list)

    def __post_init__(self) -> None:
        if not self.active:
            self.active = [True] * len(self.placements)


@dataclass
class _PlacedGR:
    request: GRRequest
    placements: tuple[Placement, ...]
    path_rates: tuple[float, ...]
    # Per-path activity flag (see _PlacedBE.active); suspended GR paths
    # release their reservations back to the residual view.
    active: list[bool] = field(default_factory=list)
    # Failure-free aggregate rate at admission time: the repair loop never
    # reserves beyond it, which is what keeps post-repair aggregates
    # bracketed by the pre-failure rate.
    baseline_rate: float = 0.0

    def __post_init__(self) -> None:
        if not self.active:
            self.active = [True] * len(self.placements)
        if not self.baseline_rate:
            self.baseline_rate = sum(self.path_rates)

    def active_rate(self) -> float:
        """Aggregate reserved rate over currently active paths."""
        return sum(r for r, a in zip(self.path_rates, self.active) if a)


@dataclass(frozen=True)
class PathRecord:
    """Read-only view of one admitted task assignment path."""

    placement: Placement
    rate: float
    active: bool


@dataclass(frozen=True)
class GRHealth:
    """Whether one GR app's guarantee currently holds over its active paths."""

    app_id: str
    active_rate: float
    availability: float
    rate_met: bool
    availability_met: bool

    @property
    def ok(self) -> bool:
        """True when both the rate and the availability guarantees hold."""
        return self.rate_met and self.availability_met


@dataclass(frozen=True)
class BEHealth:
    """Whether one BE app's requested availability holds over active paths."""

    app_id: str
    active_paths: int
    availability: float | None
    availability_met: bool

    @property
    def ok(self) -> bool:
        """True when at least one path is active and availability is met."""
        return self.active_paths > 0 and self.availability_met


@dataclass(frozen=True)
class ReplanReport:
    """Outcome of re-placing one GR application after a network change."""

    app_id: str
    readmitted: bool
    old_total_rate: float
    new_total_rate: float
    moved_cts: int
    decision: "Decision"


@dataclass(frozen=True)
class FluctuationReport:
    """Outcome of a permanent capacity change (Fig. 3's dynamic network)."""

    changes: dict[str, dict[str, float]]
    gr_new_rates: dict[str, float]
    gr_guarantee_met: dict[str, bool]
    throttle_factors: dict[str, float]

    @property
    def violated_guarantees(self) -> list[str]:
        """GR apps whose min-rate guarantee the fluctuation breaks."""
        return sorted(
            app_id for app_id, met in self.gr_guarantee_met.items() if not met
        )


@dataclass(frozen=True)
class OutageReport:
    """Per-application QoE under a hypothetical element outage."""

    down_elements: frozenset[str]
    gr_surviving_rate: dict[str, float]
    gr_guarantee_met: dict[str, bool]
    be_alive: dict[str, bool]
    be_rates: dict[str, float]

    @property
    def violated_guarantees(self) -> list[str]:
        """GR apps whose min-rate guarantee the outage breaks."""
        return sorted(
            app_id for app_id, met in self.gr_guarantee_met.items() if not met
        )


@dataclass
class SchedulerState:
    """A read-only snapshot of what the scheduler has admitted."""

    be_apps: tuple[str, ...]
    gr_apps: tuple[str, ...]
    gr_total_rate: float
    residual: dict[str, dict[str, float]] = field(default_factory=dict)


def _evaluate_gr(
    request: GRRequest,
    network: Network,
    working: CapacityView,
    assigner: Assigner,
) -> AdmissionProposal:
    """Pure GR admission evaluation: the Algorithm-2 path loop + Eq. (7)."""
    tr = tracing.get_tracer()
    placements: list[Placement] = []
    rates: list[float] = []
    reason = ""
    accepted = False
    availability = 0.0
    for _ in range(request.max_paths):
        try:
            result = assigner(request.graph, network, working)
        except InfeasiblePlacementError as error:
            reason = f"assignment infeasible: {error}"
            break
        if result.rate <= MIN_USEFUL_RATE:
            reason = "no residual capacity for another path"
            break
        # Reserve at most the guaranteed rate per path: a path faster
        # than the guarantee satisfies it alone, and reserving the
        # surplus would only starve later applications.
        rate = min(result.rate, request.min_rate)
        if tr.enabled:
            tr.event(
                "admission.path",
                app_id=request.app_id,
                kind="GR",
                path_index=len(placements),
                rate=rate,
                raw_rate=result.rate,
                bottleneck_elements=result.placement.bottleneck_elements(
                    working
                ),
            )
        placements.append(result.placement)
        rates.append(rate)
        working.consume(result.placement.loads(), rate)
        profiles = [
            PathProfile.of(p, r) for p, r in zip(placements, rates)
        ]
        availability = min_rate_availability(
            network, profiles, request.min_rate
        )
        # Admission needs (a) the failure-free aggregate rate to reach
        # the guarantee (otherwise a 0%-availability request would be
        # vacuously accepted at any rate) and (b) Eq. (7) to meet the
        # requested min-rate availability.
        total_rate = sum(rates)
        if tr.enabled:
            tr.event(
                "admission.availability_check",
                app_id=request.app_id,
                paths=len(placements),
                total_rate=total_rate,
                min_rate=request.min_rate,
                availability=availability,
                required_availability=request.min_rate_availability,
            )
        if (
            total_rate >= request.min_rate - 1e-12
            and availability >= request.min_rate_availability - 1e-12
        ):
            accepted = True
            break
    if accepted:
        return AdmissionProposal(
            request, "GR", True, tuple(placements), tuple(rates), availability
        )
    if not reason:
        total_rate = sum(rates)
        if total_rate < request.min_rate:
            reason = (
                f"aggregate rate {total_rate:.4f} < required "
                f"{request.min_rate} with {request.max_paths} paths"
            )
        else:
            reason = (
                f"min-rate availability {availability:.4f} < "
                f"{request.min_rate_availability} with {request.max_paths} paths"
            )
    return AdmissionProposal(request, "GR", False, reason=reason)


def _evaluate_be(
    request: BERequest,
    network: Network,
    view: CapacityView,
    assigner: Assigner,
) -> AdmissionProposal:
    """Pure BE admission evaluation against a (predicted or FCFS) view."""
    tr = tracing.get_tracer()
    placements: list[Placement] = []
    predicted_rates: list[float] = []
    reason = ""
    accepted = False
    availability: float | None = None
    target = request.availability
    for _ in range(request.max_paths):
        try:
            result = assigner(request.graph, network, view)
        except InfeasiblePlacementError as error:
            reason = f"assignment infeasible: {error}"
            break
        if result.rate <= MIN_USEFUL_RATE:
            reason = "no predicted capacity for another path"
            break
        if tr.enabled:
            tr.event(
                "admission.path",
                app_id=request.app_id,
                kind="BE",
                path_index=len(placements),
                rate=result.rate,
                raw_rate=result.rate,
                bottleneck_elements=result.placement.bottleneck_elements(
                    view
                ),
            )
        placements.append(result.placement)
        predicted_rates.append(result.rate)
        view.consume(result.placement.loads(), result.rate)
        if target is None:
            accepted = True
            break
        availability = any_path_availability(network, placements)
        if tr.enabled:
            tr.event(
                "admission.availability_check",
                app_id=request.app_id,
                paths=len(placements),
                availability=availability,
                required_availability=target,
            )
        if availability >= target - 1e-12:
            accepted = True
            break
    if accepted:
        return AdmissionProposal(
            request,
            "BE",
            True,
            tuple(placements),
            tuple(predicted_rates),
            availability,
        )
    if not reason:
        reached = availability if availability is not None else 0.0
        reason = (
            f"availability {reached:.4f} < {target} "
            f"with {request.max_paths} paths"
        )
    return AdmissionProposal(request, "BE", False, reason=reason)


def evaluate_admission(
    request: BERequest | GRRequest,
    network: Network,
    view: CapacityView,
    *,
    assigner: Assigner = sparcle_assign,
) -> AdmissionProposal:
    """Evaluate one admission request without touching any scheduler state.

    This is the side-effect-free half of the Fig.-3 admit path: candidate
    task assignment paths are found with ``assigner`` against ``view`` (a
    *private* working copy — it is consumed in place as paths are added,
    so pass a copy, a thawed snapshot, or a predicted view, never a live
    residual), and the request's rate/availability targets decide
    acceptance.  The returned :class:`AdmissionProposal` is inert: nothing
    is reserved until :meth:`SparcleScheduler.commit` applies it.

    Because evaluation only reads the network (immutable) and mutates its
    own view, many evaluations can run concurrently — the admission
    gateway fans batches of these out over worker threads or processes.
    """
    if isinstance(request, GRRequest):
        return _evaluate_gr(request, network, view, assigner)
    if isinstance(request, BERequest):
        return _evaluate_be(request, network, view, assigner)
    raise AdmissionError(f"unsupported request type {type(request).__name__!r}")


def evaluate_against_snapshot(
    request: BERequest | GRRequest,
    network: Network,
    snapshot: AdmissionSnapshot,
    *,
    assigner: Assigner = sparcle_assign,
) -> AdmissionProposal:
    """Evaluate one request against a frozen :class:`AdmissionSnapshot`.

    Rebuilds the view the live scheduler would have used — the thawed GR
    residual for GR requests; the Theorem-3 predicted view (or the FCFS
    ledger for the no-prediction ablation) for BE requests — and runs
    :func:`evaluate_admission`.  Safe to call from worker threads and
    processes: the snapshot is immutable and the thawed views are private.
    """
    base = CapacityView.from_snapshot(network, snapshot.residual)
    if isinstance(request, GRRequest):
        return evaluate_admission(request, network, base, assigner=assigner)
    if snapshot.use_prediction:
        tenants = [
            (priority, list(placements))
            for priority, placements in snapshot.tenants
        ]
        view = predicted_view(base, request.priority, tenants)
    elif snapshot.fcfs is not None:
        view = CapacityView.from_snapshot(network, snapshot.fcfs)
    else:
        view = base
    return evaluate_admission(request, network, view, assigner=assigner)


class SparcleScheduler:
    """Admission control + placement + allocation for one network.

    ``assigner`` defaults to Algorithm 2 but any function with the
    :data:`Assigner` signature can be substituted (the Fig. 13/14
    experiments plug the baselines in here).
    """

    def __init__(
        self,
        network: Network,
        *,
        assigner: Assigner = sparcle_assign,
        allocation_method: str = "auto",
        use_prediction: bool = True,
    ) -> None:
        self.network = network
        self.assigner = assigner
        self.allocation_method = allocation_method
        # Theorem-3 / Eq. (6) capacity prediction for arriving BE apps.
        # Disabling it (ablation A3) makes placements first-come-first-
        # served: early arrivals grab the best spots regardless of priority.
        self.use_prediction = use_prediction
        # Permanent capacity fluctuations: element -> resource -> value.
        self._capacity_overrides: dict[str, dict[str, float]] = {}
        # Elements currently down (transient outages, repair loop).
        self._down: set[str] = set()
        # Attached online repair controller, if any (see repro.core.repair).
        self._repair_controller = None
        # Residual view after GR reservations; BE apps share this.
        self._gr_residual = CapacityView(network)
        # FCFS bookkeeping for the no-prediction ablation: BE apps consume
        # their predicted rates here so later arrivals see leftovers only.
        self._fcfs_view = CapacityView(network)
        self._be: list[_PlacedBE] = []
        self._gr: list[_PlacedGR] = []
        self._decisions: list[Decision] = []
        # External reservations: capacity consumed on behalf of tenants
        # this scheduler does not manage (cross-shard apps reserved by a
        # ShardCoordinator, or apps adopted from an event log after a warm
        # start).  tag -> ((loads, rate), ...); replayed by the residual
        # rebuilds so local withdrawals cannot mint externally-held
        # capacity back.
        self._external: dict[str, tuple[tuple[Loads, float], ...]] = {}

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def decisions(self) -> tuple[Decision, ...]:
        """Every admission decision, in arrival order."""
        return tuple(self._decisions)

    def state(self) -> SchedulerState:
        """Snapshot of admitted apps and the GR-residual capacities."""
        return SchedulerState(
            be_apps=tuple(p.request.app_id for p in self._be),
            gr_apps=tuple(p.request.app_id for p in self._gr),
            gr_total_rate=sum(p.active_rate() for p in self._gr),
            residual=self._gr_residual.snapshot(),
        )

    def export_decisions(self) -> list[dict]:
        """The decision log as JSON-serializable records (audit trail).

        One record per admission attempt, in arrival order, with the full
        placement of accepted applications — enough to replay or post-hoc
        audit every scheduling choice.
        """
        records = []
        for index, decision in enumerate(self._decisions):
            records.append(
                {
                    "sequence": index,
                    "app_id": decision.app_id,
                    "kind": decision.kind,
                    "accepted": decision.accepted,
                    "reason": decision.reason,
                    "availability": decision.availability,
                    "path_rates": list(decision.path_rates),
                    "placements": [
                        {
                            "ct_hosts": dict(p.ct_hosts),
                            "tt_routes": {
                                k: list(v) for k, v in p.tt_routes.items()
                            },
                        }
                        for p in decision.placements
                    ],
                }
            )
        return records

    def gr_decisions(self) -> list[Decision]:
        """Decisions for GR submissions only."""
        return [d for d in self._decisions if d.kind == "GR"]

    def _observe_decision(self, decision: Decision) -> None:
        """Report one admission outcome to the observability layer."""
        tr = tracing.get_tracer()
        if tr.enabled:
            tr.event(
                "admission.decision",
                app_id=decision.app_id,
                kind=decision.kind,
                accepted=decision.accepted,
                reason=decision.reason,
                paths=len(decision.placements),
                total_rate=decision.total_rate,
                availability=decision.availability,
            )
        metrics = get_metrics()
        metrics.incr(
            "scheduler.decisions",
            kind=decision.kind,
            accepted=str(decision.accepted).lower(),
        )
        if decision.accepted:
            metrics.set_gauge(
                "scheduler.admitted_rate",
                decision.total_rate,
                app=decision.app_id,
                kind=decision.kind,
            )

    # ------------------------------------------------------------------
    # Admission: evaluate (pure) / commit (state change)
    # ------------------------------------------------------------------
    def _be_admission_view(self, request: BERequest) -> CapacityView:
        """The view a BE request is evaluated against (predicted or FCFS)."""
        if self.use_prediction:
            tenants = [
                (placed.request.priority, list(placed.placements))
                for placed in self._be
            ]
            return predicted_view(self._gr_residual, request.priority, tenants)
        # FCFS ablation: see only what earlier BE arrivals left behind.
        return self._fcfs_view.copy()

    def evaluate(self, request: "BERequest | GRRequest") -> AdmissionProposal:
        """Evaluate one request against the current state, mutating nothing.

        The pure half of :meth:`submit_gr`/:meth:`submit_be`: candidate
        paths are found against a private copy of the relevant view, and
        the returned :class:`AdmissionProposal` reserves nothing until
        :meth:`commit` applies it.  Raises for app ids already admitted.
        """
        if self._known(request.app_id):
            raise AdmissionError(f"app id {request.app_id!r} already submitted")
        if isinstance(request, GRRequest):
            view = self._gr_residual.copy()
        elif isinstance(request, BERequest):
            view = self._be_admission_view(request)
        else:
            raise AdmissionError(
                f"unsupported request type {type(request).__name__!r}"
            )
        return evaluate_admission(
            request, self.network, view, assigner=self.assigner
        )

    def admission_snapshot(self) -> AdmissionSnapshot:
        """Freeze the current admission context for out-of-band evaluation.

        The snapshot is immutable and picklable; hand it (with the
        network) to :func:`evaluate_against_snapshot` in worker threads or
        processes.  Proposals computed against a snapshot must be
        revalidated at commit time (``commit(..., revalidate=True)``)
        because the live residuals may have moved since.
        """
        fcfs = None if self.use_prediction else self._fcfs_view.freeze()
        return AdmissionSnapshot(
            residual=self._gr_residual.freeze(),
            tenants=tuple(
                (placed.request.priority, tuple(placed.placements))
                for placed in self._be
            ),
            use_prediction=self.use_prediction,
            fcfs=fcfs,
        )

    def residual_snapshot(self) -> ResidualSnapshot:
        """Freeze the live GR-residual view (see ``CapacityView.freeze``).

        The cheap, immutable, bit-exact capture of the scheduler's
        capacity state — what the sharded control plane logs after every
        commit and compares after a warm start.
        """
        return self._gr_residual.freeze()

    def fcfs_snapshot(self) -> ResidualSnapshot:
        """Freeze the FCFS bookkeeping view (no-prediction ablation ledger)."""
        return self._fcfs_view.freeze()

    def restore_residual(
        self,
        residual: ResidualSnapshot,
        *,
        fcfs: ResidualSnapshot | None = None,
    ) -> None:
        """Overwrite the capacity views from frozen snapshots (warm start).

        The physical half of log replay: a restarted shard thaws the
        residual state its event log recorded instead of re-running
        admission.  Tenant bookkeeping is *not* restored here — adopt the
        logged applications with :meth:`reserve_external` (``charge=False``)
        so rebuilds keep accounting for their capacity.
        """
        self._gr_residual = CapacityView.from_snapshot(self.network, residual)
        if fcfs is not None:
            self._fcfs_view = CapacityView.from_snapshot(self.network, fcfs)
        else:
            self._fcfs_view = CapacityView(self.network)

    def external_tags(self) -> tuple[str, ...]:
        """Tags of currently-held external reservations, insertion order."""
        return tuple(self._external)

    def external_consumptions(
        self, tag: str
    ) -> tuple[tuple[Loads, float], ...]:
        """The ``(loads, rate)`` pairs held under one external tag."""
        try:
            return self._external[tag]
        except KeyError:
            raise AdmissionError(f"no external reservation {tag!r}") from None

    def reserve_external(
        self,
        tag: str,
        consumptions: Sequence[tuple[Loads, float]],
        *,
        charge: bool = True,
    ) -> None:
        """Reserve capacity on behalf of an externally-managed tenant.

        ``consumptions`` is a sequence of ``(loads, rate)`` pairs (one per
        placement path).  With ``charge=True`` the live residuals are
        consumed atomically — :class:`~repro.exceptions.PlacementError`
        if the reservation does not fit, in which case nothing changes.
        ``charge=False`` only *registers* the reservation (the residual
        view already reflects it, e.g. after :meth:`restore_residual`),
        so later rebuilds keep subtracting it.  The tag behaves like an
        admitted app id: duplicates are rejected and :meth:`withdraw`
        releases it.
        """
        if self._known(tag):
            raise AdmissionError(f"app id {tag!r} already submitted")
        held = tuple((loads, rate) for loads, rate in consumptions)
        if charge:
            working = self._gr_residual.copy()
            for loads, rate in held:
                working.consume(loads, rate)
            self._gr_residual = working
            for loads, rate in held:
                self._fcfs_view.consume(loads, rate, clamp=True)
        self._external[tag] = held

    def commit(
        self, proposal: AdmissionProposal, *, revalidate: bool = False
    ) -> Decision:
        """Apply one proposal: reserve capacity, record and log the decision.

        With ``revalidate=True`` (the optimistic-concurrency path used by
        the admission gateway for proposals evaluated against a stale
        snapshot) an *accepted* GR proposal is first re-checked against
        the live residuals and Eq. (7): if reserving its paths would
        oversubscribe any element, or the proposal no longer meets the
        request's rate/availability targets, :class:`StaleProposalError`
        is raised and nothing changes — the caller re-queues and
        re-evaluates.  Rejections commit unconditionally: capacity only
        shrinks between evaluation and commit, so a request rejected
        against the (staler, richer) snapshot view would be rejected
        against the live view too.
        """
        request = proposal.request
        if self._known(request.app_id):
            raise AdmissionError(f"app id {request.app_id!r} already submitted")
        if proposal.kind == "GR":
            decision = self._commit_gr(proposal, revalidate)
        elif proposal.kind == "BE":
            decision = self._commit_be(proposal)
        else:
            raise AdmissionError(f"unsupported proposal kind {proposal.kind!r}")
        self._decisions.append(decision)
        self._observe_decision(decision)
        return decision

    def _commit_gr(
        self, proposal: AdmissionProposal, revalidate: bool
    ) -> Decision:
        request = proposal.request
        if not proposal.accepted:
            return Decision(
                request.app_id, "GR", False, reason=proposal.reason
            )
        working = self._gr_residual.copy()
        try:
            for placement, rate in zip(proposal.placements, proposal.path_rates):
                working.consume(placement.loads(), rate)
        except PlacementError as error:
            if revalidate:
                raise StaleProposalError(
                    f"GR proposal for {request.app_id!r} no longer fits the "
                    f"live residuals: {error}"
                ) from error
            raise
        if revalidate:
            # Re-check the admission conditions (Eq. (7) + the aggregate
            # guarantee) against what the proposal would actually reserve.
            profiles = [
                PathProfile.of(p, r)
                for p, r in zip(proposal.placements, proposal.path_rates)
            ]
            availability = min_rate_availability(
                self.network, profiles, request.min_rate
            )
            if (
                proposal.total_rate < request.min_rate - 1e-12
                or availability < request.min_rate_availability - 1e-12
            ):
                raise StaleProposalError(
                    f"GR proposal for {request.app_id!r} fails revalidation: "
                    f"rate {proposal.total_rate:.4f} / availability "
                    f"{availability:.4f}"
                )
        self._gr_residual = working
        for placement, rate in zip(proposal.placements, proposal.path_rates):
            self._fcfs_view.consume(placement.loads(), rate, clamp=True)
        self._gr.append(
            _PlacedGR(request, proposal.placements, proposal.path_rates)
        )
        return Decision(
            request.app_id,
            "GR",
            True,
            proposal.placements,
            proposal.path_rates,
            proposal.availability,
        )

    def _commit_be(self, proposal: AdmissionProposal) -> Decision:
        request = proposal.request
        if not proposal.accepted:
            return Decision(
                request.app_id, "BE", False, reason=proposal.reason
            )
        self._be.append(
            _PlacedBE(request, proposal.placements, proposal.path_rates)
        )
        if not self.use_prediction:
            for placement, rate in zip(proposal.placements, proposal.path_rates):
                self._fcfs_view.consume(placement.loads(), rate, clamp=True)
        return Decision(
            request.app_id,
            "BE",
            True,
            proposal.placements,
            proposal.path_rates,
            proposal.availability,
        )

    # ------------------------------------------------------------------
    # GR admission
    # ------------------------------------------------------------------
    def submit_gr(self, request: GRRequest) -> Decision:
        """Admit (reserving capacity) or reject a Guaranteed-Rate app."""
        return self.commit(self.evaluate(request))

    # ------------------------------------------------------------------
    # BE admission
    # ------------------------------------------------------------------
    def submit_be(self, request: BERequest) -> Decision:
        """Place a Best-Effort app (Theorem-3 prediction + availability loop)."""
        return self.commit(self.evaluate(request))

    # ------------------------------------------------------------------
    # Exact BE allocation (step 4 of Fig. 3)
    # ------------------------------------------------------------------
    def allocate_be(self) -> AllocationResult:
        """Solve Problem (4) for all admitted BE apps on the GR residual.

        Called after any batch of arrivals; the returned per-path rates are
        the rates the applications actually receive.  A later GR
        reservation (or capacity fluctuation) may have drained an element a
        BE path crosses to zero — such paths are *starved* and carry zero
        rate; an application whose every path is starved reports rate 0 and
        is excluded from the log-utility optimization (which needs strictly
        positive rates).
        """
        if not self._be:
            raise AdmissionError("no admitted BE applications to allocate")

        def starved(loads: Loads) -> bool:
            for element, bucket in loads.items():
                for resource, load in bucket.items():
                    if load > 0 and self._gr_residual.capacity(element, resource) <= 0:
                        return True
            return False

        apps: list[BEApp] = []
        zero_apps: list[_PlacedBE] = []
        for placed in self._be:
            # loads() is memoized on the placement, so the per-element
            # starvation sweep reuses one load vector per path instead of
            # rebuilding it from the task graph on every allocate_be call.
            # Suspended paths (element outages) are excluded outright.
            surviving = tuple(
                p
                for p, active in zip(placed.placements, placed.active)
                if active and not starved(p.loads())
            )
            if surviving:
                apps.append(
                    BEApp(placed.request.app_id, placed.request.priority, surviving)
                )
            else:
                zero_apps.append(placed)
        if not apps:
            return AllocationResult(
                app_rates={p.request.app_id: 0.0 for p in zero_apps},
                path_rates={
                    p.request.app_id: (0.0,) * len(p.placements)
                    for p in zero_apps
                },
                utility=float("-inf"),
                solver="starved",
            )
        allocation = solve_proportional_fairness(
            apps, self._gr_residual, method=self.allocation_method
        )
        for placed in zero_apps:
            allocation.app_rates[placed.request.app_id] = 0.0
            allocation.path_rates[placed.request.app_id] = (0.0,) * len(
                placed.placements
            )
        return allocation

    def be_rate(self, app_id: str) -> float:
        """Convenience: the currently allocated total rate of one BE app."""
        allocation = self.allocate_be()
        try:
            return allocation.app_rates[app_id]
        except KeyError:
            raise AdmissionError(f"no admitted BE app {app_id!r}") from None

    # ------------------------------------------------------------------
    # Lifecycle: departures and outages
    # ------------------------------------------------------------------
    def withdraw(self, app_id: str) -> None:
        """Remove an admitted application, releasing its capacity.

        GR reservations return to the shared pool immediately; BE rates are
        re-derived on the next :meth:`allocate_be`.  Unknown ids raise.
        """
        for index, placed in enumerate(self._gr):
            if placed.request.app_id == app_id:
                del self._gr[index]
                # Rebuild (rather than incrementally release) so that any
                # capacity fluctuations applied since admission are
                # respected — releasing against the raw network capacities
                # could mint capacity an override has taken away.
                self._rebuild_gr_residual()
                self._rebuild_fcfs_view()
                return
        for index, placed in enumerate(self._be):
            if placed.request.app_id == app_id:
                del self._be[index]
                self._rebuild_fcfs_view()
                return
        if app_id in self._external:
            del self._external[app_id]
            self._rebuild_gr_residual()
            self._rebuild_fcfs_view()
            return
        raise AdmissionError(f"no admitted app {app_id!r} to withdraw")

    def _fresh_view(self) -> CapacityView:
        """A view of the *current* raw capacities (fluctuations applied).

        Elements currently down contribute zero capacity, so paths found
        against this view (or the residuals derived from it) route around
        the outage.
        """
        view = CapacityView(self.network)
        for element, bucket in self._capacity_overrides.items():
            for resource, value in bucket.items():
                view.override(element, resource, value)
        if self._down:
            resources = set(self.network.resources()) | {BANDWIDTH}
            for element in self._down:
                for resource in resources:
                    if view.capacity(element, resource) > 0:
                        view.override(element, resource, 0.0)
        return view

    def _rebuild_gr_residual(self) -> None:
        """Recompute the GR residual from current capacities + reservations.

        Only *active* paths hold reservations: a path suspended by an
        element outage has released its capacity back to the pool.
        """
        view = self._fresh_view()
        for placed_gr in self._gr:
            for placement, rate, active in zip(
                placed_gr.placements, placed_gr.path_rates, placed_gr.active
            ):
                if active:
                    view.consume(placement.loads(), rate, clamp=True)
        for consumptions in self._external.values():
            for loads, rate in consumptions:
                view.consume(loads, rate, clamp=True)
        self._gr_residual = view

    def _rebuild_fcfs_view(self) -> None:
        """Recompute the FCFS bookkeeping from the remaining tenants."""
        view = self._fresh_view()
        for placed_gr in self._gr:
            for placement, rate, active in zip(
                placed_gr.placements, placed_gr.path_rates, placed_gr.active
            ):
                if active:
                    view.consume(placement.loads(), rate, clamp=True)
        for placed_be in self._be:
            for placement, rate, active in zip(
                placed_be.placements, placed_be.predicted_rates, placed_be.active
            ):
                if active:
                    view.consume(placement.loads(), rate, clamp=True)
        for consumptions in self._external.values():
            for loads, rate in consumptions:
                view.consume(loads, rate, clamp=True)
        self._fcfs_view = view

    def apply_capacity_change(
        self, changes: dict[str, dict[str, float]]
    ) -> "FluctuationReport":
        """Handle a permanent capacity fluctuation (the paper's future work).

        ``changes`` maps ``element -> {resource: new_capacity}``.  Admitted
        placements never migrate; instead:

        1. every GR path crossing an element whose reservations now exceed
           the new capacity is *throttled* — its reserved rate shrinks by
           the element's over-subscription factor (the min over the path's
           elements), so the post-change reservations are feasible again;
        2. the GR residual and bookkeeping views are rebuilt, so BE rates
           re-solved by :meth:`allocate_be` reflect the new world;
        3. the report lists each GR app's new aggregate rate and whether
           its guarantee survived (violated apps stay admitted — evicting
           or re-placing them is the operator's call, e.g. via
           :meth:`withdraw` and a fresh submission).
        """
        for element, bucket in changes.items():
            self.network.element(element)
            for resource, value in bucket.items():
                if value < 0:
                    raise AdmissionError(
                        f"capacity for {element}/{resource} must be non-negative"
                    )
                self._capacity_overrides.setdefault(element, {})[resource] = value

        # Per-(element, resource) GR usage under current reservations.
        usage: dict[tuple[str, str], float] = {}
        for placed_gr in self._gr:
            for placement, rate, is_active in zip(
                placed_gr.placements, placed_gr.path_rates, placed_gr.active
            ):
                if not is_active:
                    continue
                for element, bucket in placement.loads().items():
                    for resource, load in bucket.items():
                        if load > 0:
                            key = (element, resource)
                            usage[key] = usage.get(key, 0.0) + rate * load
        fresh = self._fresh_view()
        shrink: dict[tuple[str, str], float] = {}
        for key, used in usage.items():
            capacity = fresh.capacity(*key)
            if used > capacity + 1e-12:
                shrink[key] = capacity / used if used > 0 else 0.0

        gr_new_rates: dict[str, float] = {}
        gr_guarantee_met: dict[str, bool] = {}
        throttled: dict[str, float] = {}
        for placed_gr in self._gr:
            new_rates = []
            for placement, rate, is_active in zip(
                placed_gr.placements, placed_gr.path_rates, placed_gr.active
            ):
                if not is_active:
                    new_rates.append(rate)  # suspended: no reservation to throttle
                    continue
                factor = 1.0
                for element, bucket in placement.loads().items():
                    for resource, load in bucket.items():
                        if load > 0:
                            factor = min(factor, shrink.get((element, resource), 1.0))
                new_rates.append(rate * factor)
                if factor < 1.0:
                    throttled[placed_gr.request.app_id] = min(
                        throttled.get(placed_gr.request.app_id, 1.0), factor
                    )
            placed_gr.path_rates = tuple(new_rates)
            total = placed_gr.active_rate()
            gr_new_rates[placed_gr.request.app_id] = total
            gr_guarantee_met[placed_gr.request.app_id] = (
                total >= placed_gr.request.min_rate - 1e-12
            )
        self._rebuild_gr_residual()
        self._rebuild_fcfs_view()
        return FluctuationReport(
            changes={e: dict(b) for e, b in changes.items()},
            gr_new_rates=gr_new_rates,
            gr_guarantee_met=gr_guarantee_met,
            throttle_factors=throttled,
        )

    def qoe_under_outage(self, down_elements: frozenset[str] | set[str]) -> "OutageReport":
        """What every admitted app gets if the given elements are down.

        Read-only (the Fig. 3 "check QoE" box): a path survives only if it
        touches none of the down elements.  GR apps report the surviving
        reserved rate and whether the guarantee still holds; BE apps report
        whether any path survives, and Problem (4) is re-solved over the
        surviving paths only.
        """
        down = frozenset(down_elements)
        for element in down:
            self.network.element(element)
        gr_status: dict[str, tuple[float, bool]] = {}
        for placed_gr in self._gr:
            surviving = sum(
                rate
                for placement, rate, is_active in zip(
                    placed_gr.placements, placed_gr.path_rates, placed_gr.active
                )
                if is_active and not placement.used_elements() & down
            )
            gr_status[placed_gr.request.app_id] = (
                surviving,
                surviving >= placed_gr.request.min_rate - 1e-12,
            )
        be_alive: dict[str, bool] = {}
        surviving_apps: list[BEApp] = []
        for placed_be in self._be:
            paths = tuple(
                p
                for p, is_active in zip(placed_be.placements, placed_be.active)
                if is_active and not p.used_elements() & down
            )
            be_alive[placed_be.request.app_id] = bool(paths)
            if paths:
                surviving_apps.append(
                    BEApp(placed_be.request.app_id, placed_be.request.priority, paths)
                )
        be_rates: dict[str, float] = {app_id: 0.0 for app_id in be_alive}
        if surviving_apps:
            # Down elements also stop serving the *surviving* paths' rivals;
            # allocate on a view with the outage applied.
            view = self._gr_residual.copy()
            for element in down:
                for resource in set(self.network.resources()) | {BANDWIDTH}:
                    if view.capacity(element, resource) > 0:
                        view.override(element, resource, 0.0)
            try:
                allocation = solve_proportional_fairness(
                    surviving_apps, view, method=self.allocation_method
                )
                be_rates.update(allocation.app_rates)
            except SparcleError:
                pass  # every surviving path crossed a dead element
        return OutageReport(
            down_elements=down,
            gr_surviving_rate={k: v[0] for k, v in gr_status.items()},
            gr_guarantee_met={k: v[1] for k, v in gr_status.items()},
            be_alive=be_alive,
            be_rates=be_rates,
        )

    # ------------------------------------------------------------------
    # Online failure repair support (driven by repro.core.repair)
    # ------------------------------------------------------------------
    @property
    def down_elements(self) -> frozenset[str]:
        """Elements currently marked down (transient outages)."""
        return frozenset(self._down)

    @property
    def repair_log(self) -> tuple:
        """Event log of the attached repair controller (empty when none)."""
        if self._repair_controller is None:
            return ()
        return tuple(self._repair_controller.events)

    def _find_gr(self, app_id: str) -> _PlacedGR:
        for placed in self._gr:
            if placed.request.app_id == app_id:
                return placed
        raise AdmissionError(f"no admitted GR app {app_id!r}")

    def _find_be(self, app_id: str) -> _PlacedBE:
        for placed in self._be:
            if placed.request.app_id == app_id:
                return placed
        raise AdmissionError(f"no admitted BE app {app_id!r}")

    @staticmethod
    def _normalize_kind(kind: str) -> str:
        """Validate and canonicalize a path-API kind selector."""
        normalized = str(kind).upper()
        if normalized not in ("GR", "BE"):
            raise AdmissionError(f"unknown application kind {kind!r}")
        return normalized

    def paths(self, app_id: str, kind: str = "GR") -> tuple[PathRecord, ...]:
        """Every path of one app: placement, (reserved/predicted) rate, activity.

        ``kind`` selects the application class (``"GR"`` or ``"BE"``,
        case-insensitive).  GR records carry reserved rates; BE records
        carry the admission-time predicted rates (actual BE rates come
        from :meth:`allocate_be`).
        """
        if self._normalize_kind(kind) == "GR":
            placed = self._find_gr(app_id)
            rates = placed.path_rates
        else:
            placed = self._find_be(app_id)
            rates = placed.predicted_rates
        return tuple(
            PathRecord(p, r, a)
            for p, r, a in zip(placed.placements, rates, placed.active)
        )

    def gr_paths(self, app_id: str) -> tuple[PathRecord, ...]:
        """Deprecated: use :meth:`paths` with ``kind="GR"``."""
        warnings.warn(
            "SparcleScheduler.gr_paths() is deprecated; "
            "use paths(app_id, 'GR')",
            DeprecationWarning,
            stacklevel=2,
        )
        return self.paths(app_id, "GR")

    def be_paths(self, app_id: str) -> tuple[PathRecord, ...]:
        """Deprecated: use :meth:`paths` with ``kind="BE"``."""
        warnings.warn(
            "SparcleScheduler.be_paths() is deprecated; "
            "use paths(app_id, 'BE')",
            DeprecationWarning,
            stacklevel=2,
        )
        return self.paths(app_id, "BE")

    def gr_baseline_rate(self, app_id: str) -> float:
        """The admission-time failure-free aggregate rate of one GR app."""
        return self._find_gr(app_id).baseline_rate

    def health(self, app_id: str, kind: str = "GR") -> GRHealth | BEHealth:
        """Guarantee status of one app over its *active* paths.

        ``kind`` selects the application class (``"GR"`` or ``"BE"``,
        case-insensitive).  For GR apps, ``availability`` is the Eq.-(7)
        min-rate availability recomputed over the active paths only — the
        number the repair loop compares against the requested level when
        deciding whether an app must be demoted to degraded status.  For
        BE apps it is the requested any-path availability.
        """
        if self._normalize_kind(kind) == "GR":
            return self._gr_health(app_id)
        return self._be_health(app_id)

    def _gr_health(self, app_id: str) -> GRHealth:
        placed = self._find_gr(app_id)
        request = placed.request
        profiles = [
            PathProfile.of(p, r)
            for p, r, a in zip(placed.placements, placed.path_rates, placed.active)
            if a
        ]
        availability = min_rate_availability(
            self.network, profiles, request.min_rate
        )
        total = placed.active_rate()
        return GRHealth(
            app_id=app_id,
            active_rate=total,
            availability=availability,
            rate_met=total >= request.min_rate - 1e-12,
            availability_met=availability >= request.min_rate_availability - 1e-12,
        )

    def _be_health(self, app_id: str) -> BEHealth:
        placed = self._find_be(app_id)
        active = [p for p, a in zip(placed.placements, placed.active) if a]
        target = placed.request.availability
        if target is None:
            return BEHealth(app_id, len(active), None, True)
        availability = any_path_availability(self.network, active)
        return BEHealth(
            app_id, len(active), availability, availability >= target - 1e-12
        )

    def gr_health(self, app_id: str) -> GRHealth:
        """Deprecated: use :meth:`health` with ``kind="GR"``."""
        warnings.warn(
            "SparcleScheduler.gr_health() is deprecated; "
            "use health(app_id, 'GR')",
            DeprecationWarning,
            stacklevel=2,
        )
        return self._gr_health(app_id)

    def be_health(self, app_id: str) -> BEHealth:
        """Deprecated: use :meth:`health` with ``kind="BE"``."""
        warnings.warn(
            "SparcleScheduler.be_health() is deprecated; "
            "use health(app_id, 'BE')",
            DeprecationWarning,
            stacklevel=2,
        )
        return self._be_health(app_id)

    def mark_element_down(self, element: str) -> dict[str, list[int]]:
        """Suspend every admitted path crossing ``element`` (outage start).

        Surviving paths are untouched (the paper's no-migration rule);
        suspended paths keep their placement maps but release their
        reservations back to the residual view, and the element itself
        contributes zero capacity until :meth:`mark_element_up`.  Returns
        ``app_id -> suspended path indices`` (empty when the element was
        already down or nothing crossed it).
        """
        self.network.element(element)
        if element in self._down:
            return {}
        self._down.add(element)
        suspended: dict[str, list[int]] = {}
        for placed_gr in self._gr:
            for index, placement in enumerate(placed_gr.placements):
                if placed_gr.active[index] and element in placement.used_elements():
                    placed_gr.active[index] = False
                    suspended.setdefault(placed_gr.request.app_id, []).append(index)
        for placed_be in self._be:
            for index, placement in enumerate(placed_be.placements):
                if placed_be.active[index] and element in placement.used_elements():
                    placed_be.active[index] = False
                    suspended.setdefault(placed_be.request.app_id, []).append(index)
        self._rebuild_gr_residual()
        self._rebuild_fcfs_view()
        tr = tracing.get_tracer()
        if tr.enabled:
            tr.event(
                "scheduler.element_down",
                element=element,
                suspended={k: list(v) for k, v in suspended.items()},
            )
        get_metrics().incr("scheduler.element_transitions", state="down")
        return suspended

    def mark_element_up(self, element: str) -> dict[str, list[int]]:
        """End an outage, reactivating suspended paths that fit again.

        A suspended path is reactivated when every element it uses is back
        up *and* re-reserving it is still worthwhile: GR paths come back at
        ``min(recorded rate, baseline headroom, residual-feasible rate)``
        (replacement paths placed during the outage may have taken part of
        the capacity), BE paths come back as long as the app stays within
        its path budget.  Returns ``app_id -> reactivated path indices``.
        """
        self.network.element(element)
        if element not in self._down:
            return {}
        self._down.discard(element)
        self._rebuild_gr_residual()
        restored: dict[str, list[int]] = {}
        for placed_gr in self._gr:
            rates = list(placed_gr.path_rates)
            for index, placement in enumerate(placed_gr.placements):
                if placed_gr.active[index]:
                    continue
                if placement.used_elements() & self._down:
                    continue
                headroom = placed_gr.baseline_rate - placed_gr.active_rate()
                feasible = placement.bottleneck_rate(self._gr_residual)
                rate = min(rates[index], headroom, feasible)
                if rate <= MIN_USEFUL_RATE:
                    continue
                rates[index] = rate
                placed_gr.path_rates = tuple(rates)
                placed_gr.active[index] = True
                self._gr_residual.consume(placement.loads(), rate, clamp=True)
                restored.setdefault(placed_gr.request.app_id, []).append(index)
        for placed_be in self._be:
            for index, placement in enumerate(placed_be.placements):
                if placed_be.active[index]:
                    continue
                if placement.used_elements() & self._down:
                    continue
                if sum(placed_be.active) >= placed_be.request.max_paths:
                    break  # replacement paths already fill the budget
                placed_be.active[index] = True
                restored.setdefault(placed_be.request.app_id, []).append(index)
        self._rebuild_fcfs_view()
        tr = tracing.get_tracer()
        if tr.enabled:
            tr.event(
                "scheduler.element_up",
                element=element,
                restored={k: list(v) for k, v in restored.items()},
            )
        get_metrics().incr("scheduler.element_transitions", state="up")
        return restored

    def add_path(
        self, app_id: str, *, kind: str = "GR"
    ) -> tuple[Placement, float] | Placement | None:
        """Find and reserve one replacement path for a degraded app.

        ``kind`` selects the application class (``"GR"`` or ``"BE"``,
        case-insensitive).  For GR apps, Algorithm 2 runs against the
        current residual view (down elements contribute zero capacity, so
        replacements route around outages); the reserved rate is capped by
        the per-path guarantee *and* by the baseline headroom — repair
        never reserves beyond the app's admission-time aggregate, which
        keeps post-repair rates bracketed — and the method returns
        ``(placement, rate)``.  For BE apps, the same Theorem-3 predicted
        view as admission is used and the new ``Placement`` is returned.
        Either kind returns ``None`` when no useful path exists (or the
        path/rate budget is exhausted).
        """
        if self._normalize_kind(kind) == "GR":
            return self._add_gr_path(app_id)
        return self._add_be_path(app_id)

    def add_gr_path(self, app_id: str) -> tuple[Placement, float] | None:
        """Deprecated: use :meth:`add_path` with ``kind="GR"``."""
        warnings.warn(
            "SparcleScheduler.add_gr_path() is deprecated; "
            "use add_path(app_id, kind='GR')",
            DeprecationWarning,
            stacklevel=2,
        )
        return self._add_gr_path(app_id)

    def add_be_path(self, app_id: str) -> Placement | None:
        """Deprecated: use :meth:`add_path` with ``kind="BE"``."""
        warnings.warn(
            "SparcleScheduler.add_be_path() is deprecated; "
            "use add_path(app_id, kind='BE')",
            DeprecationWarning,
            stacklevel=2,
        )
        return self._add_be_path(app_id)

    def _add_gr_path(self, app_id: str) -> tuple[Placement, float] | None:
        placed = self._find_gr(app_id)
        if sum(placed.active) >= placed.request.max_paths:
            return None
        headroom = placed.baseline_rate - placed.active_rate()
        if headroom <= MIN_USEFUL_RATE:
            return None
        try:
            result = self.assigner(
                placed.request.graph, self.network, self._gr_residual.copy()
            )
        except InfeasiblePlacementError:
            return None
        if result.rate <= MIN_USEFUL_RATE:
            return None
        # A pinned zero-requirement CT can sit on a down host without
        # loading it; such a path would be born broken — refuse it.
        if result.placement.used_elements() & self._down:
            return None
        rate = min(result.rate, placed.request.min_rate, headroom)
        placed.placements = placed.placements + (result.placement,)
        placed.path_rates = placed.path_rates + (rate,)
        placed.active.append(True)
        self._gr_residual.consume(result.placement.loads(), rate, clamp=True)
        self._fcfs_view.consume(result.placement.loads(), rate, clamp=True)
        return result.placement, rate

    def _add_be_path(self, app_id: str) -> Placement | None:
        placed = self._find_be(app_id)
        if sum(placed.active) >= placed.request.max_paths:
            return None
        if self.use_prediction:
            tenants = [
                (
                    other.request.priority,
                    [
                        p
                        for p, a in zip(other.placements, other.active)
                        if a
                    ],
                )
                for other in self._be
                if other is not placed
            ]
            view = predicted_view(
                self._gr_residual, placed.request.priority, tenants
            )
        else:
            view = self._fcfs_view.copy()
        try:
            result = self.assigner(placed.request.graph, self.network, view)
        except InfeasiblePlacementError:
            return None
        if result.rate <= MIN_USEFUL_RATE:
            return None
        if result.placement.used_elements() & self._down:
            return None
        placed.placements = placed.placements + (result.placement,)
        placed.predicted_rates = placed.predicted_rates + (result.rate,)
        placed.active.append(True)
        if not self.use_prediction:
            self._fcfs_view.consume(
                result.placement.loads(), result.rate, clamp=True
            )
        return result.placement

    def replan(self, app_id: str) -> "ReplanReport":
        """Re-place one admitted GR application (withdraw + fresh admission).

        The paper treats migration as prohibitively expensive in steady
        state, but after a capacity fluctuation breaks a guarantee the
        operator's remaining lever is exactly this: release the app's
        reservations and let Algorithm 2 find new paths in the changed
        network.  The report carries the *migration cost* — how many CTs
        changed host — so the operator can weigh it.  If re-admission
        fails, the app stays withdrawn (the report says so).
        """
        placed = next(
            (p for p in self._gr if p.request.app_id == app_id), None
        )
        if placed is None:
            raise AdmissionError(f"no admitted GR app {app_id!r} to replan")
        old_hosts = [dict(p.ct_hosts) for p in placed.placements]
        old_rate = sum(placed.path_rates)
        request = placed.request
        self.withdraw(app_id)
        decision = self.submit_gr(request)
        moved = 0
        if decision.accepted and old_hosts:
            # Compare the first (primary) path's hosts before/after.
            new_hosts = dict(decision.placements[0].ct_hosts)
            moved = sum(
                1 for ct, host in old_hosts[0].items()
                if new_hosts.get(ct) != host
            )
        return ReplanReport(
            app_id=app_id,
            readmitted=decision.accepted,
            old_total_rate=old_rate,
            new_total_rate=decision.total_rate if decision.accepted else 0.0,
            moved_cts=moved,
            decision=decision,
        )

    def _known(self, app_id: str) -> bool:
        return (
            app_id in self._external
            or any(p.request.app_id == app_id for p in self._be)
            or any(p.request.app_id == app_id for p in self._gr)
        )

    def has_app(self, app_id: str) -> bool:
        """Whether an application with this id is currently admitted."""
        return self._known(app_id)

    def app_ids(self) -> tuple[str, ...]:
        """Ids of every currently admitted application.

        GR reservations first, then BE apps, then external tenants
        (cross-shard reservations and warm-start adoptions) — the
        serving front-end's topology reply counts these.
        """
        ids = [placed.request.app_id for placed in self._gr]
        ids.extend(placed.request.app_id for placed in self._be)
        ids.extend(self._external)
        return tuple(ids)


def admit_all_gr(
    scheduler: SparcleScheduler,
    requests: list[GRRequest],
    *,
    order: str = "arrival",
) -> tuple[list[Decision], float]:
    """Submit GR requests and return decisions plus total admitted rate.

    The total admitted rate — the sum of reserved path rates over accepted
    applications — is the Fig. 14 metric.  ``order`` controls the admission
    sequence (an extension knob; the paper admits in arrival order):

    * ``"arrival"`` — as given;
    * ``"smallest-first"`` — ascending requested rate (classic knapsack
      heuristic: many small guarantees pack better);
    * ``"largest-first"`` — descending requested rate.

    Decisions are returned in the *original arrival order* regardless.
    """
    if order == "arrival":
        sequence = list(enumerate(requests))
    elif order == "smallest-first":
        sequence = sorted(enumerate(requests), key=lambda kv: kv[1].min_rate)
    elif order == "largest-first":
        sequence = sorted(enumerate(requests), key=lambda kv: -kv[1].min_rate)
    else:
        raise AdmissionError(f"unknown admission order {order!r}")
    decisions: list[Decision | None] = [None] * len(requests)
    for index, request in sequence:
        decisions[index] = scheduler.submit_gr(request)
    final = [d for d in decisions if d is not None]
    total = sum(d.total_rate for d in final if d.accepted)
    return final, total


def scheduler_with_baseline(network: Network, assigner: Assigner) -> SparcleScheduler:
    """A scheduler whose task assignment is a baseline algorithm.

    Used by the multi-application experiments to compare SPARCLE's dynamic
    ranking against T-Storm/VNE/GS/... under identical admission logic.
    """
    if not callable(assigner):
        raise SparcleError("assigner must be callable")
    return SparcleScheduler(network, assigner=assigner)
