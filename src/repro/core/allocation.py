"""Resource allocation across Best-Effort applications (Sec. IV-C/D).

Given placements (task assignment paths) for a set of BE applications, the
rates are chosen by weighted proportional fairness — Problem (4):

    maximize   sum_j  P_j * log(x_j)
    subject to R X <= C,

where ``x_j`` is application ``j``'s total processing rate (summed over its
paths), ``R`` stacks the per-unit loads of every path on every
(element, resource) pair, and ``C`` is the residual capacity vector.

Three solvers are provided and cross-checked in the test suite:

* :func:`solve_single_constraint` — the closed form when exactly one
  capacity constraint binds (rates split proportionally to priority);
* :func:`solve_dual` — a projected dual subgradient method (one variable
  per single-path application; fast, dependency-free);
* :func:`solve_slsqp` — SciPy SLSQP on the general multipath problem.

:func:`solve_proportional_fairness` picks the right one automatically.

The module also implements the Theorem-3 capacity *prediction* of Eq. (6):
before placing a new BE application ``J`` with priority ``P_J``, each
element already hosting applications ``J_n`` only offers ``J`` the share
``P_J / (P_J + sum of P_J')`` of its capacity, which is what application
``J`` would end up with under proportional fairness.  Feeding the predicted
capacities to Algorithm 2 decouples task assignment from arrival order.
"""

from __future__ import annotations

import math
from collections.abc import Sequence
from dataclasses import dataclass, field

import numpy as np
from scipy import optimize

from repro.core.placement import CapacityView, Loads, Placement, merge_loads
from repro.exceptions import AllocationError

#: Rates below this are treated as zero when reporting.
RATE_EPSILON = 1e-12


@dataclass(frozen=True)
class BEApp:
    """A Best-Effort application entering the allocation problem.

    ``placements`` holds one entry per task assignment path.  ``priority``
    is the weight ``P_j`` in Problem (4); the paper's availability loop adds
    paths until the requested availability is met, so multiple paths per
    application are first-class here.
    """

    app_id: str
    priority: float
    placements: tuple[Placement, ...]

    def __post_init__(self) -> None:
        if self.priority <= 0:
            raise AllocationError(f"app {self.app_id!r} has non-positive priority")
        if not self.placements:
            raise AllocationError(f"app {self.app_id!r} has no placements")
        object.__setattr__(self, "placements", tuple(self.placements))


@dataclass
class AllocationResult:
    """Solved rates: per application and per path.

    ``app_rates[app_id]`` is the application's total processing rate;
    ``path_rates[app_id]`` its per-path split; ``utility`` the achieved
    value of the Problem-(4) objective.
    """

    app_rates: dict[str, float]
    path_rates: dict[str, tuple[float, ...]]
    utility: float
    solver: str
    iterations: int = 0
    residuals: dict[tuple[str, str], float] = field(default_factory=dict)


@dataclass
class _Matrices:
    """Problem (4) in matrix form: A x <= c, one column per path."""

    a: np.ndarray  # (n_constraints, n_paths)
    c: np.ndarray  # (n_constraints,)
    rows: list[tuple[str, str]]  # (element, resource) per constraint row
    app_of_path: list[int]  # path column -> app index
    apps: list[BEApp]


def build_matrices(apps: Sequence[BEApp], capacities: CapacityView) -> _Matrices:
    """Stack per-path loads into the constraint matrix of Problem (4).

    Only (element, resource) pairs loaded by at least one path become rows.
    Raises :class:`AllocationError` when some loaded element has zero
    residual capacity — no positive rate vector can satisfy ``A x <= c``
    then, and ``log`` utilities need strictly positive rates.
    """
    if not apps:
        raise AllocationError("no applications to allocate")
    row_index: dict[tuple[str, str], int] = {}
    columns: list[dict[tuple[str, str], float]] = []
    app_of_path: list[int] = []
    for app_idx, app in enumerate(apps):
        for placement in app.placements:
            column: dict[tuple[str, str], float] = {}
            for element, bucket in placement.loads().items():
                for resource, load in bucket.items():
                    if load <= 0.0:
                        continue
                    key = (element, resource)
                    row_index.setdefault(key, len(row_index))
                    column[key] = column.get(key, 0.0) + load
            columns.append(column)
            app_of_path.append(app_idx)
    n_rows, n_cols = len(row_index), len(columns)
    if n_rows == 0:
        raise AllocationError("placements impose no load; rates are unbounded")
    a = np.zeros((n_rows, n_cols))
    c = np.zeros(n_rows)
    rows = [None] * n_rows  # type: ignore[list-item]
    for key, r in row_index.items():
        rows[r] = key
        c[r] = capacities.capacity(*key)
    for col, column in enumerate(columns):
        for key, load in column.items():
            a[row_index[key], col] = load
    binding_zero = [rows[r] for r in range(n_rows) if c[r] <= 0 and a[r].max() > 0]
    if binding_zero:
        raise AllocationError(
            f"loaded elements have zero residual capacity: {sorted(binding_zero)}"
        )
    empty_columns = [col for col in range(n_cols) if not columns[col]]
    if empty_columns:
        offenders = sorted({apps[app_of_path[col]].app_id for col in empty_columns})
        raise AllocationError(
            f"apps {offenders} have paths that impose no load; their rates "
            "would be unbounded under a log utility"
        )
    return _Matrices(a, c, rows, app_of_path, list(apps))


def _result_from_path_rates(
    mats: _Matrices, x: np.ndarray, solver: str, iterations: int
) -> AllocationResult:
    x = np.maximum(x, 0.0)
    app_rates: dict[str, float] = {}
    path_rates: dict[str, list[float]] = {}
    for col, app_idx in enumerate(mats.app_of_path):
        app = mats.apps[app_idx]
        app_rates[app.app_id] = app_rates.get(app.app_id, 0.0) + float(x[col])
        path_rates.setdefault(app.app_id, []).append(float(x[col]))
    utility = 0.0
    for app in mats.apps:
        rate = app_rates[app.app_id]
        utility += app.priority * math.log(max(rate, RATE_EPSILON))
    slack = mats.c - mats.a @ x
    residuals = {mats.rows[r]: float(slack[r]) for r in range(len(mats.rows))}
    return AllocationResult(
        app_rates,
        {k: tuple(v) for k, v in path_rates.items()},
        utility,
        solver,
        iterations,
        residuals,
    )


# ----------------------------------------------------------------------
# Solver 1: closed form when a single constraint binds
# ----------------------------------------------------------------------
def solve_single_constraint(apps: Sequence[BEApp], capacities: CapacityView) -> AllocationResult:
    """Exact solution of Problem (4) when only one constraint row exists.

    With one shared constraint ``sum_j a_j x_j <= c``, KKT gives
    ``x_j = (P_j / sum_m P_m) * c / a_j`` — each application receives a
    capacity share proportional to its priority (Theorem 3 in miniature).
    Raises when the problem has more than one constraint row.
    """
    mats = build_matrices(apps, capacities)
    if mats.a.shape[0] != 1:
        raise AllocationError(
            f"closed form needs exactly one constraint row, got {mats.a.shape[0]}"
        )
    if mats.a.shape[1] != len(apps):
        raise AllocationError("closed form supports one path per application")
    priorities = np.array([app.priority for app in mats.apps])
    total_priority = priorities.sum()
    c = float(mats.c[0])
    x = np.zeros(len(apps))
    for j, app in enumerate(mats.apps):
        a_j = float(mats.a[0, j])
        if a_j <= 0:
            raise AllocationError(f"app {app.app_id!r} places no load on the constraint")
        x[j] = (app.priority / total_priority) * c / a_j
    return _result_from_path_rates(mats, x, "closed-form", 1)


# ----------------------------------------------------------------------
# Solver 2: dual subgradient (single path per app)
# ----------------------------------------------------------------------
def solve_dual(
    apps: Sequence[BEApp],
    capacities: CapacityView,
    *,
    max_iterations: int = 2000,
) -> AllocationResult:
    """Smooth dual solver for Problem (4) (one path per application).

    The Lagrangian decomposes per application as
    ``x_j(lambda) = P_j / (lambda . a_j)``, which turns the dual into the
    smooth convex problem

        minimize over lambda >= 0 of  lambda . c - sum_j P_j log(lambda . a_j),

    solved here with L-BFGS-B.  The recovered primal point is polished onto
    the feasible region with a uniform shrink (strong duality makes the
    duality gap zero at the optimum, so the shrink is a no-op up to solver
    tolerance).  Requires one path per application — the log-of-sum coupling
    of multipath needs :func:`solve_slsqp`.
    """
    mats = build_matrices(apps, capacities)
    if mats.a.shape[1] != len(apps):
        raise AllocationError("dual solver supports one path per application")
    priorities = np.array([app.priority for app in mats.apps])
    a, c = mats.a, mats.c
    lower = 1e-14

    def dual_value_and_grad(lam: np.ndarray) -> tuple[float, np.ndarray]:
        denom = a.T @ lam  # (n_apps,)
        denom = np.maximum(denom, lower)
        value = float(lam @ c - priorities @ np.log(denom))
        x = priorities / denom
        gradient = c - a @ x
        return value, gradient

    # Scale-aware start: each constraint alone would be roughly binding.
    lam0 = np.array([priorities.sum() / max(c[r], 1e-12) for r in range(len(c))])
    solution = optimize.minimize(
        dual_value_and_grad,
        lam0,
        jac=True,
        bounds=[(lower, None)] * len(c),
        method="L-BFGS-B",
        options={"maxiter": max_iterations, "ftol": 1e-15, "gtol": 1e-12},
    )
    lam = np.maximum(np.asarray(solution.x), lower)
    x = priorities / np.maximum(a.T @ lam, lower)
    usage = a @ x
    with np.errstate(divide="ignore", invalid="ignore"):
        over = np.max(np.where(c > 0, usage / c, 0.0))
    if over > 1.0:
        x = x / over
    return _result_from_path_rates(mats, x, "dual", int(solution.nit))


# ----------------------------------------------------------------------
# Solver 3: SLSQP on the general multipath problem
# ----------------------------------------------------------------------
def solve_slsqp(
    apps: Sequence[BEApp],
    capacities: CapacityView,
    *,
    max_iterations: int = 500,
) -> AllocationResult:
    """SciPy SLSQP on Problem (4) with per-path variables.

    Handles the general case: multiple paths per application with the
    concave objective ``sum_j P_j log(sum of j's path rates)``.
    """
    mats = build_matrices(apps, capacities)
    n_paths = mats.a.shape[1]
    priorities = np.array([app.priority for app in mats.apps])
    app_of_path = np.array(mats.app_of_path)
    n_apps = len(mats.apps)

    def app_totals(x: np.ndarray) -> np.ndarray:
        totals = np.zeros(n_apps)
        np.add.at(totals, app_of_path, x)
        return totals

    def objective(x: np.ndarray) -> float:
        totals = np.maximum(app_totals(x), RATE_EPSILON)
        return -float(np.sum(priorities * np.log(totals)))

    def gradient(x: np.ndarray) -> np.ndarray:
        totals = np.maximum(app_totals(x), RATE_EPSILON)
        return -(priorities / totals)[app_of_path]

    # Feasible strictly positive start: split each row's capacity evenly.
    with np.errstate(divide="ignore"):
        per_path_cap = np.min(
            np.where(mats.a > 0, mats.c[:, None] / np.where(mats.a > 0, mats.a, 1.0), np.inf),
            axis=0,
        )
    base = np.where(np.isfinite(per_path_cap), per_path_cap, 1.0) / (n_paths + 1)
    base = np.maximum(base, 1e-9)

    constraints = [
        {
            "type": "ineq",
            "fun": lambda x: mats.c - mats.a @ x,
            "jac": lambda x: -mats.a,
        }
    ]
    bounds = [(1e-12, None)] * n_paths

    def polish(x: np.ndarray) -> np.ndarray:
        """Shrink uniformly onto the feasible region."""
        x = np.maximum(np.asarray(x), 1e-12)
        usage = mats.a @ x
        with np.errstate(divide="ignore", invalid="ignore"):
            over = np.max(np.where(mats.c > 0, usage / mats.c, 0.0))
        return x / over if over > 1.0 else x

    # SLSQP occasionally stalls ("positive directional derivative"); retry
    # from progressively more conservative interior points and keep the
    # best feasible outcome.
    best_x: np.ndarray | None = None
    best_value = math.inf
    iterations = 0
    last_message = ""
    for scale in (1.0, 0.1, 0.01):
        solution = optimize.minimize(
            objective,
            base * scale,
            jac=gradient,
            bounds=bounds,
            constraints=constraints,
            method="SLSQP",
            options={"maxiter": max_iterations, "ftol": 1e-12},
        )
        last_message = str(solution.message)
        candidate = polish(solution.x)
        value = objective(candidate)
        if math.isfinite(value) and value < best_value:
            best_value = value
            best_x = candidate
            iterations = int(solution.nit)
        if solution.success:
            break
    if best_x is None:
        raise AllocationError(f"SLSQP failed from every start: {last_message}")
    return _result_from_path_rates(mats, best_x, "slsqp", iterations)


def solve_proportional_fairness(
    apps: Sequence[BEApp],
    capacities: CapacityView,
    *,
    method: str = "auto",
) -> AllocationResult:
    """Solve Problem (4), dispatching to the appropriate solver.

    ``method`` is ``"auto"`` (dual when every app has one path, else
    SLSQP), or one of ``"closed-form"``, ``"dual"``, ``"slsqp"``.
    """
    single_path = all(len(app.placements) == 1 for app in apps)
    if method == "auto":
        method = "dual" if single_path else "slsqp"
    if method == "closed-form":
        return solve_single_constraint(apps, capacities)
    if method == "dual":
        return solve_dual(apps, capacities)
    if method == "slsqp":
        return solve_slsqp(apps, capacities)
    raise AllocationError(f"unknown allocation method {method!r}")


# ----------------------------------------------------------------------
# Theorem 3 / Eq. (6): capacity prediction for a newly arriving BE app
# ----------------------------------------------------------------------
def predict_capacity_factors(
    new_priority: float,
    tenants: Sequence[tuple[float, Sequence[Placement]]],
) -> dict[str, float]:
    """Per-element Eq. (6) share factors for a newly arriving BE app.

    ``tenants`` lists ``(priority, placements)`` of the already-placed BE
    applications.  For every element hosting at least one tenant task, the
    factor is ``P_new / (P_new + sum of tenant priorities on the element)``;
    untouched elements get no entry (factor 1 implicitly).  Reproduces the
    paper's example: one tenant at priority ``P`` and a newcomer at ``2P``
    yields ``2/3``.
    """
    if new_priority <= 0:
        raise AllocationError("the arriving application needs a positive priority")
    tenant_priority_on: dict[str, float] = {}
    for priority, placements in tenants:
        if priority <= 0:
            raise AllocationError("tenant priorities must be positive")
        touched: set[str] = set()
        for placement in placements:
            touched |= placement.used_elements()
        for element in touched:
            tenant_priority_on[element] = tenant_priority_on.get(element, 0.0) + priority
    return {
        element: new_priority / (new_priority + total)
        for element, total in tenant_priority_on.items()
    }


def predicted_view(
    capacities: CapacityView,
    new_priority: float,
    tenants: Sequence[tuple[float, Sequence[Placement]]],
) -> CapacityView:
    """A capacity view scaled by the Eq. (6) factors (Theorem 3 prediction)."""
    return capacities.scaled(predict_capacity_factors(new_priority, tenants))


def aggregate_loads(placements: Sequence[Placement]) -> Loads:
    """Total per-unit load of several paths (for capacity bookkeeping)."""
    return merge_loads(p.loads() for p in placements)
