"""Online failure repair: the Fig.-3 control loop extended with outages.

The paper's availability story (Sec. IV-C, Eq. (7)) is *preventive*: the
scheduler places redundant task assignment paths up front and predicts how
often the guarantee will hold.  This module adds the *reactive* half — an
online repair loop that responds to element up/down events at run time:

1. **Suspend** — on an element-down event every admitted path crossing the
   element is suspended: its placement maps are preserved untouched (the
   no-migration rule) but its reservations are released back to the
   residual view.
2. **Degrade gracefully** — Best-Effort rates are re-solved immediately
   over the surviving paths (Problem (4)), so applications keep streaming
   at reduced rate while repair proceeds.
3. **Repair** — for every application whose guarantee no longer holds
   (GR: Eq.-(7) min-rate availability or aggregate rate; BE: requested
   any-path availability), Algorithm 2 is re-run against the updated
   residual view to reserve *replacement* paths that route around the
   outage.  Attempts follow a bounded retry/backoff budget
   (:class:`RetryPolicy`); an application that cannot be repaired is
   demoted to *degraded* status with an event record.
4. **Restore** — an element-up event reactivates suspended paths that
   still fit (GR rates capped by the admission-time baseline, so repair
   never inflates an app beyond what it was admitted with), resets the
   retry budget, and opportunistically re-repairs remaining degraded apps.

Invariants maintained (and asserted by the property tests):

* **No migration** — a surviving path's CT→NCP and TT→route maps never
  change; only rates and *new* replacement paths do.
* **Capacity conservation** — the residual view always equals fresh
  capacities minus the reservations of exactly the *active* paths;
  repeated fail/repair cycles neither leak nor double-free capacity.
* **Rate bracketing** — after handling any event, each GR app's active
  aggregate rate is at least its surviving-paths-only rate and at most its
  admission-time baseline rate.

Every action is recorded in :attr:`RepairController.events` (exposed by
the scheduler as ``repair_log``) and counted in :mod:`repro.perf`
(``repair.*`` counters, gauges, and timers).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from repro.core.scheduler import SparcleScheduler
from repro.exceptions import SparcleError
from repro.perf import counters, timer, tracing
from repro.perf.metrics import get_metrics


@dataclass(frozen=True)
class RetryPolicy:
    """Bounded exponential backoff for repair attempts.

    After ``n`` consecutive failed attempts on one application the next
    attempt is deferred by ``backoff_base * backoff_factor**(n - 1)``
    simulated seconds; after ``max_attempts`` failures the controller
    gives up on the app until the topology improves (an element-up event
    resets the budget).
    """

    max_attempts: int = 3
    backoff_base: float = 1.0
    backoff_factor: float = 2.0

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise SparcleError(
                f"max_attempts must be at least 1, got {self.max_attempts}"
            )
        if self.backoff_base < 0:
            raise SparcleError(
                f"backoff_base must be non-negative, got {self.backoff_base}"
            )
        if self.backoff_factor < 1.0:
            raise SparcleError(
                f"backoff_factor must be at least 1, got {self.backoff_factor}"
            )

    def delay(self, failed_attempts: int) -> float:
        """Backoff before the next attempt after ``failed_attempts`` >= 1."""
        if failed_attempts < 1:
            raise SparcleError("delay is defined after at least one failure")
        return self.backoff_base * self.backoff_factor ** (failed_attempts - 1)


@dataclass(frozen=True)
class RepairEvent:
    """One entry of the repair event log."""

    time: float
    kind: str
    element: str = ""
    app_id: str = ""
    detail: str = ""


@dataclass(frozen=True)
class RepairOutcome:
    """What handling one element event (or retry tick) changed.

    The three rate dicts cover every admitted GR app and let callers check
    the bracketing invariant directly: ``surviving <= after`` always, and
    ``after`` never exceeds the app's admission-time baseline.
    """

    time: float
    kind: str  # "element_down" | "element_up" | "tick"
    element: str = ""
    suspended: dict[str, list[int]] = field(default_factory=dict)
    restored: dict[str, list[int]] = field(default_factory=dict)
    replaced: dict[str, int] = field(default_factory=dict)
    degraded: tuple[str, ...] = ()
    recovered: tuple[str, ...] = ()
    gr_rates_before: dict[str, float] = field(default_factory=dict)
    gr_rates_surviving: dict[str, float] = field(default_factory=dict)
    gr_rates_after: dict[str, float] = field(default_factory=dict)


def _reserved_capacity(scheduler: SparcleScheduler, app_id: str, indices: list[int]) -> float:
    """Total capacity units a set of (GR) paths had reserved."""
    try:
        records = scheduler.paths(app_id, "GR")
    except SparcleError:
        return 0.0  # BE paths reserve nothing
    total = 0.0
    for index in indices:
        record = records[index]
        for bucket in record.placement.loads().values():
            for load in bucket.values():
                total += record.rate * load
    return total


class RepairController:
    """Drives suspend / degrade / repair / restore against one scheduler.

    Attach once per scheduler; element events arrive via
    :meth:`element_down` / :meth:`element_up` (e.g. from a
    :class:`~repro.simulator.failures.FailureInjector` callback), and
    :meth:`tick` runs any retries whose backoff has expired.
    """

    def __init__(
        self,
        scheduler: SparcleScheduler,
        *,
        policy: RetryPolicy | None = None,
    ) -> None:
        self.scheduler = scheduler
        self.policy = policy or RetryPolicy()
        self.events: list[RepairEvent] = []
        self.last_be_allocation = None
        # Per-app consecutive failed repair attempts and next-retry times.
        self._failed_attempts: dict[str, int] = {}
        self._next_retry: dict[str, float] = {}
        # app_id -> time it became degraded (for time-to-repair).
        self._degraded_since: dict[str, float] = {}
        scheduler._repair_controller = self

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def degraded_apps(self) -> tuple[str, ...]:
        """Applications whose guarantee currently fails, sorted."""
        return tuple(sorted(self._degraded_since))

    def next_retry_time(self) -> float | None:
        """Earliest pending retry, or ``None`` when nothing is scheduled."""
        pending = [
            when
            for app_id, when in self._next_retry.items()
            if app_id in self._degraded_since
            and self._failed_attempts.get(app_id, 0) < self.policy.max_attempts
        ]
        return min(pending) if pending else None

    def forget(self, app_id: str) -> None:
        """Drop per-app repair bookkeeping (after a scheduler withdrawal).

        A withdrawn app must not linger in the degraded set or the retry
        schedule — :meth:`tick` would otherwise try to repair an app the
        scheduler no longer knows.  Safe to call for unknown ids.
        """
        self._failed_attempts.pop(app_id, None)
        self._next_retry.pop(app_id, None)
        self._degraded_since.pop(app_id, None)

    def _log(self, time: float, kind: str, **fields: str) -> None:
        self.events.append(RepairEvent(time=time, kind=kind, **fields))
        # Mirror every repair action into the structured trace (with the
        # repair-loop time as the record timestamp) and the labeled
        # per-kind event counter, so a JSONL export reconstructs the full
        # suspend / re-solve / reserve / restore sequence.
        tr = tracing.get_tracer()
        if tr.enabled:
            tr.event(f"repair.{kind}", ts=time, **fields)
        get_metrics().incr("repair.events", kind=kind)

    # ------------------------------------------------------------------
    # Event entry points
    # ------------------------------------------------------------------
    def element_down(self, element: str, now: float = 0.0) -> RepairOutcome:
        """Handle an element failure: suspend, degrade gracefully, repair."""
        with timer("repair.element_down"):
            before = self._gr_rates()
            suspended = self.scheduler.mark_element_down(element)
            counters.incr("repair.element_down_events")
            self._log(now, "element_down", element=element)
            released = 0.0
            for app_id, indices in suspended.items():
                counters.incr("repair.paths_suspended", len(indices))
                released += _reserved_capacity(self.scheduler, app_id, indices)
                self._log(
                    now,
                    "paths_suspended",
                    element=element,
                    app_id=app_id,
                    detail=f"indices={indices}",
                )
            if released:
                counters.accumulate("repair.capacity_released", released)
            surviving = self._gr_rates()
            self._reallocate_be(now)
            self._reassess(now)
            replaced = self._attempt_repairs(now)
            return RepairOutcome(
                time=now,
                kind="element_down",
                element=element,
                suspended=suspended,
                replaced=replaced,
                degraded=self.degraded_apps,
                recovered=(),
                gr_rates_before=before,
                gr_rates_surviving=surviving,
                gr_rates_after=self._gr_rates(),
            )

    def element_up(self, element: str, now: float = 0.0) -> RepairOutcome:
        """Handle an element recovery: restore paths, re-repair the rest."""
        with timer("repair.element_up"):
            before = self._gr_rates()
            restored = self.scheduler.mark_element_up(element)
            counters.incr("repair.element_up_events")
            self._log(now, "element_up", element=element)
            for app_id, indices in restored.items():
                counters.incr("repair.paths_restored", len(indices))
                counters.accumulate(
                    "repair.capacity_restored",
                    _reserved_capacity(self.scheduler, app_id, indices),
                )
                self._log(
                    now,
                    "paths_restored",
                    element=element,
                    app_id=app_id,
                    detail=f"indices={indices}",
                )
            # Topology improved: every degraded app gets a fresh budget.
            for app_id in list(self._degraded_since):
                self._failed_attempts[app_id] = 0
                self._next_retry.pop(app_id, None)
            self._reallocate_be(now)
            recovered = self._reassess(now)
            replaced = self._attempt_repairs(now)
            return RepairOutcome(
                time=now,
                kind="element_up",
                element=element,
                restored=restored,
                replaced=replaced,
                degraded=self.degraded_apps,
                recovered=tuple(recovered),
                gr_rates_before=before,
                gr_rates_surviving=before,
                gr_rates_after=self._gr_rates(),
            )

    def tick(self, now: float) -> RepairOutcome:
        """Run any repair retries whose backoff has expired by ``now``."""
        before = self._gr_rates()
        recovered = self._reassess(now)
        replaced = self._attempt_repairs(now)
        return RepairOutcome(
            time=now,
            kind="tick",
            replaced=replaced,
            degraded=self.degraded_apps,
            recovered=tuple(recovered),
            gr_rates_before=before,
            gr_rates_surviving=before,
            gr_rates_after=self._gr_rates(),
        )

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _gr_rates(self) -> dict[str, float]:
        state = self.scheduler.state()
        return {
            app_id: sum(
                r.rate
                for r in self.scheduler.paths(app_id, "GR")
                if r.active
            )
            for app_id in state.gr_apps
        }

    def _reallocate_be(self, now: float) -> None:
        """Graceful degradation: re-solve BE rates over surviving paths."""
        if not self.scheduler.state().be_apps:
            return
        self.last_be_allocation = self.scheduler.allocate_be()
        counters.incr("repair.be_reallocations")
        self._log(now, "be_reallocated")

    def _health_ok(self, app_id: str) -> tuple[bool, str]:
        state = self.scheduler.state()
        if app_id in state.gr_apps:
            health = self.scheduler.health(app_id, "GR")
            if health.ok:
                return True, ""
            if not health.rate_met:
                return False, (
                    f"active rate {health.active_rate:.4f} < guaranteed "
                    f"{self.scheduler._find_gr(app_id).request.min_rate}"
                )
            return False, f"availability {health.availability:.4f} below request"
        health_be = self.scheduler.health(app_id, "BE")
        if health_be.ok:
            return True, ""
        if health_be.active_paths == 0:
            return False, "no active paths"
        return False, f"availability {health_be.availability:.4f} below request"

    def _reassess(self, now: float) -> list[str]:
        """Update the degraded set; returns apps that recovered passively."""
        state = self.scheduler.state()
        recovered: list[str] = []
        for app_id in list(state.gr_apps) + list(state.be_apps):
            ok, reason = self._health_ok(app_id)
            if ok and app_id in self._degraded_since:
                self._record_recovery(app_id, now, via="restoration")
                recovered.append(app_id)
            elif not ok and app_id not in self._degraded_since:
                self._degraded_since[app_id] = now
                kind = "gr_degraded" if app_id in state.gr_apps else "be_degraded"
                counters.incr("repair.apps_degraded")
                self._log(now, kind, app_id=app_id, detail=reason)
        return recovered

    def _record_recovery(self, app_id: str, now: float, *, via: str) -> None:
        since = self._degraded_since.pop(app_id)
        self._failed_attempts.pop(app_id, None)
        self._next_retry.pop(app_id, None)
        counters.incr("repair.apps_recovered")
        counters.add_time("repair.time_to_repair", max(0.0, now - since))
        get_metrics().observe(
            "repair.time_to_repair", max(0.0, now - since), app=app_id
        )
        self._log(now, "app_recovered", app_id=app_id, detail=f"via {via}")

    def _attempt_repairs(self, now: float) -> dict[str, int]:
        """Try to repair every degraded app whose retry budget allows it."""
        replaced: dict[str, int] = {}
        for app_id in sorted(self._degraded_since):
            failures = self._failed_attempts.get(app_id, 0)
            if failures >= self.policy.max_attempts:
                continue  # gave up until the topology improves
            if now < self._next_retry.get(app_id, -math.inf):
                continue  # backing off
            added = self._repair_one(app_id, now)
            if added:
                replaced[app_id] = added
            ok, _ = self._health_ok(app_id)
            counters.incr("repair.attempts")
            if ok:
                counters.incr("repair.successes")
                self._record_recovery(app_id, now, via="replacement")
            else:
                failures += 1
                self._failed_attempts[app_id] = failures
                if failures >= self.policy.max_attempts:
                    counters.incr("repair.gave_up")
                    self._log(
                        now,
                        "repair_gave_up",
                        app_id=app_id,
                        detail=f"after {failures} attempts",
                    )
                else:
                    retry_at = now + self.policy.delay(failures)
                    self._next_retry[app_id] = retry_at
                    self._log(
                        now,
                        "repair_deferred",
                        app_id=app_id,
                        detail=f"retry at t={retry_at:.3f}",
                    )
        return replaced

    def _repair_one(self, app_id: str, now: float) -> int:
        """Add replacement paths for one app until healthy or stuck."""
        state = self.scheduler.state()
        is_gr = app_id in state.gr_apps
        added = 0
        with timer("repair.attempt"):
            while True:
                ok, _ = self._health_ok(app_id)
                if ok:
                    break
                if is_gr:
                    result = self.scheduler.add_path(app_id, kind="GR")
                    if result is None:
                        break
                    placement, rate = result
                    detail = f"rate={rate:.4f}"
                else:
                    placement = self.scheduler.add_path(app_id, kind="BE")
                    if placement is None:
                        break
                    detail = ""
                added += 1
                counters.incr("repair.paths_replaced")
                self._log(now, "path_replaced", app_id=app_id, detail=detail)
        if added and not is_gr:
            self._reallocate_be(now)
        return added
