"""Array-compiled network kernels for Algorithm 1 (widest path).

``repro.core.network`` models the dispersed computing network as dicts of
named :class:`~repro.core.network.NCP`/:class:`~repro.core.network.Link`
objects — ideal for validation and bookkeeping, but every widest-path
relaxation then pays string hashing, attribute chasing, and a per-edge
``link_weight`` call.  This module compiles the (immutable) topology once
into flat int-indexed arrays so the Algorithm-1 hot path becomes:

1. :func:`compile_network` — a cached :class:`CompiledNetwork` holding a
   CSR adjacency (``offsets``/``targets``/``link_ids``) per direction,
   plus the raw link bandwidths, all as frozen ``numpy`` arrays;
2. :func:`link_residuals` — the residual bandwidth of every link under a
   :class:`~repro.core.placement.CapacityView`, produced in O(overrides)
   and memoized against the view's mutation version (also available in
   O(entries) from a frozen :class:`~repro.core.network.ResidualSnapshot`
   via :func:`residuals_from_snapshot`);
3. :func:`link_weights` — the Eq. (3) weight of *every* link for a given
   ``tt_megabits`` + same-path loads, in one vectorized pass;
4. :func:`run_widest` — the modified-Dijkstra relaxation over int arrays.

The relaxation loop ships in two interchangeable bodies: a pure-Python
loop over list mirrors of the CSR arrays (the always-available fallback),
and an array-native body that `numba <https://numba.pydata.org>`_ can JIT
when the optional dependency is installed (``pip install repro[speed]``;
disable with ``SPARCLE_NUMBA=0``).  Both reproduce the dict kernel's
decisions bit-for-bit, including Dijkstra tiebreaks: node ties break on
the lexicographic rank of the NCP name (``tie_rank``), and per-node edge
order is the sorted-by-link-name order of ``Network.forward_links`` /
``backward_links``.

Kernel selection between this module and the legacy dict implementation
lives in :mod:`repro.core.routing` (``set_route_kernel`` /
``SPARCLE_ROUTE_KERNEL``).
"""

from __future__ import annotations

import heapq
import math
import os
import weakref
from collections.abc import Mapping, Sequence
from dataclasses import dataclass, field
from typing import Any, Callable

import numpy as np

from repro.core.network import Network, ResidualSnapshot
from repro.core.placement import CapacityView
from repro.core.taskgraph import BANDWIDTH
from repro.exceptions import InvalidNetworkError
from repro.perf import counters

FloatArray = np.ndarray[Any, np.dtype[np.float64]]
IntArray = np.ndarray[Any, np.dtype[np.int64]]

_NEG_INF = float("-inf")

#: Failures that legitimately select the pure-Python fallback: a missing
#: or broken numba install (``ImportError``), version-skew errors from
#: numba's import/compile machinery (``AttributeError``/``RuntimeError``/
#: ``TypeError``), and JIT cache-directory I/O problems (``OSError``).
#: Anything else — a ``KeyboardInterrupt``, a ``MemoryError``, a plain
#: bug — propagates instead of silently degrading the kernel.
_NUMBA_ERRORS = (ImportError, AttributeError, RuntimeError, TypeError, OSError)


# ----------------------------------------------------------------------
# Optional numba acceleration
# ----------------------------------------------------------------------
def _load_njit() -> Callable[..., Any] | None:
    """The ``numba.njit`` decorator, or ``None`` when unavailable/disabled.

    numba is strictly optional: a missing or broken install silently
    selects the pure-Python kernel, and ``SPARCLE_NUMBA=0`` forces the
    fallback even when numba is importable (useful for benchmarking the
    two bodies against each other).
    """
    if os.environ.get("SPARCLE_NUMBA", "1").lower() in ("0", "false", "no"):
        return None
    try:
        from numba import njit
    except _NUMBA_ERRORS:  # pragma: no cover - needs a broken install
        counters.incr("arrays.numba_fallback.import")
        return None
    return njit  # type: ignore[no-any-return]


_NJIT = _load_njit()
HAVE_NUMBA = _NJIT is not None


def kernel_name() -> str:
    """Which relaxation body the array kernel currently runs.

    ``"numba"`` when the JIT body is active, ``"python"`` for the
    pure-Python fallback.
    """
    return "numba" if _relax_jit is not None else "python"


# ----------------------------------------------------------------------
# CSR compilation
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class CompiledNetwork:
    """An immutable CSR view of one :class:`~repro.core.network.Network`.

    Nodes and links are int-indexed in network insertion order;
    ``node_names[i]`` / ``link_names[i]`` translate back.  The CSR edge
    order within each node replicates ``Network.forward_links`` /
    ``backward_links`` (sorted by link name), and ``tie_rank[i]`` is the
    lexicographic rank of node ``i``'s name — together these make the
    array relaxation reproduce the dict kernel's Dijkstra tiebreaks
    exactly.  Every ``numpy`` array is frozen (``writeable=False``);
    the ``*_list`` twins are private mirrors for the pure-Python loop
    (CPython list indexing is ~3x faster than scalar ndarray access).

    Undirected networks share one adjacency: the ``bwd_*`` fields alias
    the ``fwd_*`` arrays.
    """

    network_name: str
    directed: bool
    node_names: tuple[str, ...]
    link_names: tuple[str, ...]
    node_index: Mapping[str, int]
    link_index: Mapping[str, int]
    tie_rank: IntArray
    base_bandwidth: FloatArray
    fwd_offsets: IntArray
    fwd_targets: IntArray
    fwd_link_ids: IntArray
    bwd_offsets: IntArray
    bwd_targets: IntArray
    bwd_link_ids: IntArray
    # Pure-Python mirrors (lists) of the arrays above, same contents.
    _tie_rank_list: list[int] = field(repr=False)
    _fwd_offsets_list: list[int] = field(repr=False)
    _fwd_targets_list: list[int] = field(repr=False)
    _fwd_link_ids_list: list[int] = field(repr=False)
    _bwd_offsets_list: list[int] = field(repr=False)
    _bwd_targets_list: list[int] = field(repr=False)
    _bwd_link_ids_list: list[int] = field(repr=False)

    @property
    def n_nodes(self) -> int:
        return len(self.node_names)

    @property
    def n_links(self) -> int:
        return len(self.link_names)


def _freeze(array: np.ndarray[Any, np.dtype[Any]]) -> np.ndarray[Any, np.dtype[Any]]:
    array.setflags(write=False)
    return array


def _csr(
    network: Network,
    node_index: Mapping[str, int],
    link_index: Mapping[str, int],
    *,
    reverse: bool,
) -> tuple[IntArray, IntArray, IntArray]:
    """CSR arrays whose per-node edge order matches the dict kernel's."""
    offsets = [0]
    targets: list[int] = []
    link_ids: list[int] = []
    expand = network.backward_links if reverse else network.forward_links
    for name in network.ncp_names:
        for link in expand(name):
            targets.append(node_index[link.other(name)])
            link_ids.append(link_index[link.name])
        offsets.append(len(targets))
    return (
        _freeze(np.asarray(offsets, dtype=np.int64)),
        _freeze(np.asarray(targets, dtype=np.int64)),
        _freeze(np.asarray(link_ids, dtype=np.int64)),
    )


_compile_cache: "weakref.WeakKeyDictionary[Network, CompiledNetwork]" = (
    weakref.WeakKeyDictionary()
)


def compile_network(network: Network) -> CompiledNetwork:
    """Compile (and cache) a network's topology into CSR arrays.

    The topology is immutable, so the compilation is performed once per
    :class:`~repro.core.network.Network` instance and memoized in a weak
    cache — repeated calls are a dict probe
    (``arrays.compile_hit``/``arrays.compile_miss`` count the traffic).
    """
    cached = _compile_cache.get(network)
    if cached is not None:
        counters.incr("arrays.compile_hit")
        return cached
    counters.incr("arrays.compile_miss")
    node_names = network.ncp_names
    link_names = network.link_names
    node_index = {name: i for i, name in enumerate(node_names)}
    link_index = {name: i for i, name in enumerate(link_names)}
    rank_of = {name: r for r, name in enumerate(sorted(node_names))}
    tie_rank = _freeze(
        np.asarray([rank_of[name] for name in node_names], dtype=np.int64)
    )
    base_bandwidth = _freeze(
        np.asarray(
            [network.link(name).bandwidth for name in link_names], dtype=np.float64
        )
    )
    fwd = _csr(network, node_index, link_index, reverse=False)
    bwd = fwd if not network.directed else _csr(
        network, node_index, link_index, reverse=True
    )
    compiled = CompiledNetwork(
        network_name=network.name,
        directed=network.directed,
        node_names=node_names,
        link_names=link_names,
        node_index=node_index,
        link_index=link_index,
        tie_rank=tie_rank,
        base_bandwidth=base_bandwidth,
        fwd_offsets=fwd[0],
        fwd_targets=fwd[1],
        fwd_link_ids=fwd[2],
        bwd_offsets=bwd[0],
        bwd_targets=bwd[1],
        bwd_link_ids=bwd[2],
        _tie_rank_list=tie_rank.tolist(),
        _fwd_offsets_list=fwd[0].tolist(),
        _fwd_targets_list=fwd[1].tolist(),
        _fwd_link_ids_list=fwd[2].tolist(),
        _bwd_offsets_list=bwd[0].tolist(),
        _bwd_targets_list=bwd[1].tolist(),
        _bwd_link_ids_list=bwd[2].tolist(),
    )
    _compile_cache[network] = compiled
    return compiled


# ----------------------------------------------------------------------
# Residual-capacity arrays
# ----------------------------------------------------------------------
_residual_cache: (
    "weakref.WeakKeyDictionary[CapacityView, tuple[int, FloatArray]]"
) = weakref.WeakKeyDictionary()


def link_residuals(compiled: CompiledNetwork, capacities: CapacityView) -> FloatArray:
    """Residual bandwidth of every link under ``capacities``, by link id.

    Starts from the compiled raw bandwidths and applies only the view's
    bandwidth overrides — O(overrides), not O(links x probes).  The
    result is frozen and memoized against the view's
    :attr:`~repro.core.placement.CapacityView.version`, so the unmutated
    steady state (every probe between two commits) costs one dict probe.
    """
    cached = _residual_cache.get(capacities)
    version = capacities.version
    if cached is not None and cached[0] == version:
        return cached[1]
    residual = compiled.base_bandwidth.copy()
    link_index = compiled.link_index
    for element, resource, value in capacities.iter_overrides():
        if resource != BANDWIDTH:
            continue
        idx = link_index.get(element)
        if idx is not None:
            residual[idx] = value
    _freeze(residual)
    _residual_cache[capacities] = (version, residual)
    return residual


def residuals_from_snapshot(
    compiled: CompiledNetwork, snapshot: ResidualSnapshot
) -> FloatArray:
    """Thaw a frozen :class:`~repro.core.network.ResidualSnapshot` to arrays.

    O(entries): the snapshot records only overrides, so shipping a
    residual state to a worker process and rebuilding the kernel input
    costs len(entries) writes over a copy of the compiled bandwidths.
    """
    if snapshot.network_name != compiled.network_name:
        raise InvalidNetworkError(
            f"snapshot of network {snapshot.network_name!r} cannot thaw "
            f"against compiled {compiled.network_name!r}"
        )
    residual = compiled.base_bandwidth.copy()
    link_index = compiled.link_index
    for element, resource, value in snapshot.entries:
        if resource != BANDWIDTH:
            continue
        idx = link_index.get(element)
        if idx is not None:
            residual[idx] = value
    return _freeze(residual)


def link_weights(
    compiled: CompiledNetwork,
    residual: FloatArray,
    tt_megabits: float,
    link_loads: Mapping[str, float] | None = None,
) -> FloatArray:
    """Eq. (3) link weights for *all* links in one vectorized pass.

    ``weights[l] = residual[l] / (tt_megabits + link_loads[l])``, with
    ``inf`` where the denominator is non-positive — exactly
    :func:`repro.core.routing.link_weight` evaluated per link id.  The
    division is IEEE-754 float64 either way, so the array weights are
    bit-identical to the dict kernel's per-edge evaluations.
    """
    # Python float division overflows to inf silently; numpy emits a
    # RuntimeWarning for the same IEEE result — silence it so the two
    # kernels behave identically under -W error.
    if not link_loads:
        if tt_megabits > 0.0:
            with np.errstate(over="ignore"):
                return residual / tt_megabits
        return np.full(compiled.n_links, math.inf, dtype=np.float64)
    denominator = np.full(compiled.n_links, tt_megabits, dtype=np.float64)
    link_index = compiled.link_index
    for name, load in link_loads.items():
        idx = link_index.get(name)
        if idx is not None:
            denominator[idx] = tt_megabits + load
    weights = np.full(compiled.n_links, math.inf, dtype=np.float64)
    with np.errstate(over="ignore"):
        np.divide(residual, denominator, out=weights, where=denominator > 0.0)
    return weights


# ----------------------------------------------------------------------
# Relaxation kernels
# ----------------------------------------------------------------------
def _relax_python(
    offsets: Sequence[int],
    targets: Sequence[int],
    link_ids: Sequence[int],
    edge_weights: Sequence[float],
    tie_rank: Sequence[int],
    n_nodes: int,
    root: int,
    dst: int,
) -> tuple[list[float], list[int], list[int]]:
    """The modified-Dijkstra relaxation over CSR lists (pure Python).

    ``edge_weights`` is indexed by CSR *edge* position (the link weights
    pre-gathered through ``link_ids``), so the inner loop touches no
    link-indexed table.  ``dst >= 0`` enables the point-query early exit
    (stop once ``dst`` is settled); ``dst = -1`` runs to exhaustion (the
    tree mode).  Heap entries are ``(-width, tie_rank, node)`` so ties
    pop in lexicographic node-name order, matching the dict kernel.
    """
    widths = [_NEG_INF] * n_nodes
    prev_node = [-1] * n_nodes
    prev_link = [-1] * n_nodes
    visited = bytearray(n_nodes)
    widths[root] = math.inf
    heap: list[tuple[float, int, int]] = [(_NEG_INF, tie_rank[root], root)]
    push = heapq.heappush
    pop = heapq.heappop
    while heap:
        negwidth, _, node = pop(heap)
        if visited[node]:
            continue
        visited[node] = 1
        if node == dst:
            break
        width = -negwidth
        start = offsets[node]
        end = offsets[node + 1]
        for neighbor, w, lid in zip(
            targets[start:end], edge_weights[start:end], link_ids[start:end]
        ):
            if visited[neighbor]:
                continue
            candidate = width if width < w else w
            if candidate > widths[neighbor]:
                widths[neighbor] = candidate
                prev_node[neighbor] = node
                prev_link[neighbor] = lid
                push(heap, (-candidate, tie_rank[neighbor], neighbor))
    return widths, prev_node, prev_link


def _relax_arrays(
    offsets: IntArray,
    targets: IntArray,
    link_ids: IntArray,
    weights: FloatArray,
    tie_rank: IntArray,
    root: int,
    dst: int,
) -> tuple[FloatArray, IntArray, IntArray]:
    """The same relaxation as :func:`_relax_python`, array-native.

    Written against plain numpy indexing with a hand-rolled binary max
    heap (parallel key arrays) so ``numba.njit`` can compile it without
    object-mode fallbacks.  The heap orders by ``(width desc, tie_rank
    asc)`` — identical pop order to the tuple heap of the Python body.
    Runs unjitted too (the no-numba test path executes this source).
    """
    n_nodes = tie_rank.shape[0]
    widths = np.full(n_nodes, -np.inf, dtype=np.float64)
    prev_node = np.full(n_nodes, -1, dtype=np.int64)
    prev_link = np.full(n_nodes, -1, dtype=np.int64)
    visited = np.zeros(n_nodes, dtype=np.uint8)
    capacity = targets.shape[0] + 1
    heap_w = np.empty(capacity, dtype=np.float64)
    heap_r = np.empty(capacity, dtype=np.int64)
    heap_n = np.empty(capacity, dtype=np.int64)
    size = 1
    heap_w[0] = np.inf
    heap_r[0] = tie_rank[root]
    heap_n[0] = root
    widths[root] = np.inf
    while size > 0:
        width = heap_w[0]
        node = heap_n[0]
        # Pop: move the last leaf to the top and sift it down, ordering
        # by (width desc, tie_rank asc).
        size -= 1
        heap_w[0] = heap_w[size]
        heap_r[0] = heap_r[size]
        heap_n[0] = heap_n[size]
        i = 0
        while True:
            left = 2 * i + 1
            right = left + 1
            best = i
            if left < size and (
                heap_w[left] > heap_w[best]
                or (heap_w[left] == heap_w[best] and heap_r[left] < heap_r[best])
            ):
                best = left
            if right < size and (
                heap_w[right] > heap_w[best]
                or (heap_w[right] == heap_w[best] and heap_r[right] < heap_r[best])
            ):
                best = right
            if best == i:
                break
            heap_w[i], heap_w[best] = heap_w[best], heap_w[i]
            heap_r[i], heap_r[best] = heap_r[best], heap_r[i]
            heap_n[i], heap_n[best] = heap_n[best], heap_n[i]
            i = best
        if visited[node]:
            continue
        visited[node] = 1
        if node == dst:
            break
        for k in range(offsets[node], offsets[node + 1]):
            neighbor = targets[k]
            if visited[neighbor]:
                continue
            w = weights[link_ids[k]]
            candidate = width if width < w else w
            if candidate > widths[neighbor]:
                widths[neighbor] = candidate
                prev_node[neighbor] = node
                prev_link[neighbor] = link_ids[k]
                # Push: append then sift up.
                heap_w[size] = candidate
                heap_r[size] = tie_rank[neighbor]
                heap_n[size] = neighbor
                i = size
                size += 1
                while i > 0:
                    parent = (i - 1) // 2
                    if heap_w[i] > heap_w[parent] or (
                        heap_w[i] == heap_w[parent]
                        and heap_r[i] < heap_r[parent]
                    ):
                        heap_w[i], heap_w[parent] = heap_w[parent], heap_w[i]
                        heap_r[i], heap_r[parent] = heap_r[parent], heap_r[i]
                        heap_n[i], heap_n[parent] = heap_n[parent], heap_n[i]
                        i = parent
                    else:
                        break
    return widths, prev_node, prev_link


_relax_jit: Callable[..., Any] | None = None
if _NJIT is not None:  # pragma: no cover - requires the optional numba
    try:
        _relax_jit = _NJIT(cache=True, nogil=True)(_relax_arrays)
    except _NUMBA_ERRORS:
        counters.incr("arrays.numba_fallback.jit_decorate")
        _relax_jit = None


# One memo slot per direction for the edge-ordered weight gather of the
# pure-Python body: ``(compiled, weights, edge_weights_list)``.  Weight
# arrays are memoized upstream (routing.WeightsCache), so consecutive
# relaxations under one load state pass the *same* array object and the
# gather — one vectorized fancy-index + tolist — runs once per state, not
# once per search.  Identity-checked, so a fresh array just recomputes.
_gather_slots: list[tuple[CompiledNetwork, FloatArray, list[float]] | None] = [
    None,
    None,
]


def _edge_weights_list(
    compiled: CompiledNetwork, weights: FloatArray, reverse: bool
) -> list[float]:
    slot = _gather_slots[1 if reverse else 0]
    if slot is not None and slot[0] is compiled and slot[1] is weights:
        return slot[2]
    link_ids = compiled.bwd_link_ids if reverse else compiled.fwd_link_ids
    gathered: list[float] = weights[link_ids].tolist()
    _gather_slots[1 if reverse else 0] = (compiled, weights, gathered)
    return gathered


def run_widest(
    compiled: CompiledNetwork,
    weights: FloatArray,
    root: int,
    *,
    reverse: bool = False,
    dst: int = -1,
) -> tuple[list[float], list[int], list[int]]:
    """Run the widest-path relaxation from node ``root`` over ``weights``.

    Returns ``(widths, prev_node, prev_link)`` as plain lists indexed by
    node id: ``widths[i] == -inf`` marks an unreached node,
    ``prev_*[i] == -1`` marks the root or an unreached node.
    ``reverse=True`` traverses the backward adjacency (paths *into* the
    root); ``dst >= 0`` early-exits once that node settles (point
    queries).  Dispatches to the numba body when available, else the
    pure-Python fallback — both produce identical floats and tiebreaks
    (the JIT outputs are ``tolist()``-ed so callers always consume native
    Python floats/ints).
    """
    global _relax_jit
    if _relax_jit is not None:  # pragma: no cover - requires numba
        offsets_a = compiled.bwd_offsets if reverse else compiled.fwd_offsets
        targets_a = compiled.bwd_targets if reverse else compiled.fwd_targets
        link_ids_a = compiled.bwd_link_ids if reverse else compiled.fwd_link_ids
        try:
            widths_a, prev_node_a, prev_link_a = _relax_jit(
                offsets_a, targets_a, link_ids_a,
                np.ascontiguousarray(weights), compiled.tie_rank, root, dst,
            )
            return widths_a.tolist(), prev_node_a.tolist(), prev_link_a.tolist()
        except _NUMBA_ERRORS:
            # A broken JIT (e.g. numba/numpy version skew surfacing at
            # first compile) must never take the scheduler down: drop to
            # the pure-Python body for the rest of the process.  Anything
            # outside _NUMBA_ERRORS propagates — silent degradation on an
            # arbitrary exception is the bug class this narrows away.
            counters.incr("arrays.numba_fallback.jit_runtime")
            _relax_jit = None
    if reverse:
        offsets = compiled._bwd_offsets_list
        targets = compiled._bwd_targets_list
        link_ids = compiled._bwd_link_ids_list
    else:
        offsets = compiled._fwd_offsets_list
        targets = compiled._fwd_targets_list
        link_ids = compiled._fwd_link_ids_list
    return _relax_python(
        offsets, targets, link_ids,
        _edge_weights_list(compiled, weights, reverse),
        compiled._tie_rank_list, compiled.n_nodes, root, dst,
    )
