"""SPARCLE — stream processing over dispersed computing networks.

A from-scratch reproduction of *SPARCLE: Stream Processing Applications
over Dispersed Computing Networks* (Rahimzadeh et al., ICDCS 2020): a
network-aware, polynomial-time task assignment (Algorithm 2) and resource
allocation (Problem 4) system for DAG-structured stream applications on
heterogeneous edge networks, plus the baselines, simulators, workloads and
experiment harness needed to regenerate every figure and table of the
paper's evaluation.

Quickstart::

    from repro import (
        linear_task_graph, star_network, sparcle_assign, CapacityView,
    )

    app = linear_task_graph(4, cpu_per_ct=5000.0, megabits_per_tt=2.0)
    net = star_network(7, hub_cpu=6000.0, leaf_cpu=3000.0, link_bandwidth=10.0)
    result = sparcle_assign(app, net)
    print(result.rate, result.placement.ct_hosts)
"""

from repro.core import *  # noqa: F401,F403 — the curated core API
from repro.core import __all__ as _core_all

__version__ = "1.0.0"
__all__ = list(_core_all) + ["__version__"]
