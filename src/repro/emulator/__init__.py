"""Testbed emulator (Mininet substitute) and its scenario file format."""

from repro.emulator.emulator import EmulationOutcome, Emulator
from repro.emulator.scenario import (
    ScenarioSpec,
    graph_from_dict,
    graph_to_dict,
    load_scenario,
    network_from_dict,
    network_to_dict,
    save_scenario,
    scenario_from_dict,
    scenario_to_dict,
)

__all__ = [
    "EmulationOutcome",
    "Emulator",
    "ScenarioSpec",
    "graph_from_dict",
    "graph_to_dict",
    "load_scenario",
    "network_from_dict",
    "network_to_dict",
    "save_scenario",
    "scenario_from_dict",
    "scenario_to_dict",
]
