"""The testbed emulator — this repository's Mininet substitute.

The paper evaluates Fig. 6 on a physical testbed and, at larger scale, on
Mininet: a scenario file describes the network and application, an emulated
network is built, the pipeline runs, and the achieved processing rate is
reported.  Here the "virtual network" is the discrete-event queueing
simulator of :mod:`repro.simulator`, which models the same first-order
dynamics (CPU seconds per image on each host, transfer seconds per image on
each link, FIFO contention on shared elements).

Usage::

    emulator = Emulator.from_file("scenario.json")
    outcome = emulator.run()           # schedules with SPARCLE if needed
    print(outcome.achieved_rate)

The emulator drives the pipeline slightly *below* the analytical stable
rate by default (``load_factor=0.95``), as a real deployment would, and
reports both the offered and achieved rates plus queue/latency evidence
that the operating point is stable.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path
from typing import Any

from repro.core.assignment import AssignmentResult, sparcle_assign
from repro.core.placement import CapacityView, Placement
from repro.core.scheduler import Assigner
from repro.emulator.scenario import ScenarioSpec, load_scenario, scenario_from_dict
from repro.exceptions import ScenarioError
from repro.simulator.streamsim import SimulationReport, StreamSimulator


@dataclass
class EmulationOutcome:
    """What one emulator run observed."""

    scenario: str
    offered_rate: float
    achieved_rate: float
    stable: bool
    analytical_rate: float
    placement: Placement
    report: SimulationReport

    @property
    def efficiency(self) -> float:
        """Achieved over offered rate (1.0 = every emitted unit delivered)."""
        if self.offered_rate <= 0:
            return 0.0
        return self.achieved_rate / self.offered_rate


class Emulator:
    """Run a scenario end-to-end: schedule (if needed), simulate, report."""

    def __init__(self, spec: ScenarioSpec) -> None:
        self.spec = spec

    @classmethod
    def from_file(cls, path: str | Path) -> "Emulator":
        """Load a scenario JSON file."""
        return cls(load_scenario(path))

    @classmethod
    def from_dict(cls, doc: dict[str, Any]) -> "Emulator":
        """Parse an in-memory scenario document."""
        return cls(scenario_from_dict(doc))

    def schedule(self, assigner: Assigner = sparcle_assign) -> AssignmentResult:
        """Produce a placement for the scenario's application.

        Used when the scenario file does not carry a placement; the chosen
        ``assigner`` defaults to SPARCLE's Algorithm 2.
        """
        return assigner(self.spec.graph, self.spec.network, CapacityView(self.spec.network))

    def run(
        self,
        *,
        assigner: Assigner = sparcle_assign,
        load_factor: float = 0.95,
        duration: float | None = None,
        warmup_fraction: float = 0.1,
        stability_backlog: int = 50,
        discipline: str = "fifo",
        arrival_process: str = "deterministic",
        inject_failures: bool = False,
        failure_mean_cycle: float = 50.0,
        failure_rng: int = 0,
    ) -> EmulationOutcome:
        """Emulate the scenario and measure the achieved processing rate.

        The input rate is ``load_factor`` times the placement's analytical
        stable rate unless the scenario pinned an explicit ``rate``.
        ``duration`` defaults to the time needed to push ~500 data units
        through.  ``stable`` in the outcome means the end-of-run backlog on
        every element stayed under ``stability_backlog`` jobs.
        """
        if not 0.0 < load_factor <= 1.0:
            raise ScenarioError(f"load_factor must be in (0, 1], got {load_factor}")
        if self.spec.placement is not None:
            placement = self.spec.placement
            analytical = placement.bottleneck_rate(CapacityView(self.spec.network))
        else:
            result = self.schedule(assigner)
            placement = result.placement
            analytical = result.rate
        if analytical <= 0:
            raise ScenarioError(
                f"scenario {self.spec.name!r} admits no positive processing rate"
            )
        offered = self.spec.rate if self.spec.rate is not None else analytical * load_factor
        horizon = duration if duration is not None else max(500.0 / offered, 10.0)
        warmup = horizon * warmup_fraction
        simulator = StreamSimulator(
            self.spec.network, placement, offered,
            discipline=discipline, arrival_process=arrival_process,
        )
        injector = None
        if inject_failures:
            from repro.simulator.failures import FailureInjector

            injector = FailureInjector(
                simulator, self.spec.network,
                mean_cycle=failure_mean_cycle, rng=failure_rng,
            )
            injector.arm()
        report = simulator.run(horizon, warmup=warmup)
        if injector is not None:
            injector.finalize(horizon)
        return EmulationOutcome(
            scenario=self.spec.name,
            offered_rate=offered,
            achieved_rate=report.throughput,
            stable=report.max_backlog <= stability_backlog,
            analytical_rate=analytical,
            placement=placement,
            report=report,
        )
