"""Scenario (de)serialization — the emulator's experiment file format.

The paper's Mininet-based emulator "first reads the experiment scenario file
describing NCPs and their CPU capacities, links and their bandwidths,
routing paths, and the CT/TT requirements", then builds the virtual network
and runs the experiment.  This module defines that file format as plain
JSON so scenarios are scriptable, diffable, and replayable:

.. code-block:: json

    {
      "name": "fig6-0.5mbps",
      "network": {"ncps": [{"name": "cloud", "capacities": {"cpu": 15200.0}}, ...],
                   "links": [{"name": "access", "a": "cloud", "b": "ncp1",
                              "bandwidth": 100.0}, ...]},
      "application": {"cts": [{"name": "resize", "requirements": {"cpu": 9880.0}},
                               ...],
                       "tts": [{"name": "raw", "src": "camera", "dst": "resize",
                                "megabits_per_unit": 24.8}, ...]},
      "placement": {"ct_hosts": {"resize": "ncp2", ...},
                     "tt_routes": {"raw": [], "resized": ["f2"], ...}},
      "rate": 0.23
    }

``placement`` and ``rate`` are optional: without them the emulator runs the
scheduler itself.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path
from typing import Any

from repro.core.network import NCP, Link, Network
from repro.core.placement import Placement
from repro.core.taskgraph import ComputationTask, TaskGraph, TransportTask
from repro.exceptions import ScenarioError, SparcleError


@dataclass
class ScenarioSpec:
    """A parsed scenario: the network, the application, optional placement."""

    name: str
    network: Network
    graph: TaskGraph
    placement: Placement | None = None
    rate: float | None = None


# ----------------------------------------------------------------------
# Serialization
# ----------------------------------------------------------------------
def network_to_dict(network: Network) -> dict[str, Any]:
    """Serialize a network to plain JSON-compatible data."""
    return {
        "name": network.name,
        "directed": network.directed,
        "ncps": [
            {
                "name": ncp.name,
                "capacities": dict(ncp.capacities),
                "failure_probability": ncp.failure_probability,
            }
            for ncp in network.ncps
        ],
        "links": [
            {
                "name": link.name,
                "a": link.a,
                "b": link.b,
                "bandwidth": link.bandwidth,
                "failure_probability": link.failure_probability,
            }
            for link in network.links
        ],
    }


def graph_to_dict(graph: TaskGraph) -> dict[str, Any]:
    """Serialize a task graph to plain JSON-compatible data."""
    return {
        "name": graph.name,
        "cts": [
            {
                "name": ct.name,
                "requirements": dict(ct.requirements),
                "pinned_host": ct.pinned_host,
            }
            for ct in graph.cts
        ],
        "tts": [
            {
                "name": tt.name,
                "src": tt.src,
                "dst": tt.dst,
                "megabits_per_unit": tt.megabits_per_unit,
            }
            for tt in graph.tts
        ],
    }


def scenario_to_dict(
    name: str,
    network: Network,
    graph: TaskGraph,
    placement: Placement | None = None,
    rate: float | None = None,
) -> dict[str, Any]:
    """Bundle everything into one scenario document."""
    doc: dict[str, Any] = {
        "name": name,
        "network": network_to_dict(network),
        "application": graph_to_dict(graph),
    }
    if placement is not None:
        doc["placement"] = {
            "ct_hosts": dict(placement.ct_hosts),
            "tt_routes": {k: list(v) for k, v in placement.tt_routes.items()},
        }
    if rate is not None:
        doc["rate"] = rate
    return doc


# ----------------------------------------------------------------------
# Parsing
# ----------------------------------------------------------------------
def _require(doc: dict[str, Any], key: str, context: str) -> Any:
    try:
        return doc[key]
    except KeyError:
        raise ScenarioError(f"scenario {context} is missing required key {key!r}") from None


def network_from_dict(doc: dict[str, Any]) -> Network:
    """Parse a network document (inverse of :func:`network_to_dict`)."""
    try:
        ncps = [
            NCP(
                _require(n, "name", "NCP"),
                n.get("capacities", {}),
                failure_probability=n.get("failure_probability", 0.0),
            )
            for n in _require(doc, "ncps", "network")
        ]
        links = [
            Link(
                _require(l, "name", "link"),
                _require(l, "a", "link"),
                _require(l, "b", "link"),
                _require(l, "bandwidth", "link"),
                failure_probability=l.get("failure_probability", 0.0),
            )
            for l in doc.get("links", [])
        ]
        return Network(
            doc.get("name", "network"), ncps, links,
            directed=bool(doc.get("directed", False)),
        )
    except SparcleError:
        raise
    except (TypeError, ValueError) as error:
        raise ScenarioError(f"malformed network document: {error}") from error


def graph_from_dict(doc: dict[str, Any]) -> TaskGraph:
    """Parse an application document (inverse of :func:`graph_to_dict`)."""
    try:
        cts = [
            ComputationTask(
                _require(c, "name", "CT"),
                c.get("requirements", {}),
                pinned_host=c.get("pinned_host"),
            )
            for c in _require(doc, "cts", "application")
        ]
        tts = [
            TransportTask(
                _require(t, "name", "TT"),
                _require(t, "src", "TT"),
                _require(t, "dst", "TT"),
                _require(t, "megabits_per_unit", "TT"),
            )
            for t in doc.get("tts", [])
        ]
        return TaskGraph(doc.get("name", "application"), cts, tts)
    except SparcleError:
        raise
    except (TypeError, ValueError) as error:
        raise ScenarioError(f"malformed application document: {error}") from error


def scenario_from_dict(doc: dict[str, Any]) -> ScenarioSpec:
    """Parse a full scenario document, validating the placement if present."""
    network = network_from_dict(_require(doc, "network", "document"))
    graph = graph_from_dict(_require(doc, "application", "document"))
    placement = None
    if "placement" in doc:
        pdoc = doc["placement"]
        placement = Placement(
            graph,
            _require(pdoc, "ct_hosts", "placement"),
            {k: tuple(v) for k, v in _require(pdoc, "tt_routes", "placement").items()},
        )
        placement.validate(network)
    rate = doc.get("rate")
    if rate is not None and rate <= 0:
        raise ScenarioError(f"scenario rate must be positive, got {rate}")
    return ScenarioSpec(
        name=doc.get("name", "scenario"),
        network=network,
        graph=graph,
        placement=placement,
        rate=rate,
    )


# ----------------------------------------------------------------------
# Files
# ----------------------------------------------------------------------
def save_scenario(path: str | Path, doc: dict[str, Any]) -> None:
    """Write a scenario document as pretty-printed JSON."""
    Path(path).write_text(json.dumps(doc, indent=2, sort_keys=True) + "\n")


def load_scenario(path: str | Path) -> ScenarioSpec:
    """Read and parse a scenario JSON file."""
    try:
        doc = json.loads(Path(path).read_text())
    except json.JSONDecodeError as error:
        raise ScenarioError(f"{path} is not valid JSON: {error}") from error
    if not isinstance(doc, dict):
        raise ScenarioError(f"{path} must contain a JSON object")
    return scenario_from_dict(doc)
