"""Exception hierarchy for the :mod:`repro` library.

All library-raised errors derive from :class:`SparcleError`, so callers can
catch a single base class at API boundaries while tests can assert on the
specific subclass.
"""

from __future__ import annotations


class SparcleError(Exception):
    """Base class for every error raised by this library."""


class InvalidTaskGraphError(SparcleError):
    """The application task graph violates a structural invariant.

    Examples: cycles, transport tasks whose endpoints do not exist, a
    computation task with a negative resource requirement, or a source CT
    that has incoming edges.
    """


class InvalidNetworkError(SparcleError):
    """The computing-network graph violates a structural invariant.

    Examples: a link whose endpoint NCP does not exist, a non-positive
    capacity, or a failure probability outside ``[0, 1]``.
    """


class PlacementError(SparcleError):
    """A placement is inconsistent with its task graph or network.

    Examples: an unplaced CT, a TT routed over a path that is not connected,
    or a TT whose path endpoints disagree with its CT hosts.
    """


class InfeasiblePlacementError(PlacementError):
    """No feasible placement exists (e.g. pinned host missing a resource)."""


class AllocationError(SparcleError):
    """The resource-allocation optimization failed or was ill-posed."""


class AdmissionError(SparcleError):
    """An application was rejected by admission control.

    Carries the partial diagnosis so callers can report why (not enough
    rate, availability unreachable with the path budget, ...).
    """

    def __init__(self, message: str, *, reason: str = "rejected") -> None:
        super().__init__(message)
        self.reason = reason


class GatewayError(SparcleError):
    """The admission gateway was misused or driven into an invalid state."""


class BackpressureError(GatewayError):
    """The gateway's bounded arrival queue is full; the request was shed.

    Callers should back off and resubmit (or count the request as lost) —
    nothing was enqueued and no decision was recorded.
    """


class ProtocolError(SparcleError):
    """A wire message violates the serving protocol.

    Raised by :mod:`repro.service.protocol` for malformed JSON, an unknown
    or missing message ``type``, a ``v`` field that does not match
    :data:`~repro.service.protocol.PROTOCOL_VERSION`, and for documents
    whose fields are missing, unknown, or of the wrong shape.  The server
    maps it onto an ``ErrorReply`` with code ``"protocol"`` instead of
    dropping the connection.
    """


class ServerError(SparcleError):
    """The serving front-end was misconfigured or driven while draining.

    Examples: ``--recover`` requested without a durable log directory,
    starting an already-started server, or submitting to a server that is
    draining (clients receive an ``ErrorReply`` with code ``"draining"``).
    """


class ShardError(SparcleError):
    """The sharded control plane was misconfigured or misused.

    Examples: a zone map that does not cover every NCP, a partition whose
    region subnetwork is disconnected, a submit routed to a killed shard,
    or a warm start attempted from an empty event log.  *Not* raised for
    cross-shard commit conflicts: those surface as
    :class:`StaleProposalError` and are retried/re-queued by the
    coordinator.
    """


class StaleProposalError(GatewayError):
    """An optimistically evaluated proposal failed commit-time revalidation.

    Raised by ``SparcleScheduler.commit(..., revalidate=True)`` when the
    live residuals (or the Eq.-(7) availability check) no longer support a
    proposal computed against an earlier snapshot.  The scheduler state is
    unchanged; the gateway re-queues the request and re-evaluates.
    """


class SimulationError(SparcleError):
    """The discrete-event simulator was driven into an invalid state."""


class ScenarioError(SparcleError):
    """A serialized scenario file is malformed or internally inconsistent."""


class ChaosError(SparcleError):
    """The chaos harness hit an internal inconsistency.

    Raised when the scenario fuzzer cannot produce a lint-clean world
    (a fuzzer bug by definition — generation is valid-by-construction and
    ``lint_scenario_dict`` is the oracle that proves it) or when the soak
    driver is misconfigured.  *Not* raised for invariant violations: those
    are findings, reported in the :class:`repro.chaos.SoakReport`.
    """
