"""Local stream-processing runtime: real operators under modeled pacing.

The in-process counterpart of the paper's physical testbed — CTs are
Python callables, data units are real payloads, and network constraints
are enforced by per-element worker threads pacing at the modeled service
times.
"""

from repro.runtime.engine import LocalRuntime, Operator, RuntimeOutcome
from repro.runtime.imaging import (
    denoise_op,
    edge_op,
    face_detection_operators,
    face_op,
    resize_op,
    synthetic_image,
)
from repro.runtime.sensors import (
    sensor_operators,
    sensor_pipeline_graph,
    synthetic_signal,
)

__all__ = [
    "LocalRuntime",
    "Operator",
    "RuntimeOutcome",
    "denoise_op",
    "edge_op",
    "face_detection_operators",
    "face_op",
    "resize_op",
    "sensor_operators",
    "sensor_pipeline_graph",
    "synthetic_image",
    "synthetic_signal",
]
