"""A real (numpy) image pipeline standing in for the paper's OpenCV app.

The testbed application resized, denoised, edge-detected, and
face-detected camera images.  Without OpenCV, the same *structure* is
implemented with numpy primitives over synthetic images:

* :func:`synthetic_image` — a noisy grayscale frame with a configurable
  number of bright square "faces";
* :func:`resize_op` — 2x2 mean pooling;
* :func:`denoise_op` — 3x3 box blur;
* :func:`edge_op` — gradient-magnitude edge map;
* :func:`face_op` — connected bright-blob counting on the edge map's
  source frame (returns the detected count).

``face_detection_operators()`` packages these for the Fig. 5 task graph so
the :class:`~repro.runtime.engine.LocalRuntime` can push real frames
through a SPARCLE placement and the *detection counts* can be verified —
the end-to-end functional check the analytical pipeline cannot provide.
"""

from __future__ import annotations

from typing import Any

import numpy as np

from repro.utils.rng import ensure_rng

#: Pixel value of a synthetic "face" block (pre-noise).
FACE_BRIGHTNESS = 220.0
#: Detection threshold used by the blob counter.
DETECT_THRESHOLD = 160.0
#: Synthetic face block side length, in pixels (pre-resize).
FACE_SIZE = 12


def synthetic_image(
    n_faces: int,
    *,
    size: int = 96,
    noise: float = 12.0,
    rng: "int | np.random.Generator | None" = None,
) -> np.ndarray:
    """A noisy grayscale frame containing ``n_faces`` bright squares.

    Faces are laid out on a grid with at least one face-width of spacing so
    that blob counting is well defined.
    """
    generator = ensure_rng(rng)
    image = generator.normal(60.0, noise, size=(size, size))
    per_row = max(1, (size - FACE_SIZE) // (2 * FACE_SIZE))
    if n_faces > per_row * per_row:
        raise ValueError(
            f"cannot place {n_faces} faces on a {size}x{size} frame"
        )
    for index in range(n_faces):
        row, col = divmod(index, per_row)
        top = FACE_SIZE + row * 2 * FACE_SIZE
        left = FACE_SIZE + col * 2 * FACE_SIZE
        image[top:top + FACE_SIZE, left:left + FACE_SIZE] = FACE_BRIGHTNESS
    return np.clip(image, 0.0, 255.0)


def resize_op(image: np.ndarray) -> np.ndarray:
    """2x2 mean pooling (halves each dimension)."""
    h, w = image.shape
    h -= h % 2
    w -= w % 2
    trimmed = image[:h, :w]
    return trimmed.reshape(h // 2, 2, w // 2, 2).mean(axis=(1, 3))


def denoise_op(image: np.ndarray) -> np.ndarray:
    """3x3 box blur with edge replication."""
    padded = np.pad(image, 1, mode="edge")
    out = np.zeros_like(image)
    for dy in (0, 1, 2):
        for dx in (0, 1, 2):
            out += padded[dy:dy + image.shape[0], dx:dx + image.shape[1]]
    return out / 9.0


def edge_op(image: np.ndarray) -> dict[str, np.ndarray]:
    """Gradient-magnitude edge map; keeps the frame for the detector."""
    gy, gx = np.gradient(image)
    return {"edges": np.hypot(gx, gy), "frame": image}


def face_op(payload: dict[str, np.ndarray]) -> int:
    """Count bright connected blobs in the (denoised) frame.

    A simple two-pass union-free flood count: threshold the frame, then
    count 4-connected components via iterative labelling.
    """
    frame = payload["frame"]
    mask = frame >= DETECT_THRESHOLD
    visited = np.zeros_like(mask, dtype=bool)
    count = 0
    h, w = mask.shape
    for y in range(h):
        for x in range(w):
            if not mask[y, x] or visited[y, x]:
                continue
            count += 1
            stack = [(y, x)]
            visited[y, x] = True
            while stack:
                cy, cx = stack.pop()
                for ny, nx in ((cy - 1, cx), (cy + 1, cx), (cy, cx - 1),
                               (cy, cx + 1)):
                    if 0 <= ny < h and 0 <= nx < w and mask[ny, nx] \
                            and not visited[ny, nx]:
                        visited[ny, nx] = True
                        stack.append((ny, nx))
    return count


def face_detection_operators() -> dict[str, Any]:
    """Operators for the Fig. 5 graph (camera/resize/denoise/edge/face).

    Keyed by the CT names of
    :func:`repro.workloads.facedetect.face_detection_graph`.
    """
    return {
        "camera": lambda inputs: inputs["__input__"],
        "resize": lambda inputs: resize_op(inputs["camera"]),
        "denoise": lambda inputs: denoise_op(inputs["resize"]),
        "edge": lambda inputs: edge_op(inputs["denoise"]),
        "face": lambda inputs: face_op(inputs["edge"]),
        "consumer": lambda inputs: inputs["face"],
    }
