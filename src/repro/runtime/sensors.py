"""A second real workload: vibration-sensor anomaly detection.

The paper's introduction motivates stream processing with sensor data; this
module provides a complete sensor pipeline for the local runtime, with a
verifiable ground truth like the imaging one:

* :func:`synthetic_signal` — one window of machine-vibration samples: a
  base hum (low-frequency sinusoid + noise), optionally with an *anomaly*
  — a high-frequency resonance burst;
* :func:`detrend_op` — remove the mean and linear drift;
* :func:`spectrum_op` — FFT magnitude spectrum;
* :func:`detect_op` — high-band spectral energy ratio thresholding;
  returns ``True`` iff the window is anomalous.

``sensor_pipeline_graph()`` supplies a matching task graph (source ->
detrend -> spectrum -> detect -> sink) with requirement numbers scaled like
a lightweight edge-analytics job, and ``sensor_operators()`` the callables.
"""

from __future__ import annotations

from typing import Any

import numpy as np

from repro.core.taskgraph import CPU, ComputationTask, TaskGraph, TransportTask
from repro.utils.rng import ensure_rng

#: Samples per window.
WINDOW = 256
#: Sample rate the synthetic signal pretends to have (Hz).
SAMPLE_RATE = 1024.0
#: Anomalous resonance frequency (Hz) — well inside the high band.
ANOMALY_HZ = 400.0
#: Fraction of spectral energy above BAND_SPLIT_HZ that flags an anomaly.
ENERGY_RATIO_THRESHOLD = 0.25
BAND_SPLIT_HZ = 200.0


def synthetic_signal(
    anomalous: bool,
    *,
    rng: "int | np.random.Generator | None" = None,
    noise: float = 0.3,
) -> np.ndarray:
    """One window of vibration samples, optionally carrying an anomaly."""
    generator = ensure_rng(rng)
    t = np.arange(WINDOW) / SAMPLE_RATE
    signal = np.sin(2 * np.pi * 50.0 * t)              # base hum
    signal += 0.002 * np.arange(WINDOW)                 # slow drift
    signal += generator.normal(0.0, noise, WINDOW)      # sensor noise
    if anomalous:
        signal += 1.5 * np.sin(2 * np.pi * ANOMALY_HZ * t)
    return signal


def detrend_op(signal: np.ndarray) -> np.ndarray:
    """Remove mean and best-fit linear drift."""
    x = np.arange(signal.size)
    slope, intercept = np.polyfit(x, signal, 1)
    return signal - (slope * x + intercept)


def spectrum_op(signal: np.ndarray) -> np.ndarray:
    """One-sided FFT magnitude spectrum."""
    return np.abs(np.fft.rfft(signal))


def detect_op(spectrum: np.ndarray) -> bool:
    """Anomalous iff the high band holds a large share of the energy."""
    freqs = np.fft.rfftfreq(WINDOW, d=1.0 / SAMPLE_RATE)
    energy = spectrum**2
    total = float(energy.sum())
    if total <= 0:
        return False
    high = float(energy[freqs >= BAND_SPLIT_HZ].sum())
    return high / total >= ENERGY_RATIO_THRESHOLD


def sensor_pipeline_graph(
    *,
    name: str = "sensor-analytics",
    source_host: str | None = None,
    sink_host: str | None = None,
) -> TaskGraph:
    """source -> detrend -> spectrum -> detect -> sink, edge-scale costs."""
    cts = [
        ComputationTask("sensor", {}, pinned_host=source_host),
        ComputationTask("detrend", {CPU: 400.0}),
        ComputationTask("spectrum", {CPU: 1200.0}),
        ComputationTask("detect", {CPU: 150.0}),
        ComputationTask("alarm", {}, pinned_host=sink_host),
    ]
    tts = [
        TransportTask("raw", "sensor", "detrend", 0.066),        # 256 f32
        TransportTask("clean", "detrend", "spectrum", 0.066),
        TransportTask("spec", "spectrum", "detect", 0.033),
        TransportTask("flag", "detect", "alarm", 0.0001),
    ]
    return TaskGraph(name, cts, tts)


def sensor_operators() -> dict[str, Any]:
    """Operators for :func:`sensor_pipeline_graph` keyed by CT name."""
    return {
        "sensor": lambda inputs: inputs["__input__"],
        "detrend": lambda inputs: detrend_op(inputs["sensor"]),
        "spectrum": lambda inputs: spectrum_op(inputs["detrend"]),
        "detect": lambda inputs: detect_op(inputs["spectrum"]),
        "alarm": lambda inputs: inputs["detect"],
    }
