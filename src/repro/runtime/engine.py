"""A local stream-processing runtime: real operators, modeled network.

The paper's testbed ran a *real* OpenCV pipeline over physical machines.
This module is the in-process equivalent: every CT is a Python callable,
every data unit a real payload, and the dispersed network's constraints are
enforced by pacing — each network element is a worker thread with a FIFO
job queue whose jobs take ``modeled service seconds x time_scale`` of wall
time (the same queueing structure as :mod:`repro.simulator`, executed live).

What this buys over the discrete-event simulator:

* *functional correctness*: the payload actually flows through the
  operators, so the pipeline's output can be checked end to end;
* *systems realism*: backpressure, thread scheduling, and pacing behave
  like a small stream engine rather than an analytical model.

Throughput numbers are therefore noisy (wall-clock sleeps, GIL); tests
assert completeness and correctness tightly but rates only loosely.

Usage::

    runtime = LocalRuntime(network, placement, operators={"resize": fn, ...})
    outcome = runtime.process(payloads, rate=2.0)
    outcome.results        # ordered sink outputs
    outcome.modeled_rate   # delivered units per modeled second
"""

from __future__ import annotations

import queue
import threading
import time
from collections.abc import Callable, Mapping, Sequence
from dataclasses import dataclass, field
from typing import Any

from repro.core.network import Network
from repro.core.placement import CapacityView, Placement
from repro.core.taskgraph import BANDWIDTH
from repro.exceptions import SimulationError

#: An operator maps the dict of upstream payloads (keyed by predecessor CT
#: name; sources receive ``{"__input__": payload}``) to an output payload.
Operator = Callable[[dict[str, Any]], Any]

_STOP = object()


@dataclass
class RuntimeOutcome:
    """What one runtime session produced."""

    results: list[Any]
    emitted: int
    delivered: int
    wall_seconds: float
    modeled_seconds: float
    errors: list[str] = field(default_factory=list)

    @property
    def modeled_rate(self) -> float:
        """Delivered units per modeled second."""
        if self.modeled_seconds <= 0:
            return 0.0
        return self.delivered / self.modeled_seconds


class _ElementWorker(threading.Thread):
    """FIFO worker for one network element (NCP or link)."""

    def __init__(self, name: str, time_scale: float) -> None:
        super().__init__(name=f"element-{name}", daemon=True)
        self.jobs: "queue.Queue[Any]" = queue.Queue()
        self.time_scale = time_scale

    def run(self) -> None:
        while True:
            job = self.jobs.get()
            if job is _STOP:
                return
            service_modeled, action = job
            if service_modeled > 0:
                time.sleep(service_modeled * self.time_scale)
            action()


class LocalRuntime:
    """Execute a placed application's operators under network pacing."""

    def __init__(
        self,
        network: Network,
        placement: Placement,
        operators: Mapping[str, Operator],
        *,
        time_scale: float = 0.002,
        capacities: CapacityView | None = None,
        clock: Callable[[], float] = time.monotonic,
        sleep: Callable[[float], None] = time.sleep,
    ) -> None:
        if time_scale <= 0:
            raise SimulationError(f"time_scale must be positive, got {time_scale}")
        # Injectable for tests: a fake clock/sleep pair proves the emitter
        # pacing keeps bounded drift without real wall time.
        self._clock = clock
        self._sleep = sleep
        placement.validate(network)
        self.network = network
        self.placement = placement
        self.graph = placement.graph
        self.time_scale = time_scale
        self.capacities = capacities if capacities is not None else CapacityView(network)
        self.operators: dict[str, Operator] = {}
        for ct in self.graph.cts:
            operator = operators.get(ct.name)
            if operator is None:
                # Sources/sinks (and cost-free stages) default to identity
                # over their single input, or pass the dict through.
                operator = _default_operator
            self.operators[ct.name] = operator
        self._incoming: dict[str, list[str]] = {ct.name: [] for ct in self.graph.cts}
        for tt in self.graph.tts:
            self._incoming[tt.dst].append(tt.name)

    # ------------------------------------------------------------------
    def _ct_service(self, ct_name: str) -> float:
        ct = self.graph.ct(ct_name)
        host = self.placement.host(ct_name)
        worst = 0.0
        for resource, amount in ct.requirements.items():
            if amount <= 0:
                continue
            capacity = self.capacities.capacity(host, resource)
            if capacity <= 0:
                raise SimulationError(
                    f"CT {ct_name!r} needs {resource!r} on {host!r} which has none"
                )
            worst = max(worst, amount / capacity)
        return worst

    def _link_service(self, tt_name: str, link_name: str) -> float:
        tt = self.graph.tt(tt_name)
        if tt.megabits_per_unit <= 0:
            return 0.0
        capacity = self.capacities.capacity(link_name, BANDWIDTH)
        if capacity <= 0:
            raise SimulationError(
                f"TT {tt_name!r} routed over {link_name!r} which has no bandwidth"
            )
        return tt.megabits_per_unit / capacity

    # ------------------------------------------------------------------
    def process(
        self,
        payloads: Sequence[Any],
        rate: float,
        *,
        timeout: float = 60.0,
    ) -> RuntimeOutcome:
        """Push ``payloads`` through the pipeline at ``rate`` units/sec.

        Blocks until every unit is delivered (or ``timeout`` wall seconds
        pass — partial results are returned with an error note then).
        Sink outputs are collected in unit order; with several sinks, each
        unit's result is ``{sink_name: value}``.
        """
        if rate <= 0:
            raise SimulationError(f"rate must be positive, got {rate}")
        total = len(payloads)
        workers = {
            element: _ElementWorker(element, self.time_scale)
            for element in self.placement.used_elements()
        }
        for worker in workers.values():
            worker.start()

        lock = threading.Lock()
        arrived: dict[int, dict[str, Any]] = {u: {} for u in range(total)}
        outputs: dict[int, dict[str, Any]] = {u: {} for u in range(total)}
        done = threading.Event()
        delivered = [0]
        errors: list[str] = []
        sinks = set(self.graph.sinks)

        def fail(message: str) -> None:
            with lock:
                errors.append(message)
            done.set()

        def deliver(unit: int, sink: str, value: Any) -> None:
            with lock:
                outputs[unit][sink] = value
                if len(outputs[unit]) == len(sinks):
                    delivered[0] += 1
                    if delivered[0] == total:
                        done.set()

        def start_ct(unit: int, ct_name: str, inputs: dict[str, Any]) -> None:
            host = self.placement.host(ct_name)
            service = self._ct_service(ct_name)

            def action() -> None:
                try:
                    value = self.operators[ct_name](inputs)
                except Exception as error:  # noqa: BLE001 — surfaced to caller
                    fail(f"operator {ct_name!r} failed on unit {unit}: {error!r}")
                    return
                if ct_name in sinks:
                    deliver(unit, ct_name, value)
                for tt in self.graph.tts:
                    if tt.src == ct_name:
                        advance_tt(unit, tt.name, value, 0)

            workers[host].jobs.put((service, action))

        def advance_tt(unit: int, tt_name: str, value: Any, hop: int) -> None:
            route = self.placement.route(tt_name)
            if hop >= len(route):
                tt = self.graph.tt(tt_name)
                with lock:
                    arrived[unit][tt_name] = value
                    ready = all(
                        name in arrived[unit] for name in self._incoming[tt.dst]
                    )
                    inputs = (
                        {
                            self.graph.tt(name).src: arrived[unit][name]
                            for name in self._incoming[tt.dst]
                        }
                        if ready
                        else None
                    )
                if ready and inputs is not None:
                    start_ct(unit, tt.dst, inputs)
                return
            link_name = route[hop]
            service = self._link_service(tt_name, link_name)
            workers[link_name].jobs.put(
                (service, lambda: advance_tt(unit, tt_name, value, hop + 1))
            )

        start_wall = time.monotonic()

        sources = list(self.graph.sources)

        def source_inputs(payload: Any) -> dict[str, Any]:
            """Per-source payloads: a dict keyed by source names splits the
            unit across sources; anything else goes to every source."""
            if (
                isinstance(payload, dict)
                and len(sources) > 1
                and set(payload) == set(sources)
            ):
                return payload
            return {source: payload for source in sources}

        def emit() -> None:
            gap = (1.0 / rate) * self.time_scale
            emit_start = self._clock()
            for unit, payload in enumerate(payloads):
                per_source = source_inputs(payload)
                for source in sources:
                    start_ct(unit, source, {"__input__": per_source[source]})
                if unit != total - 1:
                    # Re-anchor each sleep against the emission schedule
                    # (start + (unit+1)*gap) instead of sleeping a fixed
                    # gap: per-sleep overshoot no longer accumulates, so
                    # drift stays bounded by a single sleep's error over
                    # arbitrarily long payload streams.
                    remaining = emit_start + (unit + 1) * gap - self._clock()
                    if remaining > 0:
                        self._sleep(remaining)

        emitter = threading.Thread(target=emit, name="emitter", daemon=True)
        emitter.start()
        finished = done.wait(timeout=timeout) if total else True
        wall = time.monotonic() - start_wall
        if not finished:
            errors.append(
                f"timeout: {delivered[0]}/{total} units delivered "
                f"after {timeout}s wall time"
            )
        for worker in workers.values():
            worker.jobs.put(_STOP)
        results: list[Any] = []
        with lock:
            for unit in range(total):
                if len(outputs[unit]) != len(sinks):
                    continue
                if len(sinks) == 1:
                    results.append(next(iter(outputs[unit].values())))
                else:
                    results.append(dict(outputs[unit]))
        return RuntimeOutcome(
            results=results,
            emitted=total,
            delivered=delivered[0],
            wall_seconds=wall,
            modeled_seconds=wall / self.time_scale,
            errors=errors,
        )


def _default_operator(inputs: dict[str, Any]) -> Any:
    """Identity: pass the single input through (or the dict when several)."""
    if len(inputs) == 1:
        return next(iter(inputs.values()))
    return dict(inputs)
