"""Fig. 13 — two BE applications with unequal priorities.

Two diamond-task-graph BE applications (P1 = 2 * P2) share a random
eight-NCP star in the balanced regime.  For every task-assignment
algorithm, both apps are placed through the same Fig. 3 pipeline (Eq. (6)
prediction + Problem (4) allocation); the reported quantity is the achieved
weighted proportional-fairness utility — the objective of (4).

Paper claim: SPARCLE's placements yield the best utility CDF; the
allocation layer is identical across algorithms, so the gap is purely the
placement quality.
"""

from __future__ import annotations

import math

from repro.baselines import gs_assign, tstorm_assign, vne_assign
from repro.baselines.greedy import grand_assigner
from repro.baselines.naive import random_assigner
from repro.core.assignment import sparcle_assign
from repro.core.scheduler import BERequest, SparcleScheduler
from repro.exceptions import SparcleError
from repro.experiments.base import DEFAULT_TRIALS, ExperimentResult
from repro.utils.rng import ensure_rng, spawn_rngs
from repro.utils.stats import mean
from repro.workloads.scenarios import (
    BottleneckCase,
    GraphKind,
    TopologyKind,
    make_scenario,
    random_task_graph,
)

#: Priorities of the two applications (P1 = 2 * P2).
PRIORITY_1 = 2.0
PRIORITY_2 = 1.0

#: Utility assigned when a trial fails entirely (rates ~ 0).
FLOOR_UTILITY = -30.0


def _assigners(rng):
    generator = ensure_rng(rng)
    return {
        "SPARCLE": sparcle_assign,
        "GRand": grand_assigner(generator),
        "GS": gs_assign,
        "Random": random_assigner(generator),
        "T-Storm": tstorm_assign,
        "VNE": vne_assign,
    }


def run(*, trials: int = DEFAULT_TRIALS, seed: int = 13) -> ExperimentResult:
    """Reproduce Fig. 13; series hold per-trial utilities per algorithm."""
    rows: list[list[object]] = []
    series: dict[str, list[float]] = {}
    for rng in spawn_rngs(seed, trials):
        scenario = make_scenario(
            BottleneckCase.BALANCED, GraphKind.DIAMOND, TopologyKind.STAR,
            rng, n_ncps=8,
        )
        second_graph = random_task_graph(GraphKind.DIAMOND, rng)
        second_graph = second_graph.with_pins(
            {
                "ct1": scenario.graph.ct("ct1").pinned_host,
                "ct8": scenario.graph.ct("ct8").pinned_host,
            },
            name="app2",
        )
        for label, assigner in _assigners(rng).items():
            scheduler = SparcleScheduler(scenario.network, assigner=assigner)
            try:
                d1 = scheduler.submit_be(
                    BERequest("app1", scenario.graph, priority=PRIORITY_1)
                )
                d2 = scheduler.submit_be(
                    BERequest("app2", second_graph, priority=PRIORITY_2)
                )
                if not (d1.accepted and d2.accepted):
                    raise SparcleError("placement rejected")
                allocation = scheduler.allocate_be()
                utility = allocation.utility
                if not math.isfinite(utility):
                    utility = FLOOR_UTILITY
            except SparcleError:
                utility = FLOOR_UTILITY
            series.setdefault(label, []).append(max(utility, FLOOR_UTILITY))
    for label, values in series.items():
        rows.append([label, mean(values)])
    best = max(rows, key=lambda row: row[1])[0]
    notes = [f"highest mean utility: {best} (paper: SPARCLE)"]
    return ExperimentResult(
        experiment_id="fig13",
        title="Utility of Problem (4) with two BE apps, P1 = 2*P2",
        headers=["algorithm", "mean_utility"],
        rows=rows,
        series=series,
        notes=notes,
    )
