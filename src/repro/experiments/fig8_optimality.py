"""Fig. 8 — SPARCLE's rate as a fraction of the exhaustive optimum.

Random linear-task-graph instances (four compute CTs) on linear and
fully-connected five-NCP networks, across the three bottleneck regimes;
reports the 25/50/75th percentiles of ``SPARCLE rate / optimal rate``.

Paper claim: SPARCLE almost always finds the optimal rate (the plotted
percentiles hug 1.0).
"""

from __future__ import annotations

from repro.baselines import optimal_assign
from repro.core.assignment import sparcle_assign
from repro.core.placement import CapacityView
from repro.experiments.base import DEFAULT_TRIALS, ExperimentResult
from repro.utils.rng import spawn_rngs
from repro.utils.stats import percentile_summary
from repro.workloads.scenarios import (
    BottleneckCase,
    GraphKind,
    TopologyKind,
    make_scenario,
)

#: Network size used by the sweep (exhaustive search stays tractable).
N_NCPS = 5

CASES = (BottleneckCase.NCP, BottleneckCase.BALANCED, BottleneckCase.LINK)
TOPOLOGIES = (TopologyKind.LINEAR, TopologyKind.FULL)


def run(*, trials: int = DEFAULT_TRIALS, seed: int = 8) -> ExperimentResult:
    """Reproduce Fig. 8 (both subfigures)."""
    rows: list[list[object]] = []
    series: dict[str, list[float]] = {}
    notes: list[str] = []
    for topology in TOPOLOGIES:
        for case in CASES:
            ratios: list[float] = []
            for rng in spawn_rngs(seed, trials):
                scenario = make_scenario(
                    case, GraphKind.LINEAR, topology, rng,
                    n_ncps=N_NCPS, n_linear_cts=4,
                )
                caps = CapacityView(scenario.network)
                sparcle = sparcle_assign(scenario.graph, scenario.network, caps)
                optimal = optimal_assign(
                    scenario.graph, scenario.network, CapacityView(scenario.network)
                )
                if optimal.rate <= 0:
                    continue
                ratios.append(min(1.0, sparcle.rate / optimal.rate))
            summary = percentile_summary(ratios, (25.0, 50.0, 75.0))
            rows.append(
                [topology.value, case.value,
                 summary[25.0], summary[50.0], summary[75.0]]
            )
            series[f"{topology.value}/{case.value}"] = ratios
    medians = [row[3] for row in rows]
    notes.append(
        f"median SPARCLE/optimal across all cells: "
        f"{min(medians):.3f}..{max(medians):.3f} (paper: ~1.0 everywhere)"
    )
    return ExperimentResult(
        experiment_id="fig8",
        title="SPARCLE rate / optimal rate percentiles (linear task graph)",
        headers=["topology", "case", "p25", "p50", "p75"],
        rows=rows,
        series=series,
        notes=notes,
    )
