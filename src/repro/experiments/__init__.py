"""Experiment harness: one module per figure/table of the paper's Sec. V.

Each module exposes ``run(...) -> ExperimentResult`` and fixes its seeds, so
``python -m repro <experiment>`` prints the same rows every time.
"""

from repro.experiments import (
    federation,
    fig6_testbed,
    fig8_optimality,
    fig9_energy,
    fig10_qoe,
    fig11_cdf,
    fig12_multiresource,
    fig13_multiapp,
    fig14_gr,
    geometric,
    online_arrivals,
    robustness,
)
from repro.experiments.base import DEFAULT_TRIALS, ExperimentResult, safe_rate

#: Registry used by the CLI: experiment id -> run callable.
EXPERIMENTS = {
    "fig6": fig6_testbed.run,
    "fig8": fig8_optimality.run,
    "fig9": fig9_energy.run,
    "fig10": fig10_qoe.run,
    "fig11": fig11_cdf.run,
    "fig12": fig12_multiresource.run,
    "fig13": fig13_multiapp.run,
    "fig14": fig14_gr.run,
    "federation": federation.run,
    "geometric": geometric.run,
    "gateway": online_arrivals.run_gateway,
    "online": online_arrivals.run,
    "robustness": robustness.run,
    "repair": robustness.run_repair,
}

__all__ = [
    "DEFAULT_TRIALS",
    "EXPERIMENTS",
    "ExperimentResult",
    "safe_rate",
]
