"""Extension experiment: algorithm comparison on geometric IoT networks.

The paper's simulations use regular topologies (star, linear, fully
connected).  Real dispersed deployments look more like random geometric
graphs — nodes scattered over an area, radio links whose bandwidth decays
with distance.  This extension re-runs the Fig. 11-style comparison on
:func:`repro.workloads.generators.random_geometric_network` instances with
layered random task graphs, checking that SPARCLE's lead is not an artifact
of the regular topologies.
"""

from __future__ import annotations

from repro.baselines import gs_assign, tstorm_assign, vne_assign
from repro.baselines.greedy import grand_assign
from repro.baselines.naive import random_assign
from repro.baselines.rstorm import rstorm_assign
from repro.core.assignment import sparcle_assign
from repro.core.placement import CapacityView
from repro.exceptions import InfeasiblePlacementError
from repro.experiments.base import ExperimentResult
from repro.utils.rng import ensure_rng, spawn_rngs
from repro.utils.stats import mean
from repro.workloads.generators import (
    random_geometric_network,
    random_layered_task_graph,
)

#: Network size and radio range of the sweep.
N_NCPS = 10
RADIUS = 0.4


def _algorithms(rng):
    generator = ensure_rng(rng)
    return {
        "SPARCLE": sparcle_assign,
        "GRand": lambda g, n, c=None: grand_assign(g, n, c, rng=generator),
        "GS": gs_assign,
        "Random": lambda g, n, c=None: random_assign(g, n, c, rng=generator),
        "T-Storm": tstorm_assign,
        "VNE": vne_assign,
        "R-Storm": rstorm_assign,
    }


def run(*, trials: int = 25, seed: int = 88) -> ExperimentResult:
    """The geometric-network comparison; one row per algorithm."""
    per_algorithm: dict[str, list[float]] = {}
    for rng in spawn_rngs(seed, trials):
        network = random_geometric_network(
            rng, n_ncps=N_NCPS, radius=RADIUS,
            cpu_range=(1000.0, 5000.0), bandwidth_at_zero=30.0,
        )
        graph = random_layered_task_graph(
            rng, depth=3, width=3,
            cpu_range=(500.0, 4000.0), tt_range=(1.0, 8.0),
        )
        names = list(network.ncp_names)
        source = names[int(rng.integers(0, len(names)))]
        sink = names[int(rng.integers(0, len(names)))]
        if sink == source:
            sink = names[(names.index(source) + 1) % len(names)]
        graph = graph.with_pins({"source": source, "sink": sink})
        for label, algorithm in _algorithms(rng).items():
            try:
                result = algorithm(graph, network, CapacityView(network))
                rate = max(result.rate, 0.0)
            except InfeasiblePlacementError:
                rate = 0.0
            per_algorithm.setdefault(label, []).append(rate)
    rows = [[label, mean(values)] for label, values in per_algorithm.items()]
    best = max(rows, key=lambda row: row[1])[0]
    notes = [
        f"best mean rate on geometric IoT networks: {best}",
        "layered random DAGs (depth<=3, width<=3), 10-node geometric nets",
    ]
    return ExperimentResult(
        experiment_id="geometric",
        title="Algorithm comparison on geometric IoT networks (extension)",
        headers=["algorithm", "mean_rate"],
        rows=rows,
        series={f"geometric/{label}": v for label, v in per_algorithm.items()},
        notes=notes,
    )
