"""Fig. 9 — energy efficiency of the resulting placements.

Random linear-task-graph instances on linear networks in the three
bottleneck regimes; each algorithm's placement runs at its own achievable
rate, and the metric is data units processed per joule under the
smartphone-class energy model of :mod:`repro.energy`.

Paper claims: SPARCLE improves average energy efficiency by ~126%/190%/59%
over Random/T-Storm/VNE in the balanced case and by >53% over GS/GRand in
the link-bottleneck case (concentrating chatty CTs saves radio energy).
"""

from __future__ import annotations

from repro.baselines import gs_assign, tstorm_assign, vne_assign
from repro.baselines.greedy import grand_assign
from repro.baselines.naive import random_assign
from repro.core.assignment import sparcle_assign
from repro.core.placement import CapacityView
from repro.energy import energy_efficiency
from repro.exceptions import InfeasiblePlacementError
from repro.experiments.base import DEFAULT_TRIALS, ExperimentResult
from repro.utils.rng import ensure_rng, spawn_rngs
from repro.utils.stats import mean
from repro.workloads.scenarios import (
    BottleneckCase,
    GraphKind,
    TopologyKind,
    make_scenario,
)

CASES = (BottleneckCase.BALANCED, BottleneckCase.NCP, BottleneckCase.LINK)


def _algorithms(rng):
    """Fig. 9's legend: deterministic + seeded stochastic baselines."""
    generator = ensure_rng(rng)
    return {
        "SPARCLE": sparcle_assign,
        "GRand": lambda g, n, c=None: grand_assign(g, n, c, rng=generator),
        "GS": gs_assign,
        "Random": lambda g, n, c=None: random_assign(g, n, c, rng=generator),
        "T-Storm": tstorm_assign,
        "VNE": vne_assign,
    }


def run(*, trials: int = DEFAULT_TRIALS, seed: int = 9) -> ExperimentResult:
    """Reproduce Fig. 9."""
    rows: list[list[object]] = []
    series: dict[str, list[float]] = {}
    for case in CASES:
        per_algorithm: dict[str, list[float]] = {}
        for rng in spawn_rngs(seed, trials):
            scenario = make_scenario(
                case, GraphKind.LINEAR, TopologyKind.LINEAR, rng, n_ncps=6,
            )
            for label, algorithm in _algorithms(rng).items():
                try:
                    result = algorithm(
                        scenario.graph, scenario.network,
                        CapacityView(scenario.network),
                    )
                except InfeasiblePlacementError:
                    per_algorithm.setdefault(label, []).append(0.0)
                    continue
                if result.rate <= 0:
                    per_algorithm.setdefault(label, []).append(0.0)
                    continue
                efficiency = energy_efficiency(
                    scenario.network, result.placement, result.rate
                )
                per_algorithm.setdefault(label, []).append(efficiency)
        for label, values in per_algorithm.items():
            rows.append([case.value, label, mean(values)])
            series[f"{case.value}/{label}"] = values
    notes = []
    balanced = {row[1]: row[2] for row in rows if row[0] == BottleneckCase.BALANCED.value}
    for rival in ("Random", "T-Storm", "VNE"):
        if balanced.get(rival, 0.0) > 0:
            gain = 100.0 * (balanced["SPARCLE"] / balanced[rival] - 1.0)
            notes.append(f"balanced: SPARCLE vs {rival}: +{gain:.0f}%")
    link = {row[1]: row[2] for row in rows if row[0] == BottleneckCase.LINK.value}
    for rival in ("GS", "GRand"):
        if link.get(rival, 0.0) > 0:
            gain = 100.0 * (link["SPARCLE"] / link[rival] - 1.0)
            notes.append(f"link-bottleneck: SPARCLE vs {rival}: +{gain:.0f}%")
    return ExperimentResult(
        experiment_id="fig9",
        title="Mean energy efficiency (data units per joule)",
        headers=["case", "algorithm", "mean_efficiency"],
        rows=rows,
        series=series,
        notes=notes,
    )
