"""Fig. 11 — CDFs of the processing rate, diamond task graph on a star.

Random diamond-graph instances on an eight-NCP star, one CDF per bottleneck
regime, comparing SPARCLE against GRand, GS, Random, T-Storm, and VNE.

Paper claims reproduced here:

* **11(a) NCP-bottleneck** — SPARCLE and GS coincide: with link capacities
  slack, gamma reduces to the NCP term and the dynamic ranking degenerates
  to requirement-sorted order;
* **11(b) link-bottleneck** — SPARCLE clearly dominates; the gap to GS/GRand
  (same placement machinery, static order) isolates the dynamic ranking;
* **11(c) balanced** — SPARCLE's mean beats Random/T-Storm/GS/GRand/VNE
  (paper: +82/69/22/17/8%).
"""

from __future__ import annotations

from repro.baselines import gs_assign, tstorm_assign, vne_assign
from repro.baselines.greedy import grand_assign
from repro.baselines.naive import random_assign
from repro.core.assignment import sparcle_assign
from repro.core.placement import CapacityView
from repro.exceptions import InfeasiblePlacementError
from repro.experiments.base import DEFAULT_TRIALS, ExperimentResult
from repro.utils.rng import ensure_rng, spawn_rngs
from repro.utils.stats import mean
from repro.workloads.scenarios import (
    BottleneckCase,
    GraphKind,
    TopologyKind,
    make_scenario,
)

CASES = (BottleneckCase.NCP, BottleneckCase.LINK, BottleneckCase.BALANCED)


def _algorithms(rng):
    generator = ensure_rng(rng)
    return {
        "SPARCLE": sparcle_assign,
        "GRand": lambda g, n, c=None: grand_assign(g, n, c, rng=generator),
        "GS": gs_assign,
        "Random": lambda g, n, c=None: random_assign(g, n, c, rng=generator),
        "T-Storm": tstorm_assign,
        "VNE": vne_assign,
    }


def run(*, trials: int = DEFAULT_TRIALS, seed: int = 11) -> ExperimentResult:
    """Reproduce Fig. 11(a)-(c); series hold the raw per-trial rates."""
    rows: list[list[object]] = []
    series: dict[str, list[float]] = {}
    notes: list[str] = []
    for case in CASES:
        per_algorithm: dict[str, list[float]] = {}
        for rng in spawn_rngs(seed, trials):
            scenario = make_scenario(
                case, GraphKind.DIAMOND, TopologyKind.STAR, rng, n_ncps=8,
            )
            for label, algorithm in _algorithms(rng).items():
                try:
                    result = algorithm(
                        scenario.graph, scenario.network,
                        CapacityView(scenario.network),
                    )
                    rate = max(result.rate, 0.0)
                except InfeasiblePlacementError:
                    rate = 0.0
                per_algorithm.setdefault(label, []).append(rate)
        for label, values in per_algorithm.items():
            rows.append([case.value, label, mean(values)])
            series[f"{case.value}/{label}"] = values
    balanced = {
        row[1]: row[2] for row in rows if row[0] == BottleneckCase.BALANCED.value
    }
    for rival in ("Random", "T-Storm", "GS", "GRand", "VNE"):
        if balanced.get(rival, 0.0) > 0:
            gain = 100.0 * (balanced["SPARCLE"] / balanced[rival] - 1.0)
            notes.append(f"balanced: SPARCLE vs {rival}: +{gain:.0f}%")
    ncp = {row[1]: row[2] for row in rows if row[0] == BottleneckCase.NCP.value}
    if ncp.get("GS", 0.0) > 0:
        notes.append(
            f"NCP-bottleneck: SPARCLE/GS mean ratio = "
            f"{ncp['SPARCLE'] / ncp['GS']:.3f} (paper: equivalent)"
        )
    link = {row[1]: row[2] for row in rows if row[0] == BottleneckCase.LINK.value}
    if link.get("GS", 0.0) > 0:
        gain = 100.0 * (link["SPARCLE"] / link["GS"] - 1.0)
        notes.append(f"link-bottleneck: SPARCLE vs GS: +{gain:.0f}% (paper: ~30%)")
    return ExperimentResult(
        experiment_id="fig11",
        title="Processing-rate CDFs (diamond graph, 8-NCP star)",
        headers=["case", "algorithm", "mean_rate"],
        rows=rows,
        series=series,
        notes=notes,
    )
