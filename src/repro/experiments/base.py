"""Common harness for the per-figure experiment modules.

Every experiment module exposes ``run(...) -> ExperimentResult``; the result
carries the same rows/series the paper's figure or table reports, renders as
an aligned text table, and is consumed by the corresponding benchmark.
Experiments fix their random seeds so output is identical run-to-run.
"""

from __future__ import annotations

from collections.abc import Callable, Sequence
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any

from repro.core.assignment import AssignmentResult
from repro.core.network import Network
from repro.core.placement import CapacityView
from repro.core.taskgraph import TaskGraph
from repro.exceptions import InfeasiblePlacementError, SparcleError
from repro.perf import exporters, tracing
from repro.utils.tables import format_table

#: Default trial count for randomized sweeps (enough for stable percentiles
#: while keeping the full suite fast).
DEFAULT_TRIALS = 40


@dataclass
class ExperimentResult:
    """One experiment's reproduction output.

    ``rows`` is the table the paper's figure plots (or the table itself);
    ``series`` optionally carries raw per-trial values (e.g. for CDFs);
    ``notes`` records the paper's headline claims next to what we measured.
    """

    experiment_id: str
    title: str
    headers: Sequence[str]
    rows: list[Sequence[Any]]
    series: dict[str, list[float]] = field(default_factory=dict)
    notes: list[str] = field(default_factory=list)

    def to_text(self, *, ndigits: int = 4) -> str:
        """Render the result as an aligned text table plus notes."""
        parts = [
            format_table(
                self.headers,
                self.rows,
                ndigits=ndigits,
                title=f"[{self.experiment_id}] {self.title}",
            )
        ]
        for note in self.notes:
            parts.append(f"  note: {note}")
        return "\n".join(parts)

    def column(self, header: str) -> list[Any]:
        """Extract one column by header name."""
        try:
            index = list(self.headers).index(header)
        except ValueError:
            raise SparcleError(f"no column named {header!r}") from None
        return [row[index] for row in self.rows]


def traced_run(
    run: Callable[..., "ExperimentResult"],
    *,
    capacity: int | None = None,
    **kwargs: Any,
) -> tuple["ExperimentResult", tracing.Tracer]:
    """Run one experiment with structured tracing enabled.

    A fresh :class:`~repro.perf.tracing.Tracer` is installed for the
    call's context (so nothing leaks into — or from — the process-wide
    tracer) and returned alongside the result for export or inspection.
    """
    scoped = tracing.Tracer(capacity or tracing.DEFAULT_CAPACITY)
    scoped.enable()
    with tracing.use_tracer(scoped):
        result = run(**kwargs)
    return result, scoped


def export_observability(
    directory: str | Path,
    *,
    experiment_id: str = "",
    tracer_obj: tracing.Tracer | None = None,
    labeled: Any = None,
    extra: dict[str, Any] | None = None,
) -> dict[str, Path]:
    """Write the run's observability artifacts next to its data exports.

    Produces ``<id>_trace.jsonl`` (every structured record), ``<id>_perf
    .prom`` (Prometheus-style counters/metrics snapshot), and
    ``<id>_report.json`` (the merged run report), mirroring
    :func:`repro.experiments.export.save_result`'s naming.
    """
    metadata = {"experiment_id": experiment_id} if experiment_id else {}
    if extra:
        metadata.update(extra)
    return exporters.export_run(
        directory,
        tracer_obj=tracer_obj,
        labeled=labeled,
        extra=metadata or None,
        prefix=f"{experiment_id}_" if experiment_id else "",
    )


def safe_rate(
    assigner: Callable[[TaskGraph, Network, CapacityView], AssignmentResult],
    graph: TaskGraph,
    network: Network,
    capacities: CapacityView | None = None,
) -> float:
    """Run an assigner, mapping infeasibility to a zero rate.

    Baselines occasionally corner themselves into unroutable placements on
    random instances; the paper's comparisons count those as zero-rate
    outcomes rather than crashing the sweep.
    """
    try:
        result = assigner(
            graph, network, capacities if capacities is not None else CapacityView(network)
        )
    except InfeasiblePlacementError:
        return 0.0
    return max(result.rate, 0.0)
