"""Extension experiment: federated admission under diurnal/bursty arrivals.

The paper's control loop is a single admission point; this extension
partitions the dispersed network into regions and runs one gateway per
region behind a :class:`~repro.service.shard.ShardCoordinator`, which
brokers placements that span regions through a two-phase reserve/commit
protocol.  The offered load follows a *diurnal* profile — per-epoch
arrival counts modulated by a day/night sinusoid — with random *bursts*
layered on top, so the shards see both sustained peaks and correlated
spikes.

Per shard count we measure acceptance, the cross-shard traffic share, and
the coordinator's optimistic-concurrency accounting (conflicts and serial
fallbacks).  The 1-shard row is the control: it must accept exactly what a
plain :class:`~repro.service.gateway.AdmissionGateway` accepts (the
property suite proves bit-for-bit identity; here the row makes the cost of
federation visible next to its scale-out).
"""

from __future__ import annotations

import math

from repro.core.assignment import sparcle_assign
from repro.core.network import fully_connected_network
from repro.core.scheduler import BERequest, GRRequest
from repro.core.taskgraph import linear_task_graph
from repro.experiments.base import ExperimentResult
from repro.service.shard import ShardCoordinator
from repro.utils.rng import ensure_rng, spawn_rngs

#: Network size and the finest region grain (4 regions of 3 NCPs).
N_NCPS = 12
N_REGIONS = 4
#: Diurnal profile: per-epoch arrivals = BASE * (1 + AMPLITUDE*sin(...)),
#: one full "day" every PERIOD epochs, plus bursts of BURST_FACTOR x with
#: probability BURST_PROB per epoch.
BASE_ARRIVALS = 4.0
AMPLITUDE = 0.75
PERIOD = 12
BURST_PROB = 0.15
BURST_FACTOR = 3.0
#: Fraction of applications whose pins stay inside one (finest) region.
INTRA_FRACTION = 0.85
#: GR share of the mix and the requested min-rate range (fractions of the
#: solo SPARCLE reference rate).
GR_FRACTION = 0.6
RATE_FRACTIONS = (0.05, 0.25)


def diurnal_counts(rng, epochs: int) -> list[int]:
    """Per-epoch arrival counts for a diurnal + bursty trace."""
    generator = ensure_rng(rng)
    counts = []
    for epoch in range(epochs):
        rate = BASE_ARRIVALS * (
            1.0 + AMPLITUDE * math.sin(2.0 * math.pi * epoch / PERIOD)
        )
        if generator.random() < BURST_PROB:
            rate *= BURST_FACTOR
        counts.append(int(generator.poisson(max(rate, 0.0))))
    return counts


def _trace(rng, epochs: int):
    """The full arrival trace: ``[(epoch, [requests...]), ...]``.

    Pins are drawn against the *finest* region grain so the same trace is
    meaningful for every shard count: an intra-region pair stays local at
    any grain; a cross-region pair may or may not span shards depending on
    how regions are grouped.
    """
    generator = ensure_rng(rng)
    network = fully_connected_network(
        N_NCPS, name="federation-net", cpu=40000.0, link_bandwidth=200.0
    )
    regions = [
        [f"ncp{k + 1}" for k in range(N_NCPS) if k // (N_NCPS // N_REGIONS) == r]
        for r in range(N_REGIONS)
    ]
    base_graph = linear_task_graph(3, cpu_per_ct=600.0, megabits_per_tt=2.0)
    reference = max(sparcle_assign(base_graph, network).rate, 1e-6)
    counts = diurnal_counts(generator, epochs)
    index = 0
    trace = []
    for epoch, count in enumerate(counts):
        batch = []
        for _ in range(count):
            if generator.random() < INTRA_FRACTION:
                region = regions[int(generator.integers(N_REGIONS))]
                src, dst = generator.choice(region, size=2, replace=False)
            else:
                r1, r2 = generator.choice(N_REGIONS, size=2, replace=False)
                src = generator.choice(regions[int(r1)])
                dst = generator.choice(regions[int(r2)])
            graph = base_graph.with_pins(
                {"source": str(src), "sink": str(dst)}, name=f"app{index}"
            )
            if generator.random() < GR_FRACTION:
                fraction = float(generator.uniform(*RATE_FRACTIONS))
                batch.append(
                    GRRequest(f"app{index}", graph,
                              min_rate=fraction * reference, max_paths=2)
                )
            else:
                batch.append(BERequest(f"app{index}", graph))
            index += 1
        trace.append((epoch, batch))
    return network, trace


def run(*, epochs: int = 36, seed: int = 83) -> ExperimentResult:
    """Drive the identical diurnal trace through 1-, 2-, and 4-shard plans."""
    network, trace = _trace(ensure_rng(seed), epochs)
    offered = sum(len(batch) for _, batch in trace)
    offered_gr = sum(
        isinstance(r, GRRequest) for _, batch in trace for r in batch
    )
    rows = []
    per_config = spawn_rngs(ensure_rng(seed + 1), 3)
    for n_shards, _ in zip((1, 2, 4), per_config):
        zones = {
            f"ncp{k + 1}": (k // (N_NCPS // N_REGIONS)) % n_shards
            for k in range(N_NCPS)
        }
        with ShardCoordinator(
            network, n_shards=n_shards, zones=zones,
            max_queue_depth=max(offered, 1),
        ) as coordinator:
            for _, batch in trace:
                for request in batch:
                    coordinator.submit(request)
                coordinator.run_epoch()
            coordinator.drain()
            stats = coordinator.stats
            rows.append([
                f"{n_shards}-shard", offered, stats.accepted,
                stats.accepted / offered if offered else 0.0,
                stats.cross_submitted, stats.cross_conflicts,
                stats.cross_serial_fallbacks, coordinator.epoch,
            ])
    notes = [
        f"diurnal trace: {offered} arrivals over {epochs} epochs "
        f"({offered_gr} GR / {offered - offered_gr} BE), "
        f"day length {PERIOD} epochs, burst x{BURST_FACTOR:g} "
        f"w.p. {BURST_PROB:g}",
        f"{INTRA_FRACTION:.0%} of pins stay inside one of "
        f"{N_REGIONS} regions of {N_NCPS // N_REGIONS} NCPs",
        "1-shard row is the single-gateway control "
        "(decision-identical by the shard property suite)",
        "federation trades acceptance for isolation: locally routed "
        "applications see only their shard's path diversity, so fewer "
        "parallel widest paths back each GR reservation",
    ]
    return ExperimentResult(
        experiment_id="federation",
        title="Sharded admission under diurnal/bursty arrivals (extension)",
        headers=["plan", "offered", "accepted", "accept_ratio",
                 "cross", "conflicts", "fallbacks", "epochs"],
        rows=rows,
        notes=notes,
    )
