"""Extension experiment: QoE robustness across failure probabilities.

Fig. 10 fixes the link failure probability at 2%; this extension sweeps it
(1%, 5%, 10%) and reports, per number of task assignment paths:

* the BE availability (at least one path up);
* the GR min-rate availability for a requirement just above the first
  path's rate (Eq. (7));
* the *expected* aggregate processing rate under failures.

The qualitative claim being stress-tested: multipath placement buys QoE
fastest when elements are least reliable — at 1% a single path is often
enough, at 10% even three paths may not reach ambitious targets.
"""

from __future__ import annotations

from repro.core.assignment import sparcle_assign
from repro.core.availability import (
    PathProfile,
    any_path_availability,
    expected_rate,
    min_rate_availability,
)
from repro.core.placement import CapacityView
from repro.core.network import star_network
from repro.core.taskgraph import linear_task_graph
from repro.experiments.base import ExperimentResult

#: Failure probabilities swept (per link).
FAILURE_PROBABILITIES = (0.01, 0.05, 0.10)
MAX_PATHS = 3
#: GR requirement as a multiple of the first path's rate.
RATE_FACTOR = 1.02


def _instance(pf: float):
    network = star_network(
        7, hub_cpu=500.0, leaf_cpu=2500.0, link_bandwidth=30.0,
        link_failure_probability=pf,
    )
    graph = linear_task_graph(3, cpu_per_ct=2000.0, megabits_per_tt=3.0)
    graph = graph.with_pins({"source": "ncp1", "sink": "ncp2"})
    return network, graph


def _find_paths(graph, network, count: int):
    caps = CapacityView(network)
    placements, rates = [], []
    for _ in range(count):
        result = sparcle_assign(graph, network, caps)
        if result.rate <= 1e-9:
            break
        placements.append(result.placement)
        rates.append(result.rate)
        caps.consume(result.placement.loads(), result.rate)
    return placements, rates


def run() -> ExperimentResult:
    """The robustness sweep; one row per (pf, path count)."""
    rows: list[list[object]] = []
    notes: list[str] = []
    for pf in FAILURE_PROBABILITIES:
        network, graph = _instance(pf)
        placements, rates = _find_paths(graph, network, MAX_PATHS)
        min_rate = rates[0] * RATE_FACTOR
        for k in range(1, len(placements) + 1):
            profiles = [
                PathProfile.of(p, r)
                for p, r in zip(placements[:k], rates[:k])
            ]
            rows.append([
                pf,
                k,
                any_path_availability(network, placements[:k]),
                min_rate_availability(network, profiles, min_rate),
                expected_rate(network, profiles),
            ])
    # Headline: how much availability does the 3rd path buy at each pf?
    for pf in FAILURE_PROBABILITIES:
        cells = [row for row in rows if row[0] == pf]
        gain = cells[-1][2] - cells[0][2]
        notes.append(
            f"pf={pf}: paths 1->{len(cells)} raise BE availability by "
            f"{gain:.4f} (from {cells[0][2]:.4f})"
        )
    return ExperimentResult(
        experiment_id="robustness",
        title="QoE vs path count across failure probabilities (extension)",
        headers=["pf", "paths", "be_availability", "gr_min_rate_availability",
                 "expected_rate"],
        rows=rows,
        notes=notes,
    )
