"""Extension experiment: QoE robustness across failure probabilities.

Fig. 10 fixes the link failure probability at 2%; this extension sweeps it
(1%, 5%, 10%) and reports, per number of task assignment paths:

* the BE availability (at least one path up);
* the GR min-rate availability for a requirement just above the first
  path's rate (Eq. (7));
* the *expected* aggregate processing rate under failures.

The qualitative claim being stress-tested: multipath placement buys QoE
fastest when elements are least reliable — at 1% a single path is often
enough, at 10% even three paths may not reach ambitious targets.

:func:`run_repair` adds the *reactive* counterpart: the same failure
probabilities drive an alternating-renewal outage trace on the Fig.-4
testbed, replayed twice — once with static multipath placement only, once
with the online repair loop (:mod:`repro.core.repair`) reserving
replacement paths around outages — and compares the time-averaged
delivered GR rate.
"""

from __future__ import annotations

from repro.core.assignment import sparcle_assign
from repro.core.availability import (
    PathProfile,
    any_path_availability,
    expected_rate,
    min_rate_availability,
)
from repro.core.placement import CapacityView
from repro.core.network import star_network
from repro.core.repair import RepairController, RetryPolicy
from repro.core.scheduler import GRRequest, SparcleScheduler
from repro.core.taskgraph import linear_task_graph
from repro.exceptions import ScenarioError
from repro.experiments.base import ExperimentResult
from repro.simulator.failures import failure_timeline
from repro.workloads.facedetect import face_detection_graph, testbed_network

#: Failure probabilities swept (per link).
FAILURE_PROBABILITIES = (0.01, 0.05, 0.10)
MAX_PATHS = 3
#: GR requirement as a multiple of the first path's rate.
RATE_FACTOR = 1.02

#: Repair-comparison knobs: the Fig.-4 testbed at 10 Mbps field bandwidth
#: with a modest guarantee (well under the ~0.4 images/sec optimum), a
#: trace long enough for ~10 outage cycles per link, and quick retries.
REPAIR_FIELD_BANDWIDTH = 10.0
REPAIR_MIN_RATE = 0.25
REPAIR_DURATION = 600.0
REPAIR_MEAN_CYCLE = 60.0
REPAIR_SEED = 7
REPAIR_POLICY = RetryPolicy(max_attempts=3, backoff_base=5.0)


def _instance(pf: float):
    network = star_network(
        7, hub_cpu=500.0, leaf_cpu=2500.0, link_bandwidth=30.0,
        link_failure_probability=pf,
    )
    graph = linear_task_graph(3, cpu_per_ct=2000.0, megabits_per_tt=3.0)
    graph = graph.with_pins({"source": "ncp1", "sink": "ncp2"})
    return network, graph


def _find_paths(graph, network, count: int):
    caps = CapacityView(network)
    placements, rates = [], []
    for _ in range(count):
        result = sparcle_assign(graph, network, caps)
        if result.rate <= 1e-9:
            break
        placements.append(result.placement)
        rates.append(result.rate)
        caps.consume(result.placement.loads(), result.rate)
    return placements, rates


def run() -> ExperimentResult:
    """The robustness sweep; one row per (pf, path count)."""
    rows: list[list[object]] = []
    notes: list[str] = []
    for pf in FAILURE_PROBABILITIES:
        network, graph = _instance(pf)
        placements, rates = _find_paths(graph, network, MAX_PATHS)
        min_rate = rates[0] * RATE_FACTOR
        for k in range(1, len(placements) + 1):
            profiles = [
                PathProfile.of(p, r)
                for p, r in zip(placements[:k], rates[:k])
            ]
            rows.append([
                pf,
                k,
                any_path_availability(network, placements[:k]),
                min_rate_availability(network, profiles, min_rate),
                expected_rate(network, profiles),
            ])
    # Headline: how much availability does the 3rd path buy at each pf?
    for pf in FAILURE_PROBABILITIES:
        cells = [row for row in rows if row[0] == pf]
        gain = cells[-1][2] - cells[0][2]
        notes.append(
            f"pf={pf}: paths 1->{len(cells)} raise BE availability by "
            f"{gain:.4f} (from {cells[0][2]:.4f})"
        )
    return ExperimentResult(
        experiment_id="robustness",
        title="QoE vs path count across failure probabilities (extension)",
        headers=["pf", "paths", "be_availability", "gr_min_rate_availability",
                 "expected_rate"],
        rows=rows,
        notes=notes,
    )


# ----------------------------------------------------------------------
# Repaired-vs-static comparison (online repair loop)
# ----------------------------------------------------------------------
def _replay_trace(
    pf: float, *, repair: bool
) -> tuple[float, float, int]:
    """Replay one outage trace; returns (mean rate, met fraction, replaced).

    The delivered GR rate is piecewise constant between events, so the
    time average is integrated exactly — no queueing simulation needed for
    the reserved-rate comparison.
    """
    network = testbed_network(
        REPAIR_FIELD_BANDWIDTH, link_failure_probability=pf
    )
    scheduler = SparcleScheduler(network)
    decision = scheduler.submit_gr(
        GRRequest("face", face_detection_graph(), min_rate=REPAIR_MIN_RATE,
                  max_paths=2)
    )
    if not decision.accepted:
        raise ScenarioError(f"testbed GR admission failed: {decision.reason}")
    controller = (
        RepairController(scheduler, policy=REPAIR_POLICY) if repair else None
    )
    timeline = failure_timeline(
        network, REPAIR_DURATION,
        mean_cycle=REPAIR_MEAN_CYCLE, rng=REPAIR_SEED,
    )

    def active_rate() -> float:
        return sum(r.rate for r in scheduler.paths("face", "GR") if r.active)

    integral = 0.0
    met_time = 0.0
    replaced = 0
    last = 0.0
    index = 0
    while True:
        next_event = timeline[index][0] if index < len(timeline) else None
        next_retry = controller.next_retry_time() if controller else None
        candidates = [
            t for t in (next_event, next_retry)
            if t is not None and t < REPAIR_DURATION
        ]
        if not candidates:
            break
        now = min(candidates)
        rate = active_rate()
        integral += rate * (now - last)
        if rate >= REPAIR_MIN_RATE - 1e-9:
            met_time += now - last
        last = now
        if controller and next_retry is not None and next_retry <= now:
            outcome = controller.tick(now)
            replaced += sum(outcome.replaced.values())
        if next_event is not None and next_event == now:
            _, element, kind = timeline[index]
            index += 1
            if kind == "down":
                if controller:
                    outcome = controller.element_down(element, now)
                    replaced += sum(outcome.replaced.values())
                else:
                    scheduler.mark_element_down(element)
            else:
                if controller:
                    outcome = controller.element_up(element, now)
                    replaced += sum(outcome.replaced.values())
                else:
                    scheduler.mark_element_up(element)
    rate = active_rate()
    integral += rate * (REPAIR_DURATION - last)
    if rate >= REPAIR_MIN_RATE - 1e-9:
        met_time += REPAIR_DURATION - last
    return integral / REPAIR_DURATION, met_time / REPAIR_DURATION, replaced


def run_repair() -> ExperimentResult:
    """Repaired vs static delivered GR rate under injected outages.

    One alternating-renewal trace per failure probability, replayed twice
    over the Fig.-4 testbed: *static* only suspends/restores paths as
    elements fail and recover (the paper's preventive multipath story);
    *repaired* additionally runs the online repair loop, reserving
    replacement paths around each outage.  The mean delivered rate and the
    fraction of time the guarantee held quantify what reaction buys on top
    of prevention.
    """
    rows: list[list[object]] = []
    notes: list[str] = []
    for pf in FAILURE_PROBABILITIES:
        static_rate, static_met, _ = _replay_trace(pf, repair=False)
        repaired_rate, repaired_met, replaced = _replay_trace(pf, repair=True)
        rows.append([pf, "static", static_rate, static_met, 0])
        rows.append([pf, "repaired", repaired_rate, repaired_met, replaced])
        gain = (
            (repaired_rate - static_rate) / static_rate * 100.0
            if static_rate > 0 else float("inf")
        )
        notes.append(
            f"pf={pf}: repair lifts mean delivered rate "
            f"{static_rate:.4f} -> {repaired_rate:.4f} ({gain:+.1f}%), "
            f"guarantee-met time {static_met:.3f} -> {repaired_met:.3f}"
        )
    return ExperimentResult(
        experiment_id="repair",
        title="Online repair vs static multipath under outages (extension)",
        headers=["pf", "mode", "mean_delivered_rate", "guarantee_met_fraction",
                 "paths_replaced"],
        rows=rows,
        notes=notes,
    )
