"""Fig. 10 — meeting QoE (availability) by adding task assignment paths.

Both subfigures use a linear task graph on a star network whose links fail
independently with probability 2%:

* **Fig. 10(a)** — a BE application with a requested availability: each
  extra path raises the probability that at least one path works, and the
  aggregate processing rate grows with the paths.
* **Fig. 10(b)** — a GR application whose min-rate requirement exceeds the
  first path's rate: min-rate availability is zero with one path and climbs
  as further (slower) paths are added, crossing the requested level.

The paper's absolute numbers (0.85 -> 0.94 for BE; 0 -> 0.78 -> ~0.9 for
GR) are instance-specific; the reproduced *shape* — monotone availability
growth crossing the requested level after 2-3 paths — is what this module
asserts in its notes.
"""

from __future__ import annotations

from repro.core.assignment import sparcle_assign
from repro.core.availability import (
    PathProfile,
    any_path_availability,
    min_rate_availability,
)
from repro.core.placement import CapacityView
from repro.core.taskgraph import linear_task_graph
from repro.core.network import star_network
from repro.experiments.base import ExperimentResult

#: Link failure probability used by the paper's Fig. 10.
LINK_FAILURE = 0.02
#: Paths examined in the progression.
MAX_PATHS = 3


def _network():
    # A weak hub pushes compute CTs onto the leaves, so each extra path
    # traverses *different* leaf links — the prerequisite for multipath
    # availability gains (paths confined to the two pinned-endpoint links
    # would cap availability at the single-path value).
    return star_network(
        7, hub_cpu=500.0, leaf_cpu=2500.0, link_bandwidth=30.0,
        link_failure_probability=LINK_FAILURE,
    )


def _graph():
    graph = linear_task_graph(3, cpu_per_ct=2000.0, megabits_per_tt=3.0)
    return graph.with_pins({"source": "ncp1", "sink": "ncp2"})


def _find_paths(graph, network, count: int):
    """Iteratively find up to ``count`` paths, consuming capacity each time."""
    caps = CapacityView(network)
    placements, rates = [], []
    for _ in range(count):
        result = sparcle_assign(graph, network, caps)
        if result.rate <= 1e-9:
            break
        placements.append(result.placement)
        rates.append(result.rate)
        caps.consume(result.placement.loads(), result.rate)
    return placements, rates


def run(
    *,
    be_target_availability: float = 0.95,
    gr_target_availability: float = 0.90,
    gr_rate_factor: float = 1.02,
) -> ExperimentResult:
    """Reproduce Fig. 10(a) and 10(b).

    ``gr_rate_factor`` sets the GR requirement to just above the first
    path's rate (the paper's 2.7 vs 2.67 setup) so that a single path can
    never satisfy it.
    """
    network = _network()
    graph = _graph()
    placements, rates = _find_paths(graph, network, MAX_PATHS)
    rows: list[list[object]] = []
    notes: list[str] = []

    # --- Fig. 10(a): BE availability + aggregate rate ------------------
    be_met_at = None
    for k in range(1, len(placements) + 1):
        availability = any_path_availability(network, placements[:k])
        aggregate = sum(rates[:k])
        rows.append(["10a-BE", k, aggregate, availability])
        if be_met_at is None and availability >= be_target_availability:
            be_met_at = k
    if be_met_at is not None:
        notes.append(
            f"10a: requested availability {be_target_availability} met with "
            f"{be_met_at} path(s) (paper: 2 paths for 0.9)"
        )

    # --- Fig. 10(b): GR min-rate availability --------------------------
    min_rate = rates[0] * gr_rate_factor
    gr_met_at = None
    for k in range(1, len(placements) + 1):
        profiles = [
            PathProfile.of(p, r) for p, r in zip(placements[:k], rates[:k])
        ]
        availability = min_rate_availability(network, profiles, min_rate)
        rows.append(["10b-GR", k, sum(rates[:k]), availability])
        if gr_met_at is None and availability >= gr_target_availability:
            gr_met_at = k
    notes.append(
        f"10b: min-rate requirement {min_rate:.3f} (just above the first "
        f"path's {rates[0]:.3f}) -> one path gives zero min-rate availability"
    )
    if gr_met_at is not None:
        notes.append(
            f"10b: requested min-rate availability {gr_target_availability} "
            f"met with {gr_met_at} path(s) (paper: 3 paths for 0.85)"
        )
    return ExperimentResult(
        experiment_id="fig10",
        title="Availability and rate vs number of task assignment paths",
        headers=["subfigure", "paths", "aggregate_rate", "availability"],
        rows=rows,
        notes=notes,
    )
