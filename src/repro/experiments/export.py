"""Exporting experiment results: CSV, JSON, and ASCII CDF sketches.

The experiment harness returns :class:`~repro.experiments.base
.ExperimentResult` objects; this module turns them into artifacts —
machine-readable CSV/JSON for plotting pipelines, and a dependency-free
ASCII rendering of the CDF series for terminal inspection.
"""

from __future__ import annotations

import csv
import io
import json
from pathlib import Path

from repro.experiments.base import ExperimentResult
from repro.utils.stats import cdf_points


def result_to_csv(result: ExperimentResult) -> str:
    """The result's rows as CSV text (headers first)."""
    buffer = io.StringIO()
    writer = csv.writer(buffer)
    writer.writerow(list(result.headers))
    for row in result.rows:
        writer.writerow(list(row))
    return buffer.getvalue()


def result_to_json(result: ExperimentResult) -> str:
    """The full result (rows + series + notes) as pretty JSON."""
    document = {
        "experiment_id": result.experiment_id,
        "title": result.title,
        "headers": list(result.headers),
        "rows": [list(row) for row in result.rows],
        "series": {key: list(values) for key, values in result.series.items()},
        "notes": list(result.notes),
    }
    return json.dumps(document, indent=2, sort_keys=True) + "\n"


def save_result(result: ExperimentResult, directory: str | Path) -> dict[str, Path]:
    """Write ``<id>.csv`` and ``<id>.json`` into ``directory``.

    Returns the written paths keyed by format.  The directory is created if
    missing.
    """
    out = Path(directory)
    out.mkdir(parents=True, exist_ok=True)
    csv_path = out / f"{result.experiment_id}.csv"
    json_path = out / f"{result.experiment_id}.json"
    csv_path.write_text(result_to_csv(result))
    json_path.write_text(result_to_json(result))
    return {"csv": csv_path, "json": json_path}


def ascii_cdf(
    values: list[float],
    *,
    width: int = 50,
    height: int = 10,
    label: str = "",
) -> str:
    """A monospace sketch of the empirical CDF of ``values``.

    One row per probability level (top = 1.0); ``#`` marks the CDF curve.
    Useful for eyeballing the Fig. 11/13 series without a plotting stack.
    """
    if width < 2 or height < 2:
        raise ValueError("width and height must be at least 2")
    points = cdf_points(values)
    if not points:
        return "(empty series)"
    lo = points[0][0]
    hi = points[-1][0]
    span = hi - lo or 1.0

    def cdf_at(x: float) -> float:
        # Largest recorded probability with value <= x.
        best = 0.0
        for value, probability in points:
            if value <= x:
                best = probability
            else:
                break
        return best

    columns = [lo + span * k / (width - 1) for k in range(width)]
    probabilities = [cdf_at(x) for x in columns]
    lines = []
    if label:
        lines.append(label)
    for row in range(height, 0, -1):
        level = row / height
        cells = "".join(
            "#" if p >= level - 1e-12 else " " for p in probabilities
        )
        axis = f"{level:4.2f} |"
        lines.append(axis + cells)
    lines.append("     +" + "-" * width)
    lines.append(f"      {lo:<12.4g}{'':^{max(width - 24, 0)}}{hi:>12.4g}")
    return "\n".join(lines)


def render_series(result: ExperimentResult, *, width: int = 50, height: int = 8) -> str:
    """ASCII CDFs for every series of a result, stacked."""
    blocks = [
        ascii_cdf(values, width=width, height=height, label=key)
        for key, values in sorted(result.series.items())
    ]
    return "\n\n".join(blocks)
