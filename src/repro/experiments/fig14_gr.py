"""Fig. 14 — total admitted Guaranteed-Rate throughput per algorithm.

A stream of GR applications (mixed diamond and linear task graphs with
random rate requirements) arrives at a random eight-NCP star.  Each
algorithm drives the same admission-control pipeline (iterative path
finding with capacity reservation); the bar plotted is the total processing
rate of the *admitted* applications.

Paper claim: SPARCLE admits considerably more guaranteed throughput than
GRand/GS/T-Storm/Random/VNE — better placements leave more residual
capacity for later arrivals.
"""

from __future__ import annotations

from repro.baselines import gs_assign, tstorm_assign, vne_assign
from repro.baselines.greedy import grand_assigner
from repro.baselines.naive import random_assigner
from repro.core.assignment import sparcle_assign
from repro.core.scheduler import GRRequest, SparcleScheduler, admit_all_gr
from repro.experiments.base import DEFAULT_TRIALS, ExperimentResult
from repro.utils.rng import ensure_rng, spawn_rngs
from repro.utils.stats import mean
from repro.workloads.scenarios import (
    BottleneckCase,
    GraphKind,
    TopologyKind,
    make_scenario,
    random_task_graph,
)

#: How many GR applications arrive per trial.
N_APPS = 5
#: Requested min-rate range, as a fraction of the first app's solo rate.
RATE_FRACTION_RANGE = (0.1, 0.45)


def _assigners(rng):
    generator = ensure_rng(rng)
    return {
        "SPARCLE": sparcle_assign,
        "GRand": grand_assigner(generator),
        "GS": gs_assign,
        "T-Storm": tstorm_assign,
        "Random": random_assigner(generator),
        "VNE": vne_assign,
    }


def run(*, trials: int = DEFAULT_TRIALS, seed: int = 14) -> ExperimentResult:
    """Reproduce Fig. 14; series hold per-trial admitted totals."""
    rows: list[list[object]] = []
    series: dict[str, list[float]] = {}
    accepted_counts: dict[str, list[int]] = {}
    for rng in spawn_rngs(seed, trials):
        scenario = make_scenario(
            BottleneckCase.BALANCED, GraphKind.DIAMOND, TopologyKind.STAR,
            rng, n_ncps=8,
        )
        # Scale the requested rates to the instance: what one app could get.
        solo = sparcle_assign(scenario.graph, scenario.network)
        reference = max(solo.rate, 1e-6)
        requests = []
        pins = {
            "source": scenario.graph.ct("ct1").pinned_host,
            "sink": scenario.graph.ct("ct8").pinned_host,
        }
        for index in range(N_APPS):
            kind = GraphKind.DIAMOND if index % 2 == 0 else GraphKind.LINEAR
            graph = random_task_graph(kind, rng)
            if kind is GraphKind.DIAMOND:
                graph = graph.with_pins(
                    {"ct1": pins["source"], "ct8": pins["sink"]},
                    name=f"gr{index}",
                )
            else:
                graph = graph.with_pins(
                    {"source": pins["source"], "sink": pins["sink"]},
                    name=f"gr{index}",
                )
            fraction = float(rng.uniform(*RATE_FRACTION_RANGE))
            requests.append(
                GRRequest(f"gr{index}", graph, min_rate=fraction * reference,
                          max_paths=3)
            )
        for label, assigner in _assigners(rng).items():
            scheduler = SparcleScheduler(scenario.network, assigner=assigner)
            decisions, total = admit_all_gr(scheduler, requests)
            series.setdefault(label, []).append(total)
            accepted_counts.setdefault(label, []).append(
                sum(1 for d in decisions if d.accepted)
            )
    for label, values in series.items():
        rows.append(
            [label, mean(values), mean([float(c) for c in accepted_counts[label]])]
        )
    best = max(rows, key=lambda row: row[1])[0]
    notes = [f"highest admitted GR throughput: {best} (paper: SPARCLE)"]
    return ExperimentResult(
        experiment_id="fig14",
        title="Total admitted GR processing rate",
        headers=["algorithm", "mean_total_rate", "mean_accepted_apps"],
        rows=rows,
        series=series,
        notes=notes,
    )
