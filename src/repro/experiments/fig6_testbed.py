"""Fig. 6 — face-detection processing rate on the testbed.

Sweeps the field bandwidth over {0.5, 10, 22} Mbps and reports, per
scheduling algorithm, the analytical stable rate and (optionally) the rate
achieved by the discrete-event emulator driving the pipeline at 95% load.

Paper claims this experiment reproduces:

* at 0.5 Mbps, SPARCLE-based dispersed computing is ~9x the cloud rate;
* at 10 Mbps, SPARCLE only uses the cloud, which is the optimal choice;
* at 22 Mbps, dispersed computing still beats cloud-only by ~23%;
* SPARCLE tracks the exhaustive-search optimum at every bandwidth.
"""

from __future__ import annotations

from collections.abc import Sequence

from repro.baselines import cloud_assign, optimal_assign
from repro.baselines.heft import heft_assign
from repro.baselines.tstorm import tstorm_assign
from repro.baselines.vne import vne_assign
from repro.core.assignment import sparcle_assign
from repro.core.placement import CapacityView
from repro.emulator.emulator import Emulator
from repro.emulator.scenario import ScenarioSpec
from repro.experiments.base import ExperimentResult, safe_rate
from repro.workloads.facedetect import (
    CLOUD,
    FIG6_FIELD_BANDWIDTHS,
    face_detection_graph,
    testbed_network,
)

#: Algorithms plotted in Fig. 6, in legend order.
ALGORITHMS = {
    "SPARCLE": sparcle_assign,
    "HEFT": heft_assign,
    "T-Storm": tstorm_assign,
    "VNE": vne_assign,
    "Cloud": lambda g, n, c=None: cloud_assign(g, n, c, cloud=CLOUD),
}


def run(
    *,
    bandwidths: Sequence[float] = FIG6_FIELD_BANDWIDTHS,
    emulate: bool = False,
    emulation_units: float = 120.0,
) -> ExperimentResult:
    """Reproduce Fig. 6.

    ``emulate=True`` additionally drives each placement through the
    discrete-event emulator (slower; the analytical column alone already
    determines the figure's shape).
    """
    graph = face_detection_graph()
    headers = ["field_bw_mbps", "algorithm", "rate"]
    if emulate:
        headers.append("emulated_rate")
    rows: list[list[object]] = []
    notes: list[str] = []
    sparcle_rates: dict[float, float] = {}
    cloud_rates: dict[float, float] = {}
    for bandwidth in bandwidths:
        network = testbed_network(bandwidth)
        optimal = optimal_assign(graph, network)
        for label, algorithm in ALGORITHMS.items():
            rate = safe_rate(algorithm, graph, network)
            row: list[object] = [bandwidth, label, rate]
            if emulate and rate > 0:
                result = algorithm(graph, network, CapacityView(network))
                spec = ScenarioSpec(
                    name=f"fig6-{label}-{bandwidth}", network=network,
                    graph=graph, placement=result.placement,
                )
                outcome = Emulator(spec).run(
                    duration=emulation_units / max(rate, 1e-9)
                )
                row.append(outcome.achieved_rate)
            elif emulate:
                row.append(0.0)
            rows.append(row)
            if label == "SPARCLE":
                sparcle_rates[bandwidth] = rate
            if label == "Cloud":
                cloud_rates[bandwidth] = rate
        row = [bandwidth, "optimal", optimal.rate]
        if emulate:
            row.append(float("nan"))
        rows.append(row)
        if sparcle_rates[bandwidth] >= optimal.rate * (1 - 1e-9):
            notes.append(f"{bandwidth} Mbps: SPARCLE matches the optimal assignment")
    low = min(bandwidths)
    high = max(bandwidths)
    if cloud_rates[low] > 0:
        notes.append(
            f"{low} Mbps: SPARCLE/cloud = "
            f"{sparcle_rates[low] / cloud_rates[low]:.1f}x (paper: ~9x)"
        )
    if cloud_rates[high] > 0:
        gain = 100.0 * (sparcle_rates[high] / cloud_rates[high] - 1.0)
        notes.append(f"{high} Mbps: SPARCLE beats cloud by {gain:.0f}% (paper: ~23%)")
    return ExperimentResult(
        experiment_id="fig6",
        title="Face-detection processing rate vs field bandwidth",
        headers=headers,
        rows=rows,
        notes=notes,
    )
