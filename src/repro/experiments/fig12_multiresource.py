"""Fig. 12 — more than one computation resource type (CPU + memory).

Diamond-graph instances on an eight-NCP star where CTs also carry memory
requirements; two regimes: NCP *memory*-bottleneck and link-bottleneck.
Reports the 25th/75th percentiles of the processing rate per algorithm.

Paper claim: with a second resource type, GS and VNE degrade drastically
(their static rankings key on a single scalar requirement), while SPARCLE's
gamma takes the max over all resource types and keeps its lead.
"""

from __future__ import annotations

from repro.baselines import gs_assign, tstorm_assign, vne_assign
from repro.baselines.greedy import grand_assign
from repro.baselines.naive import random_assign
from repro.core.assignment import sparcle_assign
from repro.core.placement import CapacityView
from repro.exceptions import InfeasiblePlacementError
from repro.experiments.base import DEFAULT_TRIALS, ExperimentResult
from repro.utils.rng import ensure_rng, spawn_rngs
from repro.utils.stats import percentile_summary
from repro.workloads.scenarios import (
    BottleneckCase,
    GraphKind,
    TopologyKind,
    make_scenario,
    memory_bottleneck_scenario,
)


def _algorithms(rng):
    generator = ensure_rng(rng)
    return {
        "SPARCLE": sparcle_assign,
        "GRand": lambda g, n, c=None: grand_assign(g, n, c, rng=generator),
        "GS": gs_assign,
        "Random": lambda g, n, c=None: random_assign(g, n, c, rng=generator),
        "T-Storm": tstorm_assign,
        "VNE": vne_assign,
    }


def run(*, trials: int = DEFAULT_TRIALS, seed: int = 12) -> ExperimentResult:
    """Reproduce Fig. 12 (memory-bottleneck and link-bottleneck bars)."""
    rows: list[list[object]] = []
    series: dict[str, list[float]] = {}
    for case_label in ("memory-bottleneck", "link-bottleneck"):
        per_algorithm: dict[str, list[float]] = {}
        for rng in spawn_rngs(seed, trials):
            if case_label == "memory-bottleneck":
                scenario = memory_bottleneck_scenario(TopologyKind.STAR, rng, n_ncps=8)
            else:
                scenario = make_scenario(
                    BottleneckCase.LINK, GraphKind.DIAMOND, TopologyKind.STAR,
                    rng, n_ncps=8, with_memory=True,
                )
            for label, algorithm in _algorithms(rng).items():
                try:
                    result = algorithm(
                        scenario.graph, scenario.network,
                        CapacityView(scenario.network),
                    )
                    rate = max(result.rate, 0.0)
                except InfeasiblePlacementError:
                    rate = 0.0
                per_algorithm.setdefault(label, []).append(rate)
        for label, values in per_algorithm.items():
            summary = percentile_summary(values, (25.0, 75.0))
            rows.append([case_label, label, summary[25.0], summary[75.0]])
            series[f"{case_label}/{label}"] = values
    notes = []
    for case_label in ("memory-bottleneck", "link-bottleneck"):
        cells = {row[1]: row[3] for row in rows if row[0] == case_label}
        rivals = [label for label in cells if label != "SPARCLE"]
        beaten = sum(1 for label in rivals if cells["SPARCLE"] >= cells[label])
        notes.append(
            f"{case_label}: SPARCLE's p75 beats {beaten}/{len(rivals)} baselines"
        )
    return ExperimentResult(
        experiment_id="fig12",
        title="Rate percentiles with two resource types (CPU + memory)",
        headers=["case", "algorithm", "p25", "p75"],
        rows=rows,
        series=series,
        notes=notes,
    )
