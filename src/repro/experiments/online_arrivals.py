"""Extension experiment: online application arrivals and departures.

The paper's model has applications "arrive over time" but evaluates static
snapshots; this extension runs the full churn: GR and BE applications
arrive as a Poisson-like process (exponential inter-arrival), hold the
network for an exponential lifetime, and depart (releasing reservations).
Per task-assignment algorithm we measure:

* **acceptance ratio** — admitted / offered GR applications;
* **carried guaranteed rate** — time-average of the aggregate reserved GR
  rate (the "revenue" an operator actually banks).

Placements are never migrated (the paper's no-migration constraint), so a
smarter initial placement leaves more room for future arrivals — the same
mechanism as Fig. 14, now measured under churn rather than one-shot.
"""

from __future__ import annotations

import heapq
import time
from dataclasses import dataclass

from repro.baselines import gs_assign, tstorm_assign, vne_assign
from repro.baselines.greedy import grand_assigner
from repro.baselines.naive import random_assigner
from repro.core.assignment import sparcle_assign
from repro.core.scheduler import BERequest, GRRequest, SparcleScheduler
from repro.experiments.base import ExperimentResult
from repro.utils.rng import ensure_rng, spawn_rngs
from repro.utils.stats import mean
from repro.workloads.scenarios import (
    BottleneckCase,
    GraphKind,
    TopologyKind,
    make_scenario,
    random_task_graph,
)

#: Mean inter-arrival time and mean holding time (simulated seconds).
MEAN_INTERARRIVAL = 10.0
MEAN_HOLDING = 60.0
#: Simulated horizon per trial.
HORIZON = 400.0
#: Requested min-rate range as fractions of the solo reference rate.
RATE_FRACTIONS = (0.1, 0.4)


@dataclass
class ChurnOutcome:
    """Aggregates of one churn run."""

    offered: int
    accepted: int
    carried_rate_time_avg: float

    @property
    def acceptance_ratio(self) -> float:
        """Admitted over offered applications."""
        return self.accepted / self.offered if self.offered else 0.0


def _assigners(rng):
    generator = ensure_rng(rng)
    return {
        "SPARCLE": sparcle_assign,
        "GRand": grand_assigner(generator),
        "GS": gs_assign,
        "T-Storm": tstorm_assign,
        "Random": random_assigner(generator),
        "VNE": vne_assign,
    }


def run_churn(scenario, assigner, rng) -> ChurnOutcome:
    """Simulate one arrival/departure process against one assigner."""
    generator = ensure_rng(rng)
    scheduler = SparcleScheduler(scenario.network, assigner=assigner)
    reference = max(
        sparcle_assign(scenario.graph, scenario.network).rate, 1e-6
    )
    pins = {
        "source": scenario.graph.ct("ct1").pinned_host,
        "sink": scenario.graph.ct("ct8").pinned_host,
    }
    clock = 0.0
    next_arrival = float(generator.exponential(MEAN_INTERARRIVAL))
    departures: list[tuple[float, str]] = []  # (time, app_id)
    offered = 0
    accepted = 0
    carried = 0.0  # integral of reserved rate over time
    current_rate = 0.0
    arrival_index = 0
    while next_arrival < HORIZON or departures:
        departure_time = departures[0][0] if departures else float("inf")
        if next_arrival < departure_time and next_arrival < HORIZON:
            event_time = next_arrival
            carried += current_rate * (event_time - clock)
            clock = event_time
            offered += 1
            kind = GraphKind.DIAMOND if arrival_index % 2 == 0 else GraphKind.LINEAR
            graph = random_task_graph(kind, generator)
            if kind is GraphKind.DIAMOND:
                graph = graph.with_pins(
                    {"ct1": pins["source"], "ct8": pins["sink"]},
                    name=f"app{arrival_index}",
                )
            else:
                graph = graph.with_pins(
                    {"source": pins["source"], "sink": pins["sink"]},
                    name=f"app{arrival_index}",
                )
            fraction = float(generator.uniform(*RATE_FRACTIONS))
            decision = scheduler.submit_gr(
                GRRequest(f"app{arrival_index}", graph,
                          min_rate=fraction * reference, max_paths=2)
            )
            if decision.accepted:
                accepted += 1
                current_rate += decision.total_rate
                lifetime = float(generator.exponential(MEAN_HOLDING))
                heapq.heappush(
                    departures, (clock + lifetime, f"app{arrival_index}")
                )
            arrival_index += 1
            next_arrival = clock + float(generator.exponential(MEAN_INTERARRIVAL))
        else:
            event_time, app_id = heapq.heappop(departures)
            event_time = min(event_time, HORIZON) if not departures and next_arrival >= HORIZON else event_time
            carried += current_rate * (event_time - clock)
            clock = event_time
            released = next(
                d.total_rate for d in scheduler.decisions
                if d.app_id == app_id and d.accepted
            )
            scheduler.withdraw(app_id)
            current_rate -= released
    horizon = max(clock, HORIZON)
    return ChurnOutcome(
        offered=offered,
        accepted=accepted,
        carried_rate_time_avg=carried / horizon if horizon > 0 else 0.0,
    )


def burst_requests(scenario, rng, *, count: int = 100,
                   gr_fraction: float = 0.6) -> list:
    """A bursty arrival batch: ``count`` mixed GR/BE requests at once.

    The churn experiment offers ~``HORIZON / MEAN_INTERARRIVAL`` ≈ 40
    requests over the whole horizon; a burst packs 10–100× that arrival
    density into a single instant — the regime the admission gateway's
    epoch batching is built for.  Requests reuse the churn generator's
    graph mix and pins; GR min-rates are drawn from :data:`RATE_FRACTIONS`
    of the solo reference rate, BE priorities from ``{1, 2, 4}``.
    """
    generator = ensure_rng(rng)
    reference = max(
        sparcle_assign(scenario.graph, scenario.network).rate, 1e-6
    )
    pins = {
        "source": scenario.graph.ct("ct1").pinned_host,
        "sink": scenario.graph.ct("ct8").pinned_host,
    }
    requests = []
    for index in range(count):
        kind = GraphKind.DIAMOND if index % 2 == 0 else GraphKind.LINEAR
        graph = random_task_graph(kind, generator)
        if kind is GraphKind.DIAMOND:
            graph = graph.with_pins(
                {"ct1": pins["source"], "ct8": pins["sink"]},
                name=f"burst{index}",
            )
        else:
            graph = graph.with_pins(
                {"source": pins["source"], "sink": pins["sink"]},
                name=f"burst{index}",
            )
        if generator.uniform(0.0, 1.0) < gr_fraction:
            fraction = float(generator.uniform(*RATE_FRACTIONS))
            requests.append(GRRequest(
                f"burst{index}", graph,
                min_rate=fraction * reference, max_paths=2,
            ))
        else:
            priority = float(generator.choice([1.0, 2.0, 4.0]))
            requests.append(BERequest(
                f"burst{index}", graph, priority=priority, max_paths=2,
            ))
    return requests


def run_gateway(*, requests: int = 100, workers: int = 4,
                seed: int = 77) -> ExperimentResult:
    """Burst admission through the gateway vs. one-at-a-time submission.

    Both modes see the identical burst in the identical priority order
    (GR class first, weighted FIFO within class); the gateway additionally
    batches evaluation per epoch and commits with optimistic revalidation.
    Rows report wall-clock throughput plus the gateway's conflict/fallback
    accounting, so equivalence (same accepted count) and the batching
    overhead are both visible.
    """
    from repro.service import AdmissionGateway

    rng = ensure_rng(seed)
    scenario = make_scenario(
        BottleneckCase.BALANCED, GraphKind.DIAMOND, TopologyKind.STAR,
        rng, n_ncps=8,
    )
    burst = burst_requests(scenario, rng, count=requests)
    ordered = AdmissionGateway.priority_order(burst)

    serial = SparcleScheduler(scenario.network)
    start = time.perf_counter()
    serial_decisions = [serial.commit(serial.evaluate(r)) for r in ordered]
    serial_wall = time.perf_counter() - start

    gw_scheduler = SparcleScheduler(scenario.network)
    with AdmissionGateway(
        gw_scheduler, workers=workers, executor="thread",
        max_queue_depth=max(len(burst), 1),
    ) as gateway:
        start = time.perf_counter()
        gateway_decisions = gateway.process(burst)
        gateway_wall = time.perf_counter() - start

    rows = [
        ["serial", len(burst), sum(d.accepted for d in serial_decisions),
         serial_wall, len(burst) / serial_wall if serial_wall > 0 else 0.0,
         0, 0, 0],
        [f"gateway(x{workers})", len(burst),
         sum(d.accepted for d in gateway_decisions),
         gateway_wall,
         len(burst) / gateway_wall if gateway_wall > 0 else 0.0,
         gateway.stats.epochs, gateway.stats.conflicts,
         gateway.stats.serial_fallbacks],
    ]
    notes = [
        f"burst of {len(burst)} requests "
        f"({sum(isinstance(r, GRRequest) for r in burst)} GR / "
        f"{sum(isinstance(r, BERequest) for r in burst)} BE)",
        f"gateway overlap commits: {gateway.stats.overlap_commits}",
    ]
    if rows[0][2] == rows[1][2]:
        notes.append("accepted sets agree with serial admission")
    return ExperimentResult(
        experiment_id="gateway",
        title="Burst admission: gateway vs serial (extension)",
        headers=["mode", "offered", "accepted", "wall_s", "req_per_s",
                 "epochs", "conflicts", "fallbacks"],
        rows=rows,
        notes=notes,
    )


def run(*, trials: int = 10, seed: int = 77) -> ExperimentResult:
    """The churn extension; one row per algorithm."""
    acceptance: dict[str, list[float]] = {}
    carried: dict[str, list[float]] = {}
    for rng in spawn_rngs(seed, trials):
        scenario = make_scenario(
            BottleneckCase.BALANCED, GraphKind.DIAMOND, TopologyKind.STAR,
            rng, n_ncps=8,
        )
        for label, assigner in _assigners(rng).items():
            outcome = run_churn(scenario, assigner, rng)
            acceptance.setdefault(label, []).append(outcome.acceptance_ratio)
            carried.setdefault(label, []).append(outcome.carried_rate_time_avg)
    rows = [
        [label, mean(acceptance[label]), mean(carried[label])]
        for label in acceptance
    ]
    best = max(rows, key=lambda row: row[2])[0]
    return ExperimentResult(
        experiment_id="online",
        title="Online GR arrivals/departures (extension)",
        headers=["algorithm", "acceptance_ratio", "carried_rate"],
        rows=rows,
        notes=[f"highest carried guaranteed rate under churn: {best}"],
    )
