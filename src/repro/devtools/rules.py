"""The built-in SPARCLE lint rules (SPC001–SPC006).

Each rule encodes an invariant whose violation has already cost a real
debugging session in this repo's history (see ``docs/static-analysis.md``
for the rule-by-rule rationale and the originating bugs):

* **SPC001** — raw resource-name string literals where the
  :mod:`repro.core.taskgraph` constants are required;
* **SPC002** — ``random`` / ``numpy.random`` use outside the seeded
  :mod:`repro.utils.rng` path (determinism guard);
* **SPC003** — read-modify-write on shared ``self._*`` dict state outside
  a ``with lock:`` block in :mod:`repro.perf` and the admission gateway;
* **SPC004** — ``==`` / ``!=`` between float-typed rate/capacity
  expressions in ``core/`` and ``simulator/`` (epsilon discipline);
* **SPC005** — attribute or element assignment on frozen values
  (``ResidualSnapshot`` / ``AdmissionSnapshot`` / the array kernel's
  ``CompiledNetwork`` CSR arrays);
* **SPC006** — bare or broad ``except`` clauses (``except:`` /
  ``except Exception`` / ``except BaseException``) outside a small
  documented allowlist (silent-degradation guard).

Allowlists are part of each rule's definition, not suppressions in the
linted code: a JSON schema legitimately spells ``"bandwidth"`` in
``emulator/scenario.py``, and the networkx edge attribute in
``core/routing.py`` predates the constants.
"""

from __future__ import annotations

import ast
import re
from collections.abc import Iterable, Iterator

from repro.core.taskgraph import BANDWIDTH, CPU, MEMORY
from repro.devtools.engine import FileContext, Rule, Violation

#: Resource names that must be spelled via the canonical constants.
RESOURCE_CONSTANTS = {
    CPU: "CPU",
    MEMORY: "MEMORY",
    BANDWIDTH: "BANDWIDTH",
}

_SNAKE = re.compile(r"[a-z0-9]+")


def _tokens(identifier: str) -> frozenset[str]:
    """Snake-case tokens of an identifier, lowercased."""
    return frozenset(_SNAKE.findall(identifier.lower()))


def _dotted(node: ast.expr) -> str | None:
    """``a.b.c`` for a Name/Attribute chain, else ``None``."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def _matches_any(relpath: str, suffixes: Iterable[str]) -> bool:
    return any(relpath.endswith(suffix) for suffix in suffixes)


class ResourceLiteralRule(Rule):
    """SPC001: raw ``"cpu"`` / ``"memory"`` / ``"bandwidth"`` literals.

    PR 1 fixed an outage-handling bug in ``scheduler.py`` caused by a raw
    ``"bandwidth"`` literal drifting from the canonical constant; resource
    keys must be spelled via :data:`repro.core.taskgraph.CPU` /
    ``MEMORY`` / ``BANDWIDTH`` so a typo is an ImportError, not a silent
    zero-capacity lookup.
    """

    rule_id = "SPC001"
    summary = "raw resource-name literal; use the core.taskgraph constants"

    #: Files where the bare strings are the point, not a drift hazard.
    ALLOWLIST = (
        "core/taskgraph.py",   # the definition site of the constants
        "core/routing.py",     # networkx edge attribute name
        "emulator/scenario.py",  # JSON field names of the scenario format
    )

    def check(self, ctx: FileContext) -> Iterator[Violation]:
        if _matches_any(ctx.relpath, self.ALLOWLIST):
            return
        for node in ast.walk(ctx.tree):
            if (
                isinstance(node, ast.Constant)
                and isinstance(node.value, str)
                and node.value in RESOURCE_CONSTANTS
            ):
                constant = RESOURCE_CONSTANTS[node.value]
                yield ctx.violation(
                    node, self.rule_id,
                    f"raw resource literal {node.value!r}; use "
                    f"repro.core.taskgraph.{constant}",
                )


class UnseededRandomnessRule(Rule):
    """SPC002: randomness outside the seeded ``utils/rng.py`` path.

    The simulator's traces, the Hypothesis suites, and workflow-style
    seeding all assume every stochastic draw flows through
    :func:`repro.utils.rng.ensure_rng`.  A stray ``import random`` or
    ``np.random.default_rng()`` call silently breaks run-to-run
    reproducibility.
    """

    rule_id = "SPC002"
    summary = "randomness outside repro.utils.rng; pass an rng through ensure_rng"

    ALLOWLIST = ("utils/rng.py",)

    def check(self, ctx: FileContext) -> Iterator[Violation]:
        if _matches_any(ctx.relpath, self.ALLOWLIST):
            return
        numpy_aliases = {"numpy"}
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    if alias.name == "random" or alias.name.startswith("random."):
                        yield ctx.violation(
                            node, self.rule_id,
                            "import of the stdlib 'random' module; use "
                            "repro.utils.rng.ensure_rng instead",
                        )
                    if alias.name == "numpy":
                        numpy_aliases.add(alias.asname or "numpy")
                    if alias.name.startswith("numpy.random"):
                        yield ctx.violation(
                            node, self.rule_id,
                            "direct numpy.random import; use "
                            "repro.utils.rng.ensure_rng instead",
                        )
            elif isinstance(node, ast.ImportFrom):
                module = node.module or ""
                if module == "random" or module.startswith("random."):
                    yield ctx.violation(
                        node, self.rule_id,
                        "import from the stdlib 'random' module; use "
                        "repro.utils.rng.ensure_rng instead",
                    )
                elif module.startswith("numpy.random") or (
                    module == "numpy"
                    and any(alias.name == "random" for alias in node.names)
                ):
                    yield ctx.violation(
                        node, self.rule_id,
                        "direct numpy.random import; use "
                        "repro.utils.rng.ensure_rng instead",
                    )
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Call):
                dotted = _dotted(node.func)
                if dotted is None:
                    continue
                parts = dotted.split(".")
                if len(parts) >= 3 and parts[0] in numpy_aliases and parts[1] == "random":
                    yield ctx.violation(
                        node, self.rule_id,
                        f"direct call {dotted}(...); draw from a Generator "
                        "obtained via repro.utils.rng.ensure_rng",
                    )


class UnlockedSharedMutationRule(Rule):
    """SPC003: dict read-modify-write on ``self._*`` state outside a lock.

    PR 3 fixed lost-update races where ``repro.perf`` registries ran
    ``self._counts[key] = self._counts.get(key, 0) + n`` without holding
    ``self._lock``.  In the concurrently-driven modules, every
    read-modify-write of instance dict state must sit inside a
    ``with <...lock...>:`` block.
    """

    rule_id = "SPC003"
    summary = "read-modify-write on shared instance state outside a lock"

    #: Only modules that are documented as thread-shared are in scope.
    SCOPE = ("service/gateway.py",)
    SCOPE_DIRS = ("perf/",)

    def _in_scope(self, relpath: str) -> bool:
        if _matches_any(relpath, self.SCOPE):
            return True
        return any(f"/{d}" in f"/{relpath}" for d in self.SCOPE_DIRS)

    def check(self, ctx: FileContext) -> Iterator[Violation]:
        if not self._in_scope(ctx.relpath):
            return
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.FunctionDef) and node.name != "__init__":
                yield from self._check_function(ctx, node)

    # ------------------------------------------------------------------
    def _check_function(
        self, ctx: FileContext, func: ast.FunctionDef
    ) -> Iterator[Violation]:
        yield from self._walk_block(ctx, func.body, locked=False)

    def _walk_block(
        self, ctx: FileContext, body: list[ast.stmt], *, locked: bool
    ) -> Iterator[Violation]:
        for stmt in body:
            if isinstance(stmt, ast.With):
                inner = locked or any(
                    self._is_lock_expr(item.context_expr) for item in stmt.items
                )
                yield from self._walk_block(ctx, stmt.body, locked=inner)
            elif isinstance(stmt, ast.FunctionDef):
                # Nested defs (callbacks) run later, outside this lock —
                # the outer ast.walk visits them as their own functions,
                # starting unlocked, so no recursion here.
                continue
            elif isinstance(stmt, (ast.If, ast.For, ast.While)):
                yield from self._walk_block(ctx, stmt.body, locked=locked)
                yield from self._walk_block(ctx, stmt.orelse, locked=locked)
            elif isinstance(stmt, ast.Try):
                yield from self._walk_block(ctx, stmt.body, locked=locked)
                for handler in stmt.handlers:
                    yield from self._walk_block(ctx, handler.body, locked=locked)
                yield from self._walk_block(ctx, stmt.orelse, locked=locked)
                yield from self._walk_block(ctx, stmt.finalbody, locked=locked)
            elif not locked:
                violation = self._rmw_violation(ctx, stmt)
                if violation is not None:
                    yield violation

    @staticmethod
    def _is_lock_expr(expr: ast.expr) -> bool:
        for node in ast.walk(expr):
            name = None
            if isinstance(node, ast.Attribute):
                name = node.attr
            elif isinstance(node, ast.Name):
                name = node.id
            if name is not None and "lock" in name.lower():
                return True
        return False

    @staticmethod
    def _self_attr_of_subscript(target: ast.expr) -> str | None:
        """``attr`` when target is ``self.<attr>[...]``, else ``None``."""
        if (
            isinstance(target, ast.Subscript)
            and isinstance(target.value, ast.Attribute)
            and isinstance(target.value.value, ast.Name)
            and target.value.value.id == "self"
        ):
            return target.value.attr
        return None

    def _rmw_violation(self, ctx: FileContext, stmt: ast.stmt) -> Violation | None:
        if isinstance(stmt, ast.AugAssign):
            attr = self._self_attr_of_subscript(stmt.target)
            if attr is not None:
                return ctx.violation(
                    stmt, self.rule_id,
                    f"augmented assignment to self.{attr}[...] outside a "
                    "'with lock:' block",
                )
        if isinstance(stmt, ast.Assign) and len(stmt.targets) == 1:
            attr = self._self_attr_of_subscript(stmt.targets[0])
            if attr is not None and self._reads_self_attr(stmt.value, attr):
                return ctx.violation(
                    stmt, self.rule_id,
                    f"read-modify-write of self.{attr}[...] outside a "
                    "'with lock:' block",
                )
        return None

    @staticmethod
    def _reads_self_attr(expr: ast.expr, attr: str) -> bool:
        for node in ast.walk(expr):
            if (
                isinstance(node, ast.Attribute)
                and node.attr == attr
                and isinstance(node.value, ast.Name)
                and node.value.id == "self"
            ):
                return True
        return False


class FloatEqualityRule(Rule):
    """SPC004: ``==`` / ``!=`` between float rate/capacity expressions.

    Rates and capacities are accumulated floats; the processor-sharing
    boundary fixes showed that exact equality on them flips on rounding
    noise.  Compare with an epsilon (``math.isclose`` or an explicit
    tolerance), or use ``<=`` / ``>=`` against exact sentinels.
    """

    rule_id = "SPC004"
    summary = "float equality on rate/capacity expressions; use a tolerance"

    #: Identifier tokens that mark an expression as a float quantity.
    STEMS = frozenset({
        "rate", "rates", "capacity", "capacities", BANDWIDTH,
        "bottleneck", "residual", "headroom", "load", "loads",
    })

    SCOPE_DIRS = ("core/", "simulator/")

    def check(self, ctx: FileContext) -> Iterator[Violation]:
        if not any(f"/{d}" in f"/{ctx.relpath}" for d in self.SCOPE_DIRS):
            return
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Compare):
                continue
            operands = [node.left, *node.comparators]
            for index, op in enumerate(node.ops):
                if not isinstance(op, (ast.Eq, ast.NotEq)):
                    continue
                left, right = operands[index], operands[index + 1]
                if self._pair_is_suspect(left, right):
                    yield ctx.violation(
                        node, self.rule_id,
                        "exact float comparison of a rate/capacity "
                        "expression; compare with a tolerance",
                    )

    def _pair_is_suspect(self, left: ast.expr, right: ast.expr) -> bool:
        lr, rr = self._rate_like(left), self._rate_like(right)
        if lr and rr:
            return True
        return (lr and self._float_const(right)) or (rr and self._float_const(left))

    @staticmethod
    def _float_const(node: ast.expr) -> bool:
        if isinstance(node, ast.UnaryOp):
            node = node.operand
        return isinstance(node, ast.Constant) and isinstance(node.value, float)

    def _rate_like(self, node: ast.expr) -> bool:
        if isinstance(node, ast.BinOp):
            return self._rate_like(node.left) or self._rate_like(node.right)
        if isinstance(node, ast.Call):
            return self._rate_like(node.func)
        identifier = None
        if isinstance(node, ast.Attribute):
            identifier = node.attr
        elif isinstance(node, ast.Name):
            identifier = node.id
        if identifier is None:
            return False
        return bool(_tokens(identifier) & self.STEMS)


class FrozenSnapshotMutationRule(Rule):
    """SPC005: mutation of frozen snapshot / compiled-network values.

    ``ResidualSnapshot`` and ``AdmissionSnapshot`` are immutable by
    contract — they ship across worker threads/processes and back a
    revalidation protocol.  ``CompiledNetwork`` (the CSR arrays behind the
    array route kernel) is likewise frozen: its numpy arrays are shared by
    every cached tree, and all carry ``writeable=False``, so a write that
    slips past this rule still raises at runtime — but only at the call
    site, far from the bug.  Writing through any of them — attribute
    assignment, element assignment (``compiled.tie_rank[i] = ...``), or
    ``object.__setattr__`` — corrupts every holder of the value.
    """

    rule_id = "SPC005"
    summary = "mutation of a frozen snapshot or compiled-network value"

    FROZEN_CONSTRUCTORS = frozenset(
        {"ResidualSnapshot", "AdmissionSnapshot", "CompiledNetwork"}
    )
    FROZEN_FACTORIES = frozenset(
        {"freeze", "admission_snapshot", "compile_network"}
    )

    def check(self, ctx: FileContext) -> Iterator[Violation]:
        frozen_names = self._collect_frozen_names(ctx.tree)
        for node in ast.walk(ctx.tree):
            if isinstance(node, (ast.Assign, ast.AugAssign)):
                targets = node.targets if isinstance(node, ast.Assign) else [node.target]
                for target in targets:
                    if (
                        isinstance(target, ast.Attribute)
                        and isinstance(target.value, ast.Name)
                        and self._is_frozen_name(target.value.id, frozen_names)
                    ):
                        yield ctx.violation(
                            node, self.rule_id,
                            f"attribute assignment on frozen value "
                            f"{target.value.id!r} ({target.value.id}."
                            f"{target.attr} = ...)",
                        )
                    elif isinstance(target, ast.Subscript):
                        # Element writes into a frozen value's arrays:
                        # compiled.fwd_targets[i] = ... or snapshot[k] = ...
                        base = target.value
                        name = None
                        spelled = ""
                        if (
                            isinstance(base, ast.Attribute)
                            and isinstance(base.value, ast.Name)
                        ):
                            name = base.value.id
                            spelled = f"{name}.{base.attr}[...]"
                        elif isinstance(base, ast.Name):
                            name = base.id
                            spelled = f"{name}[...]"
                        if name is not None and self._is_frozen_name(
                            name, frozen_names
                        ):
                            yield ctx.violation(
                                node, self.rule_id,
                                f"element assignment into frozen value "
                                f"{name!r} ({spelled} = ...)",
                            )
            elif isinstance(node, ast.Call):
                dotted = _dotted(node.func)
                if dotted == "object.__setattr__" and node.args:
                    first = node.args[0]
                    if isinstance(first, ast.Name) and self._is_frozen_name(
                        first.id, frozen_names
                    ):
                        yield ctx.violation(
                            node, self.rule_id,
                            f"object.__setattr__ on frozen snapshot {first.id!r}",
                        )

    def _collect_frozen_names(self, tree: ast.Module) -> frozenset[str]:
        names: set[str] = set()
        for node in ast.walk(tree):
            if not isinstance(node, ast.Assign) or not isinstance(node.value, ast.Call):
                continue
            func = node.value.func
            frozen = (
                isinstance(func, ast.Name) and func.id in self.FROZEN_CONSTRUCTORS
            ) or (
                isinstance(func, ast.Attribute)
                and (
                    func.attr in self.FROZEN_CONSTRUCTORS
                    or func.attr in self.FROZEN_FACTORIES
                )
            )
            if frozen:
                for target in node.targets:
                    if isinstance(target, ast.Name):
                        names.add(target.id)
        return frozenset(names)

    @staticmethod
    def _is_frozen_name(identifier: str, frozen_names: frozenset[str]) -> bool:
        lowered = identifier.lower()
        return (
            identifier in frozen_names
            or lowered.endswith("snapshot")
            or lowered.endswith("compiled")
            or lowered.startswith("compiled")
        )


class BroadExceptRule(Rule):
    """SPC006: bare or broad ``except`` clauses outside the allowlist.

    The array-kernel fallback shipped with two ``except Exception:``
    blocks that silently degraded the numba kernel to pure Python on
    *any* failure — including plain bugs — which is exactly how a 10x
    slowdown hides for months.  Catch the specific expected exception
    types; when a catch-all is genuinely the contract (a CLI boundary
    that converts anything into an exit code, a sandbox around
    user-supplied operators), the file goes on the allowlist with a
    rationale, not behind a suppression comment.  The fixed tree ships
    with an empty violation baseline: any new broad except fails lint.
    """

    rule_id = "SPC006"
    summary = "bare/broad except clause; catch the expected exception types"

    #: Exception names that catch everything.
    BROAD = frozenset({"Exception", "BaseException"})

    #: Files where a documented catch-all boundary is the contract.
    ALLOWLIST = (
        "repro/cli.py",        # CLI surface: anything becomes an exit code
        "runtime/engine.py",   # user-operator sandbox: failures -> outcome errors
    )

    def check(self, ctx: FileContext) -> Iterator[Violation]:
        if _matches_any(ctx.relpath, self.ALLOWLIST):
            return
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.ExceptHandler):
                continue
            if node.type is None:
                yield ctx.violation(
                    node, self.rule_id,
                    "bare 'except:' clause; name the expected exception "
                    "types",
                )
                continue
            for expr in self._clause_types(node.type):
                name = self._exception_name(expr)
                if name in self.BROAD:
                    yield ctx.violation(
                        node, self.rule_id,
                        f"'except {name}' swallows unexpected failures; "
                        "catch the specific expected types (or allowlist "
                        "the file with a rationale)",
                    )
                    break

    @staticmethod
    def _clause_types(expr: ast.expr) -> list[ast.expr]:
        if isinstance(expr, ast.Tuple):
            return list(expr.elts)
        return [expr]

    @staticmethod
    def _exception_name(expr: ast.expr) -> str | None:
        if isinstance(expr, ast.Name):
            return expr.id
        if isinstance(expr, ast.Attribute):  # builtins.Exception
            return expr.attr
        return None


#: The rule set ``sparcle lint`` runs by default, in report order.
DEFAULT_RULES: tuple[Rule, ...] = (
    ResourceLiteralRule(),
    UnseededRandomnessRule(),
    UnlockedSharedMutationRule(),
    FloatEqualityRule(),
    FrozenSnapshotMutationRule(),
    BroadExceptRule(),
)
