"""AST-based lint engine encoding SPARCLE's domain invariants.

The repo's bug history falls into a handful of mechanically detectable
classes (raw resource-key literals, unseeded randomness, un-lock-guarded
registry mutation, float equality on rates, frozen-snapshot mutation).
This module provides the machinery that turns those classes into
checkable rules:

* :class:`Violation` — one finding, ordered for stable reports;
* :class:`Rule` — the interface a check implements (see
  :mod:`repro.devtools.rules` for the built-in SPC001–SPC005 set);
* :class:`LintEngine` — walks files/directories, parses each Python file
  once, runs every rule over the shared AST, and applies per-line
  ``# sparcle: ignore[RULE]`` suppressions plus an optional baseline;
* text/JSON formatting helpers used by ``sparcle lint``.

Suppression syntax, on the offending line::

    bucket.get("cpu", 0.0)  # sparcle: ignore[SPC001]
    value = thing()         # sparcle: ignore          (all rules)
    other = thing()         # sparcle: ignore[SPC001, SPC004]

A *baseline* file (JSON list of fingerprints) mutes known pre-existing
violations so the gate can be adopted incrementally; this repo ships with
an empty baseline on purpose — every violation the rules find is fixed,
not grandfathered.
"""

from __future__ import annotations

import ast
import json
import re
from collections.abc import Iterable, Iterator, Sequence
from dataclasses import dataclass, field
from pathlib import Path

from repro.exceptions import SparcleError

#: Matches ``# sparcle: ignore`` / ``# sparcle: ignore[SPC001, SPC004]``.
_SUPPRESSION = re.compile(
    r"#\s*sparcle:\s*ignore(?:\[(?P<rules>[A-Z0-9,\s]+)\])?"
)

#: Directory names never descended into during file discovery.
_SKIP_DIRS = frozenset({"__pycache__", ".git", ".hypothesis", ".venv", "venv"})


class LintConfigError(SparcleError):
    """A lint invocation was misconfigured (bad path, bad baseline...)."""


@dataclass(frozen=True, order=True)
class Violation:
    """One static-analysis finding, sortable into a stable report order."""

    file: str
    line: int
    rule_id: str
    message: str

    def fingerprint(self) -> str:
        """Line-insensitive identity used by baseline files.

        Excluding the line number keeps baselines stable across unrelated
        edits that merely shift code up or down.
        """
        return f"{self.file}::{self.rule_id}::{self.message}"

    def to_dict(self) -> dict[str, object]:
        """Plain-JSON form (the ``--format json`` record shape)."""
        return {
            "file": self.file,
            "line": self.line,
            "rule": self.rule_id,
            "message": self.message,
        }


@dataclass(frozen=True)
class FileContext:
    """Everything a rule gets about one parsed file."""

    path: Path
    #: Path relative to the lint root, with ``/`` separators — the string
    #: rules match their allowlists against and reports display.
    relpath: str
    source: str
    tree: ast.Module
    lines: tuple[str, ...]

    def violation(self, node: ast.AST, rule_id: str, message: str) -> Violation:
        """Build a violation anchored at ``node``'s source line."""
        return Violation(self.relpath, getattr(node, "lineno", 0), rule_id, message)


class Rule:
    """Base class for one lint rule.

    Subclasses set :attr:`rule_id` / :attr:`summary` and implement
    :meth:`check`, yielding :class:`Violation` records for one parsed
    file.  Rules must not mutate the shared AST.
    """

    rule_id: str = "SPC000"
    summary: str = ""

    def check(self, ctx: FileContext) -> Iterable[Violation]:
        """Yield violations found in ``ctx``; default finds nothing."""
        raise NotImplementedError


def _iter_python_files(paths: Sequence[str | Path]) -> Iterator[Path]:
    """Expand files/directories into ``.py`` files, deterministically."""
    seen: set[Path] = set()
    for raw in paths:
        path = Path(raw)
        if not path.exists():
            raise LintConfigError(f"lint path does not exist: {path}")
        if path.is_file():
            candidates: Iterable[Path] = [path] if path.suffix == ".py" else []
        else:
            candidates = sorted(
                p for p in path.rglob("*.py")
                if not (_SKIP_DIRS & set(p.parts))
            )
        for candidate in candidates:
            resolved = candidate.resolve()
            if resolved not in seen:
                seen.add(resolved)
                yield candidate


def _suppressed_rules(line: str) -> frozenset[str] | None:
    """Rule ids suppressed on ``line``.

    ``None`` when the line carries no suppression; an empty frozenset for
    the bare ``# sparcle: ignore`` (which mutes *every* rule).
    """
    match = _SUPPRESSION.search(line)
    if match is None:
        return None
    rules = match.group("rules")
    if rules is None:
        return frozenset()
    return frozenset(r.strip() for r in rules.split(",") if r.strip())


@dataclass
class LintReport:
    """The outcome of one engine run."""

    violations: list[Violation] = field(default_factory=list)
    files_checked: int = 0
    suppressed: int = 0
    baselined: int = 0

    @property
    def clean(self) -> bool:
        """Whether the run found nothing actionable."""
        return not self.violations


class LintEngine:
    """Run a rule set over Python sources and collect violations.

    ``root`` anchors the relative paths in reports (defaults to the
    current directory); ``baseline`` is an iterable of fingerprints (see
    :meth:`Violation.fingerprint`) to mute.
    """

    def __init__(
        self,
        rules: Sequence[Rule],
        *,
        root: str | Path | None = None,
        baseline: Iterable[str] = (),
    ) -> None:
        ids = [rule.rule_id for rule in rules]
        if len(set(ids)) != len(ids):
            raise LintConfigError(f"duplicate rule ids in {ids}")
        self.rules = tuple(rules)
        self.root = Path(root) if root is not None else Path.cwd()
        self.baseline = frozenset(baseline)

    # ------------------------------------------------------------------
    def _relpath(self, path: Path) -> str:
        try:
            rel = path.resolve().relative_to(self.root.resolve())
        except ValueError:
            rel = path
        return rel.as_posix()

    def lint_file(self, path: str | Path) -> LintReport:
        """Lint one file; parse errors surface as an ``SPC000`` violation."""
        path = Path(path)
        source = path.read_text()
        report = LintReport(files_checked=1)
        relpath = self._relpath(path)
        try:
            tree = ast.parse(source, filename=str(path))
        except SyntaxError as error:
            report.violations.append(Violation(
                relpath, error.lineno or 0, "SPC000",
                f"file does not parse: {error.msg}",
            ))
            return report
        ctx = FileContext(
            path=path,
            relpath=relpath,
            source=source,
            tree=tree,
            lines=tuple(source.splitlines()),
        )
        for rule in self.rules:
            for violation in rule.check(ctx):
                if self._is_suppressed(ctx, violation):
                    report.suppressed += 1
                elif violation.fingerprint() in self.baseline:
                    report.baselined += 1
                else:
                    report.violations.append(violation)
        report.violations.sort()
        return report

    def lint_paths(self, paths: Sequence[str | Path]) -> LintReport:
        """Lint every ``.py`` file reachable from ``paths``."""
        report = LintReport(files_checked=0)
        for path in _iter_python_files(paths):
            sub = self.lint_file(path)
            report.files_checked += sub.files_checked
            report.suppressed += sub.suppressed
            report.baselined += sub.baselined
            report.violations.extend(sub.violations)
        report.violations.sort()
        return report

    @staticmethod
    def _is_suppressed(ctx: FileContext, violation: Violation) -> bool:
        index = violation.line - 1
        if not 0 <= index < len(ctx.lines):
            return False
        suppressed = _suppressed_rules(ctx.lines[index])
        if suppressed is None:
            return False
        return not suppressed or violation.rule_id in suppressed


# ----------------------------------------------------------------------
# Baseline files
# ----------------------------------------------------------------------
def load_baseline(path: str | Path) -> frozenset[str]:
    """Read a baseline file (JSON list of fingerprints)."""
    try:
        data = json.loads(Path(path).read_text())
    except FileNotFoundError:
        raise LintConfigError(f"baseline file not found: {path}") from None
    except json.JSONDecodeError as error:
        raise LintConfigError(f"baseline {path} is not valid JSON: {error}") from error
    if not isinstance(data, list) or not all(isinstance(x, str) for x in data):
        raise LintConfigError(f"baseline {path} must be a JSON list of strings")
    return frozenset(data)


def write_baseline(path: str | Path, violations: Iterable[Violation]) -> int:
    """Write the fingerprints of ``violations`` as a baseline; returns count."""
    fingerprints = sorted({v.fingerprint() for v in violations})
    Path(path).write_text(json.dumps(fingerprints, indent=2) + "\n")
    return len(fingerprints)


# ----------------------------------------------------------------------
# Report formatting
# ----------------------------------------------------------------------
def format_text(report: LintReport) -> str:
    """Human-readable report: one ``file:line: RULE message`` per finding."""
    lines = [
        f"{v.file}:{v.line}: {v.rule_id} {v.message}"
        for v in report.violations
    ]
    noun = "violation" if len(report.violations) == 1 else "violations"
    lines.append(
        f"{len(report.violations)} {noun} in {report.files_checked} files "
        f"({report.suppressed} suppressed, {report.baselined} baselined)"
    )
    return "\n".join(lines) + "\n"


def format_json(report: LintReport) -> str:
    """Machine-readable report (the CI artifact shape)."""
    doc = {
        "violations": [v.to_dict() for v in report.violations],
        "files_checked": report.files_checked,
        "suppressed": report.suppressed,
        "baselined": report.baselined,
        "clean": report.clean,
    }
    return json.dumps(doc, indent=2, sort_keys=True) + "\n"
