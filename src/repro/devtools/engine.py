"""AST-based lint engine encoding SPARCLE's domain invariants.

The repo's bug history falls into a handful of mechanically detectable
classes (raw resource-key literals, unseeded randomness, un-lock-guarded
registry mutation, float equality on rates, frozen-snapshot mutation).
This module provides the machinery that turns those classes into
checkable rules:

* :class:`Violation` — one finding, ordered for stable reports;
* :class:`LintError` — a file the engine could not analyze (syntax
  error, bad encoding); reported structurally, never as a traceback;
* :class:`Rule` — the interface a per-file check implements (see
  :mod:`repro.devtools.rules` for the built-in SPC001–SPC006 set);
* :class:`LintEngine` — walks files/directories, parses each Python file
  once, runs every rule over the shared AST, feeds each file to the
  whole-program analyses (:mod:`repro.devtools.analyses`, SPC007–SPC010),
  and applies ``# sparcle: ignore[RULE]`` suppressions plus an optional
  baseline;
* an on-disk **facts cache**: per-file results (rule violations,
  suppression map, module summary, analysis extracts) are JSON and keyed
  by file mtime/size, so a warm re-run only re-parses changed files;
* text/JSON formatting helpers used by ``sparcle lint``.

Suppression syntax, on the offending statement::

    bucket.get("cpu", 0.0)  # sparcle: ignore[SPC001]
    value = thing()         # sparcle: ignore          (all rules)
    other = thing()         # sparcle: ignore[SPC001, SPC004]

A directive anywhere on a statement's lines covers the whole statement —
in particular, a violation anchored at the first line of a multi-line
call is suppressed by a directive on its closing line.

A *baseline* file (JSON list of fingerprints) mutes known pre-existing
violations so the gate can be adopted incrementally; this repo ships with
an empty baseline on purpose — every violation the rules find is fixed,
not grandfathered.
"""

from __future__ import annotations

import ast
import json
import re
from collections.abc import Iterable, Iterator, Mapping, Sequence
from dataclasses import dataclass, field
from pathlib import Path
from typing import TYPE_CHECKING, Any

from repro.exceptions import SparcleError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.devtools.analyses.base import Analysis

#: Matches ``# sparcle: ignore`` / ``# sparcle: ignore[SPC001, SPC004]``.
_SUPPRESSION = re.compile(
    r"#\s*sparcle:\s*ignore(?:\[(?P<rules>[A-Z0-9,\s]+)\])?"
)

#: Directory names never descended into during file discovery.
_SKIP_DIRS = frozenset({"__pycache__", ".git", ".hypothesis", ".venv", "venv"})

#: Bumped whenever the cached facts shape changes.
_CACHE_VERSION = 1


class LintConfigError(SparcleError):
    """A lint invocation was misconfigured (bad path, bad baseline...)."""


@dataclass(frozen=True, order=True)
class Violation:
    """One static-analysis finding, sortable into a stable report order."""

    file: str
    line: int
    rule_id: str
    message: str

    def fingerprint(self) -> str:
        """Line-insensitive identity used by baseline files.

        Excluding the line number keeps baselines stable across unrelated
        edits that merely shift code up or down.
        """
        return f"{self.file}::{self.rule_id}::{self.message}"

    def to_dict(self) -> dict[str, object]:
        """Plain-JSON form (the ``--format json`` record shape)."""
        return {
            "file": self.file,
            "line": self.line,
            "rule": self.rule_id,
            "message": self.message,
        }


@dataclass(frozen=True, order=True)
class LintError:
    """A file the engine could not analyze at all.

    Unlike a :class:`Violation` (a finding in parseable code), an error
    means the file never reached the rules — a syntax error, bytes that
    are not UTF-8, an unreadable path.  Errors fail the run (exit 2 from
    the CLI) because an unanalyzable file is unvetted code, not clean
    code.
    """

    file: str
    message: str

    def to_dict(self) -> dict[str, object]:
        """Plain-JSON form (the ``--format json`` record shape)."""
        return {"file": self.file, "message": self.message}


@dataclass(frozen=True)
class FileContext:
    """Everything a rule gets about one parsed file."""

    path: Path
    #: Path relative to the lint root, with ``/`` separators — the string
    #: rules match their allowlists against and reports display.
    relpath: str
    source: str
    tree: ast.Module
    lines: tuple[str, ...]

    def violation(self, node: ast.AST, rule_id: str, message: str) -> Violation:
        """Build a violation anchored at ``node``'s source line."""
        return Violation(self.relpath, getattr(node, "lineno", 0), rule_id, message)


class Rule:
    """Base class for one lint rule.

    Subclasses set :attr:`rule_id` / :attr:`summary` and implement
    :meth:`check`, yielding :class:`Violation` records for one parsed
    file.  Rules must not mutate the shared AST.
    """

    rule_id: str = "SPC000"
    summary: str = ""

    def check(self, ctx: FileContext) -> Iterable[Violation]:
        """Yield violations found in ``ctx``; default finds nothing."""
        raise NotImplementedError


def _iter_python_files(paths: Sequence[str | Path]) -> Iterator[Path]:
    """Expand files/directories into ``.py`` files, deterministically."""
    seen: set[Path] = set()
    for raw in paths:
        path = Path(raw)
        if not path.exists():
            raise LintConfigError(f"lint path does not exist: {path}")
        if path.is_file():
            candidates: Iterable[Path] = [path] if path.suffix == ".py" else []
        else:
            candidates = sorted(
                p for p in path.rglob("*.py")
                if not (_SKIP_DIRS & set(p.parts))
            )
        for candidate in candidates:
            resolved = candidate.resolve()
            if resolved not in seen:
                seen.add(resolved)
                yield candidate


def _suppressed_rules(line: str) -> frozenset[str] | None:
    """Rule ids suppressed on ``line``.

    ``None`` when the line carries no suppression; an empty frozenset for
    the bare ``# sparcle: ignore`` (which mutes *every* rule).
    """
    match = _SUPPRESSION.search(line)
    if match is None:
        return None
    rules = match.group("rules")
    if rules is None:
        return frozenset()
    return frozenset(r.strip() for r in rules.split(",") if r.strip())


def _merge_directives(
    a: frozenset[str] | None, b: frozenset[str] | None
) -> frozenset[str] | None:
    """Combine two directive sets (``None`` absent, empty = all rules)."""
    if a is None:
        return b
    if b is None:
        return a
    if not a or not b:
        return frozenset()
    return a | b


def _statement_spans(tree: ast.Module) -> Iterator[tuple[int, int]]:
    """Line spans a suppression directive anchors to, per statement.

    A compound statement (``if``/``with``/``for``/``def``…) owns only
    its header lines — a directive inside its body belongs to the inner
    statement.  A simple statement owns its full (possibly multi-line)
    extent, so a directive on the closing paren of a call suppresses the
    violation anchored at the statement's first line.
    """
    for node in ast.walk(tree):
        if isinstance(node, ast.excepthandler):
            end = node.body[0].lineno - 1 if node.body else node.lineno
            yield node.lineno, max(node.lineno, end)
            continue
        if not isinstance(node, ast.stmt):
            continue
        body = getattr(node, "body", None)
        if isinstance(body, list) and body and isinstance(body[0], ast.stmt):
            end = body[0].lineno - 1
        else:
            end = getattr(node, "end_lineno", None) or node.lineno
        yield node.lineno, max(node.lineno, end)


def _suppression_index(
    tree: ast.Module, lines: Sequence[str]
) -> dict[int, frozenset[str] | None]:
    """Map each source line to the directive set that suppresses it."""
    directives: dict[int, frozenset[str] | None] = {}
    for lineno, line in enumerate(lines, start=1):
        rules = _suppressed_rules(line)
        if rules is not None:
            directives[lineno] = rules
    if not directives:
        return {}
    index: dict[int, frozenset[str] | None] = dict(directives)
    for start, end in _statement_spans(tree):
        combined: frozenset[str] | None = None
        for lineno in range(start, end + 1):
            if lineno in directives:
                combined = _merge_directives(combined, directives[lineno])
        if combined is None:
            continue
        for lineno in range(start, end + 1):
            index[lineno] = _merge_directives(index.get(lineno), combined)
    return index


def _line_suppressed(
    index: Mapping[int, frozenset[str] | None], line: int, rule_id: str
) -> bool:
    directive = index.get(line)
    if directive is None:
        return False
    return not directive or rule_id in directive


@dataclass
class LintReport:
    """The outcome of one engine run."""

    violations: list[Violation] = field(default_factory=list)
    errors: list[LintError] = field(default_factory=list)
    files_checked: int = 0
    suppressed: int = 0
    baselined: int = 0

    @property
    def clean(self) -> bool:
        """Whether the run found nothing actionable."""
        return not self.violations and not self.errors


class LintEngine:
    """Run rules and whole-program analyses over Python sources.

    ``root`` anchors the relative paths in reports (defaults to the
    current directory); ``baseline`` is an iterable of fingerprints (see
    :meth:`Violation.fingerprint`) to mute; ``analyses`` is the
    whole-program pass set (:data:`repro.devtools.DEFAULT_ANALYSES` in
    the CLI); ``cache_path`` enables the on-disk facts cache.
    """

    def __init__(
        self,
        rules: Sequence[Rule],
        *,
        root: str | Path | None = None,
        baseline: Iterable[str] = (),
        analyses: Sequence["Analysis"] = (),
        cache_path: str | Path | None = None,
    ) -> None:
        ids = [rule.rule_id for rule in rules]
        ids.extend(analysis.rule_id for analysis in analyses)
        if len(set(ids)) != len(ids):
            raise LintConfigError(f"duplicate rule ids in {ids}")
        self.rules = tuple(rules)
        self.analyses = tuple(analyses)
        self.root = Path(root) if root is not None else Path.cwd()
        self.baseline = frozenset(baseline)
        self.cache_path = Path(cache_path) if cache_path is not None else None

    # ------------------------------------------------------------------
    def _relpath(self, path: Path) -> str:
        try:
            rel = path.resolve().relative_to(self.root.resolve())
        except ValueError:
            rel = path
        return rel.as_posix()

    # ------------------------------------------------------------------
    # Per-file fact computation (the cacheable unit)
    # ------------------------------------------------------------------
    def _compute_facts(
        self, path: Path, relpath: str, *, with_analyses: bool = True
    ) -> dict[str, Any]:
        facts: dict[str, Any] = {
            "violations": [],
            "suppressed": 0,
            "errors": [],
            "suppress": {},
            "index": None,
            "analysis": {},
        }
        try:
            raw = path.read_bytes()
        except OSError as error:
            facts["errors"].append(f"cannot read file: {error}")
            return facts
        try:
            source = raw.decode("utf-8")
        except UnicodeDecodeError as error:
            facts["errors"].append(
                f"not valid UTF-8 at byte {error.start}: {error.reason}"
            )
            return facts
        if not source.strip() and path.name != "__init__.py":
            # An empty package marker is idiomatic; any other empty
            # module is unvetted dead weight, not clean code.
            facts["errors"].append("file is empty (nothing to analyze)")
            return facts
        try:
            tree = ast.parse(source, filename=str(path))
        except SyntaxError as error:
            facts["errors"].append(
                f"line {error.lineno or 0}: file does not parse: {error.msg}"
            )
            return facts
        ctx = FileContext(
            path=path,
            relpath=relpath,
            source=source,
            tree=tree,
            lines=tuple(source.splitlines()),
        )
        suppress = _suppression_index(tree, ctx.lines)
        facts["suppress"] = {
            str(lineno): (None if rules is None else sorted(rules))
            for lineno, rules in suppress.items()
        }
        for rule in self.rules:
            for violation in rule.check(ctx):
                if _line_suppressed(suppress, violation.line, violation.rule_id):
                    facts["suppressed"] += 1
                else:
                    facts["violations"].append(violation.to_dict())
        if self.analyses and with_analyses:
            from repro.devtools.callgraph import ProjectIndex

            facts["index"] = ProjectIndex.extract_module(ctx)
            for analysis in self.analyses:
                extracted = analysis.extract(ctx)
                if extracted is not None:
                    facts["analysis"][analysis.rule_id] = extracted
        return facts

    @staticmethod
    def _facts_suppressed(
        facts: Mapping[str, Any], line: int, rule_id: str
    ) -> bool:
        directive = facts.get("suppress", {}).get(str(line))
        if directive is None:
            return False
        return not directive or rule_id in directive

    # ------------------------------------------------------------------
    # Cache
    # ------------------------------------------------------------------
    def _cache_signature(self) -> list[str]:
        return sorted(
            [rule.rule_id for rule in self.rules]
            + [analysis.rule_id for analysis in self.analyses]
        )

    def _load_cache(self) -> dict[str, Any]:
        if self.cache_path is None or not self.cache_path.exists():
            return {}
        try:
            doc = json.loads(self.cache_path.read_text(encoding="utf-8"))
        except (OSError, UnicodeDecodeError, json.JSONDecodeError):
            return {}
        if (
            not isinstance(doc, dict)
            or doc.get("version") != _CACHE_VERSION
            or doc.get("signature") != self._cache_signature()
        ):
            return {}
        files = doc.get("files")
        return files if isinstance(files, dict) else {}

    def _save_cache(self, files: dict[str, Any]) -> None:
        if self.cache_path is None:
            return
        doc = {
            "version": _CACHE_VERSION,
            "signature": self._cache_signature(),
            "files": files,
        }
        try:
            self.cache_path.parent.mkdir(parents=True, exist_ok=True)
            self.cache_path.write_text(json.dumps(doc), encoding="utf-8")
        except OSError:
            pass  # a cache that cannot be written is just a cold cache

    # ------------------------------------------------------------------
    def lint_file(self, path: str | Path) -> LintReport:
        """Lint one file with the per-file rules (no whole-program passes).

        Unanalyzable files (syntax errors, non-UTF-8 bytes) surface as
        structured :class:`LintError` entries, never tracebacks.
        """
        path = Path(path)
        relpath = self._relpath(path)
        facts = self._compute_facts(path, relpath, with_analyses=False)
        report = LintReport(files_checked=1)
        self._assemble_file(report, relpath, facts)
        report.violations.sort()
        return report

    def _assemble_file(
        self, report: LintReport, relpath: str, facts: Mapping[str, Any]
    ) -> None:
        report.suppressed += int(facts["suppressed"])
        for message in facts["errors"]:
            report.errors.append(LintError(relpath, str(message)))
        for doc in facts["violations"]:
            violation = Violation(
                str(doc["file"]), int(doc["line"]),
                str(doc["rule"]), str(doc["message"]),
            )
            if violation.fingerprint() in self.baseline:
                report.baselined += 1
            else:
                report.violations.append(violation)

    def lint_paths(self, paths: Sequence[str | Path]) -> LintReport:
        """Lint every ``.py`` file reachable from ``paths``.

        Runs the per-file rules on each file, then the whole-program
        analyses once over the assembled project index.  With a
        ``cache_path``, per-file facts are reused when the file's
        mtime and size are unchanged.
        """
        cache = self._load_cache()
        next_cache: dict[str, Any] = {}
        facts_by_relpath: dict[str, Mapping[str, Any]] = {}
        report = LintReport()
        for path in _iter_python_files(paths):
            relpath = self._relpath(path)
            if relpath in facts_by_relpath:
                continue
            report.files_checked += 1
            facts: Mapping[str, Any] | None = None
            try:
                stat = path.stat()
            except OSError:
                stat = None
            if stat is not None:
                entry = cache.get(relpath)
                if (
                    isinstance(entry, dict)
                    and entry.get("mtime") == stat.st_mtime
                    and entry.get("size") == stat.st_size
                ):
                    facts = entry["facts"]
            if facts is None:
                facts = self._compute_facts(path, relpath)
            facts_by_relpath[relpath] = facts
            if stat is not None:
                next_cache[relpath] = {
                    "mtime": stat.st_mtime,
                    "size": stat.st_size,
                    "facts": facts,
                }
            self._assemble_file(report, relpath, facts)
        self._run_analyses(report, facts_by_relpath)
        report.violations.sort()
        report.errors.sort()
        if self.cache_path is not None:
            self._save_cache(next_cache)
        return report

    def _run_analyses(
        self,
        report: LintReport,
        facts_by_relpath: Mapping[str, Mapping[str, Any]],
    ) -> None:
        if not self.analyses:
            return
        from repro.devtools.callgraph import ProjectIndex

        summaries = {
            relpath: facts["index"]
            for relpath, facts in facts_by_relpath.items()
            if facts.get("index")
        }
        analysis_facts = {
            analysis.rule_id: {
                relpath: facts["analysis"][analysis.rule_id]
                for relpath, facts in facts_by_relpath.items()
                if analysis.rule_id in facts.get("analysis", {})
            }
            for analysis in self.analyses
        }
        project = ProjectIndex.from_summaries(
            summaries, root=self.root, analysis_facts=analysis_facts
        )
        for analysis in self.analyses:
            for violation in analysis.check(project):
                facts = facts_by_relpath.get(violation.file)
                if facts is not None and self._facts_suppressed(
                    facts, violation.line, violation.rule_id
                ):
                    report.suppressed += 1
                elif violation.fingerprint() in self.baseline:
                    report.baselined += 1
                else:
                    report.violations.append(violation)


# ----------------------------------------------------------------------
# Baseline files
# ----------------------------------------------------------------------
def load_baseline(path: str | Path) -> frozenset[str]:
    """Read a baseline file (JSON list of fingerprints)."""
    try:
        data = json.loads(Path(path).read_text())
    except FileNotFoundError:
        raise LintConfigError(f"baseline file not found: {path}") from None
    except json.JSONDecodeError as error:
        raise LintConfigError(f"baseline {path} is not valid JSON: {error}") from error
    if not isinstance(data, list) or not all(isinstance(x, str) for x in data):
        raise LintConfigError(f"baseline {path} must be a JSON list of strings")
    return frozenset(data)


def write_baseline(path: str | Path, violations: Iterable[Violation]) -> int:
    """Write the fingerprints of ``violations`` as a baseline; returns count."""
    fingerprints = sorted({v.fingerprint() for v in violations})
    Path(path).write_text(json.dumps(fingerprints, indent=2) + "\n")
    return len(fingerprints)


# ----------------------------------------------------------------------
# Report formatting
# ----------------------------------------------------------------------
def format_text(report: LintReport) -> str:
    """Human-readable report: one ``file:line: RULE message`` per finding."""
    lines = [
        f"{e.file}: error: {e.message}"
        for e in report.errors
    ]
    lines.extend(
        f"{v.file}:{v.line}: {v.rule_id} {v.message}"
        for v in report.violations
    )
    noun = "violation" if len(report.violations) == 1 else "violations"
    summary = (
        f"{len(report.violations)} {noun} in {report.files_checked} files "
        f"({report.suppressed} suppressed, {report.baselined} baselined)"
    )
    if report.errors:
        noun = "file error" if len(report.errors) == 1 else "file errors"
        summary += f", {len(report.errors)} {noun}"
    lines.append(summary)
    return "\n".join(lines) + "\n"


def format_json(report: LintReport) -> str:
    """Machine-readable report (the CI artifact shape)."""
    doc = {
        "violations": [v.to_dict() for v in report.violations],
        "errors": [e.to_dict() for e in report.errors],
        "files_checked": report.files_checked,
        "suppressed": report.suppressed,
        "baselined": report.baselined,
        "clean": report.clean,
    }
    return json.dumps(doc, indent=2, sort_keys=True) + "\n"
