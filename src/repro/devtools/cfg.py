"""Intraprocedural control-flow graphs for the whole-program analyses.

:func:`build_cfg` turns one function body into a statement-granularity
CFG: every ``ast.stmt`` becomes a node, plus two synthetic exits —
:data:`EXIT` (the function returns or falls off the end normally) and
:data:`RAISE` (an exception escapes the function).  The graph models the
constructs the typestate checks care about:

* ``if``/``for``/``while`` branching (including ``else`` arms and
  ``break``/``continue``);
* ``try``/``except``/``else``/``finally`` — every statement inside a
  ``try`` body gets a *may-raise* edge to each handler entry, because the
  leak class SPC009 hunts is precisely "an exception between phase 1 and
  phase 2 lands in a handler that forgets to roll back";
* ``raise`` inside a handler (a re-raise) flows to the enclosing
  handlers, or to :data:`RAISE` when none enclose it.

The graph is deliberately an over-approximation: a path in the CFG may
be infeasible at runtime, but every feasible path is in the graph, which
is the direction a "must reach a commit on **all** paths" check needs.

:func:`escapes_without` is the path query SPC009 is built on: can the
normal exit be reached from a statement without passing through any
statement the predicate accepts?
"""

from __future__ import annotations

import ast
from collections.abc import Callable
from dataclasses import dataclass, field

#: Synthetic node id: the function's normal exit (return / fall-through).
EXIT = -1
#: Synthetic node id: an exception escapes the function.
RAISE = -2

#: Compound statements whose suite starts after a header line.
_LOOPS = (ast.For, ast.AsyncFor, ast.While)


@dataclass
class CFG:
    """One function's control-flow graph (statement granularity)."""

    statements: list[ast.stmt] = field(default_factory=list)
    successors: dict[int, set[int]] = field(default_factory=dict)

    def succ(self, node_id: int) -> set[int]:
        """Successor node ids of ``node_id`` (empty set when terminal)."""
        return self.successors.get(node_id, set())

    def node_ids(self) -> range:
        """Ids of the real (non-synthetic) statement nodes."""
        return range(len(self.statements))


class _Frame:
    """Per-construct context while building: where control may jump."""

    def __init__(
        self,
        *,
        handlers: tuple[int, ...] = (),
        break_to: int | None = None,
        continue_to: int | None = None,
    ) -> None:
        self.handlers = handlers
        self.break_to = break_to
        self.continue_to = continue_to

    def with_handlers(self, handlers: tuple[int, ...]) -> "_Frame":
        return _Frame(
            handlers=handlers,
            break_to=self.break_to,
            continue_to=self.continue_to,
        )

    def with_loop(self, break_to: int, continue_to: int) -> "_Frame":
        return _Frame(
            handlers=self.handlers,
            break_to=break_to,
            continue_to=continue_to,
        )


class _Builder:
    def __init__(self) -> None:
        self.cfg = CFG()

    # ------------------------------------------------------------------
    def _add(self, stmt: ast.stmt) -> int:
        node_id = len(self.cfg.statements)
        self.cfg.statements.append(stmt)
        self.cfg.successors.setdefault(node_id, set())
        return node_id

    def _edge(self, src: int, dst: int) -> None:
        self.cfg.successors.setdefault(src, set()).add(dst)

    def _raise_edges(self, src: int, frame: _Frame) -> None:
        if frame.handlers:
            for handler in frame.handlers:
                self._edge(src, handler)
        else:
            self._edge(src, RAISE)

    # ------------------------------------------------------------------
    def block(
        self, stmts: list[ast.stmt], frame: _Frame
    ) -> tuple[int | None, set[int]]:
        """Wire a suite; returns (entry id, ids whose flow continues past)."""
        entry: int | None = None
        pending: set[int] = set()
        for stmt in stmts:
            sub_entry, sub_exits = self.statement(stmt, frame)
            if sub_entry is None:
                continue
            if entry is None:
                entry = sub_entry
            for src in pending:
                self._edge(src, sub_entry)
            pending = sub_exits
        return entry, pending

    def statement(
        self, stmt: ast.stmt, frame: _Frame
    ) -> tuple[int | None, set[int]]:
        node_id = self._add(stmt)
        if isinstance(stmt, ast.Return):
            self._edge(node_id, EXIT)
            return node_id, set()
        if isinstance(stmt, ast.Raise):
            self._raise_edges(node_id, frame)
            return node_id, set()
        if isinstance(stmt, ast.Break):
            if frame.break_to is not None:
                self._edge(node_id, frame.break_to)
            return node_id, set()
        if isinstance(stmt, ast.Continue):
            if frame.continue_to is not None:
                self._edge(node_id, frame.continue_to)
            return node_id, set()
        if isinstance(stmt, ast.If):
            then_entry, then_exits = self.block(stmt.body, frame)
            if then_entry is not None:
                self._edge(node_id, then_entry)
            exits = set(then_exits)
            if stmt.orelse:
                else_entry, else_exits = self.block(stmt.orelse, frame)
                if else_entry is not None:
                    self._edge(node_id, else_entry)
                exits |= else_exits
            else:
                exits.add(node_id)
            return node_id, exits
        if isinstance(stmt, _LOOPS):
            inner = frame.with_loop(break_to=node_id, continue_to=node_id)
            body_entry, body_exits = self.block(stmt.body, inner)
            if body_entry is not None:
                self._edge(node_id, body_entry)
            for src in body_exits:
                self._edge(src, node_id)
            exits = {node_id}
            if stmt.orelse:
                else_entry, else_exits = self.block(stmt.orelse, frame)
                if else_entry is not None:
                    self._edge(node_id, else_entry)
                exits |= else_exits
            return node_id, exits
        if isinstance(stmt, (ast.With, ast.AsyncWith)):
            body_entry, body_exits = self.block(stmt.body, frame)
            if body_entry is not None:
                self._edge(node_id, body_entry)
                return node_id, body_exits
            return node_id, {node_id}
        if isinstance(stmt, ast.Try):
            return self._try(node_id, stmt, frame)
        # Simple statement (or a nested def/class, treated opaquely).
        return node_id, {node_id}

    def _try(
        self, node_id: int, stmt: ast.Try, frame: _Frame
    ) -> tuple[int, set[int]]:
        # Handlers run under the *outer* handler context: a raise inside
        # an except block re-raises past this try.
        handler_entries: list[int] = []
        handler_exits: set[int] = set()
        handler_blocks: list[tuple[int | None, set[int]]] = []
        for handler in stmt.handlers:
            built = self.block(handler.body, frame)
            handler_blocks.append(built)
            if built[0] is not None:
                handler_entries.append(built[0])
            handler_exits |= built[1]
        inner = frame.with_handlers(tuple(handler_entries))
        first_body_node = len(self.cfg.statements)
        body_entry, body_exits = self.block(stmt.body, inner)
        last_body_node = len(self.cfg.statements)
        # May-raise: any statement in the try body can jump to a handler.
        for body_id in range(first_body_node, last_body_node):
            for handler_id in handler_entries:
                self._edge(body_id, handler_id)
        if body_entry is not None:
            self._edge(node_id, body_entry)
        else:
            body_exits = {node_id}
        exits = set(body_exits) | handler_exits
        if stmt.orelse:
            else_entry, else_exits = self.block(stmt.orelse, frame)
            if else_entry is not None:
                for src in body_exits:
                    self._edge(src, else_entry)
                exits = else_exits | handler_exits
        if stmt.finalbody:
            final_entry, final_exits = self.block(stmt.finalbody, frame)
            if final_entry is not None:
                for src in exits:
                    self._edge(src, final_entry)
                exits = final_exits
        return node_id, exits


def build_cfg(func: ast.FunctionDef | ast.AsyncFunctionDef) -> CFG:
    """The control-flow graph of one function body."""
    builder = _Builder()
    _, exits = builder.block(func.body, _Frame())
    for src in exits:
        builder._edge(src, EXIT)
    return builder.cfg


def escapes_without(
    cfg: CFG,
    start: int,
    is_barrier: Callable[[ast.stmt], bool],
) -> bool:
    """Can :data:`EXIT` be reached from ``start`` avoiding every barrier?

    The search begins at ``start``'s successors (the statement itself is
    not tested against the predicate).  Paths that end at :data:`RAISE`
    are *not* escapes — an escaping exception is the caller's problem,
    which is exactly the contract SPC009 accepts (reraise is a valid
    outcome for a phase-1 reservation).
    """
    seen: set[int] = set()
    stack = list(cfg.succ(start))
    while stack:
        node_id = stack.pop()
        if node_id == EXIT:
            return True
        if node_id == RAISE or node_id in seen:
            continue
        seen.add(node_id)
        if is_barrier(cfg.statements[node_id]):
            continue
        stack.extend(cfg.succ(node_id))
    return False
