"""SPC007: lock-acquisition-order cycles and loop-blocking held regions.

The concurrently-driven modules (``repro.perf``, the admission gateway,
the shard coordinator) guard shared state with ``threading.Lock``/
``RLock`` instances.  Two hazards are mechanical to detect once the
project index exposes lock facts:

* **Order cycles.**  If one code path acquires lock *A* then *B* while
  another acquires *B* then *A*, two threads can deadlock.  The analysis
  builds the acquisition-order graph from (a) nested ``with`` blocks
  inside one function and (b) one-hop interprocedural edges — a call
  made while holding *A* into a function that acquires *B* — and reports
  every cycle.
* **Blocking the loop while locked.**  An ``await`` suspends the holding
  task without releasing a ``threading`` lock; a thread-pool
  ``submit``/``map`` while holding a lock the workers may also want is
  the classic self-deadlock.  Both are reported wherever they appear in
  a held-lock region of a scoped file.

Locks are *discovered*, not declared: any ``self.x = threading.Lock()``
(or ``RLock``) assignment marks ``x`` as a lock attribute of its class;
module-level ``X = threading.Lock()`` globals count too.
"""

from __future__ import annotations

from collections.abc import Iterable, Mapping
from typing import Any

from repro.devtools.analyses.base import Analysis
from repro.devtools.callgraph import ProjectIndex
from repro.devtools.engine import Violation

#: Files whose lock discipline is in scope.
SCOPE_SUFFIXES = ("service/gateway.py", "service/shard.py")
SCOPE_DIRS = ("perf/",)


def _in_scope(relpath: str) -> bool:
    if any(relpath.endswith(suffix) for suffix in SCOPE_SUFFIXES):
        return True
    return any(f"/{d}" in f"/{relpath}" for d in SCOPE_DIRS)


class LockOrderAnalysis(Analysis):
    """SPC007: inconsistent lock acquisition order / blocking held regions."""

    rule_id = "SPC007"
    summary = "lock-order cycle or event-loop-blocking call in a held-lock region"

    def check(self, project: ProjectIndex) -> Iterable[Violation]:
        edges: dict[tuple[str, str], tuple[str, int]] = {}
        scoped = [
            (relpath, func)
            for relpath in project.files_matching()
            if _in_scope(relpath)
            for func in project.functions_in(relpath)
        ]
        for relpath, func in scoped:
            for outer, inner, line in func["lock_edges"]:
                edges.setdefault((outer, inner), (relpath, line))
            module = project.summaries[relpath]["module"]
            for event in func["in_lock"]:
                if event["kind"] != "call" or event["dotted"] is None:
                    continue
                for callee in project.resolve(
                    func, event["dotted"], module=module
                ):
                    for acquired in project.functions[callee]["acquires"]:
                        edges.setdefault(
                            (event["lock"], acquired["lock"]),
                            (relpath, event["line"]),
                        )
        yield from self._cycles(edges)
        for relpath, func in scoped:
            for event in func["in_lock"]:
                if event["kind"] == "await":
                    yield Violation(
                        relpath, event["line"], self.rule_id,
                        f"await while holding lock {event['lock']!r}: a "
                        "threading lock is not released across suspension "
                        "points (move the await outside the lock region)",
                    )
                elif event["kind"] == "submit":
                    yield Violation(
                        relpath, event["line"], self.rule_id,
                        f"thread-pool {event['dotted']}(...) while holding "
                        f"lock {event['lock']!r}: workers that need the "
                        "same lock deadlock against the submitter",
                    )

    # ------------------------------------------------------------------
    def _cycles(
        self, edges: Mapping[tuple[str, str], tuple[str, int]]
    ) -> Iterable[Violation]:
        graph: dict[str, list[str]] = {}
        for outer, inner in sorted(edges):
            graph.setdefault(outer, []).append(inner)
            graph.setdefault(inner, [])
        reported: set[frozenset[str]] = set()
        for start in sorted(graph):
            cycle = self._find_cycle(graph, start)
            if cycle is None:
                continue
            key = frozenset(cycle)
            if key in reported:
                continue
            reported.add(key)
            relpath, line = self._anchor(cycle, edges)
            chain = " -> ".join([*cycle, cycle[0]])
            yield Violation(
                relpath, line, self.rule_id,
                f"lock-order cycle {chain}: these locks are acquired in "
                "inconsistent orders (potential deadlock); pick one global "
                "order and stick to it",
            )

    @staticmethod
    def _find_cycle(
        graph: Mapping[str, list[str]], start: str
    ) -> list[str] | None:
        """A simple cycle through ``start``, or ``None``."""
        path: list[str] = [start]
        on_path = {start}

        def dfs(node: str) -> list[str] | None:
            for nxt in graph.get(node, ()):
                if nxt == start and len(path) > 1:
                    return list(path)
                if nxt in on_path:
                    continue
                path.append(nxt)
                on_path.add(nxt)
                found = dfs(nxt)
                if found is not None:
                    return found
                on_path.discard(nxt)
                path.pop()
            return None

        # Self-edges are skipped: re-acquiring the same id is legal for
        # RLocks and the discovery pass does not distinguish the kinds.
        return dfs(start)

    @staticmethod
    def _anchor(
        cycle: list[str],
        edges: Mapping[tuple[str, str], tuple[str, int]],
    ) -> tuple[str, int]:
        ring = [*cycle, cycle[0]]
        for outer, inner in zip(ring, ring[1:]):
            if (outer, inner) in edges:
                return edges[(outer, inner)]
        return next(iter(edges.values()))


__all__ = ["LockOrderAnalysis"]
