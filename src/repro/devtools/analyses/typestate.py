"""SPC009: two-phase reserve/commit typestate in the shard coordinator.

Cross-shard admission is a two-phase protocol: phase 1 reserves
capacity (``reserve_external`` on a shard scheduler, ledger
``consume`` on the coordinator), phase 2 makes the reservation durable
(a log append, the app-table insert) or rolls it back (``withdraw``,
``restore_residual``, ``_rebuild_ledger``).  A reservation that reaches
neither on some control-flow path is leaked capacity — invisible until
the network mysteriously fills up.  Two path-sensitive checks over
``service/shard.py``:

* **Reserve must reach a commit marker on every path.**  For each
  statement that calls ``reserve_external``, the function's CFG must
  not offer a path to normal exit that avoids every commit/rollback
  marker.  Paths that end in ``raise`` are fine — the exception *is*
  the abort signal and the caller owns the cleanup.
* **Partial aggregate mutation without a rebuild.**  A loop that feeds
  ``self.<attr>.consume(...)`` entry-by-entry inside a ``try`` can fail
  halfway; unless some handler of that ``try`` re-derives the aggregate
  (``_rebuild_ledger``/``restore_residual``), the already-consumed
  entries leak even though the handler re-raises.

Both checks run in :meth:`~Analysis.extract` (the facts are just the
violations, cached with the file) and :meth:`~Analysis.check` re-emits
them, so an unchanged ``shard.py`` costs nothing on a warm cache.
"""

from __future__ import annotations

import ast
from collections.abc import Iterable, Iterator
from typing import Any

from repro.devtools.analyses.base import Analysis
from repro.devtools.callgraph import ProjectIndex, dotted_chain
from repro.devtools.cfg import build_cfg, escapes_without
from repro.devtools.engine import FileContext, Violation

#: The file whose two-phase discipline is in scope.
SCOPE_SUFFIX = "service/shard.py"

#: Call attributes that count as phase-2 commit or rollback.
COMMIT_MARKERS = frozenset({
    "append",            # durable log record — the commit point
    "apply_external",    # hand-off to the owning shard
    "withdraw",          # rollback: release the reservation
    "restore_residual",  # rollback: reinstall a snapshot
    "_rebuild_ledger",   # rollback: re-derive the aggregate
})

#: Handler calls that repair a partially-mutated aggregate.
RESTORE_MARKERS = frozenset({"_rebuild_ledger", "restore_residual"})


def _walk_outside_defs(node: ast.AST) -> Iterator[ast.AST]:
    for child in ast.iter_child_nodes(node):
        if isinstance(
            child,
            (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef, ast.Lambda),
        ):
            continue
        yield child
        yield from _walk_outside_defs(child)


def _call_attrs(node: ast.AST) -> set[str]:
    """Last dotted components of every call made directly in ``node``."""
    attrs: set[str] = set()
    for sub in [node, *_walk_outside_defs(node)]:
        if isinstance(sub, ast.Call):
            dotted = dotted_chain(sub.func)
            if dotted is not None:
                attrs.add(dotted.rpartition(".")[2])
    return attrs


def _header_nodes(stmt: ast.stmt) -> list[ast.AST]:
    """The expressions a CFG node *owns*.

    A compound statement's suite statements are their own CFG nodes, so
    barrier/reserve classification of the header must not look inside
    the body — only at the header expressions.
    """
    if isinstance(stmt, (ast.If, ast.While)):
        return [stmt.test]
    if isinstance(stmt, (ast.For, ast.AsyncFor)):
        return [stmt.target, stmt.iter]
    if isinstance(stmt, (ast.With, ast.AsyncWith)):
        return [item.context_expr for item in stmt.items]
    if isinstance(stmt, ast.Try):
        return []
    return [stmt]


def _stmt_call_attrs(stmt: ast.stmt) -> set[str]:
    """Call attrs of the statement itself, excluding nested suites."""
    attrs: set[str] = set()
    for root in _header_nodes(stmt):
        attrs |= _call_attrs(root)
    return attrs


def _is_commit(stmt: ast.stmt) -> bool:
    """A statement that commits or rolls back the reservation."""
    if _stmt_call_attrs(stmt) & COMMIT_MARKERS:
        return True
    # ``self._apps[app_id] = ...``-style table inserts commit too.
    if isinstance(stmt, ast.Assign):
        for target in stmt.targets:
            if (
                isinstance(target, ast.Subscript)
                and isinstance(target.value, ast.Attribute)
                and isinstance(target.value.value, ast.Name)
                and target.value.value.id == "self"
            ):
                return True
    return False


def _self_consume_lines(node: ast.AST) -> list[int]:
    """Lines of ``self.<attr>.consume(...)`` calls under ``node``.

    Only self-attribute receivers count: a ``consume`` on a local
    working view mutates throwaway state, not the coordinator's.
    """
    lines: list[int] = []
    for sub in _walk_outside_defs(node):
        if (
            isinstance(sub, ast.Call)
            and isinstance(sub.func, ast.Attribute)
            and sub.func.attr == "consume"
            and isinstance(sub.func.value, ast.Attribute)
            and isinstance(sub.func.value.value, ast.Name)
            and sub.func.value.value.id == "self"
        ):
            lines.append(sub.lineno)
    return lines


class TwoPhaseTypestateAnalysis(Analysis):
    """SPC009: phase-1 reserves must commit, roll back, or re-raise."""

    rule_id = "SPC009"
    summary = "phase-1 reservation can leak on some control-flow path"

    def extract(self, ctx: FileContext) -> Any | None:
        if not ctx.relpath.endswith(SCOPE_SUFFIX):
            return None
        violations: list[dict[str, Any]] = []
        for node in ast.walk(ctx.tree):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                violations.extend(self._check_function(ctx.relpath, node))
        return {"violations": violations}

    def check(self, project: ProjectIndex) -> Iterable[Violation]:
        facts = project.analysis_facts.get(self.rule_id, {})
        for relpath in sorted(facts):
            extracted = facts[relpath]
            if not extracted:
                continue
            for doc in extracted["violations"]:
                yield Violation(
                    relpath, int(doc["line"]), self.rule_id,
                    str(doc["message"]),
                )

    # ------------------------------------------------------------------
    def _check_function(
        self, relpath: str, func: ast.FunctionDef | ast.AsyncFunctionDef
    ) -> Iterable[dict[str, Any]]:
        yield from self._reserve_reaches_commit(func)
        yield from self._partial_mutation_in_try(func)

    @staticmethod
    def _reserve_reaches_commit(
        func: ast.FunctionDef | ast.AsyncFunctionDef,
    ) -> Iterable[dict[str, Any]]:
        cfg = build_cfg(func)
        reserves = [
            node_id
            for node_id in cfg.node_ids()
            if "reserve_external" in _stmt_call_attrs(cfg.statements[node_id])
        ]
        if not reserves:
            return
        for node_id in reserves:
            if escapes_without(cfg, node_id, _is_commit):
                line = cfg.statements[node_id].lineno
                yield {
                    "line": line,
                    "message": (
                        "phase-1 reserve_external(...) in "
                        f"'{func.name}' can reach function exit without a "
                        "commit, rollback, or raise on some path: the "
                        "reservation leaks capacity"
                    ),
                }

    @staticmethod
    def _partial_mutation_in_try(
        func: ast.FunctionDef | ast.AsyncFunctionDef,
    ) -> Iterable[dict[str, Any]]:
        for node in _walk_outside_defs(func):
            if not isinstance(node, ast.Try) or not node.handlers:
                continue
            restored = any(
                _call_attrs(handler) & RESTORE_MARKERS
                for handler in node.handlers
            )
            if restored:
                continue
            for stmt in node.body:
                for sub in [stmt, *_walk_outside_defs(stmt)]:
                    if not isinstance(sub, (ast.For, ast.While)):
                        continue
                    for line in _self_consume_lines(sub):
                        yield {
                            "line": line,
                            "message": (
                                "entry-by-entry consume(...) on coordinator "
                                "state inside a try whose handlers never "
                                "rebuild it: a mid-loop failure leaks the "
                                "already-consumed entries even though the "
                                "handler re-raises (call _rebuild_ledger() "
                                "or restore a snapshot in the handler)"
                            ),
                        }


__all__ = ["TwoPhaseTypestateAnalysis"]
