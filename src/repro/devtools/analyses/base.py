"""The :class:`Analysis` interface shared by the SPC007–SPC010 passes."""

from __future__ import annotations

from collections.abc import Iterable
from typing import Any

from repro.devtools.callgraph import ProjectIndex
from repro.devtools.engine import FileContext, Violation


class Analysis:
    """Base class for one whole-program analysis.

    Subclasses set :attr:`rule_id` / :attr:`summary`, optionally
    override :meth:`extract` to distill per-file facts (must return
    JSON-serializable data — it is cached on disk keyed by file
    mtime/size), and implement :meth:`check` over the assembled
    :class:`~repro.devtools.callgraph.ProjectIndex`.
    """

    rule_id: str = "SPC000"
    summary: str = ""

    def extract(self, ctx: FileContext) -> Any | None:
        """Per-file facts for this analysis; ``None`` when uninterested."""
        return None

    def check(self, project: ProjectIndex) -> Iterable[Violation]:
        """Yield violations over the whole-program index."""
        raise NotImplementedError


__all__ = ["Analysis"]
