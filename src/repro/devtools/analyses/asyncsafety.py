"""SPC008: async-safety of the serving front-end.

``repro.service.server``/``client`` run everything on one asyncio event
loop; a blocking call anywhere in the synchronous code an ``async def``
reaches stalls every connection at once.  Three checks:

* **Blocking calls reachable from async code.**  Starting from every
  ``async def`` in the scoped files, walk the call graph (following
  ``self.m``, imported names, and method-name CHA) and flag blocking
  sinks: ``time.sleep``, ``open``/pathlib file IO, ``socket.*``,
  ``subprocess.*``, and ``pool.result()``-style future joins.  The
  *intentional* synchronous-backend-on-loop boundary is allowlisted by
  qualname prefix — every entry carries a rationale string, and the
  traversal stops there instead of descending into the backend.
* **Unawaited coroutines.**  A bare expression statement calling a
  project ``async def`` creates a coroutine that is never awaited — the
  call silently does nothing.
* **Fire-and-forget ``create_task``.**  A bare ``loop.create_task(...)``
  /``asyncio.ensure_future(...)`` statement drops the only reference to
  the task: it can be garbage-collected mid-flight and its exception is
  never observed.  Keep a reference and attach a done-callback.
"""

from __future__ import annotations

from collections.abc import Iterable, Mapping
from typing import Any

from repro.devtools.analyses.base import Analysis
from repro.devtools.callgraph import ProjectIndex, identifier_tokens
from repro.devtools.engine import Violation

#: Files whose async discipline is in scope (the asyncio front-end).
SCOPE_SUFFIXES = ("service/server.py", "service/client.py")

#: Qualname prefixes the traversal does not descend into, with the
#: rationale for each.  These are the documented synchronous-backend-
#: on-the-loop boundaries (docs/serving.md: the backend is explicitly
#: single-threaded; every backend call runs synchronously on the loop).
ALLOWLIST: Mapping[str, str] = {
    "repro.service.gateway.": (
        "the admission gateway is the synchronous backend the server "
        "drives on the event loop by design (single-threaded "
        "control-loop contract, docs/serving.md)"
    ),
    "repro.service.shard.": (
        "the shard coordinator and its durable event logs are the "
        "synchronous backend the server drives on the event loop by "
        "design (decisions must hit the log before the reply is sent)"
    ),
}

#: Exact dotted names that block the loop.
_SINK_EXACT = frozenset({"time.sleep", "open"})

#: Dotted prefixes that block the loop.
_SINK_PREFIXES = ("socket.", "subprocess.")

#: Attribute calls that are file IO regardless of receiver.
_SINK_ATTRS = frozenset({
    "read_text", "write_text", "read_bytes", "write_bytes",
})

#: ``.result()`` joins block when the receiver looks like a pool/future.
_JOIN_TOKENS = frozenset({"pool", "executor", "future", "futures", "promise"})

#: Task-spawn entry points for the fire-and-forget check.
_SPAWN_ATTRS = frozenset({"create_task", "ensure_future"})


def _sink_reason(dotted: str) -> str | None:
    """Why a call is a blocking sink, or ``None`` when it is not."""
    if dotted in _SINK_EXACT:
        return f"{dotted}(...) blocks the event loop"
    if any(dotted.startswith(prefix) for prefix in _SINK_PREFIXES):
        return f"{dotted}(...) performs blocking IO"
    head, _, attr = dotted.rpartition(".")
    if attr in _SINK_ATTRS:
        return f"{dotted}(...) performs blocking file IO"
    if attr == "result" and (identifier_tokens(head) & _JOIN_TOKENS):
        return f"{dotted}(...) joins a worker future synchronously"
    return None


def _allowlisted(qualname: str) -> bool:
    return any(qualname.startswith(prefix) for prefix in ALLOWLIST)


class AsyncSafetyAnalysis(Analysis):
    """SPC008: blocking/unsafe patterns in the asyncio serving stack."""

    rule_id = "SPC008"
    summary = "blocking call reachable from async code / unawaited coroutine"

    def check(self, project: ProjectIndex) -> Iterable[Violation]:
        scoped = project.files_matching(*SCOPE_SUFFIXES)
        yield from self._blocking_reachability(project, scoped)
        yield from self._local_checks(project, scoped)

    # ------------------------------------------------------------------
    def _blocking_reachability(
        self, project: ProjectIndex, scoped: list[str]
    ) -> Iterable[Violation]:
        roots = [
            func for relpath in scoped
            for func in project.functions_in(relpath)
            if func["is_async"]
        ]
        reported: set[tuple[str, int]] = set()
        for root in sorted(roots, key=lambda f: str(f["qualname"])):
            yield from self._walk_root(project, root, reported)

    def _walk_root(
        self,
        project: ProjectIndex,
        root: Mapping[str, Any],
        reported: set[tuple[str, int]],
    ) -> Iterable[Violation]:
        seen = {str(root["qualname"])}
        queue: list[tuple[Mapping[str, Any], tuple[str, ...]]] = [
            (root, (str(root["name"]),))
        ]
        while queue:
            func, chain = queue.pop(0)
            relpath = project.relpath_of(str(func["qualname"]))
            if relpath is None:
                continue
            module = str(project.summaries[relpath]["module"])
            for call in func["calls"]:
                reason = _sink_reason(str(call["dotted"]))
                if reason is not None:
                    key = (relpath, int(call["line"]))
                    if key not in reported:
                        reported.add(key)
                        yield Violation(
                            relpath, int(call["line"]), self.rule_id,
                            f"{reason}; reachable from async "
                            f"'{root['qualname']}' via "
                            f"{' -> '.join(chain)}",
                        )
                    continue
                for callee in project.resolve(
                    func, str(call["dotted"]), module=module
                ):
                    if callee in seen or _allowlisted(callee):
                        continue
                    seen.add(callee)
                    target = project.functions[callee]
                    queue.append(
                        (target, (*chain, str(target["name"])))
                    )

    # ------------------------------------------------------------------
    def _local_checks(
        self, project: ProjectIndex, scoped: list[str]
    ) -> Iterable[Violation]:
        for relpath in scoped:
            module = str(project.summaries[relpath]["module"])
            for func in project.functions_in(relpath):
                for call in func["calls"]:
                    dotted = str(call["dotted"])
                    if not call["bare"]:
                        continue
                    attr = dotted.rpartition(".")[2]
                    if attr in _SPAWN_ATTRS:
                        yield Violation(
                            relpath, int(call["line"]), self.rule_id,
                            f"fire-and-forget {dotted}(...): the task "
                            "reference is dropped, so it can be collected "
                            "mid-flight and its exception is never "
                            "observed; keep a reference and attach a "
                            "done-callback",
                        )
                        continue
                    if self._is_project_async(project, func, dotted, module):
                        yield Violation(
                            relpath, int(call["line"]), self.rule_id,
                            f"coroutine {dotted}(...) is created but never "
                            "awaited: the call does nothing until awaited "
                            "or scheduled as a task",
                        )

    @staticmethod
    def _is_project_async(
        project: ProjectIndex,
        caller: Mapping[str, Any],
        dotted: str,
        module: str,
    ) -> bool:
        callees = project.resolve(caller, dotted, module=module)
        return bool(callees) and all(
            project.functions[c]["is_async"] for c in callees
        )


__all__ = ["ALLOWLIST", "AsyncSafetyAnalysis"]
