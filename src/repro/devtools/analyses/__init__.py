"""Whole-program analyses (SPC007–SPC010) over the project index.

Where a :class:`~repro.devtools.engine.Rule` sees one file's AST, an
:class:`Analysis` sees the whole program: the engine parses every file,
feeds each parsed file to :meth:`Analysis.extract` (whose result is
JSON-serializable and cached on disk keyed by file mtime/size), then
calls :meth:`Analysis.check` once with the assembled
:class:`~repro.devtools.callgraph.ProjectIndex`.  Violations flow
through the same suppression/baseline machinery as the per-file rules.

The shipped set:

* **SPC007** (:mod:`.lockorder`) — lock-acquisition-order cycles and
  ``await``/pool-submit calls inside held-lock regions;
* **SPC008** (:mod:`.asyncsafety`) — blocking calls reachable from
  ``async def`` bodies in the serving front-end, unawaited coroutines,
  and fire-and-forget ``create_task``;
* **SPC009** (:mod:`.typestate`) — path-sensitive two-phase
  reserve/commit typestate in the shard coordinator;
* **SPC010** (:mod:`.wire_schema`) — wire-protocol schema drift between
  the message dataclasses, the error-code registry, the client's
  exception map, and the documented schema tables.
"""

from __future__ import annotations

from repro.devtools.analyses.asyncsafety import AsyncSafetyAnalysis
from repro.devtools.analyses.base import Analysis
from repro.devtools.analyses.lockorder import LockOrderAnalysis
from repro.devtools.analyses.typestate import TwoPhaseTypestateAnalysis
from repro.devtools.analyses.wire_schema import WireSchemaAnalysis

#: The analyses ``sparcle lint`` runs by default, in report order.
DEFAULT_ANALYSES: tuple[Analysis, ...] = (
    LockOrderAnalysis(),
    AsyncSafetyAnalysis(),
    TwoPhaseTypestateAnalysis(),
    WireSchemaAnalysis(),
)

__all__ = [
    "Analysis",
    "AsyncSafetyAnalysis",
    "DEFAULT_ANALYSES",
    "LockOrderAnalysis",
    "TwoPhaseTypestateAnalysis",
    "WireSchemaAnalysis",
]
