"""SPC010: wire-protocol schema drift.

The wire schema is declared four times: the frozen dataclasses in
``service/protocol.py`` (the source of truth), the ``MESSAGE_TYPES``
registry that routes parsing, the client's ``_ERROR_TYPES`` map that
turns ``error`` replies back into typed exceptions, and the documented
schema tables in ``docs/serving.md``.  The closed-schema ``from_wire``
makes *wire* drift loud; this analysis makes *declaration* drift loud:

* every message class must be registered in ``MESSAGE_TYPES`` and no
  two classes may share a wire ``type`` string;
* every ``REQUEST_TYPES`` entry must name a declared message;
* ``ERROR_CODES`` and the client's ``_ERROR_TYPES`` keys must match
  exactly — an unmapped code surfaces as the generic fallback, a
  stale mapping is dead code;
* when the documented tables exist (``docs/serving.md``), the error
  codes and per-message field lists they advertise must match the
  dataclasses, so the docs cannot quietly rot.

Extraction is pure AST reading — nothing imports the protocol module.
"""

from __future__ import annotations

import ast
import re
from collections.abc import Iterable
from typing import Any

from repro.devtools.analyses.base import Analysis
from repro.devtools.callgraph import ProjectIndex
from repro.devtools.engine import FileContext, Violation

#: Files this analysis extracts facts from.
PROTOCOL_SUFFIX = "service/protocol.py"
CLIENT_SUFFIX = "service/client.py"

#: The documented schema tables live here, relative to the repo root.
DOCS_RELPATH = "docs/serving.md"

#: The heading that opens the documented per-message fields table.
_DOC_FIELDS_HEADING = "### Message fields"

#: ``| `type` | `field, field` |`` rows of the documented fields table.
_DOC_FIELDS_ROW = re.compile(r"^\|\s*`(\w+)`\s*\|\s*`([^`]*)`\s*\|")

#: The documented error-code list: ``` `code` ∈ `a, b, c` ```.
_DOC_ERROR_CODES = re.compile(r"`code`\s*∈\s*`([^`]+)`")


def _str_tuple(node: ast.expr) -> list[str] | None:
    """The string elements of a literal tuple/list, else ``None``."""
    if not isinstance(node, (ast.Tuple, ast.List)):
        return None
    values: list[str] = []
    for element in node.elts:
        if not isinstance(element, ast.Constant) or not isinstance(
            element.value, str
        ):
            return None
        values.append(element.value)
    return values


def _class_facts(node: ast.ClassDef) -> dict[str, Any] | None:
    """Message-class facts: wire type, declared fields, line."""
    wire_type: str | None = None
    fields: list[str] = []
    for stmt in node.body:
        if not isinstance(stmt, ast.AnnAssign) or not isinstance(
            stmt.target, ast.Name
        ):
            continue
        annotation = ast.unparse(stmt.annotation)
        if "ClassVar" in annotation:
            if (
                stmt.target.id == "TYPE"
                and isinstance(stmt.value, ast.Constant)
                and isinstance(stmt.value.value, str)
            ):
                wire_type = stmt.value.value
            continue
        fields.append(stmt.target.id)
    if wire_type is None or not wire_type:
        return None
    return {
        "name": node.name,
        "line": node.lineno,
        "type": wire_type,
        "fields": fields,
    }


def _registered_classes(node: ast.expr) -> list[str]:
    """Class names a ``MESSAGE_TYPES`` comprehension/dict registers."""
    names: list[str] = []
    for sub in ast.walk(node):
        if isinstance(sub, ast.Name) and sub.id[:1].isupper():
            names.append(sub.id)
    return names


class WireSchemaAnalysis(Analysis):
    """SPC010: protocol declarations, client map, and docs must agree."""

    rule_id = "SPC010"
    summary = "wire-schema drift between protocol, client, and docs"

    # ------------------------------------------------------------------
    def extract(self, ctx: FileContext) -> Any | None:
        if ctx.relpath.endswith(PROTOCOL_SUFFIX):
            return self._extract_protocol(ctx)
        if ctx.relpath.endswith(CLIENT_SUFFIX):
            return self._extract_client(ctx)
        return None

    @staticmethod
    def _extract_protocol(ctx: FileContext) -> dict[str, Any]:
        facts: dict[str, Any] = {
            "kind": "protocol",
            "classes": [],
            "error_codes": None,
            "error_codes_line": 1,
            "registered": None,
            "registered_line": 1,
            "request_types": None,
            "request_types_line": 1,
        }
        for stmt in ctx.tree.body:
            if isinstance(stmt, ast.ClassDef):
                cls = _class_facts(stmt)
                if cls is not None:
                    facts["classes"].append(cls)
            elif isinstance(stmt, ast.Assign) and len(stmt.targets) == 1:
                target = stmt.targets[0]
                if not isinstance(target, ast.Name):
                    continue
                if target.id == "ERROR_CODES":
                    facts["error_codes"] = _str_tuple(stmt.value)
                    facts["error_codes_line"] = stmt.lineno
                elif target.id == "REQUEST_TYPES":
                    facts["request_types"] = _str_tuple(stmt.value)
                    facts["request_types_line"] = stmt.lineno
                elif target.id == "MESSAGE_TYPES":
                    facts["registered"] = _registered_classes(stmt.value)
                    facts["registered_line"] = stmt.lineno
            elif isinstance(stmt, ast.AnnAssign) and isinstance(
                stmt.target, ast.Name
            ):
                if stmt.target.id == "MESSAGE_TYPES" and stmt.value is not None:
                    facts["registered"] = _registered_classes(stmt.value)
                    facts["registered_line"] = stmt.lineno
        return facts

    @staticmethod
    def _extract_client(ctx: FileContext) -> dict[str, Any]:
        facts: dict[str, Any] = {
            "kind": "client", "error_map": None, "error_map_line": 1,
        }
        for node in ast.walk(ctx.tree):
            if not isinstance(node, (ast.Assign, ast.AnnAssign)):
                continue
            targets = (
                node.targets if isinstance(node, ast.Assign) else [node.target]
            )
            if not any(
                isinstance(t, ast.Name) and t.id == "_ERROR_TYPES"
                for t in targets
            ):
                continue
            value = node.value
            if isinstance(value, ast.Dict):
                keys = [
                    key.value
                    for key in value.keys
                    if isinstance(key, ast.Constant)
                    and isinstance(key.value, str)
                ]
                facts["error_map"] = keys
                facts["error_map_line"] = node.lineno
        return facts

    # ------------------------------------------------------------------
    def check(self, project: ProjectIndex) -> Iterable[Violation]:
        facts = project.analysis_facts.get(self.rule_id, {})
        protocols = {
            relpath: f for relpath, f in facts.items()
            if f and f.get("kind") == "protocol"
        }
        clients = {
            relpath: f for relpath, f in facts.items()
            if f and f.get("kind") == "client"
        }
        for relpath in sorted(protocols):
            proto = protocols[relpath]
            yield from self._check_registry(relpath, proto)
            client = self._sibling(relpath, clients)
            if client is not None:
                yield from self._check_error_map(relpath, proto, *client)
            yield from self._check_docs(project, relpath, proto)

    @staticmethod
    def _sibling(
        protocol_relpath: str, clients: dict[str, Any]
    ) -> tuple[str, Any] | None:
        """The client summary sharing the protocol file's package dir."""
        parent = protocol_relpath.rpartition("/")[0]
        for relpath, facts in sorted(clients.items()):
            if relpath.rpartition("/")[0] == parent:
                return relpath, facts
        return None

    def _check_registry(
        self, relpath: str, proto: dict[str, Any]
    ) -> Iterable[Violation]:
        classes = proto["classes"]
        by_type: dict[str, dict[str, Any]] = {}
        for cls in classes:
            first = by_type.setdefault(cls["type"], cls)
            if first is not cls:
                yield Violation(
                    relpath, cls["line"], self.rule_id,
                    f"message classes {first['name']} and {cls['name']} both "
                    f"declare wire type {cls['type']!r}: parsing can only "
                    "route to one of them",
                )
        registered = proto["registered"]
        if registered is not None:
            known = {cls["name"] for cls in classes}
            for cls in classes:
                if cls["name"] not in registered:
                    yield Violation(
                        relpath, cls["line"], self.rule_id,
                        f"message class {cls['name']} (type {cls['type']!r}) "
                        "is not registered in MESSAGE_TYPES: its wire "
                        "documents fail to parse as 'unknown message type'",
                    )
            for name in registered:
                if name != "Message" and name not in known:
                    yield Violation(
                        relpath, proto["registered_line"], self.rule_id,
                        f"MESSAGE_TYPES registers {name}, which declares no "
                        "wire TYPE in this module",
                    )
        request_types = proto["request_types"]
        if request_types is not None:
            declared = {cls["type"] for cls in classes}
            for kind in request_types:
                if kind not in declared:
                    yield Violation(
                        relpath, proto["request_types_line"], self.rule_id,
                        f"REQUEST_TYPES lists {kind!r} but no message class "
                        "declares that wire type",
                    )

    def _check_error_map(
        self,
        relpath: str,
        proto: dict[str, Any],
        client_relpath: str,
        client: dict[str, Any],
    ) -> Iterable[Violation]:
        codes = proto["error_codes"]
        mapped = client["error_map"]
        if codes is None or mapped is None:
            return
        for code in codes:
            if code not in mapped:
                yield Violation(
                    client_relpath, client["error_map_line"], self.rule_id,
                    f"error code {code!r} (protocol ERROR_CODES) has no "
                    "entry in the client's _ERROR_TYPES map: it falls "
                    "through to the generic exception",
                )
        for code in mapped:
            if code not in codes:
                yield Violation(
                    client_relpath, client["error_map_line"], self.rule_id,
                    f"client _ERROR_TYPES maps {code!r}, which is not in "
                    "the protocol's ERROR_CODES: the server can never "
                    "send it",
                )

    def _check_docs(
        self, project: ProjectIndex, relpath: str, proto: dict[str, Any]
    ) -> Iterable[Violation]:
        if not relpath.endswith("src/repro/" + PROTOCOL_SUFFIX):
            return
        docs_path = project.root / DOCS_RELPATH
        try:
            text = docs_path.read_text(encoding="utf-8")
        except OSError:
            return
        codes = proto["error_codes"]
        match = _DOC_ERROR_CODES.search(text)
        if codes is not None and match is not None:
            documented = [c.strip() for c in match.group(1).split(",")]
            if documented != list(codes):
                yield Violation(
                    relpath, proto["error_codes_line"], self.rule_id,
                    f"{DOCS_RELPATH} documents error codes {documented} but "
                    f"ERROR_CODES declares {list(codes)}",
                )
        doc_fields: dict[str, list[str]] = {}
        in_table = False
        for line in text.splitlines():
            if line.startswith(_DOC_FIELDS_HEADING):
                in_table = True
                continue
            if in_table and line.startswith("#"):
                break
            if not in_table:
                continue
            row = _DOC_FIELDS_ROW.match(line.strip())
            if row is not None:
                doc_fields[row.group(1)] = [
                    f.strip() for f in row.group(2).split(",") if f.strip()
                ]
        if not doc_fields:
            return
        for cls in proto["classes"]:
            documented = doc_fields.get(cls["type"])
            if documented is None:
                yield Violation(
                    relpath, cls["line"], self.rule_id,
                    f"message type {cls['type']!r} is missing from the "
                    f"{DOCS_RELPATH} message-fields table",
                )
            elif documented != list(cls["fields"]):
                yield Violation(
                    relpath, cls["line"], self.rule_id,
                    f"{DOCS_RELPATH} documents {cls['type']!r} fields "
                    f"{documented} but {cls['name']} declares "
                    f"{list(cls['fields'])}",
                )


__all__ = ["WireSchemaAnalysis"]
