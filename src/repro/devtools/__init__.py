"""Developer tooling: the ``sparcle lint`` static-analysis pass.

The package has two analysis layers plus shared machinery:

* :mod:`repro.devtools.engine` — the rule-agnostic walker
  (:class:`LintEngine`), suppression/baseline handling, the on-disk
  facts cache, report formatting;
* :mod:`repro.devtools.rules` — the **per-file** SPARCLE rule set
  (SPC001–SPC006, :data:`DEFAULT_RULES`): one AST at a time;
* :mod:`repro.devtools.callgraph` / :mod:`repro.devtools.cfg` — the
  whole-program substrate: project symbol table, call-edge resolution,
  and an intraprocedural control-flow graph;
* :mod:`repro.devtools.analyses` — the **whole-program** analyses
  (SPC007–SPC010, :data:`DEFAULT_ANALYSES`): lock-order cycles,
  async-safety of the serving front-end, two-phase reserve/commit
  typestate, and wire-schema drift;
* :mod:`repro.devtools.scenario_lint` — semantic validation of scenario
  JSON documents (SCN001–SCN004).

:func:`lint_paths` is the one-call entry point the CLI and CI use;
:func:`changed_python_files` scopes it to a git diff for
``sparcle lint --changed``.
"""

from __future__ import annotations

import subprocess
from collections.abc import Iterable, Sequence
from pathlib import Path

from repro.devtools.analyses import DEFAULT_ANALYSES, Analysis
from repro.devtools.engine import (
    FileContext,
    LintConfigError,
    LintEngine,
    LintError,
    LintReport,
    Rule,
    Violation,
    format_json,
    format_text,
    load_baseline,
    write_baseline,
)
from repro.devtools.rules import DEFAULT_RULES
from repro.devtools.scenario_lint import lint_scenario, lint_scenario_dict

__all__ = [
    "Analysis",
    "DEFAULT_ANALYSES",
    "DEFAULT_RULES",
    "FileContext",
    "LintConfigError",
    "LintEngine",
    "LintError",
    "LintReport",
    "Rule",
    "Violation",
    "changed_python_files",
    "format_json",
    "format_text",
    "lint_paths",
    "lint_scenario",
    "lint_scenario_dict",
    "load_baseline",
    "write_baseline",
]


def lint_paths(
    paths: Sequence[str | Path],
    *,
    rules: Sequence[Rule] | None = None,
    analyses: Sequence[Analysis] | None = None,
    root: str | Path | None = None,
    baseline: Iterable[str] = (),
    cache_path: str | Path | None = None,
) -> LintReport:
    """Run the default SPARCLE rule set and analyses over ``paths``.

    Python files get the per-file AST rules plus the whole-program
    analyses; ``.json`` files get the scenario validator.  Directories
    are walked for ``.py`` files only (scenario documents must be named
    explicitly — test fixtures and exported artifacts would otherwise
    drown the report).  ``cache_path`` enables the on-disk facts cache
    keyed by file mtime/size.
    """
    json_paths = [p for p in paths if Path(p).suffix == ".json"]
    ast_paths = [p for p in paths if Path(p).suffix != ".json"]
    engine = LintEngine(
        rules if rules is not None else DEFAULT_RULES,
        analyses=analyses if analyses is not None else DEFAULT_ANALYSES,
        root=root, baseline=baseline, cache_path=cache_path,
    )
    report = (
        engine.lint_paths(ast_paths) if ast_paths
        else LintReport(files_checked=0)
    )
    for path in json_paths:
        report.files_checked += 1
        report.violations.extend(lint_scenario(path))
    report.violations.sort()
    return report


def changed_python_files(
    base: str, *, root: str | Path | None = None
) -> list[Path]:
    """Python files changed vs ``base`` (git), plus untracked ones.

    The file set ``sparcle lint --changed`` scopes to: tracked files
    that differ from the merge-friendly ``git diff base`` view (deleted
    files excluded) and untracked, not-ignored files.  Raises
    :class:`LintConfigError` when git is unavailable or ``base`` does
    not resolve.
    """
    where = Path(root) if root is not None else Path.cwd()
    files: dict[Path, None] = {}
    commands = (
        ["git", "diff", "--name-only", "--diff-filter=d", base, "--", "*.py"],
        ["git", "ls-files", "--others", "--exclude-standard", "--", "*.py"],
    )
    for command in commands:
        try:
            result = subprocess.run(
                command, cwd=where, capture_output=True, text=True, check=True,
            )
        except (OSError, subprocess.CalledProcessError) as error:
            detail = getattr(error, "stderr", "") or str(error)
            raise LintConfigError(
                f"--changed needs a working git checkout "
                f"({' '.join(command)} failed: {detail.strip()})"
            ) from error
        for line in result.stdout.splitlines():
            name = line.strip()
            if name:
                candidate = where / name
                if candidate.exists():
                    files[candidate] = None
    return list(files)
