"""Developer tooling: the ``sparcle lint`` static-analysis pass.

The package has three layers:

* :mod:`repro.devtools.engine` — the rule-agnostic AST walker
  (:class:`LintEngine`), suppression and baseline handling, report
  formatting;
* :mod:`repro.devtools.rules` — the SPARCLE-specific SPC001–SPC005 rule
  set (:data:`DEFAULT_RULES`);
* :mod:`repro.devtools.scenario_lint` — semantic validation of scenario
  JSON documents (SCN001–SCN004).

:func:`lint_paths` is the one-call entry point the CLI and CI use.
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence
from pathlib import Path

from repro.devtools.engine import (
    FileContext,
    LintConfigError,
    LintEngine,
    LintReport,
    Rule,
    Violation,
    format_json,
    format_text,
    load_baseline,
    write_baseline,
)
from repro.devtools.rules import DEFAULT_RULES
from repro.devtools.scenario_lint import lint_scenario, lint_scenario_dict

__all__ = [
    "DEFAULT_RULES",
    "FileContext",
    "LintConfigError",
    "LintEngine",
    "LintReport",
    "Rule",
    "Violation",
    "format_json",
    "format_text",
    "lint_paths",
    "lint_scenario",
    "lint_scenario_dict",
    "load_baseline",
    "write_baseline",
]


def lint_paths(
    paths: Sequence[str | Path],
    *,
    rules: Sequence[Rule] | None = None,
    root: str | Path | None = None,
    baseline: Iterable[str] = (),
) -> LintReport:
    """Run the default SPARCLE rule set over ``paths``.

    Python files get the AST rules; ``.json`` files get the scenario
    validator.  Directories are walked for ``.py`` files only (scenario
    documents must be named explicitly — test fixtures and exported
    artifacts would otherwise drown the report).
    """
    json_paths = [p for p in paths if Path(p).suffix == ".json"]
    ast_paths = [p for p in paths if Path(p).suffix != ".json"]
    engine = LintEngine(
        rules if rules is not None else DEFAULT_RULES,
        root=root, baseline=baseline,
    )
    report = (
        engine.lint_paths(ast_paths) if ast_paths
        else LintReport(files_checked=0)
    )
    for path in json_paths:
        report.files_checked += 1
        report.violations.extend(lint_scenario(path))
    report.violations.sort()
    return report
