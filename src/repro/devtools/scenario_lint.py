"""Semantic lint for scenario JSON files (``sparcle lint foo.json``).

:func:`repro.emulator.scenario.load_scenario` already *rejects* malformed
documents, but it stops at the first error and its exceptions point at the
constructor, not the document.  This validator walks the raw JSON first
and reports **every** problem with a scenario-level rule id:

* **SCN001** — a CT demands a resource no NCP provides (unknown or
  misspelled resource key: the placement can never be feasible);
* **SCN002** — dangling references (link endpoints, TT endpoints, pinned
  hosts, placement entries naming unknown elements);
* **SCN003** — negative capacities / requirements / bandwidths / rates;
* **SCN004** — everything the model constructors additionally enforce
  (duplicates, self-loops, cyclic task graphs, invalid placements...),
  surfaced by actually building the scenario via
  :func:`~repro.emulator.scenario.scenario_from_dict`.

The model construction in SCN004 is only attempted when SCN002/SCN003
found nothing, so reports never duplicate the same root cause.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any

from repro.devtools.engine import Violation
from repro.exceptions import SparcleError

#: Rule ids this validator can emit (documented in docs/static-analysis.md).
SCENARIO_RULES = ("SCN001", "SCN002", "SCN003", "SCN004")


def lint_scenario(path: str | Path) -> list[Violation]:
    """Lint one scenario JSON file; returns all findings, sorted."""
    path = Path(path)
    name = path.as_posix()
    try:
        doc = json.loads(path.read_text())
    except FileNotFoundError:
        return [Violation(name, 0, "SCN004", "scenario file not found")]
    except json.JSONDecodeError as error:
        return [Violation(name, error.lineno, "SCN004", f"not valid JSON: {error.msg}")]
    if not isinstance(doc, dict):
        return [Violation(name, 0, "SCN004", "scenario must be a JSON object")]
    return lint_scenario_dict(doc, source=name)


def lint_scenario_dict(doc: dict[str, Any], *, source: str = "scenario") -> list[Violation]:
    """Lint an in-memory scenario document (inverse-parsed JSON)."""
    violations: list[Violation] = []

    network = doc.get("network")
    application = doc.get("application")
    if not isinstance(network, dict):
        violations.append(Violation(source, 0, "SCN004", "missing 'network' object"))
        network = {}
    if not isinstance(application, dict):
        violations.append(Violation(source, 0, "SCN004", "missing 'application' object"))
        application = {}

    ncps = [n for n in _records(network, "ncps") if isinstance(n, dict)]
    links = [l for l in _records(network, "links") if isinstance(l, dict)]
    cts = [c for c in _records(application, "cts") if isinstance(c, dict)]
    tts = [t for t in _records(application, "tts") if isinstance(t, dict)]

    ncp_names = {n.get("name") for n in ncps} - {None}
    link_names = {l.get("name") for l in links} - {None}
    ct_names = {c.get("name") for c in cts} - {None}
    tt_names = {t.get("name") for t in tts} - {None}

    # ---- SCN003: negative quantities ---------------------------------
    for ncp in ncps:
        for resource, cap in _mapping(ncp, "capacities").items():
            if _negative(cap):
                violations.append(Violation(
                    source, 0, "SCN003",
                    f"NCP {ncp.get('name')!r} has negative capacity for "
                    f"{resource!r}: {cap}",
                ))
    for link in links:
        # "bandwidth" is the scenario format's JSON field name here, not a
        # resource-key lookup — same carve-out as emulator/scenario.py.
        if _negative(link.get("bandwidth")):  # sparcle: ignore[SPC001]
            violations.append(Violation(
                source, 0, "SCN003",
                f"link {link.get('name')!r} has negative bandwidth: "
                f"{link.get('bandwidth')}",  # sparcle: ignore[SPC001]
            ))
    for ct in cts:
        for resource, amount in _mapping(ct, "requirements").items():
            if _negative(amount):
                violations.append(Violation(
                    source, 0, "SCN003",
                    f"CT {ct.get('name')!r} has negative requirement for "
                    f"{resource!r}: {amount}",
                ))
    for tt in tts:
        if _negative(tt.get("megabits_per_unit")):
            violations.append(Violation(
                source, 0, "SCN003",
                f"TT {tt.get('name')!r} has negative megabits_per_unit: "
                f"{tt.get('megabits_per_unit')}",
            ))
    rate = doc.get("rate")
    if isinstance(rate, (int, float)) and not isinstance(rate, bool) and rate <= 0:
        violations.append(Violation(
            source, 0, "SCN003", f"scenario rate must be positive, got {rate}",
        ))

    # ---- SCN002: dangling references ---------------------------------
    for link in links:
        for endpoint_key in ("a", "b"):
            endpoint = link.get(endpoint_key)
            if endpoint is not None and endpoint not in ncp_names:
                violations.append(Violation(
                    source, 0, "SCN002",
                    f"link {link.get('name')!r} references unknown NCP "
                    f"{endpoint!r}",
                ))
    for ct in cts:
        pinned = ct.get("pinned_host")
        if pinned is not None and pinned not in ncp_names:
            violations.append(Violation(
                source, 0, "SCN002",
                f"CT {ct.get('name')!r} is pinned to unknown NCP {pinned!r}",
            ))
    for tt in tts:
        for endpoint_key in ("src", "dst"):
            endpoint = tt.get(endpoint_key)
            if endpoint is not None and endpoint not in ct_names:
                violations.append(Violation(
                    source, 0, "SCN002",
                    f"TT {tt.get('name')!r} references unknown CT {endpoint!r}",
                ))
    placement = doc.get("placement")
    if isinstance(placement, dict):
        for ct_name, host in _mapping(placement, "ct_hosts").items():
            if ct_name not in ct_names:
                violations.append(Violation(
                    source, 0, "SCN002",
                    f"placement hosts unknown CT {ct_name!r}",
                ))
            if host not in ncp_names:
                violations.append(Violation(
                    source, 0, "SCN002",
                    f"placement maps CT {ct_name!r} to unknown NCP {host!r}",
                ))
        for tt_name, route in _mapping(placement, "tt_routes").items():
            if tt_name not in tt_names:
                violations.append(Violation(
                    source, 0, "SCN002",
                    f"placement routes unknown TT {tt_name!r}",
                ))
            if isinstance(route, list):
                for hop in route:
                    if hop not in link_names:
                        violations.append(Violation(
                            source, 0, "SCN002",
                            f"route of TT {tt_name!r} uses unknown link {hop!r}",
                        ))

    # ---- SCN001: resource keys no NCP can serve ----------------------
    provided = {
        resource
        for ncp in ncps
        for resource, cap in _mapping(ncp, "capacities").items()
        if not _negative(cap)
    }
    demanded_unserved: dict[str, list[str]] = {}
    for ct in cts:
        for resource in _mapping(ct, "requirements"):
            if resource not in provided:
                demanded_unserved.setdefault(str(resource), []).append(
                    str(ct.get("name"))
                )
    for resource, demanding_cts in sorted(demanded_unserved.items()):
        violations.append(Violation(
            source, 0, "SCN001",
            f"resource {resource!r} is required by CT(s) "
            f"{sorted(demanding_cts)} but provided by no NCP",
        ))

    # ---- SCN004: everything the model constructors enforce -----------
    if not violations:
        from repro.emulator.scenario import scenario_from_dict

        try:
            scenario_from_dict(doc)
        except SparcleError as error:
            violations.append(Violation(source, 0, "SCN004", str(error)))
        except (TypeError, ValueError, KeyError, AttributeError) as error:
            # The oracle contract: adversarial documents (non-numeric
            # rates, wrong-shaped placements, capacities that are not
            # mappings...) must come back as violations, never as a lint
            # crash.  Constructor paths that slip past ScenarioError
            # wrapping land here.
            violations.append(Violation(
                source, 0, "SCN004",
                f"scenario construction failed "
                f"({type(error).__name__}): {error}",
            ))

    return sorted(violations)


def _records(doc: dict[str, Any], key: str) -> list[Any]:
    value = doc.get(key, [])
    return value if isinstance(value, list) else []


def _mapping(doc: dict[str, Any], key: str) -> dict[Any, Any]:
    value = doc.get(key, {})
    return value if isinstance(value, dict) else {}


def _negative(value: Any) -> bool:
    return (
        isinstance(value, (int, float))
        and not isinstance(value, bool)
        and value < 0
    )
