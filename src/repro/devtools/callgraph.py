"""Project symbol table and call graph for the whole-program analyses.

The per-file rules (SPC001–SPC006) see one AST at a time; the analyses
(SPC007–SPC010) need to answer questions that span files — "is this
blocking call reachable from an ``async def`` in the server?", "do two
locks get acquired in inconsistent orders anywhere?".  This module
builds the shared substrate:

* :meth:`ProjectIndex.extract_module` distills one parsed file into a
  **JSON-serializable summary**: the module's import map, its classes
  (with the lock attributes discovered from ``threading.Lock``/``RLock``
  assignments), and every function — qualname, async-ness, call sites
  (with await/bare-expression context), and lock-region facts.
* :meth:`ProjectIndex.from_summaries` assembles the summaries into a
  queryable index.  Because the summaries are plain JSON, the lint
  engine caches them on disk keyed by file mtime/size and rebuilds the
  index without re-parsing unchanged files.
* :meth:`ProjectIndex.resolve` is the call-edge resolver: ``self.m``
  binds to the caller's class, bare names follow the module's import map
  (including facade re-exports, e.g. ``repro.api`` names), and
  ``obj.m`` falls back to class-hierarchy-analysis by method name —
  deliberately over-approximate, which is the safe direction for
  reachability checks.

Summaries are data, not behavior: nothing here imports the analyzed
code.
"""

from __future__ import annotations

import ast
from collections.abc import Iterator, Mapping, Sequence
from pathlib import Path
from typing import Any

from repro.devtools.engine import FileContext

#: Constructors whose assignment marks an attribute/global as a lock.
_LOCK_CTORS = frozenset({"threading.Lock", "threading.RLock"})

#: Thread-pool submission attributes (``pool.submit`` / ``pool.map``).
_SUBMIT_ATTRS = frozenset({"submit", "map"})

#: Identifier tokens that mark a receiver as a worker pool.
_POOL_TOKENS = frozenset({"pool", "executor", "workers"})


def module_name_for(relpath: str) -> str:
    """Dotted module name for a repo-relative path.

    ``src/repro/service/server.py`` → ``repro.service.server``; package
    ``__init__.py`` files name the package itself.  Trees without a
    ``src/`` prefix (test fixtures) keep their full dotted path.
    """
    parts = list(Path(relpath).with_suffix("").parts)
    if parts and parts[0] == "src":
        parts = parts[1:]
    if parts and parts[-1] == "__init__":
        parts = parts[:-1]
    return ".".join(parts)


def dotted_chain(node: ast.expr) -> str | None:
    """Dotted text of a call target, flattening through call chains.

    ``a.b.c`` → ``"a.b.c"``; ``loop().create_task`` and
    ``asyncio.get_running_loop().create_task`` both end in
    ``".create_task"`` so suffix matching keeps working across chained
    calls.  ``None`` for subscripts and other non-name roots.
    """
    parts: list[str] = []
    while True:
        if isinstance(node, ast.Attribute):
            parts.append(node.attr)
            node = node.value
        elif isinstance(node, ast.Call):
            node = node.func
        elif isinstance(node, ast.Name):
            parts.append(node.id)
            return ".".join(reversed(parts))
        else:
            return None


def identifier_tokens(dotted: str) -> frozenset[str]:
    tokens: set[str] = set()
    for part in dotted.split("."):
        tokens.update(filter(None, part.lower().split("_")))
    return frozenset(tokens)


def _walk_outside_defs(node: ast.AST) -> Iterator[ast.AST]:
    """Child nodes, not descending into nested defs/classes/lambdas.

    Code inside a nested ``def`` runs when the closure is *called*, not
    when the enclosing function runs, so its calls must not be
    attributed to the enclosing function.
    """
    for child in ast.iter_child_nodes(node):
        if isinstance(
            child,
            (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef, ast.Lambda),
        ):
            continue
        yield child
        yield from _walk_outside_defs(child)


class _ModuleExtractor:
    """Distill one parsed file into the JSON module summary."""

    def __init__(self, ctx: FileContext) -> None:
        self.ctx = ctx
        self.module = module_name_for(ctx.relpath)
        self.imports: dict[str, str] = {}
        self.class_locks: dict[str, set[str]] = {}
        self.module_locks: set[str] = set()
        self.functions: list[dict[str, Any]] = []
        self.classes: dict[str, dict[str, Any]] = {}

    # ------------------------------------------------------------------
    def run(self) -> dict[str, Any]:
        self._collect_imports_and_locks()
        for stmt in self.ctx.tree.body:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                self._function(stmt, cls=None, prefix=self.module)
            elif isinstance(stmt, ast.ClassDef):
                self.classes.setdefault(stmt.name, {
                    "line": stmt.lineno,
                    "lock_attrs": sorted(self.class_locks.get(stmt.name, ())),
                })
                for sub in stmt.body:
                    if isinstance(sub, (ast.FunctionDef, ast.AsyncFunctionDef)):
                        self._function(
                            sub, cls=stmt.name,
                            prefix=f"{self.module}.{stmt.name}",
                        )
        return {
            "module": self.module,
            "relpath": self.ctx.relpath,
            "imports": dict(sorted(self.imports.items())),
            "module_locks": sorted(self.module_locks),
            "classes": self.classes,
            "functions": self.functions,
        }

    # ------------------------------------------------------------------
    def _collect_imports_and_locks(self) -> None:
        for node in ast.walk(self.ctx.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    self.imports[alias.asname or alias.name.split(".")[0]] = (
                        alias.name
                    )
            elif isinstance(node, ast.ImportFrom) and node.level == 0:
                for alias in node.names:
                    if node.module:
                        self.imports[alias.asname or alias.name] = (
                            f"{node.module}.{alias.name}"
                        )
        for stmt in self.ctx.tree.body:
            self._lock_assignments(stmt, cls=None)
            if isinstance(stmt, ast.ClassDef):
                for node in ast.walk(stmt):
                    self._lock_assignments(node, cls=stmt.name)

    def _lock_assignments(self, node: ast.AST, *, cls: str | None) -> None:
        if not isinstance(node, ast.Assign) or not isinstance(node.value, ast.Call):
            return
        dotted = dotted_chain(node.value.func)
        if dotted is None:
            return
        resolved = self.imports.get(dotted, dotted)
        if resolved not in _LOCK_CTORS and dotted not in _LOCK_CTORS:
            return
        for target in node.targets:
            if (
                cls is not None
                and isinstance(target, ast.Attribute)
                and isinstance(target.value, ast.Name)
                and target.value.id == "self"
            ):
                self.class_locks.setdefault(cls, set()).add(target.attr)
            elif cls is None and isinstance(target, ast.Name):
                self.module_locks.add(target.id)

    # ------------------------------------------------------------------
    def _lock_id(self, expr: ast.expr, cls: str | None) -> str | None:
        """The project-wide id of a lock acquired by ``with expr:``."""
        if (
            isinstance(expr, ast.Attribute)
            and isinstance(expr.value, ast.Name)
            and expr.value.id == "self"
            and cls is not None
            and expr.attr in self.class_locks.get(cls, ())
        ):
            return f"{self.module}.{cls}.{expr.attr}"
        if isinstance(expr, ast.Name) and expr.id in self.module_locks:
            return f"{self.module}.{expr.id}"
        return None

    def _function(
        self,
        node: ast.FunctionDef | ast.AsyncFunctionDef,
        *,
        cls: str | None,
        prefix: str,
    ) -> None:
        qualname = f"{prefix}.{node.name}"
        record: dict[str, Any] = {
            "qualname": qualname,
            "name": node.name,
            "cls": cls,
            "line": node.lineno,
            "is_async": isinstance(node, ast.AsyncFunctionDef),
            "calls": self._calls(node),
            "acquires": [],
            "lock_edges": [],
            "in_lock": [],
        }
        self._lock_regions(node.body, cls, held=[], record=record)
        self.functions.append(record)
        for child in self._direct_nested_defs(node):
            self._function(child, cls=cls, prefix=qualname)

    @staticmethod
    def _direct_nested_defs(
        node: ast.FunctionDef | ast.AsyncFunctionDef,
    ) -> list[ast.FunctionDef | ast.AsyncFunctionDef]:
        """Defs nested directly in ``node`` (deeper levels recurse)."""
        found: list[ast.FunctionDef | ast.AsyncFunctionDef] = []

        def scan(parent: ast.AST) -> None:
            for child in ast.iter_child_nodes(parent):
                if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    found.append(child)
                elif not isinstance(child, (ast.ClassDef, ast.Lambda)):
                    scan(child)

        for stmt in node.body:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                found.append(stmt)
            elif not isinstance(stmt, (ast.ClassDef, ast.Lambda)):
                scan(stmt)
        return found

    def _calls(
        self, func: ast.FunctionDef | ast.AsyncFunctionDef
    ) -> list[dict[str, Any]]:
        parent: dict[ast.AST, ast.AST] = {}
        calls: list[dict[str, Any]] = []
        for node in _walk_outside_defs(func):
            for child in ast.iter_child_nodes(node):
                parent.setdefault(child, node)
        for node in _walk_outside_defs(func):
            if not isinstance(node, ast.Call):
                continue
            dotted = dotted_chain(node.func)
            if dotted is None:
                continue
            enclosing = parent.get(node)
            calls.append({
                "dotted": dotted,
                "line": node.lineno,
                "awaited": isinstance(enclosing, ast.Await),
                "bare": isinstance(enclosing, ast.Expr),
            })
        return calls

    def _lock_regions(
        self,
        body: Sequence[ast.stmt],
        cls: str | None,
        *,
        held: list[str],
        record: dict[str, Any],
    ) -> None:
        for stmt in body:
            if isinstance(stmt, (ast.With, ast.AsyncWith)):
                acquired = [
                    lock for item in stmt.items
                    if (lock := self._lock_id(item.context_expr, cls))
                ]
                for lock in acquired:
                    record["acquires"].append({"lock": lock, "line": stmt.lineno})
                    for outer in held:
                        record["lock_edges"].append(
                            [outer, lock, stmt.lineno]
                        )
                self._lock_regions(
                    stmt.body, cls, held=held + acquired, record=record
                )
            elif isinstance(
                stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
            ):
                continue
            elif isinstance(stmt, (ast.If, ast.For, ast.AsyncFor, ast.While)):
                self._lock_regions(stmt.body, cls, held=held, record=record)
                self._lock_regions(stmt.orelse, cls, held=held, record=record)
            elif isinstance(stmt, ast.Try):
                for suite in (
                    stmt.body, stmt.orelse, stmt.finalbody,
                    *(h.body for h in stmt.handlers),
                ):
                    self._lock_regions(suite, cls, held=held, record=record)
            elif held:
                self._in_lock_events(stmt, held, record)

    def _in_lock_events(
        self, stmt: ast.stmt, held: list[str], record: dict[str, Any]
    ) -> None:
        lock = held[-1]
        for node in _walk_outside_defs(stmt):
            if isinstance(node, ast.Await):
                record["in_lock"].append({
                    "kind": "await", "lock": lock,
                    "dotted": None, "line": node.lineno,
                })
            elif isinstance(node, ast.Call):
                dotted = dotted_chain(node.func)
                if dotted is None:
                    continue
                head, _, attr = dotted.rpartition(".")
                kind = "call"
                if attr in _SUBMIT_ATTRS and (
                    identifier_tokens(head) & _POOL_TOKENS
                ):
                    kind = "submit"
                record["in_lock"].append({
                    "kind": kind, "lock": lock,
                    "dotted": dotted, "line": node.lineno,
                })


class ProjectIndex:
    """Queryable symbol table + call graph over module summaries."""

    def __init__(
        self,
        summaries: Mapping[str, Mapping[str, Any]],
        *,
        root: Path,
        analysis_facts: Mapping[str, Mapping[str, Any]] | None = None,
    ) -> None:
        self.root = root
        self.summaries = dict(summaries)
        #: Per-analysis per-file extraction results: rule_id -> relpath -> facts.
        self.analysis_facts: dict[str, dict[str, Any]] = {
            rule_id: dict(per_file)
            for rule_id, per_file in (analysis_facts or {}).items()
        }
        self.modules: dict[str, Mapping[str, Any]] = {}
        self.functions: dict[str, Mapping[str, Any]] = {}
        self.methods_by_name: dict[str, list[str]] = {}
        for summary in self.summaries.values():
            self.modules[summary["module"]] = summary
            for func in summary["functions"]:
                self.functions[func["qualname"]] = func
                if func["cls"] is not None:
                    self.methods_by_name.setdefault(
                        func["name"], []
                    ).append(func["qualname"])

    # ------------------------------------------------------------------
    @classmethod
    def extract_module(cls, ctx: FileContext) -> dict[str, Any]:
        """The JSON-serializable summary of one parsed file."""
        return _ModuleExtractor(ctx).run()

    @classmethod
    def from_summaries(
        cls,
        summaries: Mapping[str, Mapping[str, Any]],
        *,
        root: str | Path,
        analysis_facts: Mapping[str, Mapping[str, Any]] | None = None,
    ) -> "ProjectIndex":
        """Assemble an index from per-file summaries (fresh or cached)."""
        return cls(summaries, root=Path(root), analysis_facts=analysis_facts)

    # ------------------------------------------------------------------
    def files_matching(self, *suffixes: str) -> list[str]:
        """Summary relpaths ending in any of ``suffixes``, sorted.

        With no suffixes, every summarized file matches.
        """
        return sorted(
            relpath for relpath in self.summaries
            if not suffixes
            or any(relpath.endswith(suffix) for suffix in suffixes)
        )

    def functions_in(self, relpath: str) -> list[Mapping[str, Any]]:
        """Function records of one summarized file."""
        summary = self.summaries.get(relpath)
        return list(summary["functions"]) if summary else []

    def relpath_of(self, qualname: str) -> str | None:
        """The file a function qualname was extracted from."""
        module = qualname
        while module:
            summary = self.modules.get(module)
            if summary is not None and any(
                f["qualname"] == qualname for f in summary["functions"]
            ):
                return str(summary["relpath"])
            module = module.rpartition(".")[0]
        return None

    # ------------------------------------------------------------------
    def resolve(
        self, caller: Mapping[str, Any], dotted: str, *, module: str
    ) -> list[str]:
        """Project function qualnames a call may bind to (may be empty).

        ``caller`` is the calling function's record, ``module`` its
        module name.  Resolution is deliberately over-approximate for
        ``obj.method`` receivers (all project methods of that name).
        """
        parts = dotted.split(".")
        if parts[0] == "self" and len(parts) == 2 and caller["cls"]:
            qualname = f"{module}.{caller['cls']}.{parts[1]}"
            if qualname in self.functions:
                return [qualname]
            return self._cha(parts[1])
        if len(parts) == 1:
            local = f"{module}.{parts[0]}"
            if local in self.functions:
                return [local]
            imports = self.modules.get(module, {}).get("imports", {})
            if parts[0] in imports:
                return self._resolve_target(imports[parts[0]])
            return []
        imports = self.modules.get(module, {}).get("imports", {})
        if parts[0] in imports:
            target = ".".join([imports[parts[0]], *parts[1:]])
            return self._resolve_target(target)
        return self._cha(parts[-1])

    def _resolve_target(self, target: str, *, depth: int = 0) -> list[str]:
        """Follow a fully-qualified name through facade re-exports."""
        if depth > 4:
            return []
        if target in self.functions:
            return [target]
        module, _, name = target.rpartition(".")
        summary = self.modules.get(module)
        if summary is None:
            return []
        imports = summary.get("imports", {})
        if name in imports:
            return self._resolve_target(imports[name], depth=depth + 1)
        return []

    def _cha(self, method: str) -> list[str]:
        return sorted(self.methods_by_name.get(method, ()))


__all__ = [
    "ProjectIndex",
    "dotted_chain",
    "module_name_for",
]
