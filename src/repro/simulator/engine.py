"""A minimal discrete-event simulation engine.

Deliberately tiny: a monotonic clock, a binary-heap event calendar, and
cancellable events.  Everything domain-specific (queues, servers, failure
processes) lives in the stream simulator built on top.
"""

from __future__ import annotations

import heapq
import itertools
import math
from collections.abc import Callable
from dataclasses import dataclass, field

from repro.exceptions import SimulationError


@dataclass(order=True)
class _ScheduledEvent:
    time: float
    sequence: int
    action: Callable[[], None] = field(compare=False)
    cancelled: bool = field(default=False, compare=False)


class EventHandle:
    """Opaque handle allowing a scheduled event to be cancelled."""

    def __init__(self, event: _ScheduledEvent) -> None:
        self._event = event

    def cancel(self) -> None:
        """Prevent the event from firing (idempotent)."""
        self._event.cancelled = True

    @property
    def time(self) -> float:
        """The simulated time the event is scheduled for."""
        return self._event.time

    @property
    def cancelled(self) -> bool:
        """Whether the event has been cancelled."""
        return self._event.cancelled


class Engine:
    """Event calendar + clock.

    ``schedule(delay, action)`` registers a zero-argument callback; events at
    equal times fire in scheduling order (FIFO), which keeps simulations
    deterministic.
    """

    def __init__(self) -> None:
        self._now = 0.0
        self._heap: list[_ScheduledEvent] = []
        self._counter = itertools.count()
        self._processed = 0

    @property
    def now(self) -> float:
        """Current simulated time."""
        return self._now

    @property
    def processed_events(self) -> int:
        """Number of events that have fired so far."""
        return self._processed

    def schedule(self, delay: float, action: Callable[[], None]) -> EventHandle:
        """Schedule ``action`` to fire ``delay`` seconds from now."""
        if delay < 0:
            raise SimulationError(f"cannot schedule into the past (delay={delay})")
        if not math.isfinite(delay):
            raise SimulationError(f"delay must be finite, got {delay}")
        event = _ScheduledEvent(self._now + delay, next(self._counter), action)
        heapq.heappush(self._heap, event)
        return EventHandle(event)

    def schedule_at(self, time: float, action: Callable[[], None]) -> EventHandle:
        """Schedule ``action`` at an absolute simulated time."""
        return self.schedule(time - self._now, action)

    def run_until(self, horizon: float, *, max_events: int | None = None) -> None:
        """Process events in time order until ``horizon`` (inclusive).

        ``max_events`` bounds runaway simulations; exceeding it raises
        :class:`SimulationError` rather than spinning forever.  The bound
        applies to events processed by *this call* — a long-lived engine
        driven by repeated ``run_until`` calls gets a fresh budget each
        time, while :attr:`processed_events` keeps the lifetime total.
        """
        if horizon < self._now:
            raise SimulationError(
                f"horizon {horizon} is before current time {self._now}"
            )
        processed_this_call = 0
        while self._heap:
            event = self._heap[0]
            if event.time > horizon:
                break
            heapq.heappop(self._heap)
            if event.cancelled:
                continue
            self._now = event.time
            event.action()
            self._processed += 1
            processed_this_call += 1
            if max_events is not None and processed_this_call > max_events:
                raise SimulationError(
                    f"exceeded max_events={max_events}; the simulation may be unstable"
                )
        self._now = horizon

    def peek(self) -> float | None:
        """Time of the next pending (non-cancelled) event, if any."""
        while self._heap and self._heap[0].cancelled:
            heapq.heappop(self._heap)
        return self._heap[0].time if self._heap else None
